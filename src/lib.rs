//! Root package of the DEX reproduction workspace.
//!
//! This crate exists to host the repo-level integration tests (`tests/`)
//! and the runnable examples (`examples/`); it simply re-exports the
//! [`dex`] facade.

pub use dex;
