//! `bench_heal --smoke` must be byte-identical across thread counts: the
//! churn trials fan out over the order-preserving `par_map` and nothing in
//! the smoke JSON depends on timing, so `--threads 1`, `3`, and `8` must
//! produce the same file to the byte.
//!
//! The test installs the same counting allocator (`dex_bench::alloc`) the
//! `bench_heal` binary uses, so the allocation fields are exercised too
//! (they are measured in a single-threaded pass and must not vary with
//! the fan-out width).

use dex_bench::alloc::{allocated_bytes, CountingAlloc};
use dex_bench::heal::{run_heal_bench, HealBenchOptions};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn smoke_json(threads: usize) -> String {
    run_heal_bench(&HealBenchOptions {
        smoke: true,
        threads,
        seed: 0x4ea1_d5c0,
        trials: 2,
        alloc_bytes: Some(allocated_bytes),
    })
}

#[test]
fn smoke_output_is_byte_identical_across_thread_counts() {
    let one = smoke_json(1);
    assert!(one.contains("\"phi_kernel\""), "kernel section missing");
    assert!(one.contains("\"churn\""), "churn section missing");
    assert!(
        one.contains("\"checksum_match\": true"),
        "Φ implementations must agree"
    );
    assert!(
        !one.contains("ops_per_sec"),
        "smoke output must not contain timing fields"
    );
    for threads in [3, 8] {
        let other = smoke_json(threads);
        assert_eq!(
            one, other,
            "bench_heal --smoke output differs between --threads 1 and --threads {threads}"
        );
    }
}
