//! `bench_batch --smoke` must be byte-identical across planner thread
//! counts: the wave engine's results are bit-identical for any `threads`
//! value and nothing in the smoke JSON depends on timing or allocation,
//! so `--threads 1`, `3`, and `8` must produce the same file to the byte
//! (CI also diffs the actual binary outputs).

use dex_bench::batch::{run_batch_bench, BatchBenchOptions};

fn smoke_json(threads: usize) -> String {
    run_batch_bench(&BatchBenchOptions {
        smoke: true,
        type2: false,
        threads,
        seed: 0xba7c_4d37,
        alloc_bytes: None,
    })
}

fn type2_json(threads: usize) -> String {
    run_batch_bench(&BatchBenchOptions {
        smoke: false,
        type2: true,
        threads,
        seed: 0xba7c_4d37,
        alloc_bytes: None,
    })
}

#[test]
fn smoke_output_is_byte_identical_across_thread_counts() {
    let one = smoke_json(1);
    assert!(one.contains("\"parity\": true"), "parity check missing");
    assert!(one.contains("\"waved\""), "waved section missing");
    assert!(one.contains("\"wave_hist_log2\""), "wave histogram missing");
    assert!(
        !one.contains("ops_per_sec") && !one.contains("bytes_per_op"),
        "smoke output must not contain timing/alloc fields"
    );
    for threads in [3, 8] {
        let other = smoke_json(threads);
        assert_eq!(
            one, other,
            "bench_batch --smoke output differs between --threads 1 and --threads {threads}"
        );
    }
}

#[test]
fn type2_smoke_output_is_byte_identical_across_thread_counts() {
    let one = type2_json(1);
    assert!(
        one.contains("\"schedule\": \"type2\""),
        "type-2 schedule marker missing"
    );
    assert!(one.contains("\"parity\": true"), "parity check missing");
    assert!(
        !one.contains("\"type2_steps\": 0"),
        "type-2 schedule must actually trigger inflate/deflate"
    );
    for threads in [3, 8] {
        let other = type2_json(threads);
        assert_eq!(
            one, other,
            "bench_batch --type2 output differs between --threads 1 and --threads {threads}"
        );
    }
}
