//! The healing-throughput benchmark behind `bench_heal` (and its CI
//! smoke + determinism tests): measures the slot-arena Φ against the
//! legacy HashMap Φ on the heal access pattern, and drives end-to-end
//! insert/delete/batch churn on full `DexNetwork`s up to n ≈ 1M.
//!
//! Two sections, both emitted into `BENCH_heal.json`:
//!
//! 1. **Φ heal kernel** — the exact mapping-op sequence type-1 healing
//!    performs (probe a spare node, pick the max vertex of its `Sim` set,
//!    transfer it, resolve the owners of the incident vertices; then the
//!    deletion mirror) replayed against both implementations of Φ. The
//!    sequences are identical and the final checksums are asserted equal,
//!    so the speedup is apples-to-apples.
//! 2. **End-to-end churn** — full DEX networks at n ∈ {20k, 200k, 1M}
//!    under a deterministic 45/45/5/5 single-insert / single-delete /
//!    batch-insert / batch-delete mix, with trials fanned out over the
//!    order-preserving `par_map`. A separate single-threaded pass measures
//!    wall-clock ops/s and — through a caller-provided allocation counter —
//!    **bytes allocated per healing operation**, which is 0 in steady
//!    state (no type-2 in the measurement window) now that every hot-path
//!    buffer is pooled in `HealScratch`.
//!
//! Determinism contract: everything except the clearly-labelled timing
//! fields (`*_ops_per_sec`, `speedup`, `wall_s`) is a pure function of
//! `(smoke, seed, trials)` — independent of `--threads` and of machine
//! speed. In `--smoke` mode the timing fields are omitted entirely and
//! the JSON is **byte-identical** across thread counts; the
//! `heal_determinism` test runs threads ∈ {1, 3, 8} and diffs the bytes.

use dex::core::mapping::oracle::HashMapping;
use dex::core::VirtualMapping;
use dex::prelude::*;
use dex::sim::parallel::par_map;
use dex::sim::rng::splitmix64;
use dex::sim::{HasStepLog, HistoryMode, StepLog};
use std::fmt::Write as _;
use std::time::Instant;

/// Options for one benchmark run.
pub struct HealBenchOptions {
    /// Toy scales, per-step invariant checking, no timing fields.
    pub smoke: bool,
    /// Worker threads for the churn trial fan-out.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Trials per churn scale (0 = default 2).
    pub trials: usize,
    /// Reads the process-wide allocated-bytes counter, when the caller
    /// installed a counting allocator. `None` ⇒ allocation fields are
    /// reported as `null`.
    pub alloc_bytes: Option<fn() -> u64>,
}

impl Default for HealBenchOptions {
    fn default() -> Self {
        HealBenchOptions {
            smoke: false,
            threads: dex::sim::parallel::default_threads(),
            seed: 0x4ea1,
            trials: 0,
            alloc_bytes: None,
        }
    }
}

// ======================================================================
// Section 1: the Φ heal kernel
// ======================================================================

/// The mapping operations the healing hot path performs, abstracted so the
/// identical op sequence drives both implementations.
trait Phi: Sized {
    fn assign(&mut self, z: VertexId, u: NodeId);
    /// Assign a contiguous run (an inflation cloud). The slot Φ has a
    /// genuine batch path; the legacy Φ can only do α separate inserts,
    /// exactly as the seed's inflate did.
    fn assign_cloud(&mut self, z_start: VertexId, count: u64, u: NodeId);
    fn transfer(&mut self, z: VertexId, to: NodeId) -> NodeId;
    fn owner_of(&self, z: VertexId) -> NodeId;
    fn sim(&self, u: NodeId) -> &[VertexId];
    fn load(&self, u: NodeId) -> u64;
    fn spare_count(&self) -> usize;
    fn low_count(&self) -> usize;
    /// Fresh empty mapping pre-sized for `p` vertices (the type-2 rebuild
    /// target; the legacy implementation has no pre-sizing to offer).
    fn fresh(zeta: u64, p: u64) -> Self;
    /// Canonical-order `(vertex, owner)` iteration — what type-2 Phase 1
    /// reads. The slot Φ scans its dense array; the legacy Φ must collect
    /// and sort (hash iteration order is nondeterministic), exactly as the
    /// seed's `entries_sorted()` hot path did.
    fn for_each_entry(&self, f: &mut dyn FnMut(VertexId, NodeId));
}

impl Phi for VirtualMapping {
    fn assign(&mut self, z: VertexId, u: NodeId) {
        VirtualMapping::assign(self, z, u)
    }
    fn assign_cloud(&mut self, z_start: VertexId, count: u64, u: NodeId) {
        VirtualMapping::assign_run(self, z_start, count, u)
    }
    fn transfer(&mut self, z: VertexId, to: NodeId) -> NodeId {
        VirtualMapping::transfer(self, z, to)
    }
    fn owner_of(&self, z: VertexId) -> NodeId {
        VirtualMapping::owner_of(self, z)
    }
    fn sim(&self, u: NodeId) -> &[VertexId] {
        VirtualMapping::sim(self, u)
    }
    fn load(&self, u: NodeId) -> u64 {
        VirtualMapping::load(self, u)
    }
    fn spare_count(&self) -> usize {
        VirtualMapping::spare_count(self)
    }
    fn low_count(&self) -> usize {
        VirtualMapping::low_count(self)
    }
    fn fresh(zeta: u64, p: u64) -> Self {
        VirtualMapping::with_vertex_capacity(zeta, p)
    }
    fn for_each_entry(&self, f: &mut dyn FnMut(VertexId, NodeId)) {
        for (z, u) in self.entries() {
            f(z, u);
        }
    }
}

impl Phi for HashMapping {
    fn assign(&mut self, z: VertexId, u: NodeId) {
        HashMapping::assign(self, z, u)
    }
    fn assign_cloud(&mut self, z_start: VertexId, count: u64, u: NodeId) {
        // The seed's inflate materialized each cloud as a Vec
        // (`resize::inflation_cloud`) before assigning its members.
        let cloud: Vec<u64> = (0..count).map(|i| z_start.0 + i).collect();
        for y in cloud {
            HashMapping::assign(self, VertexId(y), u);
        }
    }
    fn transfer(&mut self, z: VertexId, to: NodeId) -> NodeId {
        HashMapping::transfer(self, z, to)
    }
    fn owner_of(&self, z: VertexId) -> NodeId {
        HashMapping::owner_of(self, z)
    }
    fn sim(&self, u: NodeId) -> &[VertexId] {
        HashMapping::sim(self, u)
    }
    fn load(&self, u: NodeId) -> u64 {
        HashMapping::load(self, u)
    }
    fn spare_count(&self) -> usize {
        HashMapping::spare_count(self)
    }
    fn low_count(&self) -> usize {
        HashMapping::low_count(self)
    }
    fn fresh(zeta: u64, _p: u64) -> Self {
        HashMapping::new(zeta)
    }
    fn for_each_entry(&self, f: &mut dyn FnMut(VertexId, NodeId)) {
        for (z, u) in self.entries_sorted() {
            f(z, u);
        }
    }
}

/// Outcome of one kernel replay: op counts, a checksum folding every
/// owner/load the kernel observed, and per-section wall time.
struct KernelOutcome {
    ops: u64,
    checksum: u64,
    /// Ops / wall seconds spent in the steady type-1 section.
    steady_ops: u64,
    steady_s: f64,
    /// Ops / wall seconds spent in the type-2 rebuild sections.
    type2_ops: u64,
    type2_s: f64,
}

/// Cloud size of the kernel's synthetic inflation (the paper's α ∈ (4, 8);
/// real clouds are 4–8 consecutive new vertices per old vertex, Eq. 7).
const KERNEL_CLOUD: u64 = 4;

/// Replay `steps` insert+delete heal pairs against `phi` at scale
/// `(n, p0)`, including one full inflate/deflate type-2 cycle (the
/// amortized part of healing: with θ = 1/64 the trigger can fire as often
/// as every θn steps, and Lemma 8 bounds the gap below by Ω(γn) — one
/// inflation and one deflation per n/2 heals sits inside that band).
/// Deterministic in `seed`; both implementations see the exact same
/// sequence (the driver consults only values both return identically).
fn run_kernel<P: Phi>(phi: &mut P, n: u64, p0: u64, steps: u64, seed: u64) -> KernelOutcome {
    // Bootstrap: vertices dealt round-robin, like `DexNetwork::bootstrap`.
    for z in 0..p0 {
        phi.assign(VertexId(z), NodeId(z % n));
    }
    let mut p = p0;
    // Bootstrap is setup, not healing: excluded from both the op count
    // and the timed sections (the timer starts below).
    let mut ops = 0u64;
    let mut type2_ops = 0u64;
    let mut type2_s = 0.0f64;
    let kernel_t = Instant::now();
    let mut checksum = splitmix64(seed ^ p);
    let mut state = seed;
    let rnd = move |s: &mut u64| {
        *s = splitmix64(*s);
        *s
    };
    // Cheap mod-p reduction (multiply-shift) and a 2-op checksum fold:
    // the kernel must time Φ, not the driver's ALU (divisions and hash
    // folds would add equal overhead to both sides and blur the ratio).
    #[inline(always)]
    fn reduce(x: u64, p: u64) -> u64 {
        ((x as u128 * p as u128) >> 64) as u64
    }
    #[inline(always)]
    fn fold(checksum: &mut u64, v: u64) {
        *checksum = checksum.rotate_left(1) ^ v;
    }
    #[inline(always)]
    fn succ(z: u64, p: u64) -> u64 {
        if z + 1 == p {
            0
        } else {
            z + 1
        }
    }
    #[inline(always)]
    fn pred(z: u64, p: u64) -> u64 {
        if z == 0 {
            p - 1
        } else {
            z - 1
        }
    }
    // The incident vertices whose owners a one-vertex move resolves
    // (cycle succ/pred plus a chord-distributed partner: uniformly
    // scattered, like the real modular inverse).
    let resolve = |phi: &P, z: u64, p: u64, checksum: &mut u64, ops: &mut u64| {
        let h = reduce(splitmix64(z), p);
        for v in [succ(z, p), pred(z, p), z, h, succ(h, p), pred(h, p)] {
            fold(checksum, phi.owner_of(VertexId(v)).0);
            *ops += 1;
        }
    };
    // One vertex move = `fabric::move_vertices`: enumerate the incident
    // instances, resolve their owners (edge removal), transfer, resolve
    // again under the new owner (edge re-add).
    let moved =
        |phi: &mut P, z: VertexId, to: NodeId, p: u64, checksum: &mut u64, ops: &mut u64| {
            resolve(phi, z.0, p, checksum, ops);
            phi.transfer(z, to);
            *ops += 1;
            resolve(phi, z.0, p, checksum, ops);
        };
    // Post-rebuild fabric pass: resolve the owner of every canonical edge
    // endpoint (succ sequential, chord scattered), mirroring
    // `expected_edge_multiset` after `rewire_to_target`.
    let resolve_fabric = |phi: &P, p: u64, checksum: &mut u64, ops: &mut u64| {
        for z in 0..p {
            let chord = reduce(splitmix64(z), p);
            fold(checksum, phi.owner_of(VertexId(z)).0);
            fold(checksum, phi.owner_of(VertexId(succ(z, p))).0);
            fold(checksum, phi.owner_of(VertexId(chord)).0);
        }
        *ops += 3 * p;
    };
    let mut zs_buf: Vec<VertexId> = Vec::new();
    for step in 0..steps {
        // --- insert heal: find a spare node, hand its max vertex over ---
        let mut w = rnd(&mut state) % n;
        while phi.load(NodeId(w)) < 2 {
            ops += 1;
            w = (w + 1) % n;
        }
        ops += 1;
        let z = *phi
            .sim(NodeId(w))
            .iter()
            .max()
            .expect("spare node simulates a vertex");
        // Fresh ids are allocated one per step, above the bootstrap range.
        let u = NodeId(n + step);
        moved(phi, z, u, p, &mut checksum, &mut ops);

        // --- delete heal ---
        // "Low" scales with the current average load p/n (after the
        // synthetic inflation loads quadruple, as they do transiently in
        // the real protocol before rebalancing spreads them).
        let low_cap = (4 * p / n).max(16);
        let low_probe = |phi: &P, from: u64, ops: &mut u64| {
            let mut w = from % n;
            while {
                let l = phi.load(NodeId(w));
                l < 1 || l > low_cap
            } {
                *ops += 1;
                w = (w + 1) % n;
            }
            *ops += 1;
            w
        };
        if step % 8 == 7 {
            // An established node dies: the rescuer adopts its whole Sim
            // set, then redistributes each vertex to a Low node — the
            // `adopt_vertices` + per-vertex walk shape of Algorithm 4.3.
            let victim = NodeId(rnd(&mut state) % n);
            zs_buf.clear();
            zs_buf.extend_from_slice(phi.sim(victim));
            ops += 1;
            let rescuer = NodeId(low_probe(phi, rnd(&mut state), &mut ops));
            for &z in &zs_buf {
                if phi.owner_of(z) != rescuer {
                    moved(phi, z, rescuer, p, &mut checksum, &mut ops);
                }
            }
            for &z in &zs_buf {
                let w2 = NodeId(low_probe(phi, rnd(&mut state), &mut ops));
                if phi.owner_of(z) != w2 {
                    moved(phi, z, w2, p, &mut checksum, &mut ops);
                }
            }
        } else {
            // The freshly inserted node dies again: one-vertex adoption.
            let w2 = NodeId(low_probe(phi, rnd(&mut state), &mut ops));
            let zs = phi.sim(u);
            debug_assert_eq!(zs.len(), 1);
            let z = zs[0];
            moved(phi, z, w2, p, &mut checksum, &mut ops);
        }

        if step % 1024 == 0 {
            checksum = splitmix64(
                checksum ^ (phi.spare_count() as u64) ^ ((phi.low_count() as u64) << 32),
            );
        }

        // --- type-2 inflation (`simplifiedInfl` Phase 1, Eq. 7): every
        // old vertex is replaced by a cloud of α consecutive new vertices
        // owned by the same node, read from Φ in canonical order.
        if step + 1 == steps / 3 {
            let t2 = Instant::now();
            let ops_before = ops;
            debug_assert_eq!(p, p0);
            let p_new = p * KERNEL_CLOUD;
            let mut next = P::fresh(8, p_new);
            phi.for_each_entry(&mut |z, owner| {
                next.assign_cloud(VertexId(z.0 * KERNEL_CLOUD), KERNEL_CLOUD, owner);
            });
            ops += p + p_new; // p entry reads + p_new assigns
            *phi = next;
            p = p_new;
            resolve_fabric(phi, p, &mut checksum, &mut ops);
            type2_s += t2.elapsed().as_secs_f64();
            type2_ops += ops - ops_before;
        }
        // --- type-2 deflation (`simplifiedDefl` Phase 1): only dominating
        // vertices survive, contracting each cloud back to one vertex.
        if step + 1 == 2 * steps / 3 {
            let t2 = Instant::now();
            let ops_before = ops;
            debug_assert_eq!(p, p0 * KERNEL_CLOUD);
            let p_new = p0;
            let mut next = P::fresh(8, p_new);
            phi.for_each_entry(&mut |z, owner| {
                if z.0 % KERNEL_CLOUD == 0 {
                    next.assign(VertexId(z.0 / KERNEL_CLOUD), owner);
                }
            });
            ops += p + p_new;
            *phi = next;
            p = p_new;
            resolve_fabric(phi, p, &mut checksum, &mut ops);
            type2_s += t2.elapsed().as_secs_f64();
            type2_ops += ops - ops_before;
        }
    }
    checksum = splitmix64(checksum ^ phi.spare_count() as u64 ^ phi.low_count() as u64);
    KernelOutcome {
        ops,
        checksum,
        steady_ops: ops - type2_ops,
        steady_s: kernel_t.elapsed().as_secs_f64() - type2_s,
        type2_ops,
        type2_s,
    }
}

struct KernelReport {
    n: u64,
    p: u64,
    steps: u64,
    ops: u64,
    checksum: u64,
    /// `(slot outcome, hash outcome)` — carries section timings; only
    /// reported in full (timed) mode.
    timing: Option<(KernelOutcome, KernelOutcome)>,
}

fn phi_kernel_scale(n: u64, seed: u64, timed: bool) -> KernelReport {
    let p = dex::graph::primes::initial_prime(n);
    let steps = n / 2;

    // Scoped so the slot mapping is dropped before the hash side runs
    // (the inflated 1M-scale states are hundreds of MB each).
    let a = {
        let mut slot = VirtualMapping::with_vertex_capacity(8, p);
        run_kernel(&mut slot, n, p, steps, seed)
    };
    let b = {
        let mut hash = HashMapping::new(8);
        run_kernel(&mut hash, n, p, steps, seed)
    };

    assert_eq!(a.ops, b.ops, "kernel op counts diverged at n={n}");
    assert_eq!(
        a.checksum, b.checksum,
        "slot Φ and HashMap Φ disagree at n={n} — implementations diverged"
    );
    KernelReport {
        n,
        p,
        steps,
        ops: a.ops,
        checksum: a.checksum,
        timing: timed.then_some((a, b)),
    }
}

// ======================================================================
// Section 2: end-to-end churn on DexNetwork
// ======================================================================

/// Floor below which the churn mix stops deleting.
fn churn_floor(n0: u64) -> usize {
    ((n0 / 2) as usize).max(16)
}

/// Deterministic churn driver: 45% single insert, 45% single delete,
/// 5% batch insert (8), 5% batch delete (8). Maintains its own live-node
/// list (no O(n) `node_ids()` per step) and reuses the batch buffers so
/// the adversary side allocates nothing per step either.
struct ChurnDriver {
    dex: DexNetwork,
    live: Vec<NodeId>,
    next_id: u64,
    state: u64,
    floor: usize,
    joins: Vec<(NodeId, NodeId)>,
    victims: Vec<NodeId>,
    pub log: StepLog,
    pub ops: u64,
    pub digest: u64,
}

impl ChurnDriver {
    fn new(n0: u64, steps: usize, seed: u64) -> Self {
        let mut dex =
            DexNetwork::bootstrap(DexConfig::new(splitmix64(seed ^ 0xd5c0)).simplified(), n0);
        dex.net.set_history_mode(HistoryMode::Off);
        let mut live = dex.node_ids();
        live.reserve(steps);
        let next_id = live.iter().map(|u| u.0).max().unwrap_or(0) + 1;
        let mut log = StepLog::new();
        log.rounds.reserve(steps + 1);
        log.messages.reserve(steps + 1);
        log.topology.reserve(steps + 1);
        ChurnDriver {
            dex,
            live,
            next_id,
            state: splitmix64(seed ^ 0x11ea1),
            floor: churn_floor(n0),
            joins: Vec::with_capacity(8),
            victims: Vec::with_capacity(8),
            log,
            ops: 0,
            digest: splitmix64(seed),
        }
    }

    #[inline]
    fn rnd(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// One adversarial step. Returns `(healing ops, used type-2)`.
    fn step(&mut self) -> (u64, bool) {
        let r = self.rnd() % 100;
        let can_delete = self.live.len() > self.floor;
        let m = if r < 45 || !can_delete && r < 90 {
            // single insert
            let r = self.rnd();
            let attach = self.live[(r % self.live.len() as u64) as usize];
            let u = self.fresh();
            let m = self.dex.insert(u, attach);
            self.live.push(u);
            self.account(m, 1)
        } else if r < 90 {
            // single delete
            let r = self.rnd();
            let idx = (r % self.live.len() as u64) as usize;
            let victim = self.live.swap_remove(idx);
            let m = self.dex.delete(victim);
            self.account(m, 1)
        } else if r < 95 || !can_delete {
            // batch insert of 8 (distinct fresh ids, fan-in ≤ 8 trivially)
            self.joins.clear();
            for _ in 0..8 {
                let r = self.rnd();
                let attach = self.live[(r % self.live.len() as u64) as usize];
                let u = self.fresh();
                self.joins.push((u, attach));
            }
            let joins = std::mem::take(&mut self.joins);
            let m = self.dex.insert_batch(&joins);
            self.live.extend(joins.iter().map(|&(u, _)| u));
            self.joins = joins;
            self.account(m, 8)
        } else {
            // batch delete of 8 distinct victims
            self.victims.clear();
            for _ in 0..8 {
                let r = self.rnd();
                let idx = (r % self.live.len() as u64) as usize;
                self.victims.push(self.live.swap_remove(idx));
            }
            let victims = std::mem::take(&mut self.victims);
            let m = self.dex.delete_batch(&victims);
            self.victims = victims;
            self.account(m, 8)
        };
        (
            match m.kind {
                StepKind::BatchInsert(k) | StepKind::BatchDelete(k) => k as u64,
                _ => 1,
            },
            m.recovery.is_type2(),
        )
    }

    fn account(&mut self, m: StepMetrics, ops: u64) -> StepMetrics {
        self.log.push(&m);
        self.ops += ops;
        self.digest = splitmix64(self.digest ^ m.rounds);
        self.digest = splitmix64(self.digest ^ m.messages);
        self.digest = splitmix64(self.digest ^ m.topology_changes);
        m
    }
}

impl HasStepLog for ChurnTrial {
    fn step_log(&self) -> &StepLog {
        &self.log
    }
}

struct ChurnTrial {
    log: StepLog,
    ops: u64,
    digest: u64,
    final_n: usize,
    p: u64,
    max_load: u64,
}

fn churn_trial(n0: u64, steps: usize, seed: u64, check_every_step: bool) -> ChurnTrial {
    let mut d = ChurnDriver::new(n0, steps, seed);
    for _ in 0..steps {
        d.step();
        if check_every_step {
            invariants::assert_ok(&d.dex);
        }
    }
    // Full structural verification at the end of every trial (per-step at
    // smoke scale): the benchmark fails loudly on any violation.
    invariants::check(&d.dex).expect("churn trial ended with an invariant violation");
    ChurnTrial {
        log: d.log,
        ops: d.ops,
        digest: d.digest,
        final_n: d.dex.n(),
        p: d.dex.cycle.p(),
        max_load: d.dex.max_total_load(),
    }
}

/// The single-threaded measurement pass: warm the scratch pools, then
/// meter wall time and allocated bytes over the tail of the run.
struct MeasuredChurn {
    measured_ops: u64,
    window_type2: u64,
    bytes: Option<u64>,
    wall_s: f64,
}

fn churn_measure(
    n0: u64,
    steps: usize,
    seed: u64,
    alloc_bytes: Option<fn() -> u64>,
) -> MeasuredChurn {
    let warmup = steps / 4;
    let mut d = ChurnDriver::new(n0, steps, seed);
    for _ in 0..warmup {
        d.step();
    }
    let b0 = alloc_bytes.map(|f| f());
    let t0 = Instant::now();
    let mut measured_ops = 0u64;
    let mut window_type2 = 0u64;
    for _ in warmup..steps {
        let (k, t2) = d.step();
        measured_ops += k;
        window_type2 += t2 as u64;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let bytes = alloc_bytes.map(|f| f() - b0.unwrap());
    MeasuredChurn {
        measured_ops,
        window_type2,
        bytes,
        wall_s,
    }
}

// ======================================================================
// Assembly
// ======================================================================

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {:.4}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        s.count, s.mean, s.p50, s.p95, s.p99, s.p999, s.max
    )
}

/// Derive the seed of churn trial `t` at scale `n`.
fn scale_trial_seed(master: u64, n: u64, t: usize) -> u64 {
    splitmix64(master ^ splitmix64(n ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Run the benchmark and return the `BENCH_heal.json` contents.
pub fn run_heal_bench(opts: &HealBenchOptions) -> String {
    let trials = if opts.trials > 0 { opts.trials } else { 2 };
    let scales: Vec<(u64, usize)> = if opts.smoke {
        vec![(192, 300), (768, 500)]
    } else {
        vec![(20_000, 4000), (200_000, 4000), (1_000_000, 2000)]
    };
    let kernel_ns: Vec<u64> = if opts.smoke {
        vec![512, 2048]
    } else {
        vec![20_000, 200_000, 1_000_000]
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{\"smoke\": {}, \"seed\": {}, \"trials\": {trials}}},",
        opts.smoke, opts.seed
    );
    let _ = writeln!(json, "  {},", crate::exec_header_json());

    // --- Φ heal kernel -------------------------------------------------
    let _ = writeln!(json, "  \"phi_kernel\": [");
    for (i, &n) in kernel_ns.iter().enumerate() {
        let r = phi_kernel_scale(n, splitmix64(opts.seed ^ n), !opts.smoke);
        let mut line = format!(
            "    {{\"n\": {}, \"p\": {}, \"steps\": {}, \"mapping_ops\": {}, \"checksum\": \"{:#018x}\", \"checksum_match\": true",
            r.n, r.p, r.steps, r.ops, r.checksum
        );
        if let Some((slot, hash)) = &r.timing {
            let slot_total = slot.steady_s + slot.type2_s;
            let hash_total = hash.steady_s + hash.type2_s;
            let slot_ops = r.ops as f64 / slot_total;
            let hash_ops = r.ops as f64 / hash_total;
            let steady_speedup =
                (slot.steady_ops as f64 / slot.steady_s) / (hash.steady_ops as f64 / hash.steady_s);
            let type2_speedup =
                (slot.type2_ops as f64 / slot.type2_s) / (hash.type2_ops as f64 / hash.type2_s);
            let _ = write!(
                line,
                ", \"slot_ops_per_sec\": {:.0}, \"hash_ops_per_sec\": {:.0}, \"speedup\": {:.2}, \"steady_speedup\": {:.2}, \"type2_rebuild_speedup\": {:.2}",
                slot_ops,
                hash_ops,
                slot_ops / hash_ops,
                steady_speedup,
                type2_speedup
            );
            println!(
                "phi_kernel n={:<9} ops {:>10}  slot {:>12.0}/s  hash {:>12.0}/s  speedup {:.2}x (steady {:.2}x, type2 {:.2}x)",
                r.n,
                r.ops,
                slot_ops,
                hash_ops,
                slot_ops / hash_ops,
                steady_speedup,
                type2_speedup
            );
        } else {
            println!(
                "phi_kernel n={:<9} ops {:>10}  checksum ok (smoke: untimed)",
                r.n, r.ops
            );
        }
        line.push('}');
        if i + 1 < kernel_ns.len() {
            line.push(',');
        }
        let _ = writeln!(json, "{line}");
    }
    let _ = writeln!(json, "  ],");

    // --- end-to-end churn ----------------------------------------------
    let _ = writeln!(json, "  \"churn\": [");
    for (i, &(n0, steps)) in scales.iter().enumerate() {
        let idx: Vec<usize> = (0..trials).collect();
        let t0 = Instant::now();
        let reports: Vec<ChurnTrial> = par_map(&idx, opts.threads, |&t| {
            churn_trial(n0, steps, scale_trial_seed(opts.seed, n0, t), opts.smoke)
        });
        let trials_wall = t0.elapsed().as_secs_f64();
        let agg = StepAggregate::pooled(&reports);
        let ops: u64 = reports.iter().map(|r| r.ops).sum();
        let mut digest = splitmix64(n0);
        for r in &reports {
            digest = splitmix64(digest ^ r.digest);
        }

        // Single-threaded measurement pass (trial-0 seed): bytes/op and,
        // in full mode, ops/s.
        let m = churn_measure(
            n0,
            steps,
            scale_trial_seed(opts.seed, n0, 0),
            opts.alloc_bytes,
        );
        let bytes_per_op = m.bytes.map(|b| b / m.measured_ops.max(1));

        let _ = writeln!(json, "    {{");
        let _ = writeln!(
            json,
            "      \"n0\": {n0}, \"steps\": {steps}, \"trials\": {trials}, \"ops\": {ops},"
        );
        let _ = writeln!(
            json,
            "      \"final_n\": [{}],",
            reports
                .iter()
                .map(|r| r.final_n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "      \"p\": [{}],",
            reports
                .iter()
                .map(|r| r.p.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            json,
            "      \"max_load\": {}, \"type2_steps\": {}, \"digest\": \"{digest:#018x}\",",
            reports.iter().map(|r| r.max_load).max().unwrap_or(0),
            agg.type2_steps
        );
        let _ = writeln!(json, "      \"invariants\": \"ok\",");
        let _ = writeln!(json, "      \"rounds\": {},", summary_json(&agg.rounds));
        let _ = writeln!(json, "      \"messages\": {},", summary_json(&agg.messages));
        let _ = writeln!(json, "      \"topology\": {},", summary_json(&agg.topology));
        let _ = writeln!(
            json,
            "      \"steady_alloc_bytes_per_op\": {}, \"alloc_window_type2\": {}, \"alloc_window_ops\": {}{}",
            bytes_per_op
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".into()),
            m.window_type2,
            m.measured_ops,
            if opts.smoke { "" } else { "," }
        );
        if !opts.smoke {
            let _ = writeln!(
                json,
                "      \"ops_per_sec\": {:.0}, \"wall_s\": {:.3}, \"trials_wall_s\": {:.3}",
                m.measured_ops as f64 / m.wall_s,
                m.wall_s,
                trials_wall
            );
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < scales.len() { "," } else { "" }
        );
        println!(
            "churn n0={n0:<9} steps {steps:>6}  ops {ops:>8}  type2 {}  heal {:>10.0} ops/s  alloc/op {}",
            agg.type2_steps,
            m.measured_ops as f64 / m.wall_s,
            bytes_per_op
                .map(|b| format!("{b} B"))
                .unwrap_or_else(|| "n/a".into()),
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}
