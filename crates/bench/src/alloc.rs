//! Shared counting allocator for the benchmark binaries and their
//! determinism tests.
//!
//! Several benches report **bytes allocated per healing operation**
//! (steady-state type-1 healing is expected to allocate nothing — every
//! hot-path buffer is pooled). A `#[global_allocator]` must be declared in
//! the final binary/test crate, so this module exports the allocator type
//! and its counter; each consumer declares one line:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: dex_bench::alloc::CountingAlloc = dex_bench::alloc::CountingAlloc;
//!
//! let opts = HealBenchOptions { alloc_bytes: Some(dex_bench::alloc::allocated_bytes), .. };
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocator wrapper counting every allocated byte (frees are not
/// subtracted: the metric is allocation *pressure*, and a hot path that
/// allocates-and-frees still pays the allocator round trip).
pub struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to `System` plus a relaxed atomic counter —
// every GlobalAlloc contract obligation (layout validity, pointer
// provenance) is forwarded unchanged to the system allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: (all three methods) caller upholds the GlobalAlloc
    // contract; we forward the exact same arguments to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: same layout the caller passed under the same contract.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: see alloc.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come from a matching `alloc` via our caller.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: see alloc.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller upholds the contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total bytes allocated process-wide since start. Only meaningful when
/// [`CountingAlloc`] is installed as the global allocator; reads 0
/// otherwise.
pub fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}
