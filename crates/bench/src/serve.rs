//! The sharded DHT serving benchmark behind `bench_serve` (and its CI
//! smoke + determinism checks): the open-loop serving harness
//! (`dex::workload::serve`) driven through a calibrated offered-load
//! sweep. Emits `BENCH_serve.json`.
//!
//! The run has two stages:
//!
//! 1. **Calibration** — a closed-loop saturation probe ([`Arrivals::Burst`]
//!    into an unbounded queue): every op is available from round 0, so the
//!    shards batch maximally and the measured `served/makespan` is the
//!    harness's service **capacity** in ops per virtual round. Pure
//!    virtual-time arithmetic — no wall-clock.
//! 2. **Sweep** — open-loop Poisson arrivals at fixed fractions of that
//!    capacity (0.25× … 1.25×) through the bounded ingestion queue. Below
//!    the knee, latency is flat and nothing sheds; at and above capacity,
//!    queueing delay climbs and the bounded queue starts shedding — the
//!    saturation knee and the backpressure behavior, in one table.
//!
//! Reported per sweep point: sustained throughput in ops per virtual
//! round, utilization against calibrated capacity, shed count, and
//! latency percentiles (p50/p95/p99/p999) in virtual rounds, plus the
//! pooled per-batch heal/route cost summaries and a bit-identity digest.
//!
//! Determinism contract: everything except the clearly-labelled timing
//! fields is a pure function of `(smoke, seed, knobs)` — independent of
//! `--exec-threads`. In `--smoke` mode the timing fields are omitted and
//! the JSON is **byte-identical** across thread counts (CI runs
//! `--exec-threads 1/3/8` and diffs the files). The `DEX_SERVE_SHARDS` /
//! `DEX_SERVE_QUEUE_CAP` knobs are bench-harness experiment inputs; their
//! effective values land in the config header (CI leaves them unset).

use dex::exec::knobs;
use dex::prelude::*;
use dex::workload::serve::ServeReport;
use dex::workload::{Arrivals, ServeOptions};
use std::fmt::Write as _;
use std::time::Instant;

/// Offered-load fractions of calibrated capacity the sweep visits.
const SWEEP_FRACS: &[f64] = &[0.25, 0.5, 0.75, 1.0, 1.25];

/// Options for one benchmark run.
pub struct ServeBenchOptions {
    /// Toy scale, no timing fields, byte-identical across thread counts.
    pub smoke: bool,
    /// Executor fan-out width for the shard map and each shard's wave
    /// planner (results are bit-identical for any value).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Shard count (`--shards`); the `DEX_SERVE_SHARDS` knob overrides.
    pub shards: usize,
    /// Ingestion-queue bound (`--queue-cap`); `DEX_SERVE_QUEUE_CAP`
    /// overrides.
    pub queue_cap: usize,
}

impl Default for ServeBenchOptions {
    fn default() -> Self {
        ServeBenchOptions {
            smoke: false,
            threads: 1,
            seed: 0x5e7e,
            shards: 4,
            queue_cap: 4096,
        }
    }
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {:.4}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        s.count, s.mean, s.p50, s.p95, s.p99, s.p999, s.max
    )
}

/// Sanity every run must satisfy regardless of scale or load.
fn check_report(r: &ServeReport, offered_ops: usize, what: &str) {
    assert_eq!(
        r.served + r.shed,
        offered_ops as u64,
        "{what}: accounting must close"
    );
    assert_eq!(
        r.latency.count as u64, r.served,
        "{what}: one latency sample per served op"
    );
    for sr in &r.shards {
        assert_eq!(
            sr.mismatches, 0,
            "{what}: shard {} DHT oracle mismatch",
            sr.shard
        );
    }
}

/// Run the benchmark; returns the `BENCH_serve.json` contents.
pub fn run_serve_bench(opts: &ServeBenchOptions) -> String {
    let shards = knobs::serve_shards().unwrap_or(opts.shards);
    let queue_cap = knobs::serve_queue_cap().unwrap_or(opts.queue_cap);
    // Full scale: 4 × 250k = n≈1M aggregate. Smoke: CI-sized.
    let (n0, cal_ops, point_ops, batch_max) = if opts.smoke {
        (48, 192, 320, 16)
    } else {
        (250_000, 4_096, 16_384, 64)
    };
    let base = ServeOptions {
        shards,
        n0,
        ops: point_ops,
        offered: 1.0,
        arrivals: Arrivals::Poisson,
        read_pct: 60,
        churn_pct: 20,
        keyspace: 1 << 24,
        queue_cap,
        batch_max,
        seed: opts.seed,
        threads: opts.threads,
        heal_threads: opts.threads.max(1),
    };

    // Stage 1: closed-loop capacity calibration (virtual time only).
    let cal = dex::workload::run_serve(&ServeOptions {
        arrivals: Arrivals::Burst,
        queue_cap: usize::MAX,
        ops: cal_ops,
        ..base
    });
    check_report(&cal, cal_ops, "calibration");
    let capacity = if cal.makespan == 0 {
        1.0
    } else {
        cal.served as f64 / cal.makespan as f64
    };

    // Stage 2: offered-load sweep.
    struct Point {
        frac: f64,
        report: ServeReport,
        wall_s: f64,
    }
    let points: Vec<Point> = SWEEP_FRACS
        .iter()
        .map(|&frac| {
            let t0 = Instant::now();
            let report = dex::workload::run_serve(&ServeOptions {
                offered: capacity * frac,
                ..base
            });
            let wall_s = t0.elapsed().as_secs_f64();
            check_report(&report, point_ops, "sweep");
            Point {
                frac,
                report,
                wall_s,
            }
        })
        .collect();

    // Human-readable table.
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let r = &p.report;
            vec![
                format!("{:.2}x", p.frac),
                format!("{:.3}", capacity * p.frac),
                format!("{:.3}", r.ops_per_round),
                format!("{}", r.shed),
                format!("{}", r.latency.p50),
                format!("{}", r.latency.p99),
                format!("{}", r.latency.p999),
                if opts.smoke {
                    "-".into()
                } else {
                    format!("{:.0}", r.served as f64 / p.wall_s.max(1e-9))
                },
            ]
        })
        .collect();
    crate::print_table(
        &format!(
            "serve: {} shards x n0={} (capacity {:.3} ops/round)",
            shards, n0, capacity
        ),
        &[
            "load", "offered", "ops/rnd", "shed", "p50", "p99", "p999", "ops/s",
        ],
        &rows,
    );

    // JSON assembly.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{\"smoke\": {}, \"seed\": {}, \"shards\": {}, \"n0_per_shard\": {}, \"aggregate_n0\": {}, \"queue_cap\": {}, \"batch_max\": {}, \"read_pct\": 60, \"churn_pct\": 20}},",
        opts.smoke,
        opts.seed,
        shards,
        n0,
        shards as u64 * n0,
        queue_cap,
        batch_max
    );
    let _ = writeln!(json, "  {},", crate::exec_header_json());
    let _ = writeln!(
        json,
        "  \"calibration\": {{\"ops\": {}, \"capacity_ops_per_round\": {:.6}, \"makespan_rounds\": {}, \"batches\": {}, \"digest\": \"0x{:016x}\"}},",
        cal_ops,
        capacity,
        cal.makespan,
        cal.shards.iter().map(|s| s.batches).sum::<u64>(),
        cal.digest
    );
    let _ = writeln!(json, "  \"sweep\": [");
    for (i, p) in points.iter().enumerate() {
        let r = &p.report;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(
            json,
            "      \"offered_frac\": {:.2}, \"offered_ops_per_round\": {:.6},",
            p.frac,
            capacity * p.frac
        );
        let _ = writeln!(
            json,
            "      \"served\": {}, \"shed\": {}, \"leaves_skipped\": {}, \"final_n\": {},",
            r.served,
            r.shed,
            r.shards.iter().map(|s| s.leaves_skipped).sum::<u64>(),
            r.final_n
        );
        let _ = writeln!(
            json,
            "      \"makespan_rounds\": {}, \"ops_per_round\": {:.6}, \"utilization\": {:.4},",
            r.makespan,
            r.ops_per_round,
            r.ops_per_round / capacity
        );
        let _ = writeln!(
            json,
            "      \"batches\": {}, \"batch_peak\": {}, \"queue_peak\": {},",
            r.shards.iter().map(|s| s.batches).sum::<u64>(),
            r.shards.iter().map(|s| s.batch_peak).max().unwrap_or(0),
            r.shards.iter().map(|s| s.queue_peak).max().unwrap_or(0)
        );
        let _ = writeln!(
            json,
            "      \"latency_rounds\": {},",
            summary_json(&r.latency)
        );
        let _ = writeln!(
            json,
            "      \"heal_rounds\": {},",
            summary_json(&r.steps.rounds)
        );
        let _ = writeln!(
            json,
            "      \"heal_messages\": {},",
            summary_json(&r.steps.messages)
        );
        if opts.smoke {
            let _ = writeln!(json, "      \"digest\": \"0x{:016x}\"", r.digest);
        } else {
            // Wall-clock throughput: the only machine-dependent fields,
            // full mode only (smoke output must byte-diff clean).
            let _ = writeln!(json, "      \"digest\": \"0x{:016x}\",", r.digest);
            let _ = writeln!(
                json,
                "      \"wall_s\": {:.3}, \"ops_per_sec\": {:.0}",
                p.wall_s,
                r.served as f64 / p.wall_s.max(1e-9)
            );
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_json_is_thread_invariant_and_shows_the_knee() {
        let a = run_serve_bench(&ServeBenchOptions {
            smoke: true,
            threads: 1,
            ..ServeBenchOptions::default()
        });
        for threads in [3, 8] {
            let b = run_serve_bench(&ServeBenchOptions {
                smoke: true,
                threads,
                ..ServeBenchOptions::default()
            });
            assert_eq!(a, b, "smoke JSON diverged at threads={threads}");
        }
        assert!(a.contains("\"sweep\""));
        assert!(a.contains("\"p999\""));
        assert!(!a.contains("wall_s"), "smoke must omit wall-clock fields");
    }
}
