//! Shared harness for the experiment binaries (`src/bin/*`) and criterion
//! benches: comparable churn schedules, overlay drivers, and plain-text
//! table formatting.
//!
//! Every table and figure of the paper maps to one binary here — see
//! DESIGN.md §4 for the index and EXPERIMENTS.md for recorded outcomes.

use dex::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod alloc;
pub mod batch;
pub mod heal;
pub mod serve;

/// A churn schedule that can be applied identically to different overlays:
/// each entry is (insert?, index into the live node list) — indices rather
/// than ids so the same schedule drives any overlay.
#[derive(Clone)]
pub struct Schedule {
    ops: Vec<(bool, usize)>,
}

impl Schedule {
    /// Random schedule with the given insert probability. Indices are
    /// drawn large and reduced mod the live count at apply time.
    pub fn random(seed: u64, steps: usize, p_insert: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = (0..steps)
            .map(|_| (rng.random_bool(p_insert), rng.random_range(0..usize::MAX)))
            .collect();
        Schedule { ops }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the schedule empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Apply the schedule to an overlay; returns per-step metrics and the
    /// running maximum degree observed. Fresh node ids are allocated above
    /// the overlay's current maximum, so schedules compose with any prior
    /// growth.
    pub fn apply(&self, o: &mut dyn Overlay) -> (Vec<StepMetrics>, usize) {
        let mut next_id = o.node_ids().iter().map(|u| u.0).max().unwrap_or(0) + 1;
        let mut out = Vec::with_capacity(self.ops.len());
        let mut max_deg = 0;
        for &(insert, raw) in &self.ops {
            let live = o.node_ids();
            let idx = raw % live.len();
            let m = if insert || live.len() <= 8 {
                let id = NodeId(next_id);
                next_id += 1;
                o.insert(id, live[idx])
            } else {
                o.delete(live[idx])
            };
            out.push(m);
            max_deg = max_deg.max(o.max_degree());
        }
        (out, max_deg)
    }
}

/// Build the standard overlay lineup at size `n0` (all bootstrapped on
/// ids `0..n0`).
pub fn lineup(seed: u64, n0: u64) -> Vec<Box<dyn Overlay>> {
    vec![
        Box::new(DexNetwork::bootstrap(DexConfig::new(seed).staggered(), n0)),
        Box::new(DexNetwork::bootstrap(DexConfig::new(seed).simplified(), n0)),
        Box::new(LawSiu::bootstrap(seed + 1, n0, 3)),
        Box::new(SkipLite::bootstrap(seed + 2, n0)),
        Box::new(Flooding::bootstrap(seed + 3, n0, 4)),
        Box::new(NaivePatch::bootstrap(seed + 4, n0)),
    ]
}

/// Overlay display name including the type-2 mode for DEX.
pub fn overlay_label(o: &dyn Overlay) -> String {
    o.name().to_string()
}

/// Executor-environment header fragment for every `BENCH_*.json` emitter:
/// the machine's `available_parallelism`, the executor's effective thread
/// budget, and the pool mode. This is what makes flagged Amdahl
/// projections machine-distinguishable from real multi-core measurements
/// when a bench is re-run on a bigger box. Deliberately independent of
/// any `--threads` flag so smoke outputs stay byte-identical across
/// thread sweeps on one machine.
pub fn exec_header_json() -> String {
    format!(
        "\"exec\": {{\"available_parallelism\": {}, \"thread_budget\": {}, \"pool_mode\": \"{}\"}}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        dex::exec::thread_budget(),
        dex::exec::pool_mode()
    )
}

/// Render a plain-text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Compact "p50/p95/max" rendering of a summary.
pub fn sss(s: &Summary) -> String {
    format!("{}/{}/{}", s.p50, s.p95, s.max)
}

/// ⌈log₂ n⌉.
pub fn log2(n: usize) -> u64 {
    (64 - (n.max(2) as u64).leading_zeros() as u64).max(1)
}

/// Grow a DEX network to roughly `target` nodes by pure insertion.
pub fn grow_to(net: &mut DexNetwork, target: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    while net.n() < target {
        let live = net.node_ids();
        let attach = live[rng.random_range(0..live.len())];
        let id = net.fresh_node_id();
        net.insert(id, attach);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_overlay_agnostic_and_deterministic() {
        let sched = Schedule::random(1, 60, 0.5);
        let mut a = DexNetwork::bootstrap(DexConfig::new(2).simplified(), 16);
        let mut b = DexNetwork::bootstrap(DexConfig::new(2).simplified(), 16);
        let (ma, _) = sched.apply(&mut a);
        let (mb, _) = sched.apply(&mut b);
        let ra: Vec<u64> = ma.iter().map(|m| m.rounds).collect();
        let rb: Vec<u64> = mb.iter().map(|m| m.rounds).collect();
        assert_eq!(ra, rb);
        // And it drives baselines too.
        let mut ls = LawSiu::bootstrap(3, 16, 2);
        let (ml, _) = sched.apply(&mut ls);
        assert_eq!(ml.len(), 60);
    }

    #[test]
    fn lineup_contains_all_six() {
        let l = lineup(5, 16);
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn grow_to_reaches_target() {
        let mut net = DexNetwork::bootstrap(DexConfig::new(6).simplified(), 8);
        grow_to(&mut net, 64, 7);
        assert!(net.n() >= 64);
    }
}
