//! Single-network batch-heal benchmark: the parallel wave engine vs the
//! sequential path, at n ∈ {20k, 200k, 1M}. Emits `BENCH_batch.json`.
//! See `dex_bench::batch` for what is measured and the determinism
//! contract.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin bench_batch            # full, up to n≈1M
//! cargo run --release -p dex-bench --bin bench_batch -- --smoke # CI-sized
//! cargo run --release -p dex-bench --bin bench_batch -- --smoke --threads 8
//! ```
//!
//! `--smoke` output is byte-identical for any `--threads` value — CI runs
//! 1/3/8 and diffs the files.

use dex_bench::alloc::{allocated_bytes, CountingAlloc};
use dex_bench::batch::{run_batch_bench, BatchBenchOptions};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let mut opts = BatchBenchOptions {
        alloc_bytes: Some(allocated_bytes),
        ..BatchBenchOptions::default()
    };
    let mut out = String::from("BENCH_batch.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--threads" => {
                opts.threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N");
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--out" => {
                out = it.next().expect("--out FILE");
            }
            other => panic!("unknown flag {other:?} (try --smoke / --threads / --seed / --out)"),
        }
    }
    let json = run_batch_bench(&opts);
    std::fs::write(&out, &json).expect("write BENCH_batch.json");
    println!("wrote {out}");
}
