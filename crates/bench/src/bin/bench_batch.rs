//! Single-network batch-heal benchmark: the parallel wave engine vs the
//! sequential path, at n ∈ {20k, 200k, 1M}. Emits `BENCH_batch.json`.
//! See `dex_bench::batch` for what is measured and the determinism
//! contract.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin bench_batch            # full, up to n≈1M
//! cargo run --release -p dex-bench --bin bench_batch -- --smoke # CI-sized
//! cargo run --release -p dex-bench --bin bench_batch -- --smoke --exec-threads 8
//! cargo run --release -p dex-bench --bin bench_batch -- --type2 --exec-threads 3
//! ```
//!
//! `--smoke` and `--type2` output is byte-identical for any
//! `--exec-threads` value — CI runs 1/3/8 and diffs the files. `--type2`
//! drives a type-2-heavy schedule (batch growth through an inflation,
//! then batch shrink through a deflation) so the pooled rebuild fan-out
//! is exercised and parity-checked. `--threads` is a deprecated alias of
//! `--exec-threads`.

use dex_bench::alloc::{allocated_bytes, CountingAlloc};
use dex_bench::batch::{run_batch_bench, BatchBenchOptions};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let mut opts = BatchBenchOptions {
        alloc_bytes: Some(allocated_bytes),
        ..BatchBenchOptions::default()
    };
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--type2" => opts.type2 = true,
            "--exec-threads" | "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exec-threads N");
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--out" => {
                out = Some(it.next().expect("--out FILE"));
            }
            other => panic!(
                "unknown flag {other:?} (try --smoke / --type2 / --exec-threads / --seed / --out)"
            ),
        }
    }
    let out = out.unwrap_or_else(|| {
        if opts.type2 {
            "BENCH_batch_type2.json".into()
        } else {
            "BENCH_batch.json".into()
        }
    });
    let json = run_batch_bench(&opts);
    std::fs::write(&out, &json).expect("write batch bench JSON");
    println!("wrote {out}");
}
