//! **Table 1** — comparison of distributed expander constructions.
//!
//! Reproduces the paper's comparison table empirically: the same churn
//! schedule drives every overlay, and we report the quantities of the
//! paper's columns — expansion guarantee (measured gap after churn), max
//! degree, recovery time (rounds), messages, and topology changes.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin table1
//! ```

use dex::prelude::*;
use dex_bench::{lineup, print_table, sss, Schedule};

fn guarantee(name: &str) -> &'static str {
    match name {
        "dex" => "deterministic",
        "flooding" => "deterministic",
        "law-siu" => "probabilistic",
        "skip-lite" => "w.h.p.",
        "naive-patch" => "none",
        _ => "?",
    }
}

fn main() {
    let n0 = 128u64;
    let steps = 400usize;
    let sched = Schedule::random(0x7ab1e, steps, 0.5);
    println!(
        "Table 1 reproduction: n0 = {n0}, {steps} random churn steps (same schedule for all), θ = 1/64"
    );

    let mut rows = Vec::new();
    let mut first_dex = true;
    for mut o in lineup(1, n0) {
        let (metrics, max_deg) = sched.apply(o.as_mut());
        let rounds = Summary::of(metrics.iter().map(|m| m.rounds));
        let msgs = Summary::of(metrics.iter().map(|m| m.messages));
        let topo = Summary::of(metrics.iter().map(|m| m.topology_changes));
        let gap = o.spectral_gap();
        let label = if o.name() == "dex" {
            let l = if first_dex {
                "dex (staggered)"
            } else {
                "dex (simplified)"
            };
            first_dex = false;
            l.to_string()
        } else {
            o.name().to_string()
        };
        rows.push(vec![
            label,
            guarantee(o.name()).to_string(),
            format!("{:.4}", gap),
            format!("{max_deg}"),
            sss(&rounds),
            sss(&msgs),
            sss(&topo),
        ]);
    }
    print_table(
        "Table 1: expansion / degree / recovery cost per insertion-deletion",
        &[
            "algorithm",
            "guarantee",
            "gap@end",
            "maxdeg",
            "rounds p50/p95/max",
            "msgs p50/p95/max",
            "topoΔ p50/p95/max",
        ],
        &rows,
    );
    println!(
        "\npaper's qualitative claims to check: dex has O(1) degree and O(log n) \
         rounds & messages;\nskip graphs pay O(log n) degree and O(log² n) messages; \
         flooding pays Θ(n) messages;\nnaive patching has no guarantees at all."
    );
}
