//! **E6 / Sect. 5, Corollary 2** — batch churn: εn insertions or
//! deletions per step.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_batch
//! ```

use dex::prelude::*;
use dex_bench::{grow_to, print_table, sss};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E6: batch insertions/deletions per step (simplified mode, Cor. 2)");
    let mut rows = Vec::new();
    for batch in [1usize, 4, 16, 64] {
        let mut net = DexNetwork::bootstrap(DexConfig::new(31).simplified(), 64);
        grow_to(&mut net, 256, 32);
        let mut rng = StdRng::seed_from_u64(33);
        let mut ids = IdAllocator::new();
        let mut ins_ms = Vec::new();
        let mut del_ms = Vec::new();
        for round in 0..20 {
            if round % 2 == 0 {
                let live = net.node_ids();
                let joins: Vec<(NodeId, NodeId)> = (0..batch)
                    .map(|_| (ids.fresh(), live[rng.random_range(0..live.len())]))
                    .collect();
                // Respect the O(1) fan-in condition by deduplicating
                // attach points when the batch is large. FxHashMap for
                // consistency with the deterministic crates (entry-only
                // access here, but no reason to touch RandomState).
                let mut seen = dex::graph::fxhash::FxHashMap::<NodeId, usize>::default();
                let joins: Vec<(NodeId, NodeId)> = joins
                    .into_iter()
                    .map(|(id, v)| {
                        let c = seen.entry(v).or_insert(0usize);
                        *c += 1;
                        if *c > 8 {
                            let live = net.node_ids();
                            (id, live[rng.random_range(0..live.len())])
                        } else {
                            (id, v)
                        }
                    })
                    .collect();
                let m = net.insert_batch(&joins);
                ins_ms.push(m.messages);
            } else {
                let live = net.node_ids();
                let mut victims: Vec<NodeId> = Vec::new();
                while victims.len() < batch && victims.len() + 8 < live.len() {
                    let v = live[rng.random_range(0..live.len())];
                    if !victims.contains(&v) {
                        victims.push(v);
                    }
                }
                let m = net.delete_batch(&victims);
                del_ms.push(m.messages);
            }
            invariants::assert_ok(&net);
        }
        rows.push(vec![
            format!("{batch}"),
            format!("{}", net.n()),
            sss(&Summary::of(ins_ms.iter().copied())),
            sss(&Summary::of(del_ms.iter().copied())),
        ]);
    }
    print_table(
        "messages per batch step",
        &[
            "batch size",
            "n@end",
            "insert-batch p50/p95/max",
            "delete-batch p50/p95/max",
        ],
        &rows,
    );
    println!("\nexpected: cost grows ~linearly in the batch size (k·log n), well below k·n.");
}
