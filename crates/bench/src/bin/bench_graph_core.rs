//! Graph-core before/after benchmark: emits `BENCH_graph_core.json`.
//!
//! Reproduces the experiment loop the arena/snapshot refactor targets —
//! "mutate the multigraph, then re-measure" — and times the seed
//! implementation's path against the new engine on the same workload:
//!
//! * **λ₂ under churn** (n ≈ 20k): per epoch, a few edges churn, then λ₂
//!   is measured. Seed path = from-scratch CSR rebuild
//!   ([`MultiGraph::to_csr`]) + cold-start power iteration; new path =
//!   cached incremental snapshot ([`MultiGraph::csr`]) + warm-started
//!   [`Lambda2Solver`].
//! * **walk throughput**: seed path = per-hop id-space neighbor lookup
//!   (one hash probe per hop, as the seed's `FxHashMap` adjacency did);
//!   new path = slot-space walking ([`MultiGraph::walk_slots`]).
//! * **memory-level-parallel kernels** (`kernels` section): per-hop ns for
//!   scalar vs K-way interleaved walk batches and per-row ns for scalar vs
//!   blocked SpMV, at n ∈ {20k, 200k, 1M} — the single-core
//!   latency-hiding payoff, with pipeline occupancy as an observability
//!   stat. Outputs are asserted bit-identical between the paths before any
//!   timing is reported.
//!
//! Run with `cargo run --release -p dex-bench --bin bench_graph_core`.
//! `--smoke` emits only deterministic digests (no timings, no occupancy),
//! byte-identical for any `DEX_MLP_KERNELS` / `DEX_WALK_K` /
//! `DEX_EXEC_THREADS` setting — CI diffs the engine forced on vs off.
//! `--out FILE` overrides the output path.

use dex::graph::walks::{walk_endpoints_interleaved, SlotWalkJob};
use dex::graph::{par, spectral};
use dex::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const P: u64 = 20011; // prime ⇒ n = 20011 ≈ 20k nodes, 3-regular
const EPOCHS: usize = 12;
const CHURN_PER_EPOCH: usize = 4;
const MAX_ITERS: usize = 6000;
const TOL: f64 = 1e-10;

fn churn_edges(g: &mut MultiGraph, rng: &mut StdRng) {
    for _ in 0..CHURN_PER_EPOCH {
        let a = NodeId(rng.random_range(0..P));
        let b = NodeId(rng.random_range(0..P));
        if g.contains_edge(a, b) && g.degree(a) > 1 && g.degree(b) > 1 {
            g.remove_edge(a, b);
        } else {
            g.add_edge(a, b);
        }
    }
}

struct Lambda2Outcome {
    total_s: f64,
    last_lambda: f64,
}

// ---------------------------------------------------------------------
// Faithful copy of the SEED implementation's measurement path (the code
// this PR replaced): from-scratch CSR rebuild per call, cold random start,
// drift-based stopping. Kept verbatim here so the "before" timing is the
// seed's actual algorithm, not an emulation.
// ---------------------------------------------------------------------

fn seed_apply_lazy(csr: &dex::graph::Csr, x: &[f64], y: &mut [f64]) {
    for i in 0..csr.n() {
        let deg = csr.degree(i);
        let mut acc = 0.0;
        for &j in csr.row(i) {
            acc += x[j as usize];
        }
        y[i] = 0.5 * x[i] + 0.5 * acc / deg as f64;
    }
}

fn seed_deflate_top(pi: &[f64], x: &mut [f64]) {
    let num: f64 = pi.iter().zip(x.iter()).map(|(p, v)| p * v).sum();
    for v in x.iter_mut() {
        *v -= num;
    }
}

fn seed_pi_norm(pi: &[f64], x: &[f64]) -> f64 {
    pi.iter()
        .zip(x.iter())
        .map(|(p, v)| p * v * v)
        .sum::<f64>()
        .sqrt()
}

fn seed_power_lambda2(g: &MultiGraph, max_iters: usize, tol: f64, seed: u64) -> f64 {
    let csr = g.to_csr(); // the seed's per-call rebuild
    let n = csr.n();
    let deg_sum: f64 = (0..n).map(|i| csr.degree(i) as f64).sum();
    let pi: Vec<f64> = (0..n).map(|i| csr.degree(i) as f64 / deg_sum).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    seed_deflate_top(&pi, &mut x);
    let norm = seed_pi_norm(&pi, &x);
    for v in x.iter_mut() {
        *v /= norm;
    }
    let mut y = vec![0.0f64; n];
    let mut prev = f64::NAN;
    for it in 0..max_iters {
        seed_apply_lazy(&csr, &x, &mut y);
        seed_deflate_top(&pi, &mut y);
        let rq: f64 = pi
            .iter()
            .zip(x.iter().zip(y.iter()))
            .map(|(p, (xv, yv))| p * xv * yv)
            .sum();
        let norm = seed_pi_norm(&pi, &y);
        if norm < 1e-300 {
            return 0.0;
        }
        for (xv, yv) in x.iter_mut().zip(y.iter()) {
            *xv = yv / norm;
        }
        if it > 16 && (rq - prev).abs() < tol {
            return (2.0 * rq - 1.0).clamp(-1.0, 1.0);
        }
        prev = rq;
    }
    (2.0 * prev - 1.0).clamp(-1.0, 1.0)
}

/// Seed path: every measurement rebuilds the CSR from scratch and runs the
/// seed's cold-start drift-stopped power iteration.
fn lambda2_seed_path(mut g: MultiGraph, seed: u64) -> Lambda2Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut last = 0.0;
    let t0 = Instant::now();
    for _ in 0..EPOCHS {
        churn_edges(&mut g, &mut rng);
        last = seed_power_lambda2(&g, MAX_ITERS, TOL, 0xdecafbad);
    }
    Lambda2Outcome {
        total_s: t0.elapsed().as_secs_f64(),
        last_lambda: last,
    }
}

/// New path: the graph's cached snapshot refreshes dirty rows only, and a
/// persistent solver warm-starts from the previous eigenvector.
fn lambda2_cached_path(mut g: MultiGraph, seed: u64) -> Lambda2Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut solver = Lambda2Solver::new();
    let mut last = 0.0;
    let t0 = Instant::now();
    for _ in 0..EPOCHS {
        churn_edges(&mut g, &mut rng);
        last = solver.lambda2(&g, MAX_ITERS, TOL, 0xdecafbad);
    }
    Lambda2Outcome {
        total_s: t0.elapsed().as_secs_f64(),
        last_lambda: last,
    }
}

/// Seed-path walk: one id→slot hash probe per hop (the seed's
/// `FxHashMap<NodeId, Vec<NodeId>>` adjacency did exactly one hash probe
/// per `neighbors()` call).
fn walk_seed_path(g: &MultiGraph, hops: usize, seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = NodeId(0);
    let mut acc = 0u64;
    let t0 = Instant::now();
    for _ in 0..hops {
        let nbrs = g.neighbors(cur);
        cur = nbrs.at(rng.random_range(0..nbrs.len()));
        acc = acc.wrapping_add(cur.0);
    }
    (t0.elapsed().as_secs_f64(), acc)
}

/// Slot-space walk: two array reads per hop, ids resolved once.
fn walk_slot_path(g: &MultiGraph, hops: usize, seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let slot = g.slot_of(NodeId(0)).unwrap();
    let end = g.walk_slots(slot, hops, &mut rng);
    let elapsed = t0.elapsed().as_secs_f64();
    (elapsed, g.id_of_slot(end).0)
}

// ---------------------------------------------------------------------
// Memory-level-parallel kernels (PR 6): scalar vs K-way walks, scalar vs
// blocked SpMV. Timed single-core (threads = 1) so the numbers isolate
// the latency-hiding effect the pool then multiplies.
// ---------------------------------------------------------------------

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over a u64 stream — the deterministic digest CI byte-diffs.
fn fnv1a(acc: u64, v: u64) -> u64 {
    let mut h = acc;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn median3(mut v: [f64; 3]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[1]
}

/// Deterministic batch of fixed-length walk jobs with starts scattered
/// over the whole arena (golden-ratio stride ⇒ DRAM-resident at large n).
fn kernel_jobs(g: &MultiGraph, n: u64, jobs: usize, len: usize) -> Vec<SlotWalkJob> {
    (0..jobs)
        .map(|i| SlotWalkJob {
            start: g
                .slot_of(NodeId((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) % n))
                .unwrap(),
            len,
            seed: 0x5eed_c0de ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d),
        })
        .collect()
}

/// Scalar reference: one `walk_slots` per job, endpoints into `out`.
fn scalar_walk_batch(g: &MultiGraph, jobs: &[SlotWalkJob], out: &mut [u32]) {
    for (j, slot) in jobs.iter().zip(out.iter_mut()) {
        let mut rng = StdRng::seed_from_u64(j.seed);
        *slot = g.walk_slots(j.start, j.len, &mut rng);
    }
}

struct WalkKernelRow {
    n: u64,
    jobs: usize,
    len: usize,
    scalar_ns_per_hop: f64,
    kway_ns_per_hop: f64,
    mean_in_flight: f64,
}

fn kernel_walks(g: &MultiGraph, n: u64, njobs: usize, len: usize) -> WalkKernelRow {
    let jobs = kernel_jobs(g, n, njobs, len);
    let hops = (njobs * len) as f64;
    let k = par::walk_pipeline_k();
    let mut scalar_out = vec![0u32; njobs];
    let mut kway_out = vec![0u32; njobs];
    // Bit-identity first, then timing: a fast wrong kernel is worthless.
    scalar_walk_batch(g, &jobs, &mut scalar_out);
    let stats = walk_endpoints_interleaved(g, &jobs, k, &mut kway_out);
    assert_eq!(scalar_out, kway_out, "K-way endpoints diverged at n={n}");
    let mut t_scalar = [0.0f64; 3];
    let mut t_kway = [0.0f64; 3];
    for rep in 0..3 {
        let t0 = Instant::now();
        scalar_walk_batch(g, &jobs, &mut scalar_out);
        t_scalar[rep] = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        walk_endpoints_interleaved(g, &jobs, k, &mut kway_out);
        t_kway[rep] = t0.elapsed().as_secs_f64();
    }
    std::hint::black_box((&scalar_out, &kway_out));
    WalkKernelRow {
        n,
        jobs: njobs,
        len,
        scalar_ns_per_hop: median3(t_scalar) * 1e9 / hops,
        kway_ns_per_hop: median3(t_kway) * 1e9 / hops,
        mean_in_flight: stats.mean_in_flight(),
    }
}

struct SpmvKernelRow {
    n: u64,
    scalar_ns_per_row: f64,
    blocked_ns_per_row: f64,
}

fn kernel_spmv(g: &MultiGraph, n: u64) -> SpmvKernelRow {
    let csr = g.csr();
    let rows = csr.n();
    let x: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.618).sin()).collect();
    let mut y_scalar = vec![0.0f64; rows];
    let mut y_blocked = vec![0.0f64; rows];
    spectral::lazy_spmv(&csr, &x, &mut y_scalar, 1, 1.0, false);
    spectral::lazy_spmv(&csr, &x, &mut y_blocked, 1, 1.0, true);
    assert!(
        y_scalar
            .iter()
            .zip(&y_blocked)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "blocked SpMV diverged at n={n}"
    );
    let mut t_scalar = [0.0f64; 3];
    let mut t_blocked = [0.0f64; 3];
    for rep in 0..3 {
        let t0 = Instant::now();
        spectral::lazy_spmv(&csr, &x, &mut y_scalar, 1, 1.0, false);
        t_scalar[rep] = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        spectral::lazy_spmv(&csr, &x, &mut y_blocked, 1, 1.0, true);
        t_blocked[rep] = t0.elapsed().as_secs_f64();
    }
    std::hint::black_box((&y_scalar, &y_blocked));
    SpmvKernelRow {
        n,
        scalar_ns_per_row: median3(t_scalar) * 1e9 / rows as f64,
        blocked_ns_per_row: median3(t_blocked) * 1e9 / rows as f64,
    }
}

/// The three kernel scales: cache-resident, cache-straddling, and
/// DRAM-resident arenas. All primes (p-cycle sizes).
const KERNEL_SIZES: [(u64, &str, usize, usize); 3] = [
    (20_011, "cache_resident", 4096, 64),
    (200_003, "cache_straddling", 4096, 128),
    (1_000_003, "dram_resident", 8192, 128),
];

fn kernels_json() -> String {
    let mut json = String::new();
    let _ = writeln!(json, "  \"kernels\": {{");
    let _ = writeln!(json, "    \"walk_k\": {},", par::walk_pipeline_k());
    let _ = writeln!(
        json,
        "    \"note\": \"single-core (threads=1); medians of 3 reps on a \
         1-CPU container (~±20% noise); the MLP win is the per-hop/per-row \
         ns *trend vs n* — flat scalar-vs-kway at cache_resident n is \
         expected, the gap must open in the DRAM regime\","
    );
    let mut walks = Vec::new();
    let mut spmvs = Vec::new();
    for (n, regime, njobs, len) in KERNEL_SIZES {
        let g = PCycle::new(n).to_multigraph();
        let w = kernel_walks(&g, n, njobs, len);
        println!(
            "kernels n={n} ({regime}): walks scalar {:.1} ns/hop, K-way {:.1} ns/hop ({:.2}x, occupancy {:.2})",
            w.scalar_ns_per_hop,
            w.kway_ns_per_hop,
            w.scalar_ns_per_hop / w.kway_ns_per_hop,
            w.mean_in_flight
        );
        let s = kernel_spmv(&g, n);
        println!(
            "kernels n={n} ({regime}): spmv scalar {:.1} ns/row, blocked {:.1} ns/row ({:.2}x)",
            s.scalar_ns_per_row,
            s.blocked_ns_per_row,
            s.scalar_ns_per_row / s.blocked_ns_per_row
        );
        walks.push((regime, w));
        spmvs.push((regime, s));
    }
    let _ = writeln!(json, "    \"walks\": [");
    for (i, (regime, w)) in walks.iter().enumerate() {
        let comma = if i + 1 < walks.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"regime\": \"{}\", \"jobs\": {}, \"hops_per_job\": {}, \
             \"scalar_ns_per_hop\": {:.2}, \"kway_ns_per_hop\": {:.2}, \
             \"speedup\": {:.2}, \"mean_in_flight\": {:.2}}}{}",
            w.n,
            regime,
            w.jobs,
            w.len,
            w.scalar_ns_per_hop,
            w.kway_ns_per_hop,
            w.scalar_ns_per_hop / w.kway_ns_per_hop,
            w.mean_in_flight,
            comma
        );
    }
    let _ = writeln!(json, "    ],");
    let _ = writeln!(json, "    \"spmv\": [");
    for (i, (regime, s)) in spmvs.iter().enumerate() {
        let comma = if i + 1 < spmvs.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"n\": {}, \"regime\": \"{}\", \"scalar_ns_per_row\": {:.2}, \
             \"blocked_ns_per_row\": {:.2}, \"speedup\": {:.2}}}{}",
            s.n,
            regime,
            s.scalar_ns_per_row,
            s.blocked_ns_per_row,
            s.scalar_ns_per_row / s.blocked_ns_per_row,
            comma
        );
    }
    let _ = writeln!(json, "    ]");
    let _ = write!(json, "  }}");
    json
}

// ---------------------------------------------------------------------
// Smoke mode: deterministic digests only — no timings, no occupancy —
// byte-identical for any DEX_MLP_KERNELS / DEX_WALK_K / DEX_EXEC_THREADS
// setting. CI runs it with the engine forced on and off and diffs.
// ---------------------------------------------------------------------

fn run_smoke(base: &MultiGraph) -> String {
    // Walk endpoints: scalar and K-way must agree in-process, and the
    // digest of either must not depend on the engine knobs.
    let jobs = kernel_jobs(base, P, 512, 64);
    let mut scalar_out = vec![0u32; jobs.len()];
    let mut kway_out = vec![0u32; jobs.len()];
    scalar_walk_batch(base, &jobs, &mut scalar_out);
    walk_endpoints_interleaved(base, &jobs, par::walk_pipeline_k(), &mut kway_out);
    assert_eq!(scalar_out, kway_out, "smoke: K-way endpoints diverged");
    let walk_fnv = scalar_out
        .iter()
        .fold(FNV_SEED, |h, &s| fnv1a(h, base.id_of_slot(s).0));

    // SpMV: both kernels bitwise, digest of the env-selected path.
    let csr = base.csr();
    let rows = csr.n();
    let x: Vec<f64> = (0..rows).map(|i| (i as f64 * 0.618).sin()).collect();
    let mut y_scalar = vec![0.0f64; rows];
    let mut y_blocked = vec![0.0f64; rows];
    spectral::lazy_spmv(&csr, &x, &mut y_scalar, 1, -1.0, false);
    spectral::lazy_spmv(&csr, &x, &mut y_blocked, 1, -1.0, true);
    assert!(
        y_scalar
            .iter()
            .zip(&y_blocked)
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "smoke: blocked SpMV diverged"
    );
    let spmv_fnv = y_scalar.iter().fold(FNV_SEED, |h, v| fnv1a(h, v.to_bits()));

    // λ₂ through the solver's dispatch (fused MLP path when enabled):
    // the eigenvalue bits must not depend on the knob.
    let mut g = base.clone();
    let mut rng = StdRng::seed_from_u64(99);
    let mut solver = Lambda2Solver::new();
    let mut last = 0.0;
    for _ in 0..3 {
        churn_edges(&mut g, &mut rng);
        last = solver.lambda2(&g, 600, TOL, 0xdecafbad);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"graph\": {{\"n\": {}, \"m\": {}, \"family\": \"pcycle\"}},",
        base.num_nodes(),
        base.num_edges()
    );
    let _ = writeln!(json, "  {},", dex_bench::exec_header_json());
    let _ = writeln!(json, "  \"digests\": {{");
    let _ = writeln!(json, "    \"walk_endpoints_fnv\": \"{walk_fnv:#018x}\",");
    let _ = writeln!(json, "    \"spmv_y_fnv\": \"{spmv_fnv:#018x}\",");
    let _ = writeln!(json, "    \"lambda2_bits\": \"{:#018x}\"", last.to_bits());
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    json
}

fn run_full(base: &MultiGraph) -> String {
    // λ₂ under churn — identical churn stream for both paths.
    let seed_out = lambda2_seed_path(base.clone(), 99);
    println!(
        "lambda2 seed path:   {:.3} s over {EPOCHS} epochs (λ₂ = {:.6})",
        seed_out.total_s, seed_out.last_lambda
    );
    let cached_out = lambda2_cached_path(base.clone(), 99);
    println!(
        "lambda2 cached path: {:.3} s over {EPOCHS} epochs (λ₂ = {:.6})",
        cached_out.total_s, cached_out.last_lambda
    );
    let lambda_speedup = seed_out.total_s / cached_out.total_s;
    println!("lambda2 speedup: {lambda_speedup:.2}x");
    assert!(
        (seed_out.last_lambda - cached_out.last_lambda).abs() < 1e-4,
        "paths disagree: {} vs {}",
        seed_out.last_lambda,
        cached_out.last_lambda
    );

    // Walk throughput.
    let hops = 4_000_000usize;
    let (t_id, sink_a) = walk_seed_path(base, hops, 7);
    let (t_slot, sink_b) = walk_slot_path(base, hops, 7);
    std::hint::black_box((sink_a, sink_b));
    let id_mhps = hops as f64 / t_id / 1e6;
    let slot_mhps = hops as f64 / t_slot / 1e6;
    println!("walks: id-space {id_mhps:.2} Mhops/s, slot-space {slot_mhps:.2} Mhops/s");

    let kernels = kernels_json();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"graph\": {{\"n\": {}, \"m\": {}, \"family\": \"pcycle\"}},",
        base.num_nodes(),
        base.num_edges()
    );
    let _ = writeln!(json, "  {},", dex_bench::exec_header_json());
    let _ = writeln!(json, "  \"lambda2_under_churn\": {{");
    let _ = writeln!(json, "    \"epochs\": {EPOCHS},");
    let _ = writeln!(json, "    \"edge_churn_per_epoch\": {CHURN_PER_EPOCH},");
    let _ = writeln!(
        json,
        "    \"seed_rebuild_per_call_s\": {:.4},",
        seed_out.total_s
    );
    let _ = writeln!(
        json,
        "    \"cached_warm_start_s\": {:.4},",
        cached_out.total_s
    );
    let _ = writeln!(json, "    \"speedup\": {lambda_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"walk_throughput\": {{");
    let _ = writeln!(json, "    \"hops\": {hops},");
    let _ = writeln!(json, "    \"seed_id_space_mhops_per_s\": {id_mhps:.2},");
    let _ = writeln!(json, "    \"slot_space_mhops_per_s\": {slot_mhps:.2},");
    let _ = writeln!(json, "    \"speedup\": {:.2}", slot_mhps / id_mhps);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "{kernels}");
    let _ = writeln!(json, "}}");
    json
}

fn main() {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(it.next().expect("--out FILE")),
            other => panic!("unknown flag {other:?} (try --smoke / --out)"),
        }
    }
    let out = out.unwrap_or_else(|| "BENCH_graph_core.json".into());
    let base = PCycle::new(P).to_multigraph();
    println!("graph: n={} m={}", base.num_nodes(), base.num_edges());
    let json = if smoke {
        run_smoke(&base)
    } else {
        run_full(&base)
    };
    std::fs::write(&out, &json).expect("write graph-core bench JSON");
    println!("wrote {out}");
}
