//! Graph-core before/after benchmark: emits `BENCH_graph_core.json`.
//!
//! Reproduces the experiment loop the arena/snapshot refactor targets —
//! "mutate the multigraph, then re-measure" — and times the seed
//! implementation's path against the new engine on the same workload:
//!
//! * **λ₂ under churn** (n ≈ 20k): per epoch, a few edges churn, then λ₂
//!   is measured. Seed path = from-scratch CSR rebuild
//!   ([`MultiGraph::to_csr`]) + cold-start power iteration; new path =
//!   cached incremental snapshot ([`MultiGraph::csr`]) + warm-started
//!   [`Lambda2Solver`].
//! * **walk throughput**: seed path = per-hop id-space neighbor lookup
//!   (one hash probe per hop, as the seed's `FxHashMap` adjacency did);
//!   new path = slot-space walking ([`MultiGraph::walk_slots`]).
//!
//! Run with `cargo run --release -p dex-bench --bin bench_graph_core`.

use dex::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

const P: u64 = 20011; // prime ⇒ n = 20011 ≈ 20k nodes, 3-regular
const EPOCHS: usize = 12;
const CHURN_PER_EPOCH: usize = 4;
const MAX_ITERS: usize = 6000;
const TOL: f64 = 1e-10;

fn churn_edges(g: &mut MultiGraph, rng: &mut StdRng) {
    for _ in 0..CHURN_PER_EPOCH {
        let a = NodeId(rng.random_range(0..P));
        let b = NodeId(rng.random_range(0..P));
        if g.contains_edge(a, b) && g.degree(a) > 1 && g.degree(b) > 1 {
            g.remove_edge(a, b);
        } else {
            g.add_edge(a, b);
        }
    }
}

struct Lambda2Outcome {
    total_s: f64,
    last_lambda: f64,
}

// ---------------------------------------------------------------------
// Faithful copy of the SEED implementation's measurement path (the code
// this PR replaced): from-scratch CSR rebuild per call, cold random start,
// drift-based stopping. Kept verbatim here so the "before" timing is the
// seed's actual algorithm, not an emulation.
// ---------------------------------------------------------------------

fn seed_apply_lazy(csr: &dex::graph::Csr, x: &[f64], y: &mut [f64]) {
    for i in 0..csr.n() {
        let deg = csr.degree(i);
        let mut acc = 0.0;
        for &j in csr.row(i) {
            acc += x[j as usize];
        }
        y[i] = 0.5 * x[i] + 0.5 * acc / deg as f64;
    }
}

fn seed_deflate_top(pi: &[f64], x: &mut [f64]) {
    let num: f64 = pi.iter().zip(x.iter()).map(|(p, v)| p * v).sum();
    for v in x.iter_mut() {
        *v -= num;
    }
}

fn seed_pi_norm(pi: &[f64], x: &[f64]) -> f64 {
    pi.iter()
        .zip(x.iter())
        .map(|(p, v)| p * v * v)
        .sum::<f64>()
        .sqrt()
}

fn seed_power_lambda2(g: &MultiGraph, max_iters: usize, tol: f64, seed: u64) -> f64 {
    let csr = g.to_csr(); // the seed's per-call rebuild
    let n = csr.n();
    let deg_sum: f64 = (0..n).map(|i| csr.degree(i) as f64).sum();
    let pi: Vec<f64> = (0..n).map(|i| csr.degree(i) as f64 / deg_sum).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    seed_deflate_top(&pi, &mut x);
    let norm = seed_pi_norm(&pi, &x);
    for v in x.iter_mut() {
        *v /= norm;
    }
    let mut y = vec![0.0f64; n];
    let mut prev = f64::NAN;
    for it in 0..max_iters {
        seed_apply_lazy(&csr, &x, &mut y);
        seed_deflate_top(&pi, &mut y);
        let rq: f64 = pi
            .iter()
            .zip(x.iter().zip(y.iter()))
            .map(|(p, (xv, yv))| p * xv * yv)
            .sum();
        let norm = seed_pi_norm(&pi, &y);
        if norm < 1e-300 {
            return 0.0;
        }
        for (xv, yv) in x.iter_mut().zip(y.iter()) {
            *xv = yv / norm;
        }
        if it > 16 && (rq - prev).abs() < tol {
            return (2.0 * rq - 1.0).clamp(-1.0, 1.0);
        }
        prev = rq;
    }
    (2.0 * prev - 1.0).clamp(-1.0, 1.0)
}

/// Seed path: every measurement rebuilds the CSR from scratch and runs the
/// seed's cold-start drift-stopped power iteration.
fn lambda2_seed_path(mut g: MultiGraph, seed: u64) -> Lambda2Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut last = 0.0;
    let t0 = Instant::now();
    for _ in 0..EPOCHS {
        churn_edges(&mut g, &mut rng);
        last = seed_power_lambda2(&g, MAX_ITERS, TOL, 0xdecafbad);
    }
    Lambda2Outcome {
        total_s: t0.elapsed().as_secs_f64(),
        last_lambda: last,
    }
}

/// New path: the graph's cached snapshot refreshes dirty rows only, and a
/// persistent solver warm-starts from the previous eigenvector.
fn lambda2_cached_path(mut g: MultiGraph, seed: u64) -> Lambda2Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut solver = Lambda2Solver::new();
    let mut last = 0.0;
    let t0 = Instant::now();
    for _ in 0..EPOCHS {
        churn_edges(&mut g, &mut rng);
        last = solver.lambda2(&g, MAX_ITERS, TOL, 0xdecafbad);
    }
    Lambda2Outcome {
        total_s: t0.elapsed().as_secs_f64(),
        last_lambda: last,
    }
}

/// Seed-path walk: one id→slot hash probe per hop (the seed's
/// `FxHashMap<NodeId, Vec<NodeId>>` adjacency did exactly one hash probe
/// per `neighbors()` call).
fn walk_seed_path(g: &MultiGraph, hops: usize, seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = NodeId(0);
    let mut acc = 0u64;
    let t0 = Instant::now();
    for _ in 0..hops {
        let nbrs = g.neighbors(cur);
        cur = nbrs.at(rng.random_range(0..nbrs.len()));
        acc = acc.wrapping_add(cur.0);
    }
    (t0.elapsed().as_secs_f64(), acc)
}

/// Slot-space walk: two array reads per hop, ids resolved once.
fn walk_slot_path(g: &MultiGraph, hops: usize, seed: u64) -> (f64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let slot = g.slot_of(NodeId(0)).unwrap();
    let end = g.walk_slots(slot, hops, &mut rng);
    let elapsed = t0.elapsed().as_secs_f64();
    (elapsed, g.id_of_slot(end).0)
}

fn main() {
    let base = PCycle::new(P).to_multigraph();
    println!("graph: n={} m={}", base.num_nodes(), base.num_edges());

    // λ₂ under churn — identical churn stream for both paths.
    let seed_out = lambda2_seed_path(base.clone(), 99);
    println!(
        "lambda2 seed path:   {:.3} s over {EPOCHS} epochs (λ₂ = {:.6})",
        seed_out.total_s, seed_out.last_lambda
    );
    let cached_out = lambda2_cached_path(base.clone(), 99);
    println!(
        "lambda2 cached path: {:.3} s over {EPOCHS} epochs (λ₂ = {:.6})",
        cached_out.total_s, cached_out.last_lambda
    );
    let lambda_speedup = seed_out.total_s / cached_out.total_s;
    println!("lambda2 speedup: {lambda_speedup:.2}x");
    assert!(
        (seed_out.last_lambda - cached_out.last_lambda).abs() < 1e-4,
        "paths disagree: {} vs {}",
        seed_out.last_lambda,
        cached_out.last_lambda
    );

    // Walk throughput.
    let hops = 4_000_000usize;
    let (t_id, sink_a) = walk_seed_path(&base, hops, 7);
    let (t_slot, sink_b) = walk_slot_path(&base, hops, 7);
    std::hint::black_box((sink_a, sink_b));
    let id_mhps = hops as f64 / t_id / 1e6;
    let slot_mhps = hops as f64 / t_slot / 1e6;
    println!("walks: id-space {id_mhps:.2} Mhops/s, slot-space {slot_mhps:.2} Mhops/s");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"graph\": {{\"n\": {}, \"m\": {}, \"family\": \"pcycle\"}},",
        base.num_nodes(),
        base.num_edges()
    );
    let _ = writeln!(json, "  {},", dex_bench::exec_header_json());
    let _ = writeln!(json, "  \"lambda2_under_churn\": {{");
    let _ = writeln!(json, "    \"epochs\": {EPOCHS},");
    let _ = writeln!(json, "    \"edge_churn_per_epoch\": {CHURN_PER_EPOCH},");
    let _ = writeln!(
        json,
        "    \"seed_rebuild_per_call_s\": {:.4},",
        seed_out.total_s
    );
    let _ = writeln!(
        json,
        "    \"cached_warm_start_s\": {:.4},",
        cached_out.total_s
    );
    let _ = writeln!(json, "    \"speedup\": {lambda_speedup:.2}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"walk_throughput\": {{");
    let _ = writeln!(json, "    \"hops\": {hops},");
    let _ = writeln!(json, "    \"seed_id_space_mhops_per_s\": {id_mhps:.2},");
    let _ = writeln!(json, "    \"slot_space_mhops_per_s\": {slot_mhps:.2},");
    let _ = writeln!(json, "    \"speedup\": {:.2}", slot_mhps / id_mhps);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_graph_core.json", &json).expect("write BENCH_graph_core.json");
    println!("wrote BENCH_graph_core.json");
}
