//! Sharded open-loop DHT serving benchmark: capacity calibration plus a
//! latency-vs-offered-load sweep over the `dex::workload::serve` harness
//! at n≈1M aggregate (4 shards × 250k). Emits `BENCH_serve.json`. See
//! `dex_bench::serve` for what is measured and the determinism contract.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin bench_serve            # full, n≈1M
//! cargo run --release -p dex-bench --bin bench_serve -- --smoke # CI-sized
//! cargo run --release -p dex-bench --bin bench_serve -- --smoke --exec-threads 8
//! ```
//!
//! `--smoke` output is byte-identical for any `--exec-threads` value —
//! CI runs 1/3/8 and diffs the files. `--shards` (default 4) and
//! `--queue-cap` (default 4096) size the harness; the `DEX_SERVE_SHARDS`
//! and `DEX_SERVE_QUEUE_CAP` knobs override the flags (experiment
//! inputs, recorded in the config header).

use dex_bench::serve::{run_serve_bench, ServeBenchOptions};

fn main() {
    let mut opts = ServeBenchOptions::default();
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--exec-threads" | "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exec-threads N");
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--shards" => {
                opts.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .expect("--shards S (positive)");
            }
            "--queue-cap" => {
                opts.queue_cap = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&c| c > 0)
                    .expect("--queue-cap N (positive)");
            }
            "--out" => {
                out = Some(it.next().expect("--out FILE"));
            }
            other => {
                panic!(
                    "unknown flag {other:?} (try --smoke / --exec-threads / --seed / --shards / --queue-cap / --out)"
                )
            }
        }
    }
    let out = out.unwrap_or_else(|| "BENCH_serve.json".into());
    let json = run_serve_bench(&opts);
    std::fs::write(&out, &json).expect("write serve bench JSON");
    println!("wrote {out}");
}
