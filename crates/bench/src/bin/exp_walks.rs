//! **E7 / Lemma 2 + Lemma 8** — type-1 walk success rates vs the walk
//! length factor ℓ, and the measured separation between consecutive
//! type-2 events.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_walks
//! ```

use dex::prelude::*;
use dex_bench::{print_table, Schedule};

fn main() {
    println!("E7a: walk hit rate vs length factor ℓ (Lemma 2: succeeds w.h.p. for constant ℓ)");
    let mut rows = Vec::new();
    for ell in [1u64, 2, 3, 4, 6, 8] {
        let cfg = DexConfig::new(41).simplified().with_walk_len_factor(ell);
        let mut net = DexNetwork::bootstrap(cfg, 256);
        let sched = Schedule::random(42, 400, 0.5);
        sched.apply(&mut net);
        let s = net.walk_stats;
        rows.push(vec![
            format!("{ell}"),
            format!("{}", s.attempts),
            format!("{}", s.hits),
            format!("{:.4}", s.hits as f64 / s.attempts.max(1) as f64),
            format!("{}", s.misses),
            format!("{}", s.type2),
        ]);
    }
    print_table(
        "walk statistics (n = 256, 400 steps)",
        &["ℓ", "attempts", "hits", "hit rate", "misses", "type2 fired"],
        &rows,
    );

    println!("\nE7b: separation between consecutive type-2 events (Lemma 8: Ω(n) steps)");
    let mut net = DexNetwork::bootstrap(DexConfig::new(43).simplified(), 16);
    let sched = Schedule::random(44, 6000, 0.8);
    let mut last: Option<(u64, usize)> = None;
    let mut seps: Vec<String> = Vec::new();
    let mut ids = IdAllocator::new();
    for (i, &(insert, raw)) in sched_ops(&sched).iter().enumerate() {
        let live = net.node_ids();
        let idx = raw % live.len();
        let before = net.cycle.p();
        if insert || live.len() <= 8 {
            net.insert(ids.fresh(), live[idx]);
        } else {
            net.delete(live[idx]);
        }
        if net.cycle.p() != before {
            let step = i as u64;
            if let Some((prev, n_at)) = last {
                seps.push(format!(
                    "  p {} → {} after {} steps ({:.2}·n, n was {})",
                    before,
                    net.cycle.p(),
                    step - prev,
                    (step - prev) as f64 / n_at as f64,
                    n_at
                ));
            } else {
                seps.push(format!(
                    "  p {} → {} at step {}",
                    before,
                    net.cycle.p(),
                    step
                ));
            }
            last = Some((step, net.n()));
        }
    }
    for s in &seps {
        println!("{s}");
    }
    println!("\nexpected: hit rate ≥ ~0.9 from ℓ ≈ 3; separations ≥ ~0.5·n steps.");
}

/// Access the schedule's raw ops (the Schedule type hides them; re-derive
/// the identical sequence from the same seed).
fn sched_ops(_s: &Schedule) -> Vec<(bool, usize)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(44);
    (0..6000)
        .map(|_| (rng.random_bool(0.8), rng.random_range(0..usize::MAX)))
        .collect()
}
