//! **E8 / Sect. 1 + 3 motivation** — probabilistic constructions degrade;
//! DEX does not.
//!
//! Runs DEX, Law–Siu, skip-lite, and naive patching under (a) long random
//! churn and (b) an adaptive cut attack, sampling the spectral gap.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_degradation
//! ```

use dex::prelude::*;
use dex_bench::print_table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Drive any overlay with the spectral cut-attacker (it only needs the
/// graph): the true Fiedler sweep cut, thinned node by node.
fn adaptive_attack(o: &mut dyn Overlay, steps: usize, seed: u64) -> (f64, f64) {
    let mut adv = SpectralCutAttacker::new(seed);
    let mut ids = IdAllocator::new();
    let mut min_gap = f64::INFINITY;
    for _ in 0..steps {
        let action = {
            let load = |_u| 1u64;
            let owner = |_z| None;
            let view = View {
                graph: o.graph(),
                load: &load,
                owner: &owner,
                p: 0,
            };
            adv.next(&view)
        };
        match action {
            Action::Insert { attach, .. } => {
                o.insert(ids.fresh(), attach);
            }
            Action::Delete { victim } => {
                if o.n() > 8 {
                    o.delete(victim);
                }
            }
            // The single-event adversaries used here never emit batch or
            // DHT actions.
            _ => unreachable!("SpectralCutAttacker emits single events only"),
        }
        min_gap = min_gap.min(o.spectral_gap());
    }
    (min_gap, o.spectral_gap())
}

fn random_churn(o: &mut dyn Overlay, steps: usize, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = IdAllocator::new();
    let mut min_gap = f64::INFINITY;
    for s in 0..steps {
        let live = o.node_ids();
        if rng.random_bool(0.5) || live.len() <= 8 {
            o.insert(ids.fresh(), live[rng.random_range(0..live.len())]);
        } else {
            o.delete(live[rng.random_range(0..live.len())]);
        }
        if s % 10 == 0 {
            min_gap = min_gap.min(o.spectral_gap());
        }
    }
    (min_gap, o.spectral_gap())
}

type OverlayCtor = Box<dyn Fn() -> Box<dyn Overlay>>;

fn main() {
    let steps = 500;
    println!("E8: expansion under churn — deterministic (DEX) vs probabilistic/naive overlays");
    let mk: Vec<(&str, OverlayCtor)> = vec![
        (
            "dex",
            Box::new(|| Box::new(DexNetwork::bootstrap(DexConfig::new(51).staggered(), 48))),
        ),
        (
            "law-siu",
            Box::new(|| Box::new(LawSiu::bootstrap(52, 48, 3))),
        ),
        (
            "skip-lite",
            Box::new(|| Box::new(SkipLite::bootstrap(53, 48))),
        ),
        (
            "naive-patch",
            Box::new(|| Box::new(NaivePatch::bootstrap(54, 48))),
        ),
    ];
    let mut rows = Vec::new();
    for (name, ctor) in &mk {
        let mut o1 = ctor();
        let (rmin, rend) = random_churn(o1.as_mut(), steps, 55);
        let mut o2 = ctor();
        let (amin, aend) = adaptive_attack(o2.as_mut(), steps, 56);
        rows.push(vec![
            name.to_string(),
            format!("{rmin:.4}"),
            format!("{rend:.4}"),
            format!("{amin:.4}"),
            format!("{aend:.4}"),
            format!("{}", o2.max_degree()),
        ]);
    }
    print_table(
        "min/final spectral gap over 500 steps",
        &[
            "overlay",
            "random min",
            "random end",
            "adaptive min",
            "adaptive end",
            "deg after attack",
        ],
        &rows,
    );
    println!(
        "\nexpected: DEX's gap never leaves a constant band in either column;\n\
         naive-patch decays under attack; law-siu/skip-lite hold only probabilistically\n\
         (weaker minima under the adaptive column) and skip-lite pays log-degree."
    );
}
