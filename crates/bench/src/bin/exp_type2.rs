//! **E4 / Corollary 1 vs Theorem 1** — simplified (amortized) vs
//! staggered (worst-case) type-2 recovery.
//!
//! Both modes run the same insert-heavy workload through several
//! inflations. The simplified mode shows rare Θ(n·polylog) spikes that
//! amortize; the staggered mode keeps every single step at O(log n).
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_type2
//! ```

use dex::prelude::*;
use dex_bench::{print_table, sss, Schedule};

fn run(cfg: DexConfig, label: &str, steps: usize) -> Vec<String> {
    let mut net = DexNetwork::bootstrap(cfg, 32);
    let sched = Schedule::random(7, steps, 0.92);
    sched.apply(&mut net);
    invariants::assert_ok(&net);
    let h = net.net.history();
    let type2: Vec<_> = h.iter().filter(|m| m.recovery.is_type2()).collect();
    let all_msgs = Summary::of(h.iter().map(|m| m.messages));
    let t2_msgs = Summary::of(type2.iter().map(|m| m.messages));
    let t2_rounds = Summary::of(type2.iter().map(|m| m.rounds));
    let amortized: f64 = h.iter().map(|m| m.messages).sum::<u64>() as f64 / h.len() as f64;
    vec![
        label.to_string(),
        format!("{}", net.n()),
        format!("{}", type2.len()),
        sss(&t2_rounds),
        sss(&t2_msgs),
        format!("{}", all_msgs.max),
        format!("{amortized:.0}"),
    ]
}

fn main() {
    let steps = 3000;
    println!(
        "E4: type-2 recovery — one-shot (Cor. 1, amortized) vs staggered (Thm. 1, worst case)"
    );
    println!("insert-heavy workload (92% joins), {steps} steps, n grows ~32 → ~2800");
    let rows = vec![
        run(DexConfig::new(11).simplified(), "simplified", steps),
        run(DexConfig::new(11).staggered(), "staggered", steps),
    ];
    print_table(
        "type-2 step costs",
        &[
            "mode",
            "n@end",
            "type2 steps",
            "t2 rounds p50/p95/max",
            "t2 msgs p50/p95/max",
            "worst step msgs",
            "amortized msgs/step",
        ],
        &rows,
    );
    println!(
        "\nexpected: simplified shows a few huge steps (worst ~Θ(n·log²n) messages) that\n\
         amortize to O(log²n); staggered keeps the worst single step near the type-1 cost."
    );
}
