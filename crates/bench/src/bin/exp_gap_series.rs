//! **E2 + E3 / Theorem 1, Lemma 9** — spectral gap and load/degree bounds
//! over time, under every adversary, including through staggered type-2
//! recovery.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_gap_series
//! ```

use dex::prelude::*;
use dex_bench::print_table;

fn run(name: &str, mut adv: Box<dyn Adversary>, steps: usize) -> Vec<String> {
    let mut net = DexNetwork::bootstrap(DexConfig::new(5).staggered(), 48);
    let mut min_gap = f64::INFINITY;
    let mut gap_during_type2 = f64::INFINITY;
    let mut max_load = 0u64;
    let mut max_deg = 0usize;
    let mut type2_steps = 0usize;
    for s in 0..steps {
        dex::adversary::driver::step(&mut net, adv.as_mut());
        max_load = max_load.max(net.max_total_load());
        max_deg = max_deg.max(net.max_degree());
        if net.type2_in_progress() {
            type2_steps += 1;
        }
        if s % 5 == 0 {
            let g = net.spectral_gap();
            min_gap = min_gap.min(g);
            if net.type2_in_progress() {
                gap_during_type2 = gap_during_type2.min(g);
            }
        }
    }
    invariants::assert_ok(&net);
    // Lemma 9(b) floor: (1−λ)²/8 of the *family* gap at the current size.
    let family_gap = spectral::spectral_gap(&net.cycle.to_multigraph());
    let floor = spectral::staggered_gap_floor(family_gap);
    vec![
        name.to_string(),
        format!("{}", net.n()),
        format!("{:.4}", min_gap),
        if gap_during_type2.is_finite() {
            format!("{:.4}", gap_during_type2)
        } else {
            "-".into()
        },
        format!("{:.4}", floor),
        format!("{max_load}"),
        format!("{max_deg}"),
        format!("{type2_steps}"),
    ]
}

fn main() {
    let steps = 500;
    println!("E2/E3: spectral gap + load/degree time series under adaptive adversaries");
    let rows = vec![
        run("random-churn", Box::new(RandomChurn::new(1, 0.5)), steps),
        run("insert-only", Box::new(InsertOnly::new(2)), steps),
        run("delete-heavy", Box::new(RandomChurn::new(3, 0.25)), steps),
        run("high-load-hunter", Box::new(HighLoadHunter::new(4)), steps),
        run(
            "coordinator-hunter",
            Box::new(CoordinatorHunter::new(5)),
            steps,
        ),
        run("cut-attacker", Box::new(CutAttacker::new(6)), steps),
        run(
            "oscillating",
            Box::new(OscillatingSize::new(7, 24, 300)),
            steps,
        ),
    ];
    print_table(
        "min gap (sampled), Lemma 9(b) floor, worst load (≤ 8ζ = 64), worst degree",
        &[
            "adversary",
            "n@end",
            "min gap",
            "min gap@type2",
            "L9 floor",
            "max load",
            "max deg",
            "type2 steps",
        ],
        &rows,
    );
    println!("\nexpected: every min gap column stays above the Lemma-9 floor; load ≤ 64.");
}
