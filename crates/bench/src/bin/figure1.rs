//! **Figure 1** — the 23-cycle p-cycle expander and a 4-balanced virtual
//! mapping onto 7 real nodes, exactly as drawn in the paper, plus the
//! numeric facts the figure illustrates.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin figure1
//! ```

use dex::core::fabric;
use dex::core::VirtualMapping;
use dex::prelude::*;
use dex::sim::Network;
use dex_bench::print_table;

fn main() {
    let z = PCycle::new(23);
    println!("Figure 1 reproduction: Z(23) and a 4-balanced mapping onto nodes A..G");

    // The virtual graph's structure.
    let zg = z.to_multigraph();
    let mut rows = Vec::new();
    rows.push(vec![
        "Z(23)".to_string(),
        format!("{}", zg.num_nodes()),
        format!("{}", zg.num_edges()),
        "3".to_string(),
        format!("{:.4}", spectral::spectral_gap(&zg)),
        format!("{}", z.diameter()),
    ]);

    // The paper's right-hand side: 7 nodes, vertex x ↦ node x mod 7.
    let names = ["A", "B", "C", "D", "E", "F", "G"];
    let mut map = VirtualMapping::new(8);
    let mut net = Network::new();
    for i in 0..7 {
        net.adversary_add_node(NodeId(i));
    }
    for x in 0..23 {
        map.assign(VertexId(x), NodeId(x % 7));
    }
    fabric::materialize_all(&mut net, &map, &z, false);
    let g = net.graph();
    rows.push(vec![
        "G_t = Φ(Z(23))".to_string(),
        format!("{}", g.num_nodes()),
        format!("{}", g.num_edges()),
        format!("{}", g.max_degree()),
        format!("{:.4}", spectral::spectral_gap(g)),
        format!("{}", dex::graph::connectivity::diameter(g).unwrap()),
    ]);
    print_table(
        "Figure 1: virtual graph vs contracted network",
        &["graph", "n", "edges", "maxdeg", "spectral gap", "diameter"],
        &rows,
    );

    let mut sim_rows = Vec::new();
    for i in 0..7u64 {
        let mut sim: Vec<u64> = map.sim(NodeId(i)).iter().map(|z| z.raw()).collect();
        sim.sort_unstable();
        sim_rows.push(vec![
            names[i as usize].to_string(),
            format!("{}", sim.len()),
            format!("{sim:?}"),
        ]);
    }
    print_table(
        "the 4-balanced mapping (paper: max load 4 = C)",
        &["node", "load", "simulated vertices"],
        &sim_rows,
    );

    // The figure's implicit claims, verified.
    let gap_z = spectral::spectral_gap(&zg);
    let gap_g = spectral::spectral_gap(g);
    println!(
        "\nLemma 1 check: λ_G ≤ λ_Z ⟺ gap_G ({gap_g:.4}) ≥ gap_Z ({gap_z:.4}): {}",
        gap_g >= gap_z - 1e-9
    );
    println!(
        "degree check:  deg(u) = 3·load(u) for every node: {}",
        (0..7).all(|i| g.degree(NodeId(i)) as u64 == 3 * map.load(NodeId(i)))
    );
    println!("\n(run `cargo run --example figure1` for DOT output of both graphs)");
}
