//! **E5 / Sect. 4.4.4** — DHT insert/lookup cost vs network size, and
//! correctness through churn.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_dht
//! ```

use dex::prelude::*;
use dex_bench::{grow_to, log2, print_table, sss};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E5: DHT operations are O(log n) rounds and messages");
    let mut rows = Vec::new();
    for n in [64usize, 256, 1024, 4096] {
        let mut net = DexNetwork::bootstrap(DexConfig::new(21).simplified(), 64);
        grow_to(&mut net, n, 22);
        let mut rng = StdRng::seed_from_u64(23);
        let mut ins = Vec::new();
        let mut looks = Vec::new();
        for k in 0..200u64 {
            let live = net.node_ids();
            let from = live[rng.random_range(0..live.len())];
            let m = net.dht_insert(from, k, k);
            ins.push(m.messages);
        }
        let mut lost = 0;
        for k in 0..200u64 {
            let live = net.node_ids();
            let from = live[rng.random_range(0..live.len())];
            let (v, m) = net.dht_lookup(from, k);
            looks.push(m.messages);
            if v != Some(k) {
                lost += 1;
            }
        }
        let si = Summary::of(ins.iter().copied());
        let sl = Summary::of(looks.iter().copied());
        rows.push(vec![
            format!("{n}"),
            format!("{}", log2(n)),
            sss(&si),
            sss(&sl),
            format!("{:.2}", sl.p95 as f64 / log2(n) as f64),
            format!("{lost}"),
        ]);
    }
    print_table(
        "DHT cost vs size (messages per op)",
        &[
            "n",
            "log2 n",
            "insert p50/p95/max",
            "lookup p50/p95/max",
            "lkp.p95/log n",
            "lost",
        ],
        &rows,
    );
    println!("\nexpected: the ratio column is ~constant (O(log n) ops); lost = 0.");
}
