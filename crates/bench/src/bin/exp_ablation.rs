//! **Ablations** — the design choices DESIGN.md calls out:
//!
//! * **θ sweep** — the rebuilding parameter trades type-2 frequency
//!   against spare capacity (paper Eq. 3 demands θ ≤ 1/545; how much do
//!   larger values change behaviour at laptop scale?);
//! * **staggered window size** — the number of vertices activated per
//!   step trades operation duration against per-step cost;
//! * **executed vs modeled permutation routing** — the one-shot type-2
//!   inverse-edge phase routes real tokens below p ≈ 2500 (Cor. 3); check
//!   the analytical model used above the cutoff against executed numbers.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_ablation
//! ```

use dex::core::fabric;
use dex::core::routing;
use dex::core::VirtualMapping;
use dex::prelude::*;
use dex::sim::Network;
use dex_bench::{print_table, sss, Schedule};

fn theta_sweep() {
    println!("A1: θ ablation (insert-heavy growth, 1200 steps, n 32 → ~1100, simplified mode)");
    let mut rows = Vec::new();
    for theta_inv in [16u64, 64, 256, 545] {
        let cfg = DexConfig::new(61).simplified().with_theta_inv(theta_inv);
        let mut net = DexNetwork::bootstrap(cfg, 32);
        let sched = Schedule::random(62, 1200, 0.9);
        sched.apply(&mut net);
        invariants::assert_ok(&net);
        let h = net.net.history();
        let type2 = h.iter().filter(|m| m.recovery.is_type2()).count();
        let msgs = Summary::of(h.iter().map(|m| m.messages));
        rows.push(vec![
            format!("1/{theta_inv}"),
            format!("{}", net.n()),
            format!("{type2}"),
            format!("{}", msgs.p95),
            format!("{}", msgs.max),
            format!("{:.4}", net.spectral_gap()),
        ]);
    }
    print_table(
        "θ controls when type-2 fires, not whether the invariants hold",
        &[
            "θ",
            "n@end",
            "type2 events",
            "msgs p95",
            "msgs max",
            "gap@end",
        ],
        &rows,
    );
}

fn window_sweep() {
    println!("\nA2: staggered window ablation (growth through inflations, staggered mode)");
    // The window is derived from θ; sweeping θ in staggered mode sweeps
    // the window (vertices activated per step) with it.
    let mut rows = Vec::new();
    for theta_inv in [16u64, 64, 256] {
        let cfg = DexConfig::new(63).staggered().with_theta_inv(theta_inv);
        let mut net = DexNetwork::bootstrap(cfg, 32);
        let sched = Schedule::random(64, 1500, 0.9);
        sched.apply(&mut net);
        invariants::assert_ok(&net);
        let h = net.net.history();
        let t2: Vec<_> = h.iter().filter(|m| m.recovery.is_type2()).collect();
        let t2_msgs = Summary::of(t2.iter().map(|m| m.messages));
        let t2_topo = Summary::of(t2.iter().map(|m| m.topology_changes));
        rows.push(vec![
            format!("1/{theta_inv}"),
            format!("{}", t2.len()),
            sss(&t2_msgs),
            sss(&t2_topo),
            format!("{:.4}", net.spectral_gap()),
        ]);
    }
    print_table(
        "larger θ ⇒ larger windows ⇒ fewer but heavier staggered steps",
        &[
            "θ",
            "staggered steps",
            "t2 msgs p50/p95/max",
            "t2 topoΔ p50/p95/max",
            "gap@end",
        ],
        &rows,
    );
}

fn routing_validation() {
    println!("\nA3: permutation routing — executed rounds vs the analytical charge (Cor. 3)");
    let mut rows = Vec::new();
    for p in [101u64, 499, 1009, 2003] {
        let cycle = PCycle::new(p);
        let n = (p / 5).max(4);
        let mut map = VirtualMapping::new(8);
        let mut net = Network::new();
        for i in 0..n {
            net.adversary_add_node(NodeId(i));
        }
        for x in 0..p {
            map.assign(VertexId(x), NodeId(x % n));
        }
        fabric::materialize_all(&mut net, &map, &cycle, false);
        net.begin_step();
        let p_new = dex::graph::primes::inflation_prime(p);
        let pairs = routing::inflation_inverse_pairs(p, p_new);
        let rounds = routing::route_pairs(&mut net, &map, &cycle, &pairs, 1);
        let (_, messages, _) = net.current_counters();
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
        let logp = (64 - p.leading_zeros() as u64).max(1);
        rows.push(vec![
            format!("{p}"),
            format!("{rounds}"),
            format!("{}", 6 * logp),
            format!("{messages}"),
            format!("{}", p * logp),
            format!("{:.2}", rounds as f64 / (logp * logp) as f64),
        ]);
    }
    print_table(
        "store-and-forward makespan vs the 6·log p model (messages vs p·log p)",
        &[
            "p",
            "rounds (executed)",
            "rounds (model)",
            "msgs (executed)",
            "msgs (model)",
            "rounds/log²p",
        ],
        &rows,
    );
    println!("\nexpected: executed rounds stay within a small factor of the model; the");
    println!("rounds/log²p column is ~constant (Scheideler's bound has shape log·polyloglog).");
}

fn main() {
    theta_sweep();
    window_sweep();
    routing_validation();
}
