//! **E1 / Theorem 1** — per-step recovery cost vs network size.
//!
//! Sweeps n over powers of two, runs the same relative churn at every
//! size, and prints rounds / messages / topology changes per step. The
//! paper's claim: rounds and messages grow like log n (w.h.p., worst
//! case), topology changes stay O(1).
//!
//! ```sh
//! cargo run --release -p dex-bench --bin exp_scaling
//! ```

use dex::prelude::*;
use dex_bench::{grow_to, log2, print_table, sss, Schedule};

fn main() {
    let steps = 300usize;
    println!("E1: per-step cost scaling (staggered mode, θ = 1/64, {steps} churn steps per size)");
    let mut rows = Vec::new();
    for n in [64usize, 128, 256, 512, 1024, 2048, 4096] {
        let mut net = DexNetwork::bootstrap(DexConfig::new(1).staggered(), 64);
        grow_to(&mut net, n, 2);
        let start = net.net.history().len();
        let sched = Schedule::random(3, steps, 0.5);
        sched.apply(&mut net);
        let type1: Vec<_> = net
            .net
            .history()
            .iter()
            .skip(start)
            .filter(|m| !m.recovery.is_type2())
            .collect();
        let rounds = Summary::of(type1.iter().map(|m| m.rounds));
        let msgs = Summary::of(type1.iter().map(|m| m.messages));
        let topo = Summary::of(type1.iter().map(|m| m.topology_changes));
        rows.push(vec![
            format!("{n}"),
            format!("{}", log2(n)),
            sss(&rounds),
            format!("{:.1}", rounds.p95 as f64 / log2(n) as f64),
            sss(&msgs),
            format!("{:.1}", msgs.p95 as f64 / log2(n) as f64),
            sss(&topo),
        ]);
        invariants::assert_ok(&net);
    }
    print_table(
        "Theorem 1 shape: rounds & messages ~ c·log n, topology changes flat",
        &[
            "n",
            "log2 n",
            "rounds p50/p95/max",
            "r.p95/log n",
            "msgs p50/p95/max",
            "m.p95/log n",
            "topoΔ p50/p95/max",
        ],
        &rows,
    );
    println!("\nexpected: the two ratio columns stay ~constant; topoΔ does not grow with n.");
}
