//! Fault-injection benchmark: degradation curves for the DEX healing
//! protocol under message loss, latency skew, and partitions, emitted to
//! `BENCH_faults.json`.
//!
//! Three sections:
//!
//! * `percolation` — engine-level delivery curve: many walk and route
//!   operations on a frozen bootstrap topology, swept over the loss grid
//!   {0, 0.25, 0.5, 0.8} via [`dex::sim::msim`] directly (no protocol on
//!   top), showing raw delivery rate, retries, and makespan stretch;
//! * `degradation` — protocol-level curve: the scenario engine runs a
//!   churn+DHT workload with a [`Phase::Faults`] span at each loss point;
//!   pooled per-step percentiles, λ₂ before/after, delivery rate, and
//!   DHT success rate (abandoned operations are graceful degradation,
//!   not data loss — the shadow oracle still must never mismatch);
//! * `attacks` — two scenario-engine attack families (flash crowd,
//!   partition-then-heal) re-run under loss with full structural
//!   invariant checks after every step.
//!
//! Determinism contract: everything in the JSON except the executor
//! header is **byte-identical** for a given `--seed` regardless of
//! `--exec-threads` (CI byte-diffs the smoke output across 1/3/8).
//! Nothing in the JSON reads the wall clock. The `DEX_FAULT_*` knobs are
//! bench-harness experiment inputs (extra loss point, retry budget, fault
//! seed); their resolved values land in the config header, and CI leaves
//! them unset.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin bench_faults            # full
//! cargo run --release -p dex-bench --bin bench_faults -- --smoke # CI-sized
//! DEX_FAULT_LOSS=900 cargo run --release -p dex-bench --bin bench_faults
//! ```

use dex::prelude::*;
use dex::sim::msim;
use dex::sim::rng::splitmix64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

struct Args {
    smoke: bool,
    threads: usize,
    seed: u64,
    trials: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: dex::sim::parallel::default_threads(),
        seed: 0xfa57_cafe,
        trials: 0, // 0 = scale default
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--exec-threads" | "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exec-threads N");
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--trials" => {
                args.trials = it.next().and_then(|v| v.parse().ok()).expect("--trials R");
            }
            "--out" => args.out = Some(it.next().expect("--out FILE")),
            other => panic!(
                "unknown flag {other:?} (try --smoke / --exec-threads / --seed / --trials / --out)"
            ),
        }
    }
    args
}

/// The loss grid, in 1/1000 units: the fixed acceptance curve plus the
/// optional `DEX_FAULT_LOSS` experiment point (deduplicated, sorted).
fn loss_grid() -> Vec<u32> {
    let mut grid = vec![0, 250, 500, 800];
    if let Some(extra) = dex::exec::knobs::fault_loss() {
        if !grid.contains(&extra) {
            grid.push(extra);
        }
    }
    grid.sort_unstable();
    grid
}

/// The fault spec for one loss point: loss plus mild latency skew, retry
/// budgets and fault seed overridable through the experiment knobs.
fn spec_for(loss: u32, seed: u64) -> FaultSpec {
    let retries = dex::exec::knobs::fault_retries().unwrap_or(6);
    let fseed = dex::exec::knobs::fault_seed().unwrap_or(splitmix64(seed ^ 0xfa57));
    FaultSpec::zero()
        .with_loss(loss)
        .with_latency(1, 3)
        .with_retries(retries, retries)
        .with_fallback(2)
        .with_seed(fseed)
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {:.4}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
        s.count, s.mean, s.p50, s.p95, s.p99, s.max
    )
}

fn fault_stats_json(fs: &FaultStats) -> String {
    format!(
        "{{\"sent\": {}, \"delivered\": {}, \"lost_random\": {}, \"lost_burst\": {}, \
         \"lost_partition\": {}, \"timeouts\": {}, \"reinitiations\": {}, \"walks_lost\": {}, \
         \"routes_lost\": {}, \"heal_fallbacks\": {}, \"dht_abandoned\": {}, \
         \"delivery_rate\": {:.6}}}",
        fs.sent,
        fs.delivered,
        fs.lost_random,
        fs.lost_burst,
        fs.lost_partition,
        fs.timeouts,
        fs.reinitiations,
        fs.walks_lost,
        fs.routes_lost,
        fs.heal_fallbacks,
        fs.dht_abandoned,
        fs.delivery_rate(),
    )
}

/// Engine-level percolation point: `n_ops` walks (to a sparse accept set)
/// and `n_ops` fixed-length routes on a frozen bootstrap topology.
fn percolation_point(
    g: &dex::graph::MultiGraph,
    loss: u32,
    seed: u64,
    n_ops: usize,
    threads: usize,
) -> String {
    let spec = spec_for(loss, seed);
    let nodes = g.nodes_sorted();
    let pick = |x: u64| nodes[(splitmix64(x) % nodes.len() as u64) as usize];

    // Walks: hunt for a ~1/8 sparse accept set, 32-hop budget.
    let walk_ops: Vec<msim::WalkOp> = (0..n_ops)
        .map(|i| msim::WalkOp {
            start: pick(seed ^ (i as u64)),
            max_len: 32,
            exclude: None,
            op_key: splitmix64(seed ^ 0x3a1c ^ (i as u64)),
        })
        .collect();
    let accept = |u: NodeId| splitmix64(u.0 ^ seed).is_multiple_of(8);
    let mk_rng = |i: usize, retry: u32| {
        StdRng::seed_from_u64(splitmix64(
            seed ^ 0x77a1 ^ (i as u64) ^ ((retry as u64) << 40),
        ))
    };
    let (walk_results, walk_report) = msim::run_walks(g, &spec, &walk_ops, accept, mk_rng, threads);
    let walk_hits = walk_results.iter().filter(|r| r.hit.is_some()).count();
    let walk_lost = walk_results
        .iter()
        .filter(|r| r.status == msim::OpStatus::Lost)
        .count();

    // Routes: 12-hop neighbor-chain paths (consecutive entries adjacent),
    // round-trip like a DHT lookup.
    let route_ops: Vec<msim::RouteOp> = (0..n_ops)
        .map(|i| {
            let mut at = pick(seed ^ 0x5b3d ^ (i as u64));
            let mut path = vec![at];
            for hop in 0..12u64 {
                let nbrs: Vec<NodeId> = g.neighbors(at).iter().collect();
                at = nbrs
                    [(splitmix64(seed ^ (i as u64) ^ (hop << 32)) % nbrs.len() as u64) as usize];
                path.push(at);
            }
            msim::RouteOp {
                path,
                round_trip: true,
                op_key: splitmix64(seed ^ 0x0f3c ^ (i as u64)),
            }
        })
        .collect();
    let (route_results, route_report) = msim::run_routes(g, &spec, &route_ops, threads);
    let route_delivered = route_results
        .iter()
        .filter(|r| r.status == msim::OpStatus::Delivered)
        .count();
    let mean_retries = route_results.iter().map(|r| r.retries as u64).sum::<u64>() as f64
        / route_results.len() as f64;

    format!(
        "{{\"loss_milli\": {loss}, \
         \"walk_hit_rate\": {:.6}, \"walks_lost\": {walk_lost}, \
         \"walk_delivery_rate\": {:.6}, \"walk_makespan\": {}, \
         \"route_delivery_rate\": {:.6}, \"route_token_delivery_rate\": {:.6}, \
         \"route_mean_retries\": {mean_retries:.4}, \"route_makespan\": {}, \
         \"sends\": {}}}",
        walk_hits as f64 / walk_ops.len() as f64,
        walk_report.stats.delivery_rate(),
        walk_report.makespan,
        route_delivered as f64 / route_ops.len() as f64,
        route_report.stats.delivery_rate(),
        route_report.makespan,
        walk_report.messages + route_report.messages,
    )
}

/// Protocol-level degradation point: churn + DHT traffic inside a
/// [`Phase::Faults`] span at this loss.
fn degradation_point(loss: u32, opts: &RunOptions, smoke: bool) -> (String, StepAggregate) {
    let churn = if smoke { 16 } else { 192 };
    let dht_ops = if smoke { 16 } else { 256 };
    let sc = Scenario::new("degradation")
        .phase(Phase::Faults {
            spec: spec_for(loss, opts.seed),
        })
        .phase(Phase::Churn {
            steps: churn,
            p_insert: 0.5,
        })
        .phase(Phase::DhtMix {
            ops: dht_ops,
            read_pct: 50,
            keyspace: 1 << 16,
        })
        .phase(Phase::FaultsOff);
    let reports = run_trials(&sc, opts);
    let agg = pool_aggregate(&reports);
    let mismatches: u64 = reports.iter().map(|r| r.dht_mismatches).sum();
    assert_eq!(mismatches, 0, "loss {loss}: shadow oracle mismatch");
    let mut fs = FaultStats::default();
    for r in &reports {
        fs.merge(&r.fault_stats);
    }
    let total_dht = (dht_ops * reports.len()) as f64;
    let dht_success = 1.0 - fs.dht_abandoned as f64 / total_dht;
    // λ₂ at bootstrap and after the campaign, averaged over trials.
    let l2_first = reports.iter().map(|r| r.lambda2[0]).sum::<f64>() / reports.len() as f64;
    let l2_final = reports
        .iter()
        .map(|r| *r.lambda2.last().expect("trajectory"))
        .sum::<f64>()
        / reports.len() as f64;
    let json = format!(
        "{{\"loss_milli\": {loss}, \"steps\": {}, \"rounds\": {}, \"messages\": {}, \
         \"lambda2_start\": {l2_first:.6}, \"lambda2_final\": {l2_final:.6}, \
         \"dht_success_rate\": {dht_success:.6}, \"dht_mismatches\": {mismatches}, \
         \"faults\": {}}}",
        agg.steps,
        summary_json(&agg.rounds),
        summary_json(&agg.messages),
        fault_stats_json(&fs),
    );
    (json, agg)
}

/// One attack family re-run under loss with full invariant checking.
fn attack_point(name: &str, sc: &Scenario, opts: &RunOptions) -> String {
    let reports = run_trials(sc, opts);
    let agg = pool_aggregate(&reports);
    let mismatches: u64 = reports.iter().map(|r| r.dht_mismatches).sum();
    assert_eq!(mismatches, 0, "{name}: shadow oracle mismatch");
    let mut fs = FaultStats::default();
    for r in &reports {
        fs.merge(&r.fault_stats);
    }
    let l2_final = reports
        .iter()
        .map(|r| *r.lambda2.last().expect("trajectory"))
        .sum::<f64>()
        / reports.len() as f64;
    format!(
        "{{\"name\": \"{name}\", \"invariants_checked\": true, \"steps\": {}, \
         \"rounds\": {}, \"messages\": {}, \"lambda2_final\": {l2_final:.6}, \
         \"final_n\": [{}], \"faults\": {}}}",
        agg.steps,
        summary_json(&agg.rounds),
        summary_json(&agg.messages),
        reports
            .iter()
            .map(|r| r.final_n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        fault_stats_json(&fs),
    )
}

fn main() {
    let args = parse_args();
    let n0: u64 = if args.smoke { 48 } else { 2048 };
    let trials = if args.trials > 0 {
        args.trials
    } else if args.smoke {
        2
    } else {
        3
    };
    let losses = loss_grid();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_faults.json".to_string());

    let opts = RunOptions {
        n0,
        trials,
        seed: args.seed,
        // Sample λ₂ only at the endpoints: the curve wants "gap before vs
        // after the campaign", not a trajectory.
        lambda_every: 1 << 30,
        exec: None,
        threads: args.threads,
        heal_threads: 1,
        adaptive_crossover: false,
        check_invariants: args.smoke,
        keep_actions: false,
        keep_step_metrics: false,
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n0\": {n0}, \"trials\": {trials}, \"seed\": {}, \"smoke\": {}, \
         \"loss_grid\": [{}], \"fault_loss_knob\": {}, \"fault_retries_knob\": {}, \
         \"fault_seed_knob\": {}}},",
        args.seed,
        args.smoke,
        losses
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        dex::exec::knobs::fault_loss().map_or("null".into(), |v| v.to_string()),
        dex::exec::knobs::fault_retries().map_or("null".into(), |v| v.to_string()),
        dex::exec::knobs::fault_seed().map_or("null".into(), |v| v.to_string()),
    );
    let _ = writeln!(json, "  {},", dex_bench::exec_header_json());

    // ---- Section 1: engine-level delivery percolation -------------------
    let frozen = DexNetwork::bootstrap(
        DexConfig::new(splitmix64(args.seed ^ 0x9e1)).simplified(),
        n0,
    );
    let n_ops = if args.smoke { 200 } else { 2000 };
    let _ = writeln!(json, "  \"percolation\": [");
    for (i, &loss) in losses.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let point = percolation_point(frozen.graph(), loss, args.seed, n_ops, args.threads);
        println!(
            "percolation loss {loss:>4}  ({:.2}s)",
            t0.elapsed().as_secs_f64()
        );
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < losses.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ---- Section 2: protocol-level degradation curve --------------------
    let _ = writeln!(json, "  \"degradation\": [");
    for (i, &loss) in losses.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let (point, agg) = degradation_point(loss, &opts, args.smoke);
        println!(
            "degradation loss {loss:>4}  steps {:>5}  rounds p50/p95 {}/{}  ({:.2}s)",
            agg.steps,
            agg.rounds.p50,
            agg.rounds.p95,
            t0.elapsed().as_secs_f64()
        );
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < losses.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ---- Section 3: attack families under loss, invariants on -----------
    let attack_loss = 350;
    let attack_opts = RunOptions {
        check_invariants: true,
        ..opts
    };
    let s = |a: usize, b: usize| if args.smoke { b } else { a };
    let attacks = [
        (
            "flash-crowd-under-loss",
            Scenario::new("flash-crowd-under-loss")
                .phase(Phase::Faults {
                    spec: spec_for(attack_loss, args.seed),
                })
                .phase(Phase::FlashCrowd {
                    waves: s(6, 2),
                    wave_size: s(48, 6),
                })
                .phase(Phase::FaultsOff),
        ),
        (
            "partition-heal-under-loss",
            Scenario::new("partition-heal-under-loss")
                .phase(Phase::Faults {
                    spec: spec_for(attack_loss, args.seed).with_partition(48, 6),
                })
                .phase(Phase::PartitionHeal {
                    bursts: s(3, 1),
                    burst_size: s(16, 3),
                    regrow: s(48, 6),
                })
                .phase(Phase::FaultsOff),
        ),
    ];
    let _ = writeln!(json, "  \"attacks\": [");
    for (i, (name, sc)) in attacks.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let point = attack_point(name, sc, &attack_opts);
        println!("attack {name:<28}  ({:.2}s)", t0.elapsed().as_secs_f64());
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < attacks.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write faults bench JSON");
    println!(
        "wrote {out} ({} loss points, {} attack families)",
        losses.len(),
        attacks.len()
    );
}
