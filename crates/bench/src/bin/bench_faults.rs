//! Fault-injection benchmark: degradation curves for the DEX healing
//! protocol under message loss, latency skew, and partitions, emitted to
//! `BENCH_faults.json`.
//!
//! Six sections:
//!
//! * `percolation` — engine-level delivery curve: many walk and route
//!   operations on a frozen bootstrap topology, swept over the loss grid
//!   {0, 0.25, 0.5, 0.8} via [`dex::sim::msim`] directly (no protocol on
//!   top), showing raw delivery rate, retries, and makespan stretch;
//! * `degradation` — protocol-level curve: the scenario engine runs a
//!   churn+DHT workload with a [`Phase::Faults`] span at each loss point;
//!   pooled per-step percentiles, λ₂ before/after, delivery rate, and
//!   DHT success rate (abandoned operations are graceful degradation,
//!   not data loss — the shadow oracle still must never mismatch);
//! * `flood_degradation` — flood-aggregate curve: complete rate, partial
//!   count error, and witness rate of message-scheduled floods with the
//!   spec's re-flood budget at each loss point;
//! * `type2_degradation` — inflate/deflate coordination curve: insert-
//!   heavy growth forces type-2 rebuilds whose coordination rolls back
//!   and re-initiates under loss (rollback rate per attempt);
//! * `wave_vs_sequential` — waved vs sequential rounds-to-heal for
//!   identical batch scripts under 35% loss, with the bit-identity of
//!   the healed networks asserted;
//! * `attacks` — two scenario-engine attack families (flash crowd,
//!   partition-then-heal) re-run under loss with full structural
//!   invariant checks after every step.
//!
//! Determinism contract: everything in the JSON except the executor
//! header is **byte-identical** for a given `--seed` regardless of
//! `--exec-threads` (CI byte-diffs the smoke output across 1/3/8).
//! Nothing in the JSON reads the wall clock. The `DEX_FAULT_*` knobs are
//! bench-harness experiment inputs (extra loss point, retry budget, fault
//! seed); their resolved values land in the config header, and CI leaves
//! them unset.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin bench_faults            # full
//! cargo run --release -p dex-bench --bin bench_faults -- --smoke # CI-sized
//! DEX_FAULT_LOSS=900 cargo run --release -p dex-bench --bin bench_faults
//! ```

use dex::prelude::*;
use dex::sim::msim;
use dex::sim::rng::splitmix64;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

struct Args {
    smoke: bool,
    threads: usize,
    seed: u64,
    trials: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: dex::sim::parallel::default_threads(),
        seed: 0xfa57_cafe,
        trials: 0, // 0 = scale default
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--exec-threads" | "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exec-threads N");
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--trials" => {
                args.trials = it.next().and_then(|v| v.parse().ok()).expect("--trials R");
            }
            "--out" => args.out = Some(it.next().expect("--out FILE")),
            other => panic!(
                "unknown flag {other:?} (try --smoke / --exec-threads / --seed / --trials / --out)"
            ),
        }
    }
    args
}

/// The loss grid, in 1/1000 units: the fixed acceptance curve plus the
/// optional `DEX_FAULT_LOSS` experiment point (deduplicated, sorted).
fn loss_grid() -> Vec<u32> {
    let mut grid = vec![0, 250, 500, 800];
    if let Some(extra) = dex::exec::knobs::fault_loss() {
        if !grid.contains(&extra) {
            grid.push(extra);
        }
    }
    grid.sort_unstable();
    grid
}

/// The fault spec for one loss point: loss plus mild latency skew, retry
/// budgets and fault seed overridable through the experiment knobs.
fn spec_for(loss: u32, seed: u64) -> FaultSpec {
    let retries = dex::exec::knobs::fault_retries().unwrap_or(6);
    let fseed = dex::exec::knobs::fault_seed().unwrap_or(splitmix64(seed ^ 0xfa57));
    FaultSpec::zero()
        .with_loss(loss)
        .with_latency(1, 3)
        .with_retries(retries, retries)
        .with_fallback(2)
        .with_seed(fseed)
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {:.4}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        s.count, s.mean, s.p50, s.p95, s.p99, s.p999, s.max
    )
}

fn fault_stats_json(fs: &FaultStats) -> String {
    format!(
        "{{\"sent\": {}, \"delivered\": {}, \"lost_random\": {}, \"lost_burst\": {}, \
         \"lost_partition\": {}, \"timeouts\": {}, \"reinitiations\": {}, \"walks_lost\": {}, \
         \"routes_lost\": {}, \"heal_fallbacks\": {}, \"dht_abandoned\": {}, \
         \"flood_retries\": {}, \"floods_partial\": {}, \"type2_rollbacks\": {}, \
         \"type2_reinitiations\": {}, \"wave_replans\": {}, \
         \"delivery_rate\": {:.6}}}",
        fs.sent,
        fs.delivered,
        fs.lost_random,
        fs.lost_burst,
        fs.lost_partition,
        fs.timeouts,
        fs.reinitiations,
        fs.walks_lost,
        fs.routes_lost,
        fs.heal_fallbacks,
        fs.dht_abandoned,
        fs.flood_retries,
        fs.floods_partial,
        fs.type2_rollbacks,
        fs.type2_reinitiations,
        fs.wave_replans,
        fs.delivery_rate(),
    )
}

/// Engine-level percolation point: `n_ops` walks (to a sparse accept set)
/// and `n_ops` fixed-length routes on a frozen bootstrap topology.
fn percolation_point(
    g: &dex::graph::MultiGraph,
    loss: u32,
    seed: u64,
    n_ops: usize,
    threads: usize,
) -> String {
    let spec = spec_for(loss, seed);
    let nodes = g.nodes_sorted();
    let pick = |x: u64| nodes[(splitmix64(x) % nodes.len() as u64) as usize];

    // Walks: hunt for a ~1/8 sparse accept set, 32-hop budget.
    let walk_ops: Vec<msim::WalkOp> = (0..n_ops)
        .map(|i| msim::WalkOp {
            start: pick(seed ^ (i as u64)),
            max_len: 32,
            exclude: None,
            op_key: splitmix64(seed ^ 0x3a1c ^ (i as u64)),
        })
        .collect();
    let accept = |u: NodeId| splitmix64(u.0 ^ seed).is_multiple_of(8);
    let mk_rng = |i: usize, retry: u32| {
        StdRng::seed_from_u64(splitmix64(
            seed ^ 0x77a1 ^ (i as u64) ^ ((retry as u64) << 40),
        ))
    };
    let (walk_results, walk_report) = msim::run_walks(g, &spec, &walk_ops, accept, mk_rng, threads);
    let walk_hits = walk_results.iter().filter(|r| r.hit.is_some()).count();
    let walk_lost = walk_results
        .iter()
        .filter(|r| r.status == msim::OpStatus::Lost)
        .count();

    // Routes: 12-hop neighbor-chain paths (consecutive entries adjacent),
    // round-trip like a DHT lookup.
    let route_ops: Vec<msim::RouteOp> = (0..n_ops)
        .map(|i| {
            let mut at = pick(seed ^ 0x5b3d ^ (i as u64));
            let mut path = vec![at];
            for hop in 0..12u64 {
                let nbrs: Vec<NodeId> = g.neighbors(at).iter().collect();
                at = nbrs
                    [(splitmix64(seed ^ (i as u64) ^ (hop << 32)) % nbrs.len() as u64) as usize];
                path.push(at);
            }
            msim::RouteOp {
                path,
                round_trip: true,
                op_key: splitmix64(seed ^ 0x0f3c ^ (i as u64)),
            }
        })
        .collect();
    let (route_results, route_report) = msim::run_routes(g, &spec, &route_ops, threads);
    let route_delivered = route_results
        .iter()
        .filter(|r| r.status == msim::OpStatus::Delivered)
        .count();
    let mean_retries = route_results.iter().map(|r| r.retries as u64).sum::<u64>() as f64
        / route_results.len() as f64;

    format!(
        "{{\"loss_milli\": {loss}, \
         \"walk_hit_rate\": {:.6}, \"walks_lost\": {walk_lost}, \
         \"walk_delivery_rate\": {:.6}, \"walk_makespan\": {}, \
         \"route_delivery_rate\": {:.6}, \"route_token_delivery_rate\": {:.6}, \
         \"route_mean_retries\": {mean_retries:.4}, \"route_makespan\": {}, \
         \"sends\": {}}}",
        walk_hits as f64 / walk_ops.len() as f64,
        walk_report.stats.delivery_rate(),
        walk_report.makespan,
        route_delivered as f64 / route_ops.len() as f64,
        route_report.stats.delivery_rate(),
        route_report.makespan,
        walk_report.messages + route_report.messages,
    )
}

/// Protocol-level degradation point: churn + DHT traffic inside a
/// [`Phase::Faults`] span at this loss.
fn degradation_point(loss: u32, opts: &RunOptions, smoke: bool) -> (String, StepAggregate) {
    let churn = if smoke { 16 } else { 192 };
    let dht_ops = if smoke { 16 } else { 256 };
    let sc = Scenario::new("degradation")
        .phase(Phase::Faults {
            spec: spec_for(loss, opts.seed),
        })
        .phase(Phase::Churn {
            steps: churn,
            p_insert: 0.5,
        })
        .phase(Phase::DhtMix {
            ops: dht_ops,
            read_pct: 50,
            keyspace: 1 << 16,
        })
        .phase(Phase::FaultsOff);
    let reports = run_trials(&sc, opts);
    let agg = pool_aggregate(&reports);
    let mismatches: u64 = reports.iter().map(|r| r.dht_mismatches).sum();
    assert_eq!(mismatches, 0, "loss {loss}: shadow oracle mismatch");
    let mut fs = FaultStats::default();
    for r in &reports {
        fs.merge(&r.fault_stats);
    }
    let total_dht = (dht_ops * reports.len()) as f64;
    let dht_success = 1.0 - fs.dht_abandoned as f64 / total_dht;
    // λ₂ at bootstrap and after the campaign, averaged over trials.
    let l2_first = reports.iter().map(|r| r.lambda2[0]).sum::<f64>() / reports.len() as f64;
    let l2_final = reports
        .iter()
        .map(|r| *r.lambda2.last().expect("trajectory"))
        .sum::<f64>()
        / reports.len() as f64;
    let json = format!(
        "{{\"loss_milli\": {loss}, \"steps\": {}, \"rounds\": {}, \"messages\": {}, \
         \"lambda2_start\": {l2_first:.6}, \"lambda2_final\": {l2_final:.6}, \
         \"dht_success_rate\": {dht_success:.6}, \"dht_mismatches\": {mismatches}, \
         \"faults\": {}}}",
        agg.steps,
        summary_json(&agg.rounds),
        summary_json(&agg.messages),
        fault_stats_json(&fs),
    );
    (json, agg)
}

/// Engine-level flood degradation point: `k` flood-aggregates from
/// distinct roots on the frozen bootstrap topology, each with the spec's
/// re-flood budget. Reports how gracefully the count degrades: complete
/// rate, mean partial-count error vs the true size, witness-found rate,
/// and the new flood counters.
fn flood_point(
    g: &dex::graph::MultiGraph,
    loss: u32,
    seed: u64,
    k: usize,
    threads: usize,
) -> String {
    let spec = spec_for(loss, seed);
    let nodes = g.nodes_sorted();
    let n = nodes.len() as f64;
    let pred = |u: NodeId| splitmix64(u.0 ^ seed ^ 0x5e7).is_multiple_of(8);
    let mut fs = FaultStats::default();
    let (mut complete, mut witnesses) = (0usize, 0usize);
    let (mut err_sum, mut makespan_sum) = (0.0f64, 0u64);
    for i in 0..k {
        let root = nodes[(splitmix64(seed ^ 0xf10d ^ i as u64) % nodes.len() as u64) as usize];
        let op_key = splitmix64(seed ^ 0xf1f1 ^ i as u64);
        let (out, report) =
            msim::run_flood(g, &spec, root, pred, op_key, spec.flood_retries, threads);
        if out.complete {
            complete += 1;
        }
        if out.witness.is_some() {
            witnesses += 1;
        }
        err_sum += (n - out.n as f64).abs() / n;
        makespan_sum += report.makespan;
        fs.merge(&report.stats);
    }
    if loss == 0 {
        assert_eq!(complete, k, "zero loss left a flood incomplete");
        assert_eq!(err_sum, 0.0, "zero loss miscounted");
    }
    format!(
        "{{\"loss_milli\": {loss}, \"floods\": {k}, \
         \"complete_rate\": {:.6}, \"partial_count_error\": {:.6}, \
         \"witness_rate\": {:.6}, \"mean_makespan\": {:.4}, \"faults\": {}}}",
        complete as f64 / k as f64,
        err_sum / k as f64,
        witnesses as f64 / k as f64,
        makespan_sum as f64 / k as f64,
        fault_stats_json(&fs),
    )
}

/// Protocol-level type-2 degradation point: insert-heavy growth from a
/// tiny bootstrap runs the spare pool dry, forcing inflations whose
/// message-scheduled coordination must roll back and re-initiate under
/// loss. `rollback_rate` is failed coordination attempts per attempt
/// (completions + rollbacks).
fn type2_point(loss: u32, seed: u64, smoke: bool, threads: usize) -> String {
    let n0 = 16u64;
    let inserts = if smoke { 120 } else { 280 };
    let cfg = DexConfig::new(splitmix64(seed ^ 0x7209)).simplified();
    let mut dex = DexNetwork::bootstrap(cfg, n0);
    dex.set_heal_threads(threads);
    dex.set_faults(Some(spec_for(loss, seed)));
    let mut live = dex.node_ids();
    let first = live.iter().map(|u| u.0).max().unwrap_or(0) + 1;
    for i in 0..inserts {
        let attach = live[(splitmix64(seed ^ 0xa77 ^ i as u64) % live.len() as u64) as usize];
        let u = NodeId(first + i as u64);
        dex.insert(u, attach);
        live.push(u);
    }
    invariants::assert_ok(&dex);
    let fs = dex.fault_stats();
    let t2 = dex.walk_stats.type2;
    assert!(t2 >= 1, "loss {loss}: growth never forced a type-2");
    let attempts = t2 + fs.type2_rollbacks;
    format!(
        "{{\"loss_milli\": {loss}, \"inserts\": {inserts}, \"final_n\": {}, \
         \"type2_steps\": {t2}, \"rollback_rate\": {:.6}, \"faults\": {}}}",
        dex.n(),
        fs.type2_rollbacks as f64 / attempts as f64,
        fault_stats_json(&fs),
    )
}

/// Waved vs sequential rounds-to-heal under 35% loss: identical batch
/// scripts through the conflict-graph wave engine and the sequential
/// baseline. The wave engine plans every walk on the message schedule,
/// so its charged rounds/messages — and the healed network — must be
/// *identical* to the sequential path's; the row records both sides plus
/// the bit-identity check so a regression shows up as a diff.
fn wave_point(seed: u64, smoke: bool, threads: usize) -> String {
    let loss = 350u32;
    let n0: u64 = if smoke { 48 } else { 256 };
    let batches = if smoke { 3 } else { 8 };
    let k = if smoke { 10 } else { 24 };
    let spec = spec_for(loss, seed);
    let cfg = DexConfig::new(splitmix64(seed ^ 0x3a7e)).simplified();
    let mut waved = DexNetwork::bootstrap(cfg, n0);
    let mut seq = DexNetwork::bootstrap(cfg, n0);
    waved.set_heal_threads(threads);
    waved.set_faults(Some(spec));
    seq.set_faults(Some(spec));
    let mut live = waved.node_ids();
    let mut next = live.iter().map(|u| u.0).max().unwrap_or(0) + 1;
    let (mut wr, mut sr, mut wm, mut sm) = (0u64, 0u64, 0u64, 0u64);
    for b in 0..batches {
        // Insert wave: k fresh nodes on distinct-ish attach points.
        let joins: Vec<(NodeId, NodeId)> = (0..k)
            .map(|i| {
                let attach = live[(splitmix64(seed ^ 0xba7c ^ ((b * 64 + i) as u64))
                    % live.len() as u64) as usize];
                let u = NodeId(next);
                next += 1;
                (u, attach)
            })
            .collect();
        let a = waved.insert_batch(&joins);
        let c = seq.insert_batch_seq(&joins);
        (wr, wm) = (wr + a.rounds, wm + a.messages);
        (sr, sm) = (sr + c.rounds, sm + c.messages);
        live.extend(joins.iter().map(|&(u, _)| u));
        // Delete wave: k distinct victims.
        let mut victims: Vec<NodeId> = Vec::with_capacity(k);
        let mut draw = 0u64;
        while victims.len() < k {
            // The draw nonce advances on duplicates too, so the rejection
            // loop always makes progress.
            let v = live[(splitmix64(seed ^ 0xde1e ^ (b as u64 * 1024 + draw) ^ wr)
                % live.len() as u64) as usize];
            draw += 1;
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        live.retain(|u| !victims.contains(u));
        let a = waved.delete_batch(&victims);
        let c = seq.delete_batch_seq(&victims);
        (wr, wm) = (wr + a.rounds, wm + a.messages);
        (sr, sm) = (sr + c.rounds, sm + c.messages);
        invariants::assert_ok(&waved);
        invariants::assert_ok(&seq);
    }
    assert_eq!(
        waved.map.entries_sorted(),
        seq.map.entries_sorted(),
        "waved batch diverged from sequential under loss"
    );
    assert!(
        waved.batch_stats.waved_ops > 0,
        "wave engine disengaged under the fault spec"
    );
    format!(
        "{{\"loss_milli\": {loss}, \"batches\": {batches}, \"batch_size\": {k}, \
         \"waved_rounds\": {wr}, \"seq_rounds\": {sr}, \
         \"waved_messages\": {wm}, \"seq_messages\": {sm}, \
         \"waved_ops\": {}, \"wave_replans\": {}, \"bit_identical\": {}}}",
        waved.batch_stats.waved_ops,
        waved.fault_stats().wave_replans,
        waved.map.entries_sorted() == seq.map.entries_sorted(),
    )
}

/// One attack family re-run under loss with full invariant checking.
fn attack_point(name: &str, sc: &Scenario, opts: &RunOptions) -> String {
    let reports = run_trials(sc, opts);
    let agg = pool_aggregate(&reports);
    let mismatches: u64 = reports.iter().map(|r| r.dht_mismatches).sum();
    assert_eq!(mismatches, 0, "{name}: shadow oracle mismatch");
    let mut fs = FaultStats::default();
    for r in &reports {
        fs.merge(&r.fault_stats);
    }
    let l2_final = reports
        .iter()
        .map(|r| *r.lambda2.last().expect("trajectory"))
        .sum::<f64>()
        / reports.len() as f64;
    format!(
        "{{\"name\": \"{name}\", \"invariants_checked\": true, \"steps\": {}, \
         \"rounds\": {}, \"messages\": {}, \"lambda2_final\": {l2_final:.6}, \
         \"final_n\": [{}], \"faults\": {}}}",
        agg.steps,
        summary_json(&agg.rounds),
        summary_json(&agg.messages),
        reports
            .iter()
            .map(|r| r.final_n.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        fault_stats_json(&fs),
    )
}

fn main() {
    let args = parse_args();
    let n0: u64 = if args.smoke { 48 } else { 2048 };
    let trials = if args.trials > 0 {
        args.trials
    } else if args.smoke {
        2
    } else {
        3
    };
    let losses = loss_grid();
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_faults.json".to_string());

    let opts = RunOptions {
        n0,
        trials,
        seed: args.seed,
        // Sample λ₂ only at the endpoints: the curve wants "gap before vs
        // after the campaign", not a trajectory.
        lambda_every: 1 << 30,
        exec: None,
        threads: args.threads,
        heal_threads: 1,
        adaptive_crossover: false,
        check_invariants: args.smoke,
        keep_actions: false,
        keep_step_metrics: false,
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n0\": {n0}, \"trials\": {trials}, \"seed\": {}, \"smoke\": {}, \
         \"loss_grid\": [{}], \"fault_loss_knob\": {}, \"fault_retries_knob\": {}, \
         \"fault_seed_knob\": {}}},",
        args.seed,
        args.smoke,
        losses
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        dex::exec::knobs::fault_loss().map_or("null".into(), |v| v.to_string()),
        dex::exec::knobs::fault_retries().map_or("null".into(), |v| v.to_string()),
        dex::exec::knobs::fault_seed().map_or("null".into(), |v| v.to_string()),
    );
    let _ = writeln!(json, "  {},", dex_bench::exec_header_json());

    // ---- Section 1: engine-level delivery percolation -------------------
    let frozen = DexNetwork::bootstrap(
        DexConfig::new(splitmix64(args.seed ^ 0x9e1)).simplified(),
        n0,
    );
    let n_ops = if args.smoke { 200 } else { 2000 };
    let _ = writeln!(json, "  \"percolation\": [");
    for (i, &loss) in losses.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let point = percolation_point(frozen.graph(), loss, args.seed, n_ops, args.threads);
        println!(
            "percolation loss {loss:>4}  ({:.2}s)",
            t0.elapsed().as_secs_f64()
        );
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < losses.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ---- Section 2: protocol-level degradation curve --------------------
    let _ = writeln!(json, "  \"degradation\": [");
    for (i, &loss) in losses.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let (point, agg) = degradation_point(loss, &opts, args.smoke);
        println!(
            "degradation loss {loss:>4}  steps {:>5}  rounds p50/p95 {}/{}  ({:.2}s)",
            agg.steps,
            agg.rounds.p50,
            agg.rounds.p95,
            t0.elapsed().as_secs_f64()
        );
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < losses.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ---- Section 3: flood-aggregate degradation curve -------------------
    let flood_k = if args.smoke { 16 } else { 64 };
    let _ = writeln!(json, "  \"flood_degradation\": [");
    for (i, &loss) in losses.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let point = flood_point(frozen.graph(), loss, args.seed, flood_k, args.threads);
        println!("flood loss {loss:>4}  ({:.2}s)", t0.elapsed().as_secs_f64());
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < losses.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ---- Section 4: type-2 coordination degradation curve ---------------
    let _ = writeln!(json, "  \"type2_degradation\": [");
    for (i, &loss) in losses.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let point = type2_point(loss, args.seed, args.smoke, args.threads);
        println!("type2 loss {loss:>4}  ({:.2}s)", t0.elapsed().as_secs_f64());
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < losses.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");

    // ---- Section 5: waved vs sequential healing under loss --------------
    {
        let t0 = std::time::Instant::now();
        let point = wave_point(args.seed, args.smoke, args.threads);
        println!(
            "wave-vs-seq loss  350  ({:.2}s)",
            t0.elapsed().as_secs_f64()
        );
        let _ = writeln!(json, "  \"wave_vs_sequential\": {point},");
    }

    // ---- Section 6: attack families under loss, invariants on -----------
    let attack_loss = 350;
    let attack_opts = RunOptions {
        check_invariants: true,
        ..opts
    };
    let s = |a: usize, b: usize| if args.smoke { b } else { a };
    let attacks = [
        (
            "flash-crowd-under-loss",
            Scenario::new("flash-crowd-under-loss")
                .phase(Phase::Faults {
                    spec: spec_for(attack_loss, args.seed),
                })
                .phase(Phase::FlashCrowd {
                    waves: s(6, 2),
                    wave_size: s(48, 6),
                })
                .phase(Phase::FaultsOff),
        ),
        (
            "partition-heal-under-loss",
            Scenario::new("partition-heal-under-loss")
                .phase(Phase::Faults {
                    spec: spec_for(attack_loss, args.seed).with_partition(48, 6),
                })
                .phase(Phase::PartitionHeal {
                    bursts: s(3, 1),
                    burst_size: s(16, 3),
                    regrow: s(48, 6),
                })
                .phase(Phase::FaultsOff),
        ),
    ];
    let _ = writeln!(json, "  \"attacks\": [");
    for (i, (name, sc)) in attacks.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let point = attack_point(name, sc, &attack_opts);
        println!("attack {name:<28}  ({:.2}s)", t0.elapsed().as_secs_f64());
        let _ = writeln!(
            json,
            "    {point}{}",
            if i + 1 < attacks.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    std::fs::write(&out, &json).expect("write faults bench JSON");
    println!(
        "wrote {out} ({} loss points, {} attack families)",
        losses.len(),
        attacks.len()
    );
}
