//! Healing-throughput benchmark: the slot-arena Φ vs the legacy HashMap Φ
//! on the heal access pattern, plus end-to-end insert/delete/batch churn
//! on full DEX networks at n ∈ {20k, 200k, 1M}. Emits `BENCH_heal.json`.
//!
//! A counting global allocator measures **bytes allocated per healing
//! operation** in the single-threaded measurement pass — steady-state
//! type-1 healing is expected to allocate nothing (all hot-path buffers
//! are pooled in `HealScratch` / `FloodScratch`).
//!
//! Determinism: everything in the JSON except the timing fields is
//! bit-identical for a given `--seed` regardless of `--threads`; `--smoke`
//! omits the timing fields so the whole file is byte-identical (the CI
//! smoke job and the `heal_determinism` test rely on this).
//!
//! ```sh
//! cargo run --release -p dex-bench --bin bench_heal            # full, up to n≈1M
//! cargo run --release -p dex-bench --bin bench_heal -- --smoke # CI-sized
//! cargo run --release -p dex-bench --bin bench_heal -- --exec-threads 1
//! ```
//!
//! `--threads` is a deprecated alias of `--exec-threads`.

use dex_bench::alloc::{allocated_bytes, CountingAlloc};
use dex_bench::heal::{run_heal_bench, HealBenchOptions};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn main() {
    let mut opts = HealBenchOptions {
        alloc_bytes: Some(allocated_bytes),
        ..HealBenchOptions::default()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => opts.smoke = true,
            "--exec-threads" | "--threads" => {
                opts.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exec-threads N");
            }
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--trials" => {
                opts.trials = it.next().and_then(|v| v.parse().ok()).expect("--trials R");
            }
            other => {
                panic!("unknown flag {other:?} (try --smoke / --exec-threads / --seed / --trials)")
            }
        }
    }
    let json = run_heal_bench(&opts);
    std::fs::write("BENCH_heal.json", &json).expect("write BENCH_heal.json");
    println!("wrote BENCH_heal.json");
}
