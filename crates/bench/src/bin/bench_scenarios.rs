//! Scenario-engine benchmark: drives the `dex-workload` scenario families
//! against DEX at n ≈ 20k and emits `BENCH_scenarios.json` with per-step
//! percentile cost summaries and λ₂ trajectories.
//!
//! Determinism contract: everything in the JSON except the executor
//! header is **byte-identical** for a given `--seed` regardless of
//! `--exec-threads` (trials fan out over the order-preserving `par_map`;
//! nothing in the output depends on timing). The CI smoke job relies on
//! `--smoke` running every family at toy scale in seconds. `--threads`
//! is a deprecated alias of `--exec-threads`.
//!
//! ```sh
//! cargo run --release -p dex-bench --bin bench_scenarios            # full, n≈20k
//! cargo run --release -p dex-bench --bin bench_scenarios -- --smoke # CI-sized
//! cargo run --release -p dex-bench --bin bench_scenarios -- --exec-threads 1
//! ```

use dex::prelude::*;
use std::fmt::Write as _;

struct Args {
    smoke: bool,
    threads: usize,
    seed: u64,
    trials: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: dex::sim::parallel::default_threads(),
        seed: 0xd5c0_cafe,
        trials: 0, // 0 = scale default
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--exec-threads" | "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--exec-threads N");
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--trials" => {
                args.trials = it.next().and_then(|v| v.parse().ok()).expect("--trials R");
            }
            other => {
                panic!("unknown flag {other:?} (try --smoke / --exec-threads / --seed / --trials)")
            }
        }
    }
    args
}

/// The benchmark's scenario lineup. `full` scales every family to the
/// n ≈ 20k regime; otherwise sizes are CI-smoke toys. Shapes mirror the
/// evaluation workloads of the self-healing literature: flash crowds,
/// correlated/targeted failures, cut attacks with recovery, steady DHT
/// traffic over churn, and monotone growth/shrink phases.
fn lineup(full: bool) -> Vec<Scenario> {
    // (waves/bursts/steps, batch size, dht ops, churn steps)
    let s = |a: usize, b: usize| if full { a } else { b };
    vec![
        Scenario::new("flash-crowd").phase(Phase::FlashCrowd {
            waves: s(8, 2),
            wave_size: s(64, 6),
        }),
        Scenario::new("correlated-neighborhood-failures").phase(Phase::CorrelatedDelete {
            bursts: s(6, 2),
            burst_size: s(32, 4),
            targeting: Targeting::Neighborhood,
            replenish: true,
        }),
        Scenario::new("high-load-targeted-failures").phase(Phase::CorrelatedDelete {
            bursts: s(6, 2),
            burst_size: s(24, 4),
            targeting: Targeting::HighLoad,
            replenish: true,
        }),
        Scenario::new("partition-then-heal")
            .phase(Phase::PartitionHeal {
                bursts: s(4, 1),
                burst_size: s(24, 3),
                regrow: s(96, 6),
            })
            .phase(Phase::Churn {
                steps: s(64, 6),
                p_insert: 0.5,
            }),
        Scenario::new("dht-steady-traffic")
            .phase(Phase::DhtMix {
                ops: s(400, 24),
                read_pct: 70,
                keyspace: 1 << 20,
            })
            .phase(Phase::Churn {
                steps: s(48, 6),
                p_insert: 0.5,
            })
            .phase(Phase::DhtMix {
                ops: s(200, 12),
                read_pct: 90,
                keyspace: 1 << 20,
            }),
        Scenario::new("growth-only").phase(Phase::Growth { steps: s(256, 12) }),
        Scenario::new("shrink-only").phase(Phase::Shrink {
            steps: s(256, 12),
            floor: 8,
        }),
    ]
}

fn summary_json(s: &Summary) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {:.4}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        s.count, s.mean, s.p50, s.p95, s.p99, s.p999, s.max
    )
}

fn main() {
    let args = parse_args();
    let n0: u64 = if args.smoke { 48 } else { 20_000 };
    let trials = if args.trials > 0 {
        args.trials
    } else if args.smoke {
        2
    } else {
        4
    };
    let opts = RunOptions {
        n0,
        trials,
        seed: args.seed,
        lambda_every: if args.smoke { 16 } else { 64 },
        exec: None,
        threads: args.threads,
        // Trials already saturate the fan-out; plan batches inline.
        heal_threads: 1,
        adaptive_crossover: false,
        check_invariants: args.smoke, // free correctness coverage at toy scale
        // Aggregates come from the compact per-step logs; full traces and
        // StepMetrics records are dead weight at benchmark scale.
        keep_actions: false,
        keep_step_metrics: false,
    };
    let lineup = lineup(!args.smoke);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"config\": {{\"n0\": {n0}, \"trials\": {trials}, \"seed\": {}, \"lambda_every\": {}, \"smoke\": {}}},",
        args.seed, opts.lambda_every, args.smoke
    );
    let _ = writeln!(json, "  {},", dex_bench::exec_header_json());
    let _ = writeln!(json, "  \"scenarios\": [");

    for (i, sc) in lineup.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let reports = run_trials(sc, &opts);
        let wall = t0.elapsed().as_secs_f64();
        let agg = pool_aggregate(&reports);
        let mismatches: u64 = reports.iter().map(|r| r.dht_mismatches).sum();
        assert_eq!(mismatches, 0, "{}: DHT lost data", sc.name);

        println!(
            "{:<36} steps {:>5}  rounds p50/p95/max {}/{}/{}  messages p50/p95/max {}/{}/{}  type2 {}  ({wall:.2}s)",
            sc.name,
            agg.steps,
            agg.rounds.p50,
            agg.rounds.p95,
            agg.rounds.max,
            agg.messages.p50,
            agg.messages.p95,
            agg.messages.max,
            agg.type2_steps,
        );

        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", sc.name);
        let _ = writeln!(json, "      \"steps\": {},", agg.steps);
        let _ = writeln!(json, "      \"type2_steps\": {},", agg.type2_steps);
        let _ = writeln!(json, "      \"dht_mismatches\": {mismatches},");
        let _ = writeln!(
            json,
            "      \"final_n\": [{}],",
            reports
                .iter()
                .map(|r| r.final_n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(json, "      \"rounds\": {},", summary_json(&agg.rounds));
        let _ = writeln!(json, "      \"messages\": {},", summary_json(&agg.messages));
        let _ = writeln!(json, "      \"topology\": {},", summary_json(&agg.topology));
        let _ = writeln!(json, "      \"lambda2_trajectories\": [");
        for (t, r) in reports.iter().enumerate() {
            let traj = r
                .lambda2
                .iter()
                .map(|l| format!("{l:.6}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                json,
                "        [{traj}]{}",
                if t + 1 < reports.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < lineup.len() { "," } else { "" }
        );
    }

    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_scenarios.json", &json).expect("write BENCH_scenarios.json");
    println!(
        "wrote BENCH_scenarios.json ({} scenario families)",
        lineup.len()
    );
}
