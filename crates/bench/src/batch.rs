//! The single-network batch-heal benchmark behind `bench_batch` (and its
//! CI smoke + determinism tests): the parallel wave engine
//! (`dex_core::parheal`) against the sequential one-op-at-a-time path on
//! pure batch churn, at n ∈ {20k, 200k, 1M}. Emits `BENCH_batch.json`.
//!
//! Unlike `bench_heal` (which fans *trials* out over threads), every
//! number here comes from **one network**: the workload is an alternating
//! stream of batch inserts and batch deletes of `B` nodes, applied either
//! through `insert_batch_seq`/`delete_batch_seq` (the sequential oracle)
//! or through `insert_batch`/`delete_batch` (the wave engine) at several
//! planner thread counts.
//!
//! Reported per scale:
//!
//! - **Parity digests** — a fold of every step's charged (rounds,
//!   messages, topology) plus a final Φ/graph checksum. The sequential
//!   and every waved configuration must agree bit-for-bit (the binary
//!   asserts it); `parity` in the JSON records the check.
//! - **Throughput** — heal ops/s over the measured window for the
//!   sequential path and each waved thread count, with the waved/seq
//!   speedup. Timing fields are honest wall-clock measurements on the
//!   current machine; on a single-core container the thread sweep shows
//!   the engine's single-core gain only (see `sections` for the
//!   parallelizable fraction).
//! - **Per-section breakdown** — nanoseconds in the (parallelizable,
//!   read-only) planning pass vs the sequential partition/commit/serial
//!   segments, from [`dex::core::parheal::BatchHealStats`]; plus wave-size
//!   histograms, serial-fallback and replan counts.
//! - **Allocation** — bytes allocated per heal op (through
//!   [`crate::alloc`]) for the sequential path and the single-threaded
//!   waved path (steady state pools everything; pool workers keep their
//!   planning scratch in persistent per-worker slots, so warm waves
//!   allocate nothing and spawn nothing — `pool_spawns` records it).
//! - **Per-wave fan-out cost** — a direct microbench of one planning
//!   round's work distribution at 8 workers: persistent-pool handoff vs
//!   the per-call scoped spawn+join the engine paid before `dex-exec`.
//! - **Adaptive crossover** (small scale, full mode) — the deterministic
//!   small-n controller in auto mode: batches routed to the sequential
//!   path, ops kept waved by the probe schedule, throughput vs both the
//!   oracle and the pure waved engine.
//!
//! A `--type2` variant swaps the mixed churn for a type-2-heavy schedule
//! (pure batch growth through an inflation, then pure batch shrink
//! through a deflation), proving the pooled type-2 rebuild — permutation
//! resolution, cloud staging — stays bit-identical to the sequential
//! oracle; it is smoke-formatted and CI byte-diffs it across thread
//! counts like `--smoke`.
//!
//! Determinism contract: everything except the clearly-labelled timing
//! fields is a pure function of `(smoke, type2, seed)` — independent of
//! `--exec-threads`. In `--smoke`/`--type2` mode timing and allocation
//! fields are omitted and the JSON is **byte-identical** across thread
//! counts (CI runs `--exec-threads 1/3/8` and diffs the files; the
//! `batch_determinism` tests do the same in-process).

use dex::core::parheal::WAVE_HIST_BUCKETS;
use dex::prelude::*;
use dex::sim::rng::splitmix64;
use dex::sim::HistoryMode;
use std::fmt::Write as _;
use std::time::Instant;

/// Options for one benchmark run.
pub struct BatchBenchOptions {
    /// Toy scales, per-step invariant checking, no timing/alloc fields.
    pub smoke: bool,
    /// Type-2-heavy schedule (pure growth through an inflation, then pure
    /// shrink through a deflation) instead of the mixed churn: exercises
    /// the pooled type-2 rebuild (permutation resolution, cloud staging)
    /// inside batch steps. Smoke-formatted — the output is byte-identical
    /// for any `--threads` value and CI diffs 1/3/8.
    pub type2: bool,
    /// Planner thread count for the smoke parity pass (full mode sweeps a
    /// fixed list instead; results are bit-identical for any value).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Reads the process-wide allocated-bytes counter, when the caller
    /// installed [`crate::alloc::CountingAlloc`]. `None` ⇒ allocation
    /// fields are reported as `null`.
    pub alloc_bytes: Option<fn() -> u64>,
}

impl Default for BatchBenchOptions {
    fn default() -> Self {
        BatchBenchOptions {
            smoke: false,
            type2: false,
            threads: 1,
            seed: 0xba7c4,
            alloc_bytes: None,
        }
    }
}

/// One benchmark scale.
struct Scale {
    n0: u64,
    /// Ops per batch step.
    batch: usize,
    /// Total batch steps (first quarter is warmup; under a type-2
    /// schedule there is no warmup split — the whole run is measured).
    steps: usize,
    /// Type-2 schedule: the first `grow` steps are batch inserts and the
    /// rest batch deletes (forcing inflate → deflate); `None` ⇒ the
    /// mixed alternating schedule.
    grow: Option<usize>,
    /// Waved planner thread counts to sweep (full mode).
    sweep: &'static [usize],
}

/// Deterministic pure-batch churn driver: alternating batch inserts and
/// batch deletes of `batch` nodes, fan-in-safe attach points, distinct
/// victims. The schedule is a pure function of the seed — identical for
/// the sequential and every waved configuration.
struct BatchChurn {
    dex: DexNetwork,
    live: Vec<NodeId>,
    next_id: u64,
    state: u64,
    joins: Vec<(NodeId, NodeId)>,
    victims: Vec<NodeId>,
    /// Waved entry points (`false` ⇒ the `*_seq` oracle).
    waved: bool,
    /// Type-2 schedule: insert-only for the first `grow` steps, then
    /// delete-only (`None` ⇒ alternate).
    grow: Option<usize>,
    pub digest: u64,
    pub ops: u64,
}

impl BatchChurn {
    fn new(sc: &Scale, seed: u64, waved: bool, threads: usize, crossover: bool) -> Self {
        let n0 = sc.n0;
        let mut dex =
            DexNetwork::bootstrap(DexConfig::new(splitmix64(seed ^ 0xba7c4)).simplified(), n0);
        dex.net.set_history_mode(HistoryMode::Off);
        dex.set_heal_threads(threads);
        dex.set_adaptive_crossover(crossover);
        let live = dex.node_ids();
        let next_id = live.iter().map(|u| u.0).max().unwrap_or(0) + 1;
        BatchChurn {
            dex,
            live,
            next_id,
            state: splitmix64(seed ^ 0xc0de),
            joins: Vec::new(),
            victims: Vec::new(),
            waved,
            grow: sc.grow,
            digest: splitmix64(seed),
            ops: 0,
        }
    }

    #[inline]
    fn rnd(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// One batch step. Mixed schedule: even steps insert `batch` nodes,
    /// odd steps delete `batch` nodes (n oscillates around n0). Type-2
    /// schedule: insert-only while `s < grow`, delete-only after —
    /// driving the network through an inflation and then a deflation.
    fn step(&mut self, s: usize, batch: usize) {
        let inserting = match self.grow {
            Some(grow) => s < grow,
            None => s.is_multiple_of(2),
        };
        let m = if inserting {
            self.joins.clear();
            for _ in 0..batch {
                // Fan-in-safe attach point (validation caps fan-in at 8).
                let attach = loop {
                    let r = self.rnd();
                    let v = self.live[(r % self.live.len() as u64) as usize];
                    if self.joins.iter().filter(|&&(_, a)| a == v).count() < 8 {
                        break v;
                    }
                };
                let u = NodeId(self.next_id);
                self.next_id += 1;
                self.joins.push((u, attach));
            }
            let joins = std::mem::take(&mut self.joins);
            let m = if self.waved {
                self.dex.insert_batch(&joins)
            } else {
                self.dex.insert_batch_seq(&joins)
            };
            self.live.extend(joins.iter().map(|&(u, _)| u));
            self.joins = joins;
            m
        } else {
            self.victims.clear();
            for _ in 0..batch {
                let r = self.rnd();
                let idx = (r % self.live.len() as u64) as usize;
                self.victims.push(self.live.swap_remove(idx));
            }
            let victims = std::mem::take(&mut self.victims);
            let m = if self.waved {
                self.dex.delete_batch(&victims)
            } else {
                self.dex.delete_batch_seq(&victims)
            };
            self.victims = victims;
            m
        };
        self.ops += batch as u64;
        // `waves` is deliberately NOT folded: it is the one observable
        // allowed to differ between the waved and sequential paths.
        self.digest = splitmix64(self.digest ^ m.rounds);
        self.digest = splitmix64(self.digest ^ m.messages);
        self.digest = splitmix64(self.digest ^ m.topology_changes);
    }

    /// Fold the final Φ + graph state into the digest: node/edge counts,
    /// Φ counters, and every (vertex, owner) entry in canonical order.
    fn seal(&mut self) {
        let mut d = self.digest;
        d = splitmix64(d ^ self.dex.n() as u64);
        d = splitmix64(d ^ self.dex.graph().num_edges() as u64);
        d = splitmix64(d ^ self.dex.cycle.p());
        d = splitmix64(d ^ self.dex.map.spare_count() as u64);
        d = splitmix64(d ^ self.dex.map.low_count() as u64);
        d = splitmix64(d ^ self.dex.map.max_load());
        for (z, u) in self.dex.map.entries() {
            d = d.rotate_left(1) ^ (z.0 ^ splitmix64(u.0));
        }
        self.digest = splitmix64(d);
    }
}

/// Outcome of one configuration's run over a scale.
struct RunOutcome {
    digest: u64,
    measured_ops: u64,
    wall_s: f64,
    bytes: Option<u64>,
    /// Wave-engine stats over the measured window (zeroed for the
    /// sequential path).
    stats: dex::core::parheal::BatchHealStats,
    /// Steps whose recovery was a type-2 flavour (whole run).
    type2_steps: u64,
    /// Steps the adaptive crossover routed to the sequential path
    /// (whole run; 0 unless the crossover config is enabled).
    crossover_steps: u64,
    /// Executor threads spawned during the measured window — 0 on a warm
    /// pool (the warmup window absorbs the lazy spawns).
    pool_spawns: u64,
}

fn run_config(
    sc: &Scale,
    seed: u64,
    waved: bool,
    threads: usize,
    crossover: bool,
    opts: &BatchBenchOptions,
) -> RunOutcome {
    // Type-2 schedules measure the whole run (the inflate/deflate events
    // *are* the workload); mixed churn warms up for a quarter first.
    let warmup = if sc.grow.is_some() { 0 } else { sc.steps / 4 };
    let mut d = BatchChurn::new(sc, seed, waved, threads, crossover);
    let check = opts.smoke || opts.type2;
    for s in 0..warmup {
        d.step(s, sc.batch);
        if check {
            invariants::assert_ok(&d.dex);
        }
    }
    d.dex.batch_stats.reset();
    let ops0 = d.ops;
    let totals0 = d.dex.net.totals();
    let b0 = opts.alloc_bytes.map(|f| f());
    let spawns0 = dex::exec::total_spawns();
    let t0 = Instant::now();
    for s in warmup..sc.steps {
        d.step(s, sc.batch);
        if check {
            invariants::assert_ok(&d.dex);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let bytes = opts.alloc_bytes.map(|f| f() - b0.unwrap());
    invariants::check(&d.dex).expect("batch churn ended with an invariant violation");
    d.seal();
    RunOutcome {
        digest: d.digest,
        measured_ops: d.ops - ops0,
        wall_s,
        bytes,
        stats: d.dex.batch_stats.clone(),
        type2_steps: d.dex.net.totals().type2_steps - totals0.type2_steps,
        crossover_steps: d.dex.net.totals().crossover_steps - totals0.crossover_steps,
        pool_spawns: dex::exec::total_spawns() - spawns0,
    }
}

/// Per-wave fan-out cost, measured directly: one planning round's worth of
/// work distribution at 8 workers, (a) as a persistent-pool parked-worker
/// handoff round-trip and (b) as the pre-executor per-call scoped-thread
/// spawn+join the engine used to pay. The ratio is the structural win of
/// the pool on this machine, independent of workload noise.
fn fanout_microbench() -> (u64, u64) {
    const WORKERS: usize = 8;
    const ROUNDS: u32 = 1000;
    dex::exec::prewarm(WORKERS);
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        dex::exec::run_workers(WORKERS, |w| {
            std::hint::black_box(w);
        });
    }
    let pool_ns = (t0.elapsed().as_nanos() / ROUNDS as u128) as u64;
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        // This IS the measurement: the pre-executor per-call scoped
        // spawn+join baseline the parked-pool handoff is compared
        // against. Routing it through dex_exec would measure the pool
        // against itself.
        // dex-lint: allow(no-raw-threads) -- deliberate scoped-spawn cost baseline
        std::thread::scope(|s| {
            for i in 1..WORKERS {
                s.spawn(move || {
                    std::hint::black_box(i);
                });
            }
        });
    }
    let spawn_ns = (t0.elapsed().as_nanos() / ROUNDS as u128) as u64;
    (pool_ns, spawn_ns)
}

fn wave_hist_json(h: &[u64; WAVE_HIST_BUCKETS]) -> String {
    let entries: Vec<String> = h.iter().map(|c| c.to_string()).collect();
    format!("[{}]", entries.join(", "))
}

/// Run the benchmark and return the `BENCH_batch.json` contents.
pub fn run_batch_bench(opts: &BatchBenchOptions) -> String {
    let scales: Vec<Scale> = if opts.type2 {
        // Pure growth through an inflation, then pure shrink through a
        // deflation: p₀ = initial_prime(4n₀..8n₀), spares are exhausted
        // once n approaches p₀ (inflate), and Low empties once the
        // contracted network is overloaded (deflate). Sized so both fire
        // deterministically; the run asserts they did.
        vec![
            Scale {
                n0: 48,
                batch: 16,
                steps: 22,
                grow: Some(10),
                sweep: &[],
            },
            Scale {
                n0: 96,
                batch: 24,
                steps: 29,
                grow: Some(13),
                sweep: &[],
            },
        ]
    } else if opts.smoke {
        vec![
            Scale {
                n0: 192,
                batch: 16,
                steps: 24,
                grow: None,
                sweep: &[],
            },
            Scale {
                n0: 768,
                batch: 24,
                steps: 32,
                grow: None,
                sweep: &[],
            },
        ]
    } else {
        vec![
            Scale {
                n0: 20_000,
                batch: 64,
                steps: 2400,
                grow: None,
                sweep: &[1, 2, 4, 8],
            },
            Scale {
                n0: 200_000,
                batch: 64,
                steps: 1600,
                grow: None,
                sweep: &[1, 2, 4, 8],
            },
            Scale {
                n0: 1_000_000,
                batch: 64,
                steps: 640,
                grow: None,
                sweep: &[1, 8],
            },
        ]
    };
    let deterministic_output = opts.smoke || opts.type2;

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let schedule = if opts.type2 { "type2" } else { "mixed" };
    // `deterministic` is what gates timing-field omission; `smoke`
    // faithfully reflects the flag (a `--type2` run is deterministic but
    // not a smoke run).
    let _ = writeln!(
        json,
        "  \"config\": {{\"smoke\": {}, \"schedule\": \"{schedule}\", \"deterministic\": {deterministic_output}, \"seed\": {}}},",
        opts.smoke, opts.seed
    );
    // Machine context for reading the thread sweep: real multi-core
    // measurements and single-core pool-handoff numbers look alike in a
    // flat table — `available_parallelism` vs `thread_budget` is what
    // distinguishes them (and flags Amdahl projections as projections).
    let _ = writeln!(json, "  {},", crate::exec_header_json());
    if !deterministic_output {
        let (pool_ns, spawn_ns) = fanout_microbench();
        let _ = writeln!(
            json,
            "  \"per_wave_fanout\": {{\"workers\": 8, \"pool_handoff_ns_per_round\": {pool_ns}, \"scoped_spawn_ns_per_round\": {spawn_ns}, \"reduction\": {:.1}}},",
            spawn_ns as f64 / pool_ns.max(1) as f64
        );
        println!(
            "per-wave fan-out (8 workers): pool handoff {pool_ns} ns/round vs scoped spawn {spawn_ns} ns/round ({:.1}x cheaper)",
            spawn_ns as f64 / pool_ns.max(1) as f64
        );
    }
    let _ = writeln!(json, "  \"scales\": [");
    for (i, sc) in scales.iter().enumerate() {
        let seed = splitmix64(opts.seed ^ sc.n0);
        let warmup = if sc.grow.is_some() { 0 } else { sc.steps / 4 };
        let measured_steps = sc.steps - warmup;

        // Sequential oracle.
        let seq = run_config(sc, seed, false, 1, false, opts);
        let seq_ops_s = seq.measured_ops as f64 / seq.wall_s;

        // Waved sweep: smoke/type2 runs only the caller's thread count
        // (results are bit-identical for any value — that's what CI
        // diffs); full mode sweeps the scale's list.
        let sweep: Vec<usize> = if deterministic_output {
            vec![opts.threads.max(1)]
        } else {
            sc.sweep.to_vec()
        };
        let waved: Vec<(usize, RunOutcome)> = sweep
            .iter()
            .map(|&t| (t, run_config(sc, seed, true, t, false, opts)))
            .collect();
        for (t, w) in &waved {
            assert_eq!(
                w.digest, seq.digest,
                "waved (threads={t}) and sequential state diverged at n0={}",
                sc.n0
            );
            assert_eq!(
                w.type2_steps, seq.type2_steps,
                "waved (threads={t}) type-2 schedule diverged at n0={}",
                sc.n0
            );
        }
        if opts.type2 {
            assert!(
                seq.type2_steps >= 2,
                "type-2 schedule must trigger an inflation and a deflation \
                 (got {} type-2 steps at n0={})",
                seq.type2_steps,
                sc.n0
            );
        }

        let _ = writeln!(json, "    {{");
        let _ = writeln!(
            json,
            "      \"n0\": {}, \"batch\": {}, \"steps\": {}, \"measured_steps\": {measured_steps}, \"measured_ops\": {},",
            sc.n0, sc.batch, sc.steps, seq.measured_ops
        );
        let _ = writeln!(
            json,
            "      \"digest\": \"{:#018x}\", \"parity\": true,",
            seq.digest
        );
        let _ = writeln!(json, "      \"invariants\": \"ok\",");
        let _ = writeln!(json, "      \"type2_steps\": {},", seq.type2_steps);
        // Sequential section.
        let mut line = String::from("      \"seq\": {");
        if !deterministic_output {
            let _ = write!(
                line,
                "\"ops_per_sec\": {:.0}, \"wall_s\": {:.3}, \"bytes_per_op\": {}",
                seq_ops_s,
                seq.wall_s,
                seq.bytes
                    .map(|b| (b / seq.measured_ops.max(1)).to_string())
                    .unwrap_or_else(|| "null".into())
            );
        } else {
            let _ = write!(line, "\"measured\": true");
        }
        line.push_str("},");
        let _ = writeln!(json, "{line}");
        if !deterministic_output {
            println!(
                "n0={:<9} seq   {:>10.0} ops/s  ({} ops in {:.3}s)",
                sc.n0, seq_ops_s, seq.measured_ops, seq.wall_s
            );
        }
        // Waved sections.
        let _ = writeln!(json, "      \"waved\": [");
        for (j, (t, w)) in waved.iter().enumerate() {
            let s = &w.stats;
            let _ = writeln!(json, "        {{");
            if deterministic_output {
                // The thread count must not appear in smoke output: the
                // whole point of the CI diff is that nothing else depends
                // on it.
                let _ = writeln!(json, "          \"threads\": \"any\",");
            } else {
                let _ = writeln!(json, "          \"threads\": {t},");
            }
            if !deterministic_output {
                let ops_s = w.measured_ops as f64 / w.wall_s;
                let _ = writeln!(
                    json,
                    "          \"ops_per_sec\": {:.0}, \"wall_s\": {:.3}, \"speedup_vs_seq\": {:.3}, \"bytes_per_op\": {},",
                    ops_s,
                    w.wall_s,
                    ops_s / seq_ops_s,
                    w.bytes
                        .map(|b| (b / w.measured_ops.max(1)).to_string())
                        .unwrap_or_else(|| "null".into())
                );
                let sect_total = (s.plan_ns + s.partition_ns + s.commit_ns + s.serial_ns).max(1);
                let _ = writeln!(
                    json,
                    "          \"sections\": {{\"plan_ns\": {}, \"partition_ns\": {}, \"commit_ns\": {}, \"serial_ns\": {}, \"plan_fraction\": {:.3}}},",
                    s.plan_ns,
                    s.partition_ns,
                    s.commit_ns,
                    s.serial_ns,
                    s.plan_ns as f64 / sect_total as f64
                );
                // A warm pool spawns nothing inside the measured window —
                // the per-wave fan-out cost is parked-worker handoffs only.
                let _ = writeln!(json, "          \"pool_spawns\": {},", w.pool_spawns);
                println!(
                    "n0={:<9} waved {:>10.0} ops/s  (threads {t}, {:.2}x vs seq; plan {:.0}% of engine time; waves {} serial {} replans {})",
                    sc.n0,
                    ops_s,
                    ops_s / seq_ops_s,
                    100.0 * s.plan_ns as f64 / sect_total as f64,
                    s.waves,
                    s.serial_ops,
                    s.replans
                );
            }
            let _ = writeln!(
                json,
                "          \"waves\": {}, \"waved_ops\": {}, \"serial_ops\": {}, \"replans\": {}, \"max_wave\": {},",
                s.waves, s.waved_ops, s.serial_ops, s.replans, s.max_wave
            );
            let _ = writeln!(
                json,
                "          \"wave_hist_log2\": {}",
                wave_hist_json(&s.wave_hist)
            );
            let _ = writeln!(
                json,
                "        }}{}",
                if j + 1 < waved.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        if !deterministic_output {
            // Amdahl projection from the measured 1-thread sections: the
            // planning pass is read-only and chunk-deterministic, so it
            // divides across workers; partition/commit/serial stay
            // sequential by design, and driver overhead (wall minus
            // engine sections) is unchanged. This is a PROJECTION, not a
            // measurement — the container this runs in is pinned to
            // `available_parallelism` cores and the measured sweep above
            // is the ground truth for this machine.
            if let Some((_, w1)) = waved.iter().find(|(t, _)| *t == 1) {
                let s = &w1.stats;
                let proj_threads = 8.0f64;
                let saved_s = s.plan_ns as f64 * (1.0 - 1.0 / proj_threads) / 1e9;
                let proj_wall = (w1.wall_s - saved_s).max(1e-9);
                let proj_ops_s = w1.measured_ops as f64 / proj_wall;
                let _ = writeln!(
                    json,
                    "      ,\"projection\": {{\"kind\": \"amdahl_from_measured_sections\", \"threads\": 8, \"ops_per_sec\": {:.0}, \"speedup_vs_seq\": {:.3}, \"assumes\": \"plan phase divides by threads; partition/commit/serial and driver overhead unchanged; zero fan-out cost\"}}",
                    proj_ops_s,
                    proj_ops_s / seq_ops_s
                );
                println!(
                    "n0={:<9} proj  {:>10.0} ops/s  (8-thread Amdahl projection from 1-thread sections, {:.2}x vs seq)",
                    sc.n0,
                    proj_ops_s,
                    proj_ops_s / seq_ops_s
                );
            }
            // Adaptive small-n crossover, auto mode: the controller routes
            // cache-resident batches to the sequential path (decision
            // recorded per step in `StepMetrics::crossover`). Only the
            // small scale is in the controller's regime — larger scales
            // always wave, so re-running them tells us nothing.
            if sc.n0 < 100_000 {
                let auto = run_config(sc, seed, true, 8, true, opts);
                assert_eq!(
                    auto.digest, seq.digest,
                    "crossover (auto) state diverged at n0={}",
                    sc.n0
                );
                let auto_ops_s = auto.measured_ops as f64 / auto.wall_s;
                let _ = writeln!(
                    json,
                    "      ,\"crossover_auto\": {{\"ops_per_sec\": {:.0}, \"wall_s\": {:.3}, \"speedup_vs_seq\": {:.3}, \"crossover_steps\": {}, \"crossover_batches\": {}, \"crossover_ops\": {}, \"waved_ops\": {}}}",
                    auto_ops_s,
                    auto.wall_s,
                    auto_ops_s / seq_ops_s,
                    auto.crossover_steps,
                    auto.stats.crossover_batches,
                    auto.stats.crossover_ops,
                    auto.stats.waved_ops
                );
                println!(
                    "n0={:<9} auto  {:>10.0} ops/s  (adaptive crossover, {:.2}x vs seq; {} batches routed seq / {} ops, {} waved ops kept by probes)",
                    sc.n0,
                    auto_ops_s,
                    auto_ops_s / seq_ops_s,
                    auto.stats.crossover_batches,
                    auto.stats.crossover_ops,
                    auto.stats.waved_ops
                );
            }
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < scales.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}
