//! The single-network batch-heal benchmark behind `bench_batch` (and its
//! CI smoke + determinism tests): the parallel wave engine
//! (`dex_core::parheal`) against the sequential one-op-at-a-time path on
//! pure batch churn, at n ∈ {20k, 200k, 1M}. Emits `BENCH_batch.json`.
//!
//! Unlike `bench_heal` (which fans *trials* out over threads), every
//! number here comes from **one network**: the workload is an alternating
//! stream of batch inserts and batch deletes of `B` nodes, applied either
//! through `insert_batch_seq`/`delete_batch_seq` (the sequential oracle)
//! or through `insert_batch`/`delete_batch` (the wave engine) at several
//! planner thread counts.
//!
//! Reported per scale:
//!
//! - **Parity digests** — a fold of every step's charged (rounds,
//!   messages, topology) plus a final Φ/graph checksum. The sequential
//!   and every waved configuration must agree bit-for-bit (the binary
//!   asserts it); `parity` in the JSON records the check.
//! - **Throughput** — heal ops/s over the measured window for the
//!   sequential path and each waved thread count, with the waved/seq
//!   speedup. Timing fields are honest wall-clock measurements on the
//!   current machine; on a single-core container the thread sweep shows
//!   the engine's single-core gain only (see `sections` for the
//!   parallelizable fraction).
//! - **Per-section breakdown** — nanoseconds in the (parallelizable,
//!   read-only) planning pass vs the sequential partition/commit/serial
//!   segments, from [`dex::core::parheal::BatchHealStats`]; plus wave-size
//!   histograms, serial-fallback and replan counts.
//! - **Allocation** — bytes allocated per heal op (through
//!   [`crate::alloc`]) for the sequential path and the single-threaded
//!   waved path (steady state pools everything; waved planning at > 1
//!   thread allocates per-worker scratch by design).
//!
//! Determinism contract: everything except the clearly-labelled timing
//! fields is a pure function of `(smoke, seed)` — independent of
//! `--threads`. In `--smoke` mode timing and allocation fields are
//! omitted and the JSON is **byte-identical** across thread counts (CI
//! runs `--threads 1/3/8` and diffs the files; the `batch_determinism`
//! test does the same in-process).

use dex::core::parheal::WAVE_HIST_BUCKETS;
use dex::prelude::*;
use dex::sim::rng::splitmix64;
use dex::sim::HistoryMode;
use std::fmt::Write as _;
use std::time::Instant;

/// Options for one benchmark run.
pub struct BatchBenchOptions {
    /// Toy scales, per-step invariant checking, no timing/alloc fields.
    pub smoke: bool,
    /// Planner thread count for the smoke parity pass (full mode sweeps a
    /// fixed list instead; results are bit-identical for any value).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Reads the process-wide allocated-bytes counter, when the caller
    /// installed [`crate::alloc::CountingAlloc`]. `None` ⇒ allocation
    /// fields are reported as `null`.
    pub alloc_bytes: Option<fn() -> u64>,
}

impl Default for BatchBenchOptions {
    fn default() -> Self {
        BatchBenchOptions {
            smoke: false,
            threads: 1,
            seed: 0xba7c4,
            alloc_bytes: None,
        }
    }
}

/// One benchmark scale.
struct Scale {
    n0: u64,
    /// Ops per batch step.
    batch: usize,
    /// Total batch steps (first quarter is warmup).
    steps: usize,
    /// Waved planner thread counts to sweep (full mode).
    sweep: &'static [usize],
}

/// Deterministic pure-batch churn driver: alternating batch inserts and
/// batch deletes of `batch` nodes, fan-in-safe attach points, distinct
/// victims. The schedule is a pure function of the seed — identical for
/// the sequential and every waved configuration.
struct BatchChurn {
    dex: DexNetwork,
    live: Vec<NodeId>,
    next_id: u64,
    state: u64,
    joins: Vec<(NodeId, NodeId)>,
    victims: Vec<NodeId>,
    /// Waved entry points (`false` ⇒ the `*_seq` oracle).
    waved: bool,
    pub digest: u64,
    pub ops: u64,
}

impl BatchChurn {
    fn new(n0: u64, seed: u64, waved: bool, threads: usize) -> Self {
        let mut dex =
            DexNetwork::bootstrap(DexConfig::new(splitmix64(seed ^ 0xba7c4)).simplified(), n0);
        dex.net.set_history_mode(HistoryMode::Off);
        dex.set_heal_threads(threads);
        let live = dex.node_ids();
        let next_id = live.iter().map(|u| u.0).max().unwrap_or(0) + 1;
        BatchChurn {
            dex,
            live,
            next_id,
            state: splitmix64(seed ^ 0xc0de),
            joins: Vec::new(),
            victims: Vec::new(),
            waved,
            digest: splitmix64(seed),
            ops: 0,
        }
    }

    #[inline]
    fn rnd(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// One batch step: even steps insert `batch` nodes, odd steps delete
    /// `batch` nodes (n oscillates around n0).
    fn step(&mut self, s: usize, batch: usize) {
        let m = if s.is_multiple_of(2) {
            self.joins.clear();
            for _ in 0..batch {
                // Fan-in-safe attach point (validation caps fan-in at 8).
                let attach = loop {
                    let r = self.rnd();
                    let v = self.live[(r % self.live.len() as u64) as usize];
                    if self.joins.iter().filter(|&&(_, a)| a == v).count() < 8 {
                        break v;
                    }
                };
                let u = NodeId(self.next_id);
                self.next_id += 1;
                self.joins.push((u, attach));
            }
            let joins = std::mem::take(&mut self.joins);
            let m = if self.waved {
                self.dex.insert_batch(&joins)
            } else {
                self.dex.insert_batch_seq(&joins)
            };
            self.live.extend(joins.iter().map(|&(u, _)| u));
            self.joins = joins;
            m
        } else {
            self.victims.clear();
            for _ in 0..batch {
                let r = self.rnd();
                let idx = (r % self.live.len() as u64) as usize;
                self.victims.push(self.live.swap_remove(idx));
            }
            let victims = std::mem::take(&mut self.victims);
            let m = if self.waved {
                self.dex.delete_batch(&victims)
            } else {
                self.dex.delete_batch_seq(&victims)
            };
            self.victims = victims;
            m
        };
        self.ops += batch as u64;
        // `waves` is deliberately NOT folded: it is the one observable
        // allowed to differ between the waved and sequential paths.
        self.digest = splitmix64(self.digest ^ m.rounds);
        self.digest = splitmix64(self.digest ^ m.messages);
        self.digest = splitmix64(self.digest ^ m.topology_changes);
    }

    /// Fold the final Φ + graph state into the digest: node/edge counts,
    /// Φ counters, and every (vertex, owner) entry in canonical order.
    fn seal(&mut self) {
        let mut d = self.digest;
        d = splitmix64(d ^ self.dex.n() as u64);
        d = splitmix64(d ^ self.dex.graph().num_edges() as u64);
        d = splitmix64(d ^ self.dex.cycle.p());
        d = splitmix64(d ^ self.dex.map.spare_count() as u64);
        d = splitmix64(d ^ self.dex.map.low_count() as u64);
        d = splitmix64(d ^ self.dex.map.max_load());
        for (z, u) in self.dex.map.entries() {
            d = d.rotate_left(1) ^ (z.0 ^ splitmix64(u.0));
        }
        self.digest = splitmix64(d);
    }
}

/// Outcome of one configuration's run over a scale.
struct RunOutcome {
    digest: u64,
    measured_ops: u64,
    wall_s: f64,
    bytes: Option<u64>,
    /// Wave-engine stats over the measured window (zeroed for the
    /// sequential path).
    stats: dex::core::parheal::BatchHealStats,
}

fn run_config(
    sc: &Scale,
    seed: u64,
    waved: bool,
    threads: usize,
    opts: &BatchBenchOptions,
) -> RunOutcome {
    let warmup = sc.steps / 4;
    let mut d = BatchChurn::new(sc.n0, seed, waved, threads);
    for s in 0..warmup {
        d.step(s, sc.batch);
        if opts.smoke {
            invariants::assert_ok(&d.dex);
        }
    }
    d.dex.batch_stats.reset();
    let ops0 = d.ops;
    let b0 = opts.alloc_bytes.map(|f| f());
    let t0 = Instant::now();
    for s in warmup..sc.steps {
        d.step(s, sc.batch);
        if opts.smoke {
            invariants::assert_ok(&d.dex);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let bytes = opts.alloc_bytes.map(|f| f() - b0.unwrap());
    invariants::check(&d.dex).expect("batch churn ended with an invariant violation");
    d.seal();
    RunOutcome {
        digest: d.digest,
        measured_ops: d.ops - ops0,
        wall_s,
        bytes,
        stats: d.dex.batch_stats.clone(),
    }
}

fn wave_hist_json(h: &[u64; WAVE_HIST_BUCKETS]) -> String {
    let entries: Vec<String> = h.iter().map(|c| c.to_string()).collect();
    format!("[{}]", entries.join(", "))
}

/// Run the benchmark and return the `BENCH_batch.json` contents.
pub fn run_batch_bench(opts: &BatchBenchOptions) -> String {
    let scales: Vec<Scale> = if opts.smoke {
        vec![
            Scale {
                n0: 192,
                batch: 16,
                steps: 24,
                sweep: &[],
            },
            Scale {
                n0: 768,
                batch: 24,
                steps: 32,
                sweep: &[],
            },
        ]
    } else {
        vec![
            Scale {
                n0: 20_000,
                batch: 64,
                steps: 2400,
                sweep: &[1, 2, 4, 8],
            },
            Scale {
                n0: 200_000,
                batch: 64,
                steps: 1600,
                sweep: &[1, 2, 4, 8],
            },
            Scale {
                n0: 1_000_000,
                batch: 64,
                steps: 640,
                sweep: &[1, 8],
            },
        ]
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    if opts.smoke {
        let _ = writeln!(
            json,
            "  \"config\": {{\"smoke\": true, \"seed\": {}}},",
            opts.seed
        );
    } else {
        // Machine context for reading the thread sweep: with fewer cores
        // than swept threads the measured sweep is flat by construction
        // (the engine clamps workers to the available parallelism) and
        // the `projection` objects carry the multicore story.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let _ = writeln!(
            json,
            "  \"config\": {{\"smoke\": false, \"seed\": {}, \"available_parallelism\": {cores}}},",
            opts.seed
        );
    }
    let _ = writeln!(json, "  \"scales\": [");
    for (i, sc) in scales.iter().enumerate() {
        let seed = splitmix64(opts.seed ^ sc.n0);
        let measured_steps = sc.steps - sc.steps / 4;

        // Sequential oracle.
        let seq = run_config(sc, seed, false, 1, opts);
        let seq_ops_s = seq.measured_ops as f64 / seq.wall_s;

        // Waved sweep: smoke runs only the caller's thread count (results
        // are bit-identical for any value — that's what CI diffs); full
        // mode sweeps the scale's list.
        let sweep: Vec<usize> = if opts.smoke {
            vec![opts.threads.max(1)]
        } else {
            sc.sweep.to_vec()
        };
        let waved: Vec<(usize, RunOutcome)> = sweep
            .iter()
            .map(|&t| (t, run_config(sc, seed, true, t, opts)))
            .collect();
        for (t, w) in &waved {
            assert_eq!(
                w.digest, seq.digest,
                "waved (threads={t}) and sequential state diverged at n0={}",
                sc.n0
            );
        }

        let _ = writeln!(json, "    {{");
        let _ = writeln!(
            json,
            "      \"n0\": {}, \"batch\": {}, \"steps\": {}, \"measured_steps\": {measured_steps}, \"measured_ops\": {},",
            sc.n0, sc.batch, sc.steps, seq.measured_ops
        );
        let _ = writeln!(
            json,
            "      \"digest\": \"{:#018x}\", \"parity\": true,",
            seq.digest
        );
        let _ = writeln!(json, "      \"invariants\": \"ok\",");
        // Sequential section.
        let mut line = String::from("      \"seq\": {");
        if !opts.smoke {
            let _ = write!(
                line,
                "\"ops_per_sec\": {:.0}, \"wall_s\": {:.3}, \"bytes_per_op\": {}",
                seq_ops_s,
                seq.wall_s,
                seq.bytes
                    .map(|b| (b / seq.measured_ops.max(1)).to_string())
                    .unwrap_or_else(|| "null".into())
            );
        } else {
            let _ = write!(line, "\"measured\": true");
        }
        line.push_str("},");
        let _ = writeln!(json, "{line}");
        if !opts.smoke {
            println!(
                "n0={:<9} seq   {:>10.0} ops/s  ({} ops in {:.3}s)",
                sc.n0, seq_ops_s, seq.measured_ops, seq.wall_s
            );
        }
        // Waved sections.
        let _ = writeln!(json, "      \"waved\": [");
        for (j, (t, w)) in waved.iter().enumerate() {
            let s = &w.stats;
            let _ = writeln!(json, "        {{");
            if opts.smoke {
                // The thread count must not appear in smoke output: the
                // whole point of the CI diff is that nothing else depends
                // on it.
                let _ = writeln!(json, "          \"threads\": \"any\",");
            } else {
                let _ = writeln!(json, "          \"threads\": {t},");
            }
            if !opts.smoke {
                let ops_s = w.measured_ops as f64 / w.wall_s;
                let _ = writeln!(
                    json,
                    "          \"ops_per_sec\": {:.0}, \"wall_s\": {:.3}, \"speedup_vs_seq\": {:.3}, \"bytes_per_op\": {},",
                    ops_s,
                    w.wall_s,
                    ops_s / seq_ops_s,
                    w.bytes
                        .map(|b| (b / w.measured_ops.max(1)).to_string())
                        .unwrap_or_else(|| "null".into())
                );
                let sect_total = (s.plan_ns + s.partition_ns + s.commit_ns + s.serial_ns).max(1);
                let _ = writeln!(
                    json,
                    "          \"sections\": {{\"plan_ns\": {}, \"partition_ns\": {}, \"commit_ns\": {}, \"serial_ns\": {}, \"plan_fraction\": {:.3}}},",
                    s.plan_ns,
                    s.partition_ns,
                    s.commit_ns,
                    s.serial_ns,
                    s.plan_ns as f64 / sect_total as f64
                );
                println!(
                    "n0={:<9} waved {:>10.0} ops/s  (threads {t}, {:.2}x vs seq; plan {:.0}% of engine time; waves {} serial {} replans {})",
                    sc.n0,
                    ops_s,
                    ops_s / seq_ops_s,
                    100.0 * s.plan_ns as f64 / sect_total as f64,
                    s.waves,
                    s.serial_ops,
                    s.replans
                );
            }
            let _ = writeln!(
                json,
                "          \"waves\": {}, \"waved_ops\": {}, \"serial_ops\": {}, \"replans\": {}, \"max_wave\": {},",
                s.waves, s.waved_ops, s.serial_ops, s.replans, s.max_wave
            );
            let _ = writeln!(
                json,
                "          \"wave_hist_log2\": {}",
                wave_hist_json(&s.wave_hist)
            );
            let _ = writeln!(
                json,
                "        }}{}",
                if j + 1 < waved.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "      ]");
        if !opts.smoke {
            // Amdahl projection from the measured 1-thread sections: the
            // planning pass is read-only and chunk-deterministic, so it
            // divides across workers; partition/commit/serial stay
            // sequential by design, and driver overhead (wall minus
            // engine sections) is unchanged. This is a PROJECTION, not a
            // measurement — the container this runs in is pinned to
            // `available_parallelism` cores and the measured sweep above
            // is the ground truth for this machine.
            if let Some((_, w1)) = waved.iter().find(|(t, _)| *t == 1) {
                let s = &w1.stats;
                let proj_threads = 8.0f64;
                let saved_s = s.plan_ns as f64 * (1.0 - 1.0 / proj_threads) / 1e9;
                let proj_wall = (w1.wall_s - saved_s).max(1e-9);
                let proj_ops_s = w1.measured_ops as f64 / proj_wall;
                let _ = writeln!(
                    json,
                    "      ,\"projection\": {{\"kind\": \"amdahl_from_measured_sections\", \"threads\": 8, \"ops_per_sec\": {:.0}, \"speedup_vs_seq\": {:.3}, \"assumes\": \"plan phase divides by threads; partition/commit/serial and driver overhead unchanged; zero fan-out cost\"}}",
                    proj_ops_s,
                    proj_ops_s / seq_ops_s
                );
                println!(
                    "n0={:<9} proj  {:>10.0} ops/s  (8-thread Amdahl projection from 1-thread sections, {:.2}x vs seq)",
                    sc.n0,
                    proj_ops_s,
                    proj_ops_s / seq_ops_s
                );
            }
        }
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < scales.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}
