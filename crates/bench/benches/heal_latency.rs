//! Healing latency (simulation wall-clock) vs network size — the
//! criterion companion to experiment E1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex::prelude::*;
use std::hint::black_box;

fn bench_heal(c: &mut Criterion) {
    let mut group = c.benchmark_group("heal_latency");
    group.sample_size(20);
    for n in [64u64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("insert_delete", n), &n, |b, &n| {
            let mut net = DexNetwork::bootstrap(DexConfig::new(9).staggered(), n);
            let mut next = 20_000_000u64;
            b.iter(|| {
                let v = net.node_ids()[0];
                let id = NodeId(next);
                next += 1;
                net.insert(id, v);
                net.delete(id);
                black_box(net.n());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heal);
criterion_main!(benches);
