//! Φ mapping-op microbenchmarks at n ≈ 100k: assign / transfer / remove
//! on the slot-arena `VirtualMapping` vs the legacy HashMap oracle.
//!
//! Complements `bench_heal`'s end-to-end numbers with per-op costs: the
//! transfer benchmark is the exact op every type-1 heal performs, and the
//! assign+remove pair is the type-2 rebuild shape.

use criterion::{criterion_group, criterion_main, Criterion};
use dex::core::mapping::oracle::HashMapping;
use dex::core::VirtualMapping;
use dex::graph::primes;
use dex::prelude::*;
use std::hint::black_box;

const N: u64 = 100_000;

fn filled_slot(p: u64) -> VirtualMapping {
    let mut m = VirtualMapping::with_vertex_capacity(8, p);
    for z in 0..p {
        m.assign(VertexId(z), NodeId(z % N));
    }
    m
}

fn filled_hash(p: u64) -> HashMapping {
    let mut m = HashMapping::new(8);
    for z in 0..p {
        m.assign(VertexId(z), NodeId(z % N));
    }
    m
}

fn bench_mapping_ops(c: &mut Criterion) {
    let p = primes::initial_prime(N);
    let mut group = c.benchmark_group("mapping_ops_n100k");
    group.sample_size(20);

    // --- transfer (the type-1 heal op): move a vertex between nodes ---
    let mut slot = filled_slot(p);
    let mut i = 0u64;
    group.bench_function("transfer_slot", |b| {
        b.iter(|| {
            let z = VertexId(i % p);
            let to = NodeId((i * 7 + 1) % N);
            i += 1;
            black_box(slot.transfer(z, to))
        });
    });
    let mut hash = filled_hash(p);
    let mut i = 0u64;
    group.bench_function("transfer_hash", |b| {
        b.iter(|| {
            let z = VertexId(i % p);
            let to = NodeId((i * 7 + 1) % N);
            i += 1;
            black_box(hash.transfer(z, to))
        });
    });

    // --- owner resolution (the fabric op, ~6 per vertex move) ---
    let mix = |i: u64| {
        // splitmix-style avalanche: uniform accesses, like real chords.
        let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        (x ^ (x >> 27)) % p
    };
    let slot = filled_slot(p);
    let mut i = 0u64;
    group.bench_function("owner_of_slot", |b| {
        b.iter(|| {
            i += 1;
            black_box(slot.owner_of(VertexId(mix(i))))
        });
    });
    let hash = filled_hash(p);
    let mut i = 0u64;
    group.bench_function("owner_of_hash", |b| {
        b.iter(|| {
            i += 1;
            black_box(hash.owner_of(VertexId(mix(i))))
        });
    });

    // --- assign + remove cycle (batch / type-2 rebuild shape) ---
    let mut slot = filled_slot(p);
    let mut i = 0u64;
    group.bench_function("assign_remove_slot", |b| {
        b.iter(|| {
            let z = VertexId(i % p);
            i += 1;
            let u = slot.unassign(z);
            slot.assign(z, u);
            black_box(slot.load(u))
        });
    });
    let mut hash = filled_hash(p);
    let mut i = 0u64;
    group.bench_function("assign_remove_hash", |b| {
        b.iter(|| {
            let z = VertexId(i % p);
            i += 1;
            let u = hash.unassign(z);
            hash.assign(z, u);
            black_box(hash.load(u))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_mapping_ops);
criterion_main!(benches);
