//! DHT operation cost (simulation wall-clock) — criterion companion to E5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dex::prelude::*;
use std::hint::black_box;

fn bench_dht(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_ops");
    group.sample_size(20);
    for n in [64u64, 512] {
        group.bench_with_input(BenchmarkId::new("insert_lookup", n), &n, |b, &n| {
            let mut net = DexNetwork::bootstrap(DexConfig::new(5).simplified(), n);
            let from = net.node_ids()[0];
            let mut k = 0u64;
            b.iter(|| {
                net.dht_insert(from, k, k);
                let (v, _) = net.dht_lookup(from, k);
                k += 1;
                black_box(v)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dht);
criterion_main!(benches);
