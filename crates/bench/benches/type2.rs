//! Type-2 recovery cost (simulation wall-clock): growth workload through
//! inflations, simplified vs staggered — criterion companion to E4.

use criterion::{criterion_group, criterion_main, Criterion};
use dex::prelude::*;
use std::hint::black_box;

fn grow_workload(cfg: DexConfig) -> usize {
    let mut net = DexNetwork::bootstrap(cfg, 16);
    let mut ids = IdAllocator::new();
    for i in 0..400 {
        let live = net.node_ids();
        net.insert(ids.fresh(), live[i % live.len()]);
    }
    net.n()
}

fn bench_type2(c: &mut Criterion) {
    let mut group = c.benchmark_group("type2_growth_400_inserts");
    group.sample_size(10);
    group.bench_function("simplified", |b| {
        b.iter(|| black_box(grow_workload(DexConfig::new(3).simplified())));
    });
    group.bench_function("staggered", |b| {
        b.iter(|| black_box(grow_workload(DexConfig::new(3).staggered())));
    });
    group.finish();
}

criterion_group!(benches, bench_type2);
criterion_main!(benches);
