//! Spectral measurement cost: the power-iteration solver vs the dense
//! Jacobi oracle (the measurement machinery behind E2/E8).

use criterion::{criterion_group, criterion_main, Criterion};
use dex::prelude::*;
use std::hint::black_box;

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral");
    group.sample_size(10);

    let small = PCycle::new(127).to_multigraph();
    group.bench_function("jacobi_dense_p127", |b| {
        b.iter(|| black_box(spectral::dense_spectrum(&small).lambda2));
    });

    let big = PCycle::new(4099).to_multigraph();
    group.bench_function("power_iteration_p4099", |b| {
        b.iter(|| black_box(spectral::power_lambda2(&big, 4000, 1e-9, 7)));
    });

    // Contracted (DEX-shaped) network measurement.
    let net = DexNetwork::bootstrap(DexConfig::new(9).simplified(), 1024);
    group.bench_function("dex_network_gap_n1024", |b| {
        b.iter(|| black_box(net.spectral_gap()));
    });

    group.finish();
}

criterion_group!(benches, bench_spectral);
criterion_main!(benches);
