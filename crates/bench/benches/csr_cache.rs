//! CSR snapshot cost: the generation-stamped cache vs the seed's
//! rebuild-per-call path, on a DEX-sized graph under edge churn.

use criterion::{criterion_group, criterion_main, Criterion};
use dex::prelude::*;
use std::hint::black_box;

fn churn_pair(g: &mut dex::graph::MultiGraph, i: u64) {
    // One remove + one add keeps the measurement graph statistically
    // stable while dirtying two rows per call.
    let p = 20011u64;
    let (a, b) = (NodeId(i % p), NodeId((i * 7 + 1) % p));
    if g.contains_edge(a, b) {
        g.remove_edge(a, b);
        g.add_edge(a, b);
    } else {
        g.add_edge(a, b);
        g.remove_edge(a, b);
    }
}

fn bench_csr_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_cache");
    group.sample_size(20);

    let base = PCycle::new(20011).to_multigraph();

    // Seed path: full from-scratch CSR construction on every call.
    let g = base.clone();
    group.bench_function("rebuild_per_call_p20011", |b| {
        b.iter(|| black_box(g.to_csr().targets.len()));
    });

    // Unchanged graph: the cache answers with a generation compare.
    let g = base.clone();
    let _ = g.csr();
    group.bench_function("cached_unchanged_p20011", |b| {
        b.iter(|| black_box(g.csr().targets.len()));
    });

    // Edge churn: two dirty rows per refresh → incremental rebuild.
    let mut g = base.clone();
    let mut i = 0u64;
    group.bench_function("cached_after_edge_churn_p20011", |b| {
        b.iter(|| {
            churn_pair(&mut g, i);
            i += 1;
            black_box(g.csr().targets.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_csr_cache);
criterion_main!(benches);
