//! Wall-clock cost of one healed insertion+deletion per overlay
//! (criterion companion to the Table-1 harness binary).

use criterion::{criterion_group, criterion_main, Criterion};
use dex::prelude::*;
use std::hint::black_box;

fn bench_overlay_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_ops");
    group.sample_size(20);

    group.bench_function("dex_insert_delete_n256", |b| {
        let mut net = DexNetwork::bootstrap(DexConfig::new(1).simplified(), 256);
        let mut next = 10_000_000u64;
        b.iter(|| {
            let v = net.node_ids()[0];
            let id = NodeId(next);
            next += 1;
            net.insert(id, v);
            net.delete(id);
            black_box(net.n());
        });
    });

    group.bench_function("law_siu_insert_delete_n256", |b| {
        let mut ls = LawSiu::bootstrap(2, 256, 3);
        let mut next = 10_000_000u64;
        b.iter(|| {
            let v = ls.node_ids()[0];
            let id = NodeId(next);
            next += 1;
            ls.insert(id, v);
            ls.delete(id);
            black_box(ls.n());
        });
    });

    group.bench_function("skip_lite_insert_delete_n256", |b| {
        let mut s = SkipLite::bootstrap(3, 256);
        let mut next = 10_000_000u64;
        b.iter(|| {
            let v = s.node_ids()[0];
            let id = NodeId(next);
            next += 1;
            s.insert(id, v);
            s.delete(id);
            black_box(s.n());
        });
    });

    group.bench_function("flooding_insert_delete_n256", |b| {
        let mut f = Flooding::bootstrap(4, 256, 4);
        let mut next = 10_000_000u64;
        b.iter(|| {
            let v = f.node_ids()[0];
            let id = NodeId(next);
            next += 1;
            f.insert(id, v);
            f.delete(id);
            black_box(f.n());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_overlay_ops);
criterion_main!(benches);
