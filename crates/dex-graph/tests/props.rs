//! Property-based tests for the graph substrate.

use dex_graph::adjacency::MultiGraph;
use dex_graph::ids::{NodeId, VertexId};
use dex_graph::pcycle::{resize, PCycle};
use dex_graph::primes;
use proptest::prelude::*;

/// Trial-division oracle.
fn is_prime_naive(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Primes in [5, 4000) for p-cycle properties.
fn arb_prime() -> impl Strategy<Value = u64> {
    (5u64..4000).prop_filter_map("prime", |n| if is_prime_naive(n) { Some(n) } else { None })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn miller_rabin_matches_trial_division(n in 0u64..100_000) {
        prop_assert_eq!(primes::is_prime(n), is_prime_naive(n));
    }

    #[test]
    fn mod_inverse_really_inverts(p in arb_prime(), x in 1u64..4000) {
        let x = x % p;
        prop_assume!(x != 0);
        let inv = primes::mod_inverse(x, p);
        prop_assert_eq!(primes::mod_mul(x, inv, p), 1);
    }

    #[test]
    fn pcycle_is_three_regular(p in arb_prime()) {
        let z = PCycle::new(p);
        let g = z.to_multigraph();
        for u in g.nodes() {
            prop_assert_eq!(g.degree(u), 3);
        }
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn pcycle_chord_is_involution(p in arb_prime(), x in 0u64..4000) {
        let z = PCycle::new(p);
        let v = VertexId(x % p);
        prop_assert_eq!(z.chord(z.chord(v)), v);
    }

    #[test]
    fn inflation_partitions_new_cycle(p in arb_prime()) {
        let q = primes::inflation_prime(p);
        let mut seen = vec![false; q as usize];
        for x in 0..p {
            for y in resize::inflation_cloud(x, p, q) {
                prop_assert!(!seen[y as usize], "duplicate {}", y);
                seen[y as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn inflation_cloud_size_below_zeta(p in arb_prime(), x in 0u64..4000) {
        let q = primes::inflation_prime(p);
        let x = x % p;
        let cloud = resize::inflation_cloud(x, p, q);
        prop_assert!(!cloud.is_empty());
        prop_assert!(cloud.len() <= 8, "cloud of {} vertices", cloud.len());
    }

    #[test]
    fn deflation_image_within_range(p in arb_prime().prop_filter("large enough", |&p| p >= 97)) {
        let q = primes::deflation_prime(p).expect("deflation prime exists for p >= 97");
        for x in 0..p {
            let y = resize::deflation_image(x, p, q);
            prop_assert!(y < q, "image {} out of Z_{}", y, q);
        }
        // Each new vertex has exactly one dominating preimage.
        let mut dom = vec![0u32; q as usize];
        for x in 0..p {
            if resize::is_dominating(x, p, q) {
                dom[resize::deflation_image(x, p, q) as usize] += 1;
            }
        }
        prop_assert!(dom.iter().all(|&c| c == 1));
    }

    #[test]
    fn multigraph_random_script_stays_consistent(
        script in proptest::collection::vec((0u8..4, 0u64..12, 0u64..12), 1..200)
    ) {
        let mut g = MultiGraph::new();
        for (op, a, b) in script {
            let (u, v) = (NodeId(a), NodeId(b));
            match op {
                0 => { g.add_node(u); }
                1 => { g.remove_node(u); }
                2 => {
                    if g.has_node(u) && g.has_node(v) {
                        g.add_edge(u, v);
                    }
                }
                _ => { g.remove_edge(u, v); }
            }
            prop_assert!(g.validate().is_ok(), "after op {} {:?} {:?}", op, u, v);
        }
    }

    #[test]
    fn csr_cache_coherent_under_random_churn(
        script in proptest::collection::vec((0u8..4, 0u64..12, 0u64..12), 1..250),
        check_every in 1usize..8
    ) {
        // The generation-stamped CSR snapshot must be indistinguishable
        // from a from-scratch rebuild — same order, offsets, targets (and
        // hence degrees) — after any add/remove node/edge sequence.
        // Checking every `check_every` ops (not every op) makes sure the
        // incremental rebuild handles *batches* of dirty rows, and the
        // final check catches anything the cadence skipped.
        let mut g = MultiGraph::new();
        for (i, (op, a, b)) in script.iter().enumerate() {
            let (u, v) = (NodeId(*a), NodeId(*b));
            match op {
                0 => { g.add_node(u); }
                1 => { g.remove_node(u); }
                2 => {
                    if g.has_node(u) && g.has_node(v) {
                        g.add_edge(u, v);
                    }
                }
                _ => { g.remove_edge(u, v); }
            }
            if i % check_every == 0 {
                let fresh = g.to_csr();
                let cached = g.csr();
                prop_assert_eq!(&*cached, &fresh, "snapshot diverged at op {}", i);
            }
        }
        let fresh = g.to_csr();
        let cached = g.csr();
        prop_assert_eq!(&*cached, &fresh, "snapshot diverged at end");
    }

    #[test]
    fn bfs_distance_symmetric_on_pcycle(p in arb_prime(), a in 0u64..4000, b in 0u64..4000) {
        let z = PCycle::new(p);
        let (a, b) = (VertexId(a % p), VertexId(b % p));
        prop_assert_eq!(z.distance(a, b), z.distance(b, a));
    }

    #[test]
    fn inflation_then_deflation_returns_near_start(p in arb_prime()) {
        // Inflating p→q and deflating q→(q/8, q/4) lands near the original
        // scale: q ∈ (4p, 8p) so the deflation target is in (p/2, 2p).
        let q = primes::inflation_prime(p);
        let r = primes::deflation_prime(q).expect("q >= 23");
        prop_assert!(r > p / 2 && r < 2 * p, "p={} q={} r={}", p, q, r);
    }

    #[test]
    fn interleaved_walks_match_scalar_bitwise(
        p in arb_prime(),
        k in (0usize..3).prop_map(|i| [1usize, 4, 8][i]),
        seed in any::<u64>(),
        njobs in 1usize..80,
    ) {
        // The K-way engine must agree with the scalar walk on endpoints
        // AND on RNG stream positions (same number of draws, in the same
        // per-walk order) at every pipeline depth — interleaving may only
        // reschedule memory reads, never randomness.
        use dex_graph::walks::{run_interleaved, EndpointLane, SlotWalkJob};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let z = PCycle::new(p);
        let mut g = z.to_multigraph();
        // Chords for degree variance (the reservoir bound differs by row).
        let nodes: Vec<NodeId> = g.nodes_sorted();
        for w in nodes.windows(5).step_by(13) {
            g.add_edge(w[0], w[4]);
        }
        let jobs: Vec<SlotWalkJob> = (0..njobs).map(|i| SlotWalkJob {
            start: g.slot_of(nodes[(seed as usize ^ (i * 7)) % nodes.len()]).unwrap(),
            len: (i * 11 + (seed as usize & 7)) % 64, // includes len == 0
            seed: seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }).collect();
        let scalar: Vec<(u32, u64)> = jobs.iter().map(|j| {
            let mut rng = StdRng::seed_from_u64(j.seed);
            let end = g.walk_slots(j.start, j.len, &mut rng);
            (end, rng.random::<u64>()) // next draw = stream position probe
        }).collect();
        let mut lanes: Vec<EndpointLane<StdRng>> = jobs.iter()
            .map(|j| EndpointLane::new(StdRng::seed_from_u64(j.seed), j.len, j.start))
            .collect();
        let starts: Vec<u32> = jobs.iter().map(|j| j.start).collect();
        run_interleaved(&g, &mut lanes, &starts, k);
        for (i, ((end, pos), lane)) in scalar.iter().zip(lanes).enumerate() {
            prop_assert_eq!(lane.end, *end, "endpoint {} diverged at k={}", i, k);
            let mut rng = lane.into_rng();
            prop_assert_eq!(rng.random::<u64>(), *pos, "stream position {} diverged at k={}", i, k);
        }
    }
}
