//! Connectivity primitives: BFS, components, diameter.

use crate::adjacency::MultiGraph;
use crate::fxhash::FxHashMap;
use crate::ids::NodeId;
use std::collections::VecDeque;

/// BFS distances from `src` (unreachable nodes are absent from the map).
pub fn bfs_distances(g: &MultiGraph, src: NodeId) -> FxHashMap<NodeId, u32> {
    let mut dist = FxHashMap::default();
    if !g.has_node(src) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist.insert(src, 0);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        for v in g.neighbors(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Is the graph connected? (The empty graph and singletons count as
/// connected.)
pub fn is_connected(g: &MultiGraph) -> bool {
    let Some(start) = g.nodes().next() else {
        return true;
    };
    bfs_distances(g, start).len() == g.num_nodes()
}

/// Connected components as sorted vectors of node ids, largest first
/// (ties broken by smallest member id).
pub fn components(g: &MultiGraph) -> Vec<Vec<NodeId>> {
    let mut seen: crate::fxhash::FxHashSet<NodeId> = Default::default();
    let mut comps = Vec::new();
    for u in g.nodes_sorted() {
        if seen.contains(&u) {
            continue;
        }
        let comp_map = bfs_distances(g, u);
        let mut comp: Vec<NodeId> = comp_map.keys().copied().collect();
        comp.sort_unstable();
        for &v in &comp {
            seen.insert(v);
        }
        comps.push(comp);
    }
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    comps
}

/// Eccentricity of `src`: max BFS distance to any reachable node.
pub fn eccentricity(g: &MultiGraph, src: NodeId) -> u32 {
    bfs_distances(g, src).values().copied().max().unwrap_or(0)
}

/// Exact diameter by all-pairs BFS — O(n·m). Returns `None` when the graph
/// is disconnected (diameter is infinite).
pub fn diameter(g: &MultiGraph) -> Option<u32> {
    if !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for u in g.nodes() {
        best = best.max(eccentricity(g, u));
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(k: u64) -> MultiGraph {
        let mut g = MultiGraph::new();
        for i in 0..k {
            g.add_node(NodeId(i));
        }
        for i in 0..k.saturating_sub(1) {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[&NodeId(4)], 4);
        assert_eq!(d[&NodeId(0)], 0);
    }

    #[test]
    fn connectivity_detection() {
        let mut g = path_graph(5);
        assert!(is_connected(&g));
        g.remove_edge(NodeId(2), NodeId(3));
        assert!(!is_connected(&g));
        let comps = components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(comps[1], vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn diameter_of_path_and_disconnected() {
        let mut g = path_graph(6);
        assert_eq!(diameter(&g), Some(5));
        g.remove_edge(NodeId(0), NodeId(1));
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn empty_and_singleton_connected() {
        let g = MultiGraph::new();
        assert!(is_connected(&g));
        let g = path_graph(1);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(0));
    }

    #[test]
    fn self_loops_do_not_affect_connectivity() {
        let mut g = path_graph(3);
        g.add_edge(NodeId(1), NodeId(1));
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(2));
    }
}
