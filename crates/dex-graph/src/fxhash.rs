//! A minimal FxHash-style hasher.
//!
//! The performance guide recommends `rustc-hash` for hot integer-keyed maps;
//! that crate is outside the approved dependency set, so we reimplement the
//! same multiply-rotate scheme (a few lines) here. Quality is low but
//! distribution is adequate for sequential ids, and it is several times
//! faster than SipHash for the `u64` keys that dominate this workspace.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash: for each input word, `state = (state rotl 5 ^ word) * SEED`.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
        m.remove(&1);
        assert!(!m.contains_key(&1));
    }

    #[test]
    fn sequential_keys_spread() {
        // Hashes of sequential integers must not collide in the low bits
        // (that is the failure mode that kills open-addressing tables).
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0u64..1024 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0x3ff);
        }
        // With 1024 keys into 1024 buckets we expect good coverage.
        assert!(
            low_bits.len() > 600,
            "low-bit spread too poor: {}",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        let mut a = FxHasher::default();
        a.write_u64(0xdead_beef);
        let mut b = FxHasher::default();
        b.write(&0xdead_beef_u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn unaligned_tail_is_hashed() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
