//! Deterministic chunked parallelism for dense numeric loops.
//!
//! The spectral engine parallelizes two shapes of work: disjoint writes
//! (mat-vec output rows) and reductions (dots, norms). Both are chunked on
//! a **fixed** chunk size, independent of the worker count, and reduction
//! partials are combined sequentially in chunk order — so results are
//! bit-identical for any thread count, including 1. A determinism test in
//! `spectral` enforces this.
//!
//! Workers are std scoped threads spawned **per call** — there is no pool,
//! so every parallel invocation pays thread-spawn cost. Callers must only
//! engage `threads > 1` when the per-call work clearly dominates that cost
//! (the spectral engine gates on [`PAR_MIN_LEN`] rows); on single-core
//! hosts [`default_threads`] degrades everything to sequential execution.

/// Fixed chunk length for numeric loops (elements, not bytes).
pub const CHUNK: usize = 4096;

/// Minimum problem size (rows/elements per call) before callers should
/// hand `threads > 1` to these helpers: below this, per-call thread spawn
/// costs more than the loop itself.
pub const PAR_MIN_LEN: usize = 16 * CHUNK;

/// Hint the CPU to pull the cache line at `p` toward L1 (x86_64
/// `prefetcht0`; a no-op elsewhere). Safe for any address — prefetches
/// never fault.
///
/// This is the *memory-level* parallelism sibling of the thread helpers in
/// this module: batch engines that interleave many independent pointer
/// chases (walk hops, owner resolutions, commit targets) overlap their
/// cache misses by prefetching the next item's lines while working on the
/// current one — a large win even on a single core for workloads that are
/// DRAM-latency-bound on scattered reads, which heal-time graph and Φ
/// access is.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Worker threads to use by default: available parallelism clamped to
/// [1, 16].
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

/// Apply `f(start_index, chunk)` to consecutive [`CHUNK`]-sized pieces of
/// `data`, possibly in parallel. Chunk boundaries do not depend on
/// `threads`, and chunks never overlap, so any per-element result is
/// computed exactly once, by exactly one worker, from the same inputs.
pub fn for_chunks_mut<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    for_chunks_state_mut(
        data,
        threads,
        CHUNK,
        || (),
        |start, chunk, ()| f(start, chunk),
    );
}

/// [`for_chunks_mut`] with a caller-chosen fixed chunk size and a
/// per-worker scratch state.
///
/// `init()` runs once per worker (once total in the sequential fallback)
/// and the resulting state is threaded through every chunk that worker
/// processes — the shape heal planning needs: expensive pooled buffers
/// (overlay maps, visited lists) are built once per worker and reused
/// across that worker's chunks, not rebuilt per element.
///
/// Determinism contract, same as [`for_chunks_mut`]: chunk boundaries
/// depend only on `chunk_size` (never on `threads`), chunks are disjoint,
/// and per-element results may depend only on `(start_index, element)` —
/// the worker state must act as scratch, not as an input that varies with
/// which worker processed the chunk. Under that contract results are
/// bit-identical for any thread count.
pub fn for_chunks_state_mut<T, S, I, F>(
    data: &mut [T],
    threads: usize,
    chunk_size: usize,
    init: I,
    f: F,
) where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n = data.len();
    if threads <= 1 || n <= chunk_size {
        let mut state = init();
        for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(c * chunk_size, chunk, &mut state);
        }
        return;
    }
    let n_chunks = n.div_ceil(chunk_size);
    let workers = threads.min(n_chunks);
    let chunks_per_worker = n_chunks.div_ceil(workers);
    let span = chunks_per_worker * chunk_size;
    std::thread::scope(|s| {
        let f = &f;
        let init = &init;
        let mut rest = data;
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = span.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            s.spawn(move || {
                let mut state = init();
                for (c, chunk) in head.chunks_mut(chunk_size).enumerate() {
                    f(offset + c * chunk_size, chunk, &mut state);
                }
            });
            rest = tail;
            offset += take;
        }
    });
}

/// Chunked reduction: `partial(lo, hi)` produces the partial sum of the
/// half-open index range, partials are computed (possibly in parallel) per
/// fixed chunk, then combined **sequentially in chunk order** — so the
/// floating-point result is independent of the thread count.
pub fn reduce_chunks<F>(n: usize, threads: usize, partial: F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    if n == 0 {
        return 0.0;
    }
    let n_chunks = n.div_ceil(CHUNK);
    let mut partials = vec![0.0f64; n_chunks];
    let workers = threads.min(n_chunks);
    if workers <= 1 {
        for (c, slot) in partials.iter_mut().enumerate() {
            let lo = c * CHUNK;
            *slot = partial(lo, (lo + CHUNK).min(n));
        }
    } else {
        // Split the partials across workers directly — each worker owns a
        // contiguous run of chunk indices. (Routing this through
        // `for_chunks_mut` would re-chunk the *partials* array by CHUNK
        // and never parallelize until n_chunks itself exceeded CHUNK.)
        let per_worker = n_chunks.div_ceil(workers);
        std::thread::scope(|s| {
            let partial = &partial;
            let mut rest: &mut [f64] = &mut partials;
            let mut first_chunk = 0usize;
            while !rest.is_empty() {
                let take = per_worker.min(rest.len());
                let (head, tail) = rest.split_at_mut(take);
                s.spawn(move || {
                    for (i, slot) in head.iter_mut().enumerate() {
                        let lo = (first_chunk + i) * CHUNK;
                        *slot = partial(lo, (lo + CHUNK).min(n));
                    }
                });
                rest = tail;
                first_chunk += take;
            }
        });
    }
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_writes_cover_everything_once() {
        for n in [0usize, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            for threads in [1, 2, 5] {
                let mut data = vec![0u32; n];
                for_chunks_mut(&mut data, threads, |start, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v += (start + i) as u32;
                    }
                });
                assert!(
                    data.iter().enumerate().all(|(i, &v)| v == i as u32),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let n = 3 * CHUNK + 911;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let expect = reduce_chunks(n, 1, |lo, hi| x[lo..hi].iter().sum());
        for threads in [2, 3, 8] {
            let got = reduce_chunks(n, threads, |lo, hi| x[lo..hi].iter().sum());
            assert_eq!(got.to_bits(), expect.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn multi_worker_reduction_covers_every_chunk() {
        // n_chunks (4) is far below CHUNK, so this exercises the direct
        // worker split — the path a naive re-chunk of the partials array
        // would leave sequential.
        let n = 4 * CHUNK;
        let sum = reduce_chunks(n, 4, |lo, hi| (hi - lo) as f64);
        assert_eq!(sum, n as f64);
    }

    #[test]
    fn empty_reduction() {
        assert_eq!(reduce_chunks(0, 4, |_, _| unreachable!()), 0.0);
    }

    #[test]
    fn sized_chunks_with_worker_state_cover_everything_once() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            for threads in [1, 3, 8] {
                let mut data = vec![0u32; n];
                for_chunks_state_mut(
                    &mut data,
                    threads,
                    8,
                    Vec::<u32>::new,
                    |start, chunk, scratch| {
                        // The state is scratch: its contents carry over
                        // between one worker's chunks but never leak into
                        // results.
                        scratch.push(start as u32);
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v += (start + i) as u32 + 1;
                        }
                    },
                );
                assert!(
                    data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1),
                    "n={n} threads={threads}"
                );
            }
        }
    }
}
