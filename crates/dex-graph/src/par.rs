//! Deterministic chunked parallelism for dense numeric loops — a thin
//! facade over the persistent [`dex_exec`] worker pool.
//!
//! The spectral engine parallelizes two shapes of work: disjoint writes
//! (mat-vec output rows) and reductions (dots, norms). Both are chunked on
//! a **fixed** chunk size, independent of the worker count, and reduction
//! partials are combined sequentially in chunk order — so results are
//! bit-identical for any thread count, including 1. A determinism test in
//! `spectral` enforces this.
//!
//! Workers come from the process-wide `dex-exec` pool: threads are spawned
//! lazily at most once per process, park between jobs, and are handed work
//! by mailbox — a parallel section costs a few condvar handoffs, not
//! thread spawns (`dex_exec::total_spawns` lets tests assert zero spawns
//! after warm-up). Callers should still only engage `threads > 1` when the
//! per-call work clearly dominates a handoff (the spectral engine gates on
//! [`PAR_MIN_LEN`] rows); [`default_threads`] resolves to the executor's
//! global thread budget (`DEX_EXEC_THREADS` override, else available
//! parallelism).

pub use dex_exec::{CHUNK, PAR_MIN_LEN};

use std::sync::atomic::{AtomicU8, Ordering};

/// Hint the CPU to pull the cache line at `p` toward L1 (x86_64
/// `prefetcht0`, aarch64 `prfm pldl1keep`; a no-op elsewhere). Safe for
/// any address — prefetches never fault.
///
/// This is the *memory-level* parallelism sibling of the thread helpers in
/// this module: batch engines that interleave many independent pointer
/// chases (walk hops, owner resolutions, commit targets) overlap their
/// cache misses by prefetching the next item's lines while working on the
/// current one — a large win even on a single core for workloads that are
/// DRAM-latency-bound on scattered reads, which heal-time graph and Φ
/// access is.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch hints never fault, for any address including null
    // and unmapped — the CPU drops invalid prefetches silently.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    }
    #[cfg(target_arch = "aarch64")]
    // No stable prefetch intrinsic on aarch64; PLD-keep-to-L1 via inline
    // asm. `nostack`/`preserves_flags` keep it as cheap as the intrinsic.
    // SAFETY: PRFM is a hint and never faults, for any address; the asm
    // reads no memory and clobbers nothing (readonly/nostack).
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{ptr}]",
            ptr = in(reg) p,
            options(nostack, preserves_flags, readonly)
        )
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// Cached tri-state for the `DEX_MLP_KERNELS` knob: 0 = unresolved,
/// 1 = off, 2 = on.
static MLP: AtomicU8 = AtomicU8::new(0);

/// Are the memory-level-parallel kernels (K-way interleaved walks, blocked
/// SpMV) enabled? Default **on**; set `DEX_MLP_KERNELS=0` (or `off`) to
/// force the scalar paths. The knob exists for benchmarking and CI
/// byte-diffs only — both paths are bit-identical by construction, so
/// flipping it never changes a result, only the memory access schedule.
/// Read once per process (cached).
pub fn mlp_enabled() -> bool {
    match MLP.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = dex_exec::knobs::mlp_kernels().unwrap_or(true);
            MLP.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Pipeline depth for the interleaved walk engine: `DEX_WALK_K` when set
/// to a positive integer, else 8, clamped to `[1, 64]`. K ≈ 8 covers one
/// DRAM miss (~80–100 ns) with ~7 other lanes' compute (~10–15 ns each);
/// larger K wastes L1 on in-flight lines, smaller K leaves latency
/// uncovered. Read once per process (cached).
pub fn walk_pipeline_k() -> usize {
    static K: AtomicU8 = AtomicU8::new(0);
    match K.load(Ordering::Relaxed) {
        0 => {
            let k = dex_exec::knobs::walk_k().unwrap_or(8).clamp(1, 64);
            K.store(k as u8, Ordering::Relaxed);
            k
        }
        k => k as usize,
    }
}

/// Worker threads to use by default: the executor's global thread budget
/// (`DEX_EXEC_THREADS` when set, else available parallelism, clamped to
/// `[1, 16]`).
pub fn default_threads() -> usize {
    dex_exec::thread_budget()
}

/// Apply `f(start_index, chunk)` to consecutive [`CHUNK`]-sized pieces of
/// `data`, possibly in parallel on the pool. Chunk boundaries do not
/// depend on `threads`, and chunks never overlap, so any per-element
/// result is computed exactly once, by exactly one worker, from the same
/// inputs.
pub fn for_chunks_mut<T, F>(data: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    dex_exec::for_chunks_mut(data, threads, f);
}

/// [`for_chunks_mut`] with a caller-chosen fixed chunk size and a
/// per-worker state built by `init` (once per engaged worker per call).
///
/// Determinism contract, same as [`for_chunks_mut`]: chunk boundaries
/// depend only on `chunk_size` (never on `threads`), chunks are disjoint,
/// and per-element results may depend only on `(start_index, element)` —
/// the worker state must act as scratch, not as an input that varies with
/// which worker processed the chunk. Under that contract results are
/// bit-identical for any thread count.
pub fn for_chunks_state_mut<T, S, I, F>(
    data: &mut [T],
    threads: usize,
    chunk_size: usize,
    init: I,
    f: F,
) where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut [T], &mut S) + Sync,
{
    dex_exec::for_chunks_state_mut(data, threads, chunk_size, init, f);
}

/// Chunked reduction: `partial(lo, hi)` produces the partial sum of the
/// half-open index range, partials are computed (possibly in parallel) per
/// fixed chunk, then combined **sequentially in chunk order** — so the
/// floating-point result is independent of the thread count.
pub fn reduce_chunks<F>(n: usize, threads: usize, partial: F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    dex_exec::reduce_chunks(n, threads, partial)
}

/// Fused chunked mutate-and-reduce ([`dex_exec::for_chunks_fold_mut`]):
/// one streaming pass both rewrites `data` and folds per-chunk partials,
/// combined sequentially in chunk order — bit-identical to a mutation
/// pass followed by a separate [`reduce_chunks`], at any thread count.
pub fn for_chunks_fold_mut<T, A, F, C>(
    data: &mut [T],
    threads: usize,
    zero: A,
    f: F,
    combine: C,
) -> A
where
    T: Send,
    A: Send + Copy,
    F: Fn(usize, &mut [T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    dex_exec::for_chunks_fold_mut(data, threads, zero, f, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_compiles_and_tolerates_any_address() {
        // The cfg branches (x86_64 intrinsic / aarch64 asm / portable
        // no-op) must all build and accept arbitrary addresses without
        // faulting: live data, one-past-the-end, null, and unmapped.
        let data = [0u64; 4];
        prefetch_read(data.as_ptr());
        // SAFETY: one-past-the-end pointers are valid to *form* for any
        // allocation; only dereferencing would be UB, and prefetch never
        // dereferences.
        prefetch_read(unsafe { data.as_ptr().add(4) });
        prefetch_read(std::ptr::null::<u64>());
        prefetch_read(0xdead_beef_0000usize as *const u8);
    }

    #[test]
    fn mlp_knobs_are_cached_and_in_range() {
        // Whatever the environment says, repeated reads agree (the knob is
        // latched on first read) and K is in its documented range.
        assert_eq!(mlp_enabled(), mlp_enabled());
        let k = walk_pipeline_k();
        assert!((1..=64).contains(&k), "K={k}");
        assert_eq!(walk_pipeline_k(), k);
    }

    #[test]
    fn chunked_writes_cover_everything_once() {
        for n in [0usize, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            for threads in [1, 2, 5] {
                let mut data = vec![0u32; n];
                for_chunks_mut(&mut data, threads, |start, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v += (start + i) as u32;
                    }
                });
                assert!(
                    data.iter().enumerate().all(|(i, &v)| v == i as u32),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let n = 3 * CHUNK + 911;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let expect = reduce_chunks(n, 1, |lo, hi| x[lo..hi].iter().sum());
        for threads in [2, 3, 8] {
            let got = reduce_chunks(n, threads, |lo, hi| x[lo..hi].iter().sum());
            assert_eq!(got.to_bits(), expect.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn multi_worker_reduction_covers_every_chunk() {
        // n_chunks (4) is far below CHUNK, so this exercises the direct
        // worker split — the path a naive re-chunk of the partials array
        // would leave sequential.
        let n = 4 * CHUNK;
        let sum = reduce_chunks(n, 4, |lo, hi| (hi - lo) as f64);
        assert_eq!(sum, n as f64);
    }

    #[test]
    fn empty_reduction() {
        assert_eq!(reduce_chunks(0, 4, |_, _| unreachable!()), 0.0);
    }

    #[test]
    fn sized_chunks_with_worker_state_cover_everything_once() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            for threads in [1, 3, 8] {
                let mut data = vec![0u32; n];
                for_chunks_state_mut(
                    &mut data,
                    threads,
                    8,
                    Vec::<u32>::new,
                    |start, chunk, scratch| {
                        // The state is scratch: its contents carry over
                        // between one worker's chunks but never leak into
                        // results.
                        scratch.push(start as u32);
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v += (start + i) as u32 + 1;
                        }
                    },
                );
                assert!(
                    data.iter().enumerate().all(|(i, &v)| v == i as u32 + 1),
                    "n={n} threads={threads}"
                );
            }
        }
    }
}
