//! Vertex contraction.
//!
//! The bridge between the virtual and real worlds: the real network `G` is
//! the image of the virtual p-cycle `Z` under the contraction that merges
//! all vertices simulated by the same node (paper, Sect. 3.1). Lemma 10
//! (Chung) gives `λ_H ≤ λ_G` when `H` is formed from `G` by contractions,
//! which is Lemma 1's engine: the network's gap is at least the virtual
//! graph's gap. [`contract`] keeps parallel edges and converts merged edges
//! into self-loops, exactly the convention the spectral module expects.

use crate::adjacency::MultiGraph;
use crate::fxhash::FxHashMap;
use crate::ids::NodeId;

/// Contract `g` along `class_of`: every node `u` maps to the representative
/// `class_of(u)`; each edge `{u, v}` becomes `{class_of(u), class_of(v)}`
/// (a self-loop when the classes coincide). Parallel copies are preserved.
pub fn contract<F: Fn(NodeId) -> NodeId>(g: &MultiGraph, class_of: F) -> MultiGraph {
    let mut out = MultiGraph::new();
    let mut cache: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    let rep = |u: NodeId, cache: &mut FxHashMap<NodeId, NodeId>| -> NodeId {
        *cache.entry(u).or_insert_with(|| class_of(u))
    };
    for u in g.nodes() {
        let r = rep(u, &mut cache);
        out.add_node(r);
    }
    for (u, v) in g.edges() {
        let ru = rep(u, &mut cache);
        let rv = rep(v, &mut cache);
        out.add_edge(ru, rv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcycle::PCycle;
    use crate::spectral::spectral_gap;

    #[test]
    fn contracting_an_edge_merges_and_loops() {
        // Triangle 0-1-2; contract 1 into 0.
        let mut g = MultiGraph::new();
        for i in 0..3 {
            g.add_node(NodeId(i));
        }
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        let h = contract(&g, |u| if u == NodeId(1) { NodeId(0) } else { u });
        assert_eq!(h.num_nodes(), 2);
        assert_eq!(h.num_edges(), 3); // loop at 0 + two parallel 0-2
        assert_eq!(h.edge_multiplicity(NodeId(0), NodeId(0)), 1);
        assert_eq!(h.edge_multiplicity(NodeId(0), NodeId(2)), 2);
        h.validate().unwrap();
    }

    #[test]
    fn identity_contraction_is_identity() {
        let g = PCycle::new(23).to_multigraph();
        let h = contract(&g, |u| u);
        assert_eq!(h.num_nodes(), g.num_nodes());
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn lemma10_contraction_never_shrinks_gap() {
        // Pair up consecutive vertices of Z(p): contraction halves n;
        // Lemma 10 says λ_H ≤ λ_G, i.e. gap(H) ≥ gap(G).
        for p in [23u64, 101] {
            let g = PCycle::new(p).to_multigraph();
            let gap_g = spectral_gap(&g);
            let h = contract(&g, |u| NodeId(u.0 / 2 * 2));
            let gap_h = spectral_gap(&h);
            assert!(
                gap_h >= gap_g - 1e-6,
                "p={p}: contraction lowered gap {gap_g} -> {gap_h}"
            );
        }
    }

    #[test]
    fn contraction_to_single_node() {
        let g = PCycle::new(11).to_multigraph();
        let h = contract(&g, |_| NodeId(0));
        assert_eq!(h.num_nodes(), 1);
        assert_eq!(h.num_edges(), g.num_edges());
        // All edges became loops.
        assert_eq!(h.edge_multiplicity(NodeId(0), NodeId(0)), g.num_edges());
    }
}
