//! A dynamic undirected multigraph with self-loops, stored in a slot arena
//! with an incrementally maintained CSR snapshot.
//!
//! The real network maintained by DEX is the image of the virtual p-cycle
//! under a vertex contraction (paper, Sect. 3.1), and contractions produce
//! parallel edges and self-loops. Those must be kept — they carry weight in
//! the random-walk operator, and Lemma 1 (λ_G ≤ λ_Z) only holds for the true
//! contracted multigraph.
//!
//! # Storage model: slots
//!
//! Nodes live in dense `u32` **slots** with a free-list: inserting a node
//! reuses the most recently vacated slot (LIFO) or appends a new one, and the
//! `NodeId ↔ slot` translation is kept at the edge of the API. Neighbor
//! lists are stored per slot as contiguous `Vec<u32>` of *slot indices*, so
//! every hot loop — random walks, floods, spectral mat-vecs, expansion
//! checks — runs on dense indices with no hashing and no per-step heap
//! allocation. Public entry points still speak [`NodeId`]; use
//! [`MultiGraph::slot_of`] / [`MultiGraph::id_of_slot`] /
//! [`MultiGraph::neighbor_slots`] to stay in slot space across a whole loop
//! (one id→slot resolution, then array reads only).
//!
//! # Snapshot model: generation-stamped cached CSR
//!
//! Numeric code wants a compact CSR view. Rebuilding it from scratch on
//! every call is the seed implementation's single biggest cost under churn,
//! so the graph owns a cached snapshot: every mutation bumps a `generation`
//! counter and marks the touched rows dirty; [`MultiGraph::csr`] returns a
//! borrowed, up-to-date snapshot, rebuilding **only dirty rows** (plus the
//! offset table) when node membership is unchanged, and doing a full
//! rebuild only when nodes were added or removed. Repeated measurement of
//! an unchanged graph — the dominant pattern in "mutate, then re-measure
//! λ₂ / expansion / mixing" experiment loops — reuses the snapshot with no
//! work beyond a generation compare. [`MultiGraph::to_csr`] still builds an
//! owned from-scratch copy (the benchmark baseline and test oracle).
//!
//! Conventions:
//! * a self-loop at `u` appears **once** in `adj[u]` and contributes **1** to
//!   `degree(u)` — this matches Definition 1, where the p-cycle is called
//!   3-regular with vertex 0 carrying a self-loop;
//! * a parallel edge appears once per copy;
//! * `num_edges` counts undirected edges with multiplicity (self-loops
//!   count 1);
//! * CSR dense indices order nodes ascending by id (deterministic numerics).

use crate::fxhash::FxHashMap;
use crate::ids::NodeId;
use rand::Rng;
use std::sync::{RwLock, RwLockReadGuard};

/// Sentinel generation meaning "snapshot never built".
const GEN_NONE: u64 = 0;

/// Sentinel dense index for dead slots.
const NO_DENSE: u32 = u32::MAX;

/// Floor capacity of a slot's adjacency list. DEX keeps deg(u) ≤ 3·load(u)
/// with typical steady-state loads ≤ 8, so 32 entries (one 128-byte
/// allocation) covers almost every node for its whole lifetime — growth
/// reallocs on the healing hot path all but disappear.
const ADJ_MIN_CAP: usize = 32;

#[derive(Clone)]
struct Slot {
    id: NodeId,
    alive: bool,
    /// Neighbor multiset as slot indices; a self-loop appears once.
    adj: Vec<u32>,
}

/// Cached CSR snapshot plus the dirty-tracking state that keeps it
/// incremental. Lives behind a lock so `csr(&self)` can rebuild lazily
/// while the graph stays `Sync` for parallel measurement.
struct SnapshotState {
    /// Generation the snapshot reflects ([`GEN_NONE`] = never built).
    built: u64,
    /// Node membership changed since the snapshot (forces full rebuild).
    membership_dirty: bool,
    /// Slots whose rows changed since the snapshot (edge churn only).
    dirty_slots: Vec<u32>,
    /// Per-slot dirty flag, indexed by slot (deduplicates `dirty_slots`).
    dirty_mark: Vec<bool>,
    /// The snapshot itself.
    csr: Csr,
    /// slot → dense index ([`NO_DENSE`] for dead slots).
    dense_of_slot: Vec<u32>,
    /// Scratch for incremental rebuilds (kept to reuse capacity).
    scratch_offsets: Vec<u32>,
    scratch_targets: Vec<u32>,
}

impl SnapshotState {
    fn empty() -> Self {
        SnapshotState {
            built: GEN_NONE,
            membership_dirty: true,
            dirty_slots: Vec::new(),
            dirty_mark: Vec::new(),
            csr: Csr {
                order: Vec::new(),
                offsets: vec![0],
                targets: Vec::new(),
            },
            dense_of_slot: Vec::new(),
            scratch_offsets: Vec::new(),
            scratch_targets: Vec::new(),
        }
    }
}

/// Dynamic undirected multigraph in a slot arena. See module docs.
pub struct MultiGraph {
    slots: Vec<Slot>,
    index: FxHashMap<NodeId, u32>,
    free: Vec<u32>,
    live: usize,
    num_edges: usize,
    /// Bumped on every mutation; stamps the CSR snapshot.
    generation: u64,
    cache: RwLock<SnapshotState>,
}

impl Default for MultiGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for MultiGraph {
    fn clone(&self) -> Self {
        // The snapshot cache is not cloned: the copy rebuilds on first use.
        MultiGraph {
            slots: self.slots.clone(),
            index: self.index.clone(),
            free: self.free.clone(),
            live: self.live,
            num_edges: self.num_edges,
            generation: self.generation,
            cache: RwLock::new(SnapshotState::empty()),
        }
    }
}

impl MultiGraph {
    /// Empty graph.
    pub fn new() -> Self {
        MultiGraph {
            slots: Vec::new(),
            index: FxHashMap::default(),
            free: Vec::new(),
            live: 0,
            num_edges: 0,
            generation: GEN_NONE + 1,
            cache: RwLock::new(SnapshotState::empty()),
        }
    }

    /// Empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        MultiGraph {
            slots: Vec::with_capacity(n),
            index: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            ..Self::new()
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.live
    }

    /// Number of undirected edges, counted with multiplicity
    /// (self-loops count 1).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Does the graph contain `u`?
    #[inline]
    pub fn has_node(&self, u: NodeId) -> bool {
        self.index.contains_key(&u)
    }

    // ---- slot-space API (hot loops) ---------------------------------------

    /// Slot of node `u`, if present. Resolve once, then stay in slot space.
    #[inline]
    pub fn slot_of(&self, u: NodeId) -> Option<u32> {
        self.index.get(&u).copied()
    }

    /// Node id stored in `slot`.
    ///
    /// # Panics
    /// Panics (in debug builds) if the slot is dead; callers own liveness.
    #[inline]
    pub fn id_of_slot(&self, slot: u32) -> NodeId {
        debug_assert!(self.slots[slot as usize].alive, "dead slot {slot}");
        self.slots[slot as usize].id
    }

    /// Neighbor multiset of `slot` as slot indices (self-loops appear as
    /// the slot itself, once per loop; parallel edges once per copy).
    #[inline]
    pub fn neighbor_slots(&self, slot: u32) -> &[u32] {
        &self.slots[slot as usize].adj
    }

    /// Is `slot` currently occupied by a live node? (Dead slots linger in
    /// the arena until the free list recycles them.)
    #[inline]
    pub fn slot_alive(&self, slot: u32) -> bool {
        self.slots.get(slot as usize).is_some_and(|s| s.alive)
    }

    /// Prefetch `slot`'s arena record (id + adjacency header) toward L1.
    /// Batch engines call this one pipeline stage before touching the slot
    /// so the dependent-miss chain of a pointer chase overlaps across
    /// items (see [`crate::par::prefetch_read`]).
    #[inline(always)]
    pub fn prefetch_slot(&self, slot: u32) {
        if let Some(s) = self.slots.get(slot as usize) {
            crate::par::prefetch_read(s as *const Slot);
        }
    }

    /// Prefetch the first cache lines of `slot`'s adjacency data. Requires
    /// the slot record itself to be resident (issue [`Self::prefetch_slot`]
    /// a stage earlier); the adjacency floor capacity is two lines, which
    /// covers nearly every DEX node.
    #[inline(always)]
    pub fn prefetch_slot_adj(&self, slot: u32) {
        if let Some(s) = self.slots.get(slot as usize) {
            let ptr = s.adj.as_ptr();
            crate::par::prefetch_read(ptr);
            // Degree > 16 spills past one 64-byte line; fetch the second.
            if s.adj.len() > 16 {
                // SAFETY: len > 16, so ptr+16 is in bounds of the same
                // allocation (and prefetch never dereferences anyway).
                crate::par::prefetch_read(unsafe { ptr.add(16) });
            }
        }
    }

    /// Degree of `slot`.
    #[inline]
    pub fn degree_of_slot(&self, slot: u32) -> usize {
        self.slots[slot as usize].adj.len()
    }

    /// Exclusive upper bound on slot indices currently in use (dead slots
    /// included). Sizes slot-indexed scratch buffers.
    #[inline]
    pub fn slot_bound(&self) -> usize {
        self.slots.len()
    }

    /// One uniform random-walk step in slot space: a uniformly random
    /// adjacency entry, so parallel edges weight their endpoint and a
    /// self-loop stays put with probability `1/deg`.
    ///
    /// # Panics
    /// Panics if the slot is isolated.
    #[inline]
    pub fn step_slot<R: Rng + ?Sized>(&self, slot: u32, rng: &mut R) -> u32 {
        let adj = &self.slots[slot as usize].adj;
        assert!(
            !adj.is_empty(),
            "random walk stuck at isolated node {}",
            self.slots[slot as usize].id
        );
        adj[rng.random_range(0..adj.len())]
    }

    /// Walk `len` uniform steps from `slot`; returns the final slot. No
    /// heap allocation: each hop is two array reads and one RNG draw.
    #[inline]
    pub fn walk_slots<R: Rng + ?Sized>(&self, mut slot: u32, len: usize, rng: &mut R) -> u32 {
        for _ in 0..len {
            slot = self.step_slot(slot, rng);
        }
        slot
    }

    // ---- mutation ---------------------------------------------------------

    fn mark_row_dirty(&mut self, slot: u32) {
        let cache = self.cache.get_mut().expect("snapshot lock poisoned");
        if cache.membership_dirty || cache.built == GEN_NONE {
            return; // full rebuild pending anyway
        }
        if cache.dirty_mark.len() <= slot as usize {
            cache
                .dirty_mark
                .resize(self.slots.len().max(slot as usize + 1), false);
        }
        if !cache.dirty_mark[slot as usize] {
            cache.dirty_mark[slot as usize] = true;
            cache.dirty_slots.push(slot);
        }
    }

    fn mark_membership_dirty(&mut self) {
        let cache = self.cache.get_mut().expect("snapshot lock poisoned");
        cache.membership_dirty = true;
        // Row-level tracking is moot once a full rebuild is pending.
        for &s in &cache.dirty_slots {
            cache.dirty_mark[s as usize] = false;
        }
        cache.dirty_slots.clear();
    }

    /// Insert an isolated node. Returns `false` if it already existed.
    pub fn add_node(&mut self, u: NodeId) -> bool {
        self.add_node_slot(u).is_some()
    }

    /// Insert an isolated node, returning its arena slot (`None` if it
    /// already existed). The batch commit path uses the slot directly for
    /// the newcomer's fabric edges instead of re-hashing the id.
    pub fn add_node_slot(&mut self, u: NodeId) -> Option<u32> {
        if self.index.contains_key(&u) {
            return None;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                let cell = &mut self.slots[s as usize];
                debug_assert!(!cell.alive && cell.adj.is_empty());
                cell.id = u;
                cell.alive = true;
                if cell.adj.capacity() < ADJ_MIN_CAP {
                    cell.adj.reserve(ADJ_MIN_CAP);
                }
                s
            }
            None => {
                let s = u32::try_from(self.slots.len()).expect("more than u32::MAX nodes");
                self.slots.push(Slot {
                    id: u,
                    alive: true,
                    adj: Vec::with_capacity(ADJ_MIN_CAP),
                });
                s
            }
        };
        self.index.insert(u, slot);
        self.live += 1;
        self.generation += 1;
        self.mark_membership_dirty();
        Some(slot)
    }

    /// Remove `u` and all incident edges (including parallel copies and
    /// loops). Returns the number of undirected edges removed, or `None` if
    /// `u` was not present.
    pub fn remove_node(&mut self, u: NodeId) -> Option<usize> {
        let slot = self.index.remove(&u)?;
        let mut incident = std::mem::take(&mut self.slots[slot as usize].adj);
        let mut removed = 0usize;
        for &v in &incident {
            removed += 1;
            if v != slot {
                let list = &mut self.slots[v as usize].adj;
                let pos = list
                    .iter()
                    .position(|&w| w == slot)
                    .expect("adjacency symmetry violated: missing reverse entry");
                list.swap_remove(pos);
            }
        }
        // Hand the (cleared) list back to the slot: its capacity is reused
        // when the free-list recycles the slot, keeping steady-state
        // delete→insert churn allocation-free.
        incident.clear();
        self.slots[slot as usize].adj = incident;
        self.slots[slot as usize].alive = false;
        self.free.push(slot);
        self.live -= 1;
        self.num_edges -= removed;
        self.generation += 1;
        self.mark_membership_dirty();
        Some(removed)
    }

    /// Split the arena into disjoint mutable borrows of two *distinct*
    /// slots' adjacency lists. Pure `split_at_mut` borrow splitting — no
    /// interior mutability, no unsafe — so callers holding both halves can
    /// edit an edge's two endpoint rows without re-borrowing `self`
    /// between them.
    #[inline]
    fn adj_pair_mut(&mut self, a: u32, b: u32) -> (&mut Vec<u32>, &mut Vec<u32>) {
        debug_assert_ne!(a, b, "adj_pair_mut needs distinct slots");
        let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
        let (left, right) = self.slots.split_at_mut(hi);
        let (lo_adj, hi_adj) = (&mut left[lo].adj, &mut right[0].adj);
        if a < b {
            (lo_adj, hi_adj)
        } else {
            (hi_adj, lo_adj)
        }
    }

    /// Add one copy of the undirected edge `{u, v}` (which may be a
    /// self-loop or a parallel copy). Both endpoints must exist.
    ///
    /// # Panics
    /// Panics if either endpoint is missing — the caller owns membership.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        let su = *self
            .index
            .get(&u)
            .unwrap_or_else(|| panic!("add_edge: missing endpoint {u}"));
        let sv = *self
            .index
            .get(&v)
            .unwrap_or_else(|| panic!("add_edge: missing endpoint {v}"));
        self.add_edge_slots(su, sv);
    }

    /// [`Self::add_edge`] in slot space: the hot batch paths resolve each
    /// endpoint's slot once per healing plan instead of twice per edge
    /// instance. Both slots must be live.
    pub fn add_edge_slots(&mut self, su: u32, sv: u32) {
        debug_assert!(self.slot_alive(su) && self.slot_alive(sv));
        if su == sv {
            self.slots[su as usize].adj.push(su);
        } else {
            let (lu, lv) = self.adj_pair_mut(su, sv);
            lu.push(sv);
            lv.push(su);
        }
        self.num_edges += 1;
        self.generation += 1;
        self.mark_row_dirty(su);
        if su != sv {
            self.mark_row_dirty(sv);
        }
    }

    /// Remove one copy of the undirected edge `{u, v}`. Returns `true` if a
    /// copy existed and was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let (Some(&su), Some(&sv)) = (self.index.get(&u), self.index.get(&v)) else {
            return false;
        };
        self.remove_edge_slots(su, sv)
    }

    /// [`Self::remove_edge`] in slot space (see [`Self::add_edge_slots`]).
    /// Both slots must be live.
    pub fn remove_edge_slots(&mut self, su: u32, sv: u32) -> bool {
        debug_assert!(self.slot_alive(su) && self.slot_alive(sv));
        if su == sv {
            let lu = &mut self.slots[su as usize].adj;
            let Some(pos) = lu.iter().position(|&w| w == su) else {
                return false;
            };
            lu.swap_remove(pos);
        } else {
            let (lu, lv) = self.adj_pair_mut(su, sv);
            let Some(pos) = lu.iter().position(|&w| w == sv) else {
                return false;
            };
            lu.swap_remove(pos);
            let pos = lv
                .iter()
                .position(|&w| w == su)
                .expect("adjacency symmetry violated: missing reverse entry");
            lv.swap_remove(pos);
        }
        self.num_edges -= 1;
        self.generation += 1;
        self.mark_row_dirty(su);
        if su != sv {
            self.mark_row_dirty(sv);
        }
        true
    }

    // ---- queries ----------------------------------------------------------

    /// Degree of `u` (self-loop counts 1, parallel edges count each).
    ///
    /// # Panics
    /// Panics if `u` is not in the graph.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.slots[self.index[&u] as usize].adj.len()
    }

    /// Neighbor multiset of `u` (self-loops appear as `u` itself). The
    /// returned view yields [`NodeId`]s; iterate it directly or index with
    /// [`Neighbors::at`]. For tight loops prefer staying in slot space via
    /// [`MultiGraph::neighbor_slots`].
    ///
    /// # Panics
    /// Panics if `u` is not in the graph.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> Neighbors<'_> {
        let slot = self.index[&u];
        Neighbors {
            graph: self,
            slots: &self.slots[slot as usize].adj,
        }
    }

    /// Multiplicity of the undirected edge `{u, v}` (0 if absent).
    pub fn edge_multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        match (self.index.get(&u), self.index.get(&v)) {
            (Some(&su), Some(&sv)) => self.slots[su as usize]
                .adj
                .iter()
                .filter(|&&w| w == sv)
                .count(),
            _ => 0,
        }
    }

    /// Is there at least one copy of `{u, v}`?
    #[inline]
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_multiplicity(u, v) > 0
    }

    /// Iterator over node ids (slot order; deterministic for a fixed
    /// insert/remove history).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.slots.iter().filter(|s| s.alive).map(|s| s.id)
    }

    /// Node ids in ascending order (canonical order for reporting).
    pub fn nodes_sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.nodes().collect();
        v.sort_unstable();
        v
    }

    /// Enumerate undirected edges with multiplicity; each parallel copy is
    /// yielded once, with endpoints ordered `u <= v`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for s in self.slots.iter().filter(|s| s.alive) {
            for &v in &s.adj {
                let vid = self.slots[v as usize].id;
                if s.id <= vid {
                    out.push((s.id, vid));
                }
            }
        }
        out
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.adj.len())
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.adj.len())
            .min()
            .unwrap_or(0)
    }

    /// Sum of all degrees. Equals `2·edges − loops` under our conventions.
    pub fn degree_sum(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.adj.len())
            .sum()
    }

    /// Consistency check: every directed entry has its reverse, edge count
    /// matches, no dangling endpoints, arena bookkeeping is coherent. Used
    /// by tests and invariant checkers.
    pub fn validate(&self) -> Result<(), String> {
        // Arena bookkeeping.
        let alive = self.slots.iter().filter(|s| s.alive).count();
        if alive != self.live {
            return Err(format!("live count {} != alive slots {alive}", self.live));
        }
        if self.index.len() != self.live {
            return Err(format!(
                "index size {} != live count {}",
                self.index.len(),
                self.live
            ));
        }
        for (&id, &slot) in &self.index {
            let s = self
                .slots
                .get(slot as usize)
                .ok_or_else(|| format!("index maps {id} to out-of-range slot {slot}"))?;
            if !s.alive || s.id != id {
                return Err(format!("index maps {id} to stale slot {slot}"));
            }
        }
        for &f in &self.free {
            let s = &self.slots[f as usize];
            if s.alive {
                return Err(format!("free list contains live slot {f}"));
            }
            if !s.adj.is_empty() {
                return Err(format!("dead slot {f} has residual adjacency"));
            }
        }
        // Adjacency symmetry and edge count.
        let mut directed = 0usize;
        let mut loops = 0usize;
        for (si, s) in self.slots.iter().enumerate() {
            if !s.alive {
                continue;
            }
            let si = si as u32;
            for &v in &s.adj {
                let t = self
                    .slots
                    .get(v as usize)
                    .ok_or_else(|| format!("edge {}->slot {v} out of range", s.id))?;
                if !t.alive {
                    return Err(format!("edge {}->slot {v} dangles: slot dead", s.id));
                }
                if v == si {
                    loops += 1;
                    directed += 2; // a loop is its own reverse
                    continue;
                }
                directed += 1;
                let fwd = s.adj.iter().filter(|&&w| w == v).count();
                let rev = t.adj.iter().filter(|&&w| w == si).count();
                if fwd != rev {
                    return Err(format!(
                        "asymmetric multiplicity {}<->{}: {fwd} vs {rev}",
                        s.id, t.id
                    ));
                }
            }
        }
        let undirected = directed / 2;
        if undirected != self.num_edges {
            return Err(format!(
                "edge count mismatch: counted {undirected} (loops {loops}), cached {}",
                self.num_edges
            ));
        }
        Ok(())
    }

    // ---- CSR snapshot -----------------------------------------------------

    /// Mutation generation: bumped by every add/remove of a node or edge.
    /// Two equal generations on the same graph imply identical topology.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Build a compact index: `order[i]` is the node with dense index `i`,
    /// and the returned map sends each node id to its dense index. Order is
    /// ascending by id so that numeric code is deterministic.
    pub fn dense_index(&self) -> (Vec<NodeId>, FxHashMap<NodeId, usize>) {
        let csr = self.csr();
        let order = csr.order.clone();
        let mut map = FxHashMap::with_capacity_and_hasher(order.len(), Default::default());
        for (i, &u) in order.iter().enumerate() {
            map.insert(u, i);
        }
        (order, map)
    }

    /// Borrow the cached CSR snapshot, rebuilding it first if the graph
    /// mutated since the last call. Edge-only churn refreshes just the
    /// dirty rows; node churn triggers a full rebuild. O(1) when the graph
    /// is unchanged. A self-loop contributes a single entry, matching
    /// `degree`.
    pub fn csr(&self) -> CsrRef<'_> {
        {
            let guard = self.cache.read().expect("snapshot lock poisoned");
            if guard.built == self.generation {
                return CsrRef(guard);
            }
        }
        {
            let mut guard = self.cache.write().expect("snapshot lock poisoned");
            // Double-checked: another thread may have rebuilt while we
            // waited for the write lock. (The graph itself cannot mutate
            // concurrently — mutation needs `&mut self`.)
            if guard.built != self.generation {
                self.rebuild_snapshot(&mut guard);
            }
        }
        let guard = self.cache.read().expect("snapshot lock poisoned");
        debug_assert_eq!(guard.built, self.generation);
        CsrRef(guard)
    }

    fn rebuild_snapshot(&self, state: &mut SnapshotState) {
        if state.membership_dirty || state.built == GEN_NONE {
            self.rebuild_full(state);
        } else {
            self.rebuild_dirty_rows(state);
        }
        for &s in &state.dirty_slots {
            state.dirty_mark[s as usize] = false;
        }
        state.dirty_slots.clear();
        if state.dirty_mark.len() < self.slots.len() {
            state.dirty_mark.resize(self.slots.len(), false);
        }
        state.membership_dirty = false;
        state.built = self.generation;
    }

    /// Full rebuild: re-derive dense order (ascending by id) and all rows.
    fn rebuild_full(&self, state: &mut SnapshotState) {
        let n = self.live;
        let csr = &mut state.csr;
        csr.order.clear();
        csr.order.extend(self.nodes());
        csr.order.sort_unstable();

        state.dense_of_slot.clear();
        state.dense_of_slot.resize(self.slots.len(), NO_DENSE);
        for (i, &u) in csr.order.iter().enumerate() {
            state.dense_of_slot[self.index[&u] as usize] = i as u32;
        }

        csr.offsets.clear();
        csr.offsets.reserve(n + 1);
        csr.offsets.push(0);
        csr.targets.clear();
        csr.targets.reserve(self.degree_sum());
        for &u in &csr.order {
            let slot = self.index[&u];
            for &v in &self.slots[slot as usize].adj {
                csr.targets.push(state.dense_of_slot[v as usize]);
            }
            csr.offsets.push(csr.targets.len() as u32);
        }
    }

    /// Incremental rebuild: node membership (and hence `order` and the
    /// slot→dense map) is unchanged; re-derive only rows whose slot is
    /// dirty and memcpy the rest from the previous snapshot.
    fn rebuild_dirty_rows(&self, state: &mut SnapshotState) {
        let csr = &mut state.csr;
        let n = csr.order.len();
        debug_assert_eq!(n, self.live);
        let new_offsets = &mut state.scratch_offsets;
        let new_targets = &mut state.scratch_targets;
        new_offsets.clear();
        new_offsets.reserve(n + 1);
        new_offsets.push(0);
        new_targets.clear();
        new_targets.reserve(self.degree_sum());
        for (i, &u) in csr.order.iter().enumerate() {
            let slot = self.index[&u] as usize;
            if state.dirty_mark.get(slot).copied().unwrap_or(false) {
                for &v in &self.slots[slot].adj {
                    new_targets.push(state.dense_of_slot[v as usize]);
                }
            } else {
                let (lo, hi) = (csr.offsets[i] as usize, csr.offsets[i + 1] as usize);
                new_targets.extend_from_slice(&csr.targets[lo..hi]);
            }
            new_offsets.push(new_targets.len() as u32);
        }
        std::mem::swap(&mut csr.offsets, new_offsets);
        std::mem::swap(&mut csr.targets, new_targets);
    }

    /// Compressed sparse row form (dense indices) built from scratch into
    /// an owned value, bypassing the cache. This is the seed
    /// implementation's rebuild-per-call path — kept as the benchmark
    /// baseline and as the oracle the cache-coherence tests compare
    /// against. Prefer [`MultiGraph::csr`].
    pub fn to_csr(&self) -> Csr {
        let mut order: Vec<NodeId> = self.nodes().collect();
        order.sort_unstable();
        let mut dense_of_slot = vec![NO_DENSE; self.slots.len()];
        for (i, &u) in order.iter().enumerate() {
            dense_of_slot[self.index[&u] as usize] = i as u32;
        }
        let mut offsets = Vec::with_capacity(order.len() + 1);
        let mut targets = Vec::with_capacity(self.degree_sum());
        offsets.push(0u32);
        for &u in &order {
            let slot = self.index[&u];
            for &v in &self.slots[slot as usize].adj {
                targets.push(dense_of_slot[v as usize]);
            }
            offsets.push(targets.len() as u32);
        }
        Csr {
            order,
            offsets,
            targets,
        }
    }
}

impl std::fmt::Debug for MultiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MultiGraph(n={}, m={}, Δ={}, gen={})",
            self.num_nodes(),
            self.num_edges(),
            self.max_degree(),
            self.generation,
        )
    }
}

/// Borrowed view of a node's neighbor multiset, yielding [`NodeId`]s while
/// the underlying storage stays in slot space.
#[derive(Clone, Copy)]
pub struct Neighbors<'g> {
    graph: &'g MultiGraph,
    slots: &'g [u32],
}

impl<'g> Neighbors<'g> {
    /// Number of entries (= degree).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Is the neighbor list empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Id of the `i`-th adjacency entry.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn at(&self, i: usize) -> NodeId {
        self.graph.id_of_slot(self.slots[i])
    }

    /// Iterate entries as node ids.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + 'g {
        let graph = self.graph;
        self.slots.iter().map(move |&s| graph.id_of_slot(s))
    }

    /// Underlying slot indices (for loops that stay in slot space).
    #[inline]
    pub fn slot_indices(&self) -> &'g [u32] {
        self.slots
    }

    /// Does the multiset contain `v`?
    pub fn contains(&self, v: NodeId) -> bool {
        self.iter().any(|w| w == v)
    }

    /// Copy out as a vector of ids.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl<'g> IntoIterator for Neighbors<'g> {
    type Item = NodeId;
    type IntoIter = NeighborsIter<'g>;

    fn into_iter(self) -> NeighborsIter<'g> {
        NeighborsIter {
            graph: self.graph,
            inner: self.slots.iter(),
        }
    }
}

impl<'g> IntoIterator for &Neighbors<'g> {
    type Item = NodeId;
    type IntoIter = NeighborsIter<'g>;

    fn into_iter(self) -> NeighborsIter<'g> {
        (*self).into_iter()
    }
}

/// Iterator over a [`Neighbors`] view.
pub struct NeighborsIter<'g> {
    graph: &'g MultiGraph,
    inner: std::slice::Iter<'g, u32>,
}

impl Iterator for NeighborsIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        self.inner.next().map(|&s| self.graph.id_of_slot(s))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborsIter<'_> {}

/// Compressed sparse row view of a [`MultiGraph`] snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Csr {
    /// Dense-index → node id (ascending by id).
    pub order: Vec<NodeId>,
    /// Row offsets, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Concatenated neighbor lists (dense indices).
    pub targets: Vec<u32>,
}

impl Csr {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// Neighbors of dense index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of dense index `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

/// Borrow of the cached CSR snapshot (see [`MultiGraph::csr`]). Derefs to
/// [`Csr`]; holding it does not block other readers, and mutation is
/// statically impossible while it lives (mutating methods need
/// `&mut MultiGraph`).
pub struct CsrRef<'g>(RwLockReadGuard<'g, SnapshotState>);

impl std::ops::Deref for CsrRef<'_> {
    type Target = Csr;

    #[inline]
    fn deref(&self) -> &Csr {
        &self.0.csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    fn triangle() -> MultiGraph {
        let mut g = MultiGraph::new();
        for i in 0..3 {
            g.add_node(n(i));
        }
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(0));
        g
    }

    #[test]
    fn basic_construction() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(n(0)), 2);
        assert!(g.contains_edge(n(0), n(1)));
        assert!(!g.contains_edge(n(0), n(0)));
        g.validate().unwrap();
    }

    #[test]
    fn self_loop_counts_once() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_edge(n(0), n(0));
        assert_eq!(g.degree(n(0)), 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_multiplicity(n(0), n(0)), 1);
        g.validate().unwrap();
        assert!(g.remove_edge(n(0), n(0)));
        assert_eq!(g.num_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn parallel_edges_tracked_with_multiplicity() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_node(n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(0));
        assert_eq!(g.edge_multiplicity(n(0), n(1)), 3);
        assert_eq!(g.degree(n(0)), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.remove_edge(n(0), n(1)));
        assert_eq!(g.edge_multiplicity(n(1), n(0)), 2);
        g.validate().unwrap();
    }

    #[test]
    fn remove_node_cleans_reverse_entries() {
        let mut g = triangle();
        g.add_edge(n(0), n(0)); // loop
        g.add_edge(n(0), n(1)); // parallel copy
        let removed = g.remove_node(n(0)).unwrap();
        assert_eq!(removed, 4); // 0-1, 0-2, loop, parallel 0-1
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1); // only 1-2 survives
        assert_eq!(g.degree(n(1)), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_missing_returns_none_or_false() {
        let mut g = triangle();
        assert!(g.remove_node(n(99)).is_none());
        assert!(!g.remove_edge(n(0), n(99)));
        assert!(!g.remove_edge(n(99), n(0)));
    }

    #[test]
    fn edges_enumeration_covers_multiplicity() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_node(n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(1));
        let mut e = g.edges();
        e.sort();
        assert_eq!(e, vec![(n(0), n(1)), (n(0), n(1)), (n(1), n(1))]);
    }

    #[test]
    fn csr_matches_graph() {
        let mut g = triangle();
        g.add_edge(n(1), n(1));
        let csr = g.to_csr();
        assert_eq!(csr.n(), 3);
        // order is ascending by id, so dense index i == node id i here.
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 3);
        let mut row1: Vec<u32> = csr.row(1).to_vec();
        row1.sort_unstable();
        assert_eq!(row1, vec![0, 1, 2]);
    }

    #[test]
    fn degree_sum_identity() {
        let mut g = triangle();
        g.add_edge(n(0), n(0));
        // degree_sum = 2·(non-loop edges) + 1·loops = 2*3 + 1 = 7
        assert_eq!(g.degree_sum(), 7);
    }

    #[test]
    #[should_panic(expected = "missing endpoint")]
    fn add_edge_requires_endpoints() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_edge(n(0), n(1));
    }

    // ---- arena / snapshot behaviour ---------------------------------------

    #[test]
    fn slots_are_reused_after_removal() {
        let mut g = MultiGraph::new();
        for i in 0..4 {
            g.add_node(n(i));
        }
        assert_eq!(g.slot_bound(), 4);
        g.remove_node(n(1)).unwrap();
        g.remove_node(n(3)).unwrap();
        g.add_node(n(10));
        g.add_node(n(11));
        // Freed slots were recycled: the arena did not grow.
        assert_eq!(g.slot_bound(), 4);
        assert_eq!(g.num_nodes(), 4);
        g.validate().unwrap();
    }

    #[test]
    fn slot_space_round_trips() {
        let g = triangle();
        for u in g.nodes() {
            let s = g.slot_of(u).unwrap();
            assert_eq!(g.id_of_slot(s), u);
            assert_eq!(g.degree_of_slot(s), g.degree(u));
            let via_slots: Vec<NodeId> = g
                .neighbor_slots(s)
                .iter()
                .map(|&t| g.id_of_slot(t))
                .collect();
            assert_eq!(via_slots, g.neighbors(u).to_vec());
        }
        assert_eq!(g.slot_of(n(99)), None);
    }

    #[test]
    fn neighbors_view_api() {
        let mut g = triangle();
        g.add_edge(n(0), n(0));
        let nbrs = g.neighbors(n(0));
        assert_eq!(nbrs.len(), 3);
        assert!(!nbrs.is_empty());
        assert!(nbrs.contains(n(0)) && nbrs.contains(n(1)) && nbrs.contains(n(2)));
        let mut collected: Vec<NodeId> = nbrs.iter().collect();
        collected.sort_unstable();
        assert_eq!(collected, vec![n(0), n(1), n(2)]);
        let mut by_index: Vec<NodeId> = (0..nbrs.len()).map(|i| nbrs.at(i)).collect();
        by_index.sort_unstable();
        assert_eq!(by_index, collected);
        let mut by_for: Vec<NodeId> = Vec::new();
        for v in g.neighbors(n(0)) {
            by_for.push(v);
        }
        by_for.sort_unstable();
        assert_eq!(by_for, collected);
    }

    #[test]
    fn cached_csr_matches_rebuild_after_edge_churn() {
        let mut g = triangle();
        assert_eq!(*g.csr(), g.to_csr());
        g.add_edge(n(0), n(2));
        g.add_edge(n(1), n(1));
        assert_eq!(*g.csr(), g.to_csr());
        g.remove_edge(n(0), n(1));
        assert_eq!(*g.csr(), g.to_csr());
    }

    #[test]
    fn cached_csr_matches_rebuild_after_node_churn() {
        let mut g = triangle();
        let _ = g.csr();
        g.remove_node(n(1)).unwrap();
        assert_eq!(*g.csr(), g.to_csr());
        g.add_node(n(7));
        g.add_edge(n(7), n(0));
        assert_eq!(*g.csr(), g.to_csr());
    }

    #[test]
    fn csr_is_cached_until_mutation() {
        let mut g = triangle();
        let gen0 = g.generation();
        let _ = g.csr();
        let _ = g.csr();
        assert_eq!(g.generation(), gen0, "read-only csr() must not mutate");
        g.add_edge(n(0), n(1));
        assert!(g.generation() > gen0);
        assert_eq!(*g.csr(), g.to_csr());
    }

    #[test]
    fn clone_rebuilds_snapshot_independently() {
        let mut g = triangle();
        let _ = g.csr();
        let mut h = g.clone();
        h.add_edge(n(0), n(1));
        assert_eq!(*h.csr(), h.to_csr());
        g.remove_edge(n(1), n(2));
        assert_eq!(*g.csr(), g.to_csr());
    }

    #[test]
    fn walk_slots_stays_in_graph() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = triangle();
        let mut rng = StdRng::seed_from_u64(1);
        let start = g.slot_of(n(0)).unwrap();
        for len in [0, 1, 5, 50] {
            let end = g.walk_slots(start, len, &mut rng);
            assert!(g.has_node(g.id_of_slot(end)));
        }
    }
}
