//! A dynamic undirected multigraph with self-loops.
//!
//! The real network maintained by DEX is the image of the virtual p-cycle
//! under a vertex contraction (paper, Sect. 3.1), and contractions produce
//! parallel edges and self-loops. Those must be kept — they carry weight in
//! the random-walk operator, and Lemma 1 (λ_G ≤ λ_Z) only holds for the true
//! contracted multigraph.
//!
//! Conventions:
//! * a self-loop at `u` appears **once** in `adj[u]` and contributes **1** to
//!   `degree(u)` — this matches Definition 1, where the p-cycle is called
//!   3-regular with vertex 0 carrying a self-loop;
//! * a parallel edge appears once per copy;
//! * `num_edges` counts undirected edges with multiplicity (self-loops
//!   count 1).

use crate::fxhash::FxHashMap;
use crate::ids::NodeId;

/// Dynamic undirected multigraph. See module docs for conventions.
#[derive(Clone, Default)]
pub struct MultiGraph {
    adj: FxHashMap<NodeId, Vec<NodeId>>,
    num_edges: usize,
}

impl MultiGraph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            adj: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            num_edges: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges, counted with multiplicity
    /// (self-loops count 1).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Does the graph contain `u`?
    #[inline]
    pub fn has_node(&self, u: NodeId) -> bool {
        self.adj.contains_key(&u)
    }

    /// Insert an isolated node. Returns `false` if it already existed.
    pub fn add_node(&mut self, u: NodeId) -> bool {
        match self.adj.entry(u) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Vec::new());
                true
            }
        }
    }

    /// Remove `u` and all incident edges (including parallel copies and
    /// loops). Returns the number of undirected edges removed, or `None` if
    /// `u` was not present.
    pub fn remove_node(&mut self, u: NodeId) -> Option<usize> {
        let incident = self.adj.remove(&u)?;
        let mut removed = 0usize;
        for v in incident {
            removed += 1;
            if v != u {
                let list = self
                    .adj
                    .get_mut(&v)
                    .expect("adjacency symmetry violated: missing reverse list");
                let pos = list
                    .iter()
                    .position(|&w| w == u)
                    .expect("adjacency symmetry violated: missing reverse entry");
                list.swap_remove(pos);
            }
        }
        self.num_edges -= removed;
        Some(removed)
    }

    /// Add one copy of the undirected edge `{u, v}` (which may be a
    /// self-loop or a parallel copy). Both endpoints must exist.
    ///
    /// # Panics
    /// Panics if either endpoint is missing — the caller owns membership.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(self.has_node(u), "add_edge: missing endpoint {u}");
        assert!(self.has_node(v), "add_edge: missing endpoint {v}");
        if u == v {
            self.adj.get_mut(&u).unwrap().push(u);
        } else {
            self.adj.get_mut(&u).unwrap().push(v);
            self.adj.get_mut(&v).unwrap().push(u);
        }
        self.num_edges += 1;
    }

    /// Remove one copy of the undirected edge `{u, v}`. Returns `true` if a
    /// copy existed and was removed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(lu) = self.adj.get_mut(&u) else {
            return false;
        };
        let Some(pos) = lu.iter().position(|&w| w == v) else {
            return false;
        };
        lu.swap_remove(pos);
        if u != v {
            let lv = self
                .adj
                .get_mut(&v)
                .expect("adjacency symmetry violated: missing reverse list");
            let pos = lv
                .iter()
                .position(|&w| w == u)
                .expect("adjacency symmetry violated: missing reverse entry");
            lv.swap_remove(pos);
        }
        self.num_edges -= 1;
        true
    }

    /// Degree of `u` (self-loop counts 1, parallel edges count each).
    ///
    /// # Panics
    /// Panics if `u` is not in the graph.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[&u].len()
    }

    /// Neighbor multiset of `u` (self-loops appear as `u` itself).
    ///
    /// # Panics
    /// Panics if `u` is not in the graph.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[&u]
    }

    /// Multiplicity of the undirected edge `{u, v}` (0 if absent).
    pub fn edge_multiplicity(&self, u: NodeId, v: NodeId) -> usize {
        match self.adj.get(&u) {
            Some(list) => list.iter().filter(|&&w| w == v).count(),
            None => 0,
        }
    }

    /// Is there at least one copy of `{u, v}`?
    #[inline]
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_multiplicity(u, v) > 0
    }

    /// Iterator over node ids (hash order; deterministic for a fixed
    /// insert/remove history because the hasher is deterministic).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Node ids in ascending order (canonical order for reporting).
    pub fn nodes_sorted(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.adj.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Enumerate undirected edges with multiplicity; each parallel copy is
    /// yielded once, with endpoints ordered `u <= v`.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (&u, list) in &self.adj {
            for &v in list {
                if u <= v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.values().map(|l| l.len()).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        self.adj.values().map(|l| l.len()).min().unwrap_or(0)
    }

    /// Sum of all degrees. Equals `2·edges − loops` under our conventions.
    pub fn degree_sum(&self) -> usize {
        self.adj.values().map(|l| l.len()).sum()
    }

    /// Consistency check: every directed entry has its reverse, edge count
    /// matches, no dangling endpoints. Used by tests and invariant checkers.
    pub fn validate(&self) -> Result<(), String> {
        let mut directed = 0usize;
        let mut loops = 0usize;
        for (&u, list) in &self.adj {
            for &v in list {
                if v == u {
                    loops += 1;
                    directed += 2; // a loop is its own reverse
                    continue;
                }
                directed += 1;
                let back = self
                    .adj
                    .get(&v)
                    .ok_or_else(|| format!("edge {u}->{v} dangles: {v} missing"))?;
                let fwd = list.iter().filter(|&&w| w == v).count();
                let rev = back.iter().filter(|&&w| w == u).count();
                if fwd != rev {
                    return Err(format!(
                        "asymmetric multiplicity {u}<->{v}: {fwd} vs {rev}"
                    ));
                }
            }
        }
        let undirected = directed / 2;
        if undirected != self.num_edges {
            return Err(format!(
                "edge count mismatch: counted {undirected} (loops {loops}), cached {}",
                self.num_edges
            ));
        }
        Ok(())
    }

    /// Build a compact index: `order[i]` is the node with dense index `i`,
    /// and the returned map sends each node id to its dense index. Order is
    /// ascending by id so that numeric code is deterministic.
    pub fn dense_index(&self) -> (Vec<NodeId>, FxHashMap<NodeId, usize>) {
        let order = self.nodes_sorted();
        let mut map = FxHashMap::with_capacity_and_hasher(order.len(), Default::default());
        for (i, &u) in order.iter().enumerate() {
            map.insert(u, i);
        }
        (order, map)
    }

    /// Compressed sparse row form (dense indices) for matrix-free numerics.
    /// A self-loop contributes a single entry, matching `degree`.
    pub fn to_csr(&self) -> Csr {
        let (order, map) = self.dense_index();
        let n = order.len();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.degree_sum());
        offsets.push(0u32);
        for &u in &order {
            for &v in &self.adj[&u] {
                targets.push(map[&v] as u32);
            }
            offsets.push(targets.len() as u32);
        }
        Csr {
            order,
            offsets,
            targets,
        }
    }
}

impl std::fmt::Debug for MultiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MultiGraph(n={}, m={}, Δ={})",
            self.num_nodes(),
            self.num_edges(),
            self.max_degree()
        )
    }
}

/// Compressed sparse row view of a [`MultiGraph`] snapshot.
pub struct Csr {
    /// Dense-index → node id.
    pub order: Vec<NodeId>,
    /// Row offsets, length `n + 1`.
    pub offsets: Vec<u32>,
    /// Concatenated neighbor lists (dense indices).
    pub targets: Vec<u32>,
}

impl Csr {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// Neighbors of dense index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of dense index `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    fn triangle() -> MultiGraph {
        let mut g = MultiGraph::new();
        for i in 0..3 {
            g.add_node(n(i));
        }
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(0));
        g
    }

    #[test]
    fn basic_construction() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(n(0)), 2);
        assert!(g.contains_edge(n(0), n(1)));
        assert!(!g.contains_edge(n(0), n(0)));
        g.validate().unwrap();
    }

    #[test]
    fn self_loop_counts_once() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_edge(n(0), n(0));
        assert_eq!(g.degree(n(0)), 1);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_multiplicity(n(0), n(0)), 1);
        g.validate().unwrap();
        assert!(g.remove_edge(n(0), n(0)));
        assert_eq!(g.num_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn parallel_edges_tracked_with_multiplicity() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_node(n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(0));
        assert_eq!(g.edge_multiplicity(n(0), n(1)), 3);
        assert_eq!(g.degree(n(0)), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.remove_edge(n(0), n(1)));
        assert_eq!(g.edge_multiplicity(n(1), n(0)), 2);
        g.validate().unwrap();
    }

    #[test]
    fn remove_node_cleans_reverse_entries() {
        let mut g = triangle();
        g.add_edge(n(0), n(0)); // loop
        g.add_edge(n(0), n(1)); // parallel copy
        let removed = g.remove_node(n(0)).unwrap();
        assert_eq!(removed, 4); // 0-1, 0-2, loop, parallel 0-1
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1); // only 1-2 survives
        assert_eq!(g.degree(n(1)), 1);
        g.validate().unwrap();
    }

    #[test]
    fn remove_missing_returns_none_or_false() {
        let mut g = triangle();
        assert!(g.remove_node(n(99)).is_none());
        assert!(!g.remove_edge(n(0), n(99)));
        assert!(!g.remove_edge(n(99), n(0)));
    }

    #[test]
    fn edges_enumeration_covers_multiplicity() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_node(n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(1));
        let mut e = g.edges();
        e.sort();
        assert_eq!(e, vec![(n(0), n(1)), (n(0), n(1)), (n(1), n(1))]);
    }

    #[test]
    fn csr_matches_graph() {
        let mut g = triangle();
        g.add_edge(n(1), n(1));
        let csr = g.to_csr();
        assert_eq!(csr.n(), 3);
        // order is ascending by id, so dense index i == node id i here.
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 3);
        let mut row1: Vec<u32> = csr.row(1).to_vec();
        row1.sort_unstable();
        assert_eq!(row1, vec![0, 1, 2]);
    }

    #[test]
    fn degree_sum_identity() {
        let mut g = triangle();
        g.add_edge(n(0), n(0));
        // degree_sum = 2·(non-loop edges) + 1·loops = 2*3 + 1 = 7
        assert_eq!(g.degree_sum(), 7);
    }

    #[test]
    #[should_panic(expected = "missing endpoint")]
    fn add_edge_requires_endpoints() {
        let mut g = MultiGraph::new();
        g.add_node(n(0));
        g.add_edge(n(0), n(1));
    }
}
