//! The p-cycle expander family `Z(p)` (paper, Definition 1).
//!
//! For a prime `p`, `Z(p)` has vertex set `Z_p = {0, …, p−1}` and edges
//!
//! 1. cycle edges `{x, x+1 mod p}`,
//! 2. inverse chords `{x, x⁻¹ mod p}` for `x, x⁻¹ > 0`,
//! 3. a self-loop at 0.
//!
//! Vertices 1 and `p−1` are their own inverses, so their chords are
//! self-loops too; every vertex then has degree exactly 3 (self-loops count
//! once, matching [`crate::MultiGraph`] conventions). Lubotzky showed this
//! family has a constant eigenvalue gap, which is what DEX leans on.
//!
//! The [`resize`] submodule holds the pure arithmetic of *inflation*
//! (Eq. 6–7: old vertex `x` becomes the cloud `y₀…y_c(x)` in the larger
//! cycle) and *deflation* (`x ↦ ⌊x/α⌋`), with the bijection/surjection
//! properties of Lemmas 4 and 6 verified by tests.

use crate::adjacency::MultiGraph;
use crate::fxhash::FxHashMap;
use crate::ids::{NodeId, VertexId};
use crate::primes::{is_prime, mod_inverse};

/// The virtual graph `Z(p)` for a prime `p ≥ 5`.
///
/// The structure is implicit (O(1) memory): neighbors and inverses are
/// computed arithmetically, which is exactly what lets every DEX node "know"
/// the whole virtual graph without storing it (paper, Sect. 4.2.1).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PCycle {
    p: u64,
}

impl PCycle {
    /// Build `Z(p)`.
    ///
    /// # Panics
    /// Panics if `p` is not a prime `≥ 5` (smaller primes degenerate: the
    /// cycle and chord edge sets collide).
    pub fn new(p: u64) -> Self {
        assert!(p >= 5, "p-cycle needs p >= 5, got {p}");
        assert!(is_prime(p), "p-cycle needs prime p, got {p}");
        PCycle { p }
    }

    /// The prime `p` (also the number of vertices).
    #[inline]
    pub fn p(&self) -> u64 {
        self.p
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.p
    }

    /// Is `z` a vertex of this cycle?
    #[inline]
    pub fn contains(&self, z: VertexId) -> bool {
        z.0 < self.p
    }

    /// Successor on the cycle: `x + 1 mod p`.
    #[inline]
    pub fn succ(&self, z: VertexId) -> VertexId {
        VertexId((z.0 + 1) % self.p)
    }

    /// Predecessor on the cycle: `x − 1 mod p`.
    #[inline]
    pub fn pred(&self, z: VertexId) -> VertexId {
        VertexId((z.0 + self.p - 1) % self.p)
    }

    /// Chord partner: `x⁻¹ mod p` for `x > 0`, and 0 for `x = 0` (the
    /// self-loop of Definition 1). Self-inverse vertices (1 and `p−1`)
    /// return themselves.
    #[inline]
    pub fn chord(&self, z: VertexId) -> VertexId {
        if z.0 == 0 {
            VertexId(0)
        } else {
            VertexId(mod_inverse(z.0, self.p))
        }
    }

    /// The three neighbors `[succ, pred, chord]` of `z` (chord may equal
    /// `z` itself for the self-loop vertices 0, 1, `p−1`).
    #[inline]
    pub fn neighbors(&self, z: VertexId) -> [VertexId; 3] {
        [self.succ(z), self.pred(z), self.chord(z)]
    }

    /// Are `a` and `b` adjacent in `Z(p)`? (Self-loops: `adjacent(z, z)` is
    /// true exactly for z ∈ {0, 1, p−1}.)
    pub fn adjacent(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// All undirected edges, each exactly once (self-loops included once).
    /// `p` cycle edges, `(p−3)/2` chords, 3 self-loops.
    pub fn edges(&self) -> Vec<(VertexId, VertexId)> {
        let p = self.p;
        let mut out = Vec::with_capacity(p as usize + (p as usize - 3) / 2 + 3);
        for x in 0..p {
            out.push((VertexId(x), VertexId((x + 1) % p)));
        }
        out.push((VertexId(0), VertexId(0)));
        for x in 1..p {
            let inv = mod_inverse(x, p);
            if inv >= x {
                out.push((VertexId(x), VertexId(inv)));
            }
        }
        out
    }

    /// Materialize `Z(p)` as a [`MultiGraph`] whose node ids are the raw
    /// vertex values. Used by spectral tests and the Figure-1 harness.
    pub fn to_multigraph(&self) -> MultiGraph {
        let mut g = MultiGraph::with_capacity(self.p as usize);
        for x in 0..self.p {
            g.add_node(NodeId(x));
        }
        for (a, b) in self.edges() {
            g.add_edge(NodeId(a.0), NodeId(b.0));
        }
        g
    }

    /// BFS distances from `src` to every vertex. O(p) time/space.
    pub fn bfs_distances(&self, src: VertexId) -> Vec<u32> {
        let p = self.p as usize;
        let mut dist = vec![u32::MAX; p];
        let mut queue = std::collections::VecDeque::with_capacity(p);
        dist[src.0 as usize] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.0 as usize];
            for v in self.neighbors(u) {
                let dv = &mut dist[v.0 as usize];
                if *dv == u32::MAX {
                    *dv = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// BFS parent array oriented *toward* `target`: following
    /// `parent[x]` repeatedly reaches `target` along a shortest path.
    /// `parent[target] == target`.
    pub fn bfs_parents_toward(&self, target: VertexId) -> Vec<u32> {
        let p = self.p as usize;
        let mut parent = vec![u32::MAX; p];
        let mut queue = std::collections::VecDeque::with_capacity(p);
        parent[target.0 as usize] = target.0 as u32;
        queue.push_back(target);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                let pv = &mut parent[v.0 as usize];
                if *pv == u32::MAX {
                    *pv = u.0 as u32;
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// Shortest path from `from` to `to` (inclusive of both endpoints).
    pub fn shortest_path(&self, from: VertexId, to: VertexId) -> Vec<VertexId> {
        let parent = self.bfs_parents_toward(to);
        let mut path = vec![from];
        let mut cur = from;
        while cur != to {
            cur = VertexId(parent[cur.0 as usize] as u64);
            path.push(cur);
        }
        path
    }

    /// Graph distance between two vertices.
    pub fn distance(&self, a: VertexId, b: VertexId) -> u32 {
        self.bfs_distances(a)[b.0 as usize]
    }

    /// Shortest path `from → to` (inclusive) into a caller buffer, by
    /// bidirectional BFS over pooled scratch.
    ///
    /// [`PCycle::shortest_path`] runs a *full* O(p) BFS and allocates per
    /// call — ruinous for per-operation routing (the DHT) at p ≈ 10⁶.
    /// Meeting in the middle visits O(3^(d/2)) ≈ O(√p) vertices instead,
    /// and every buffer lives in `scratch`, so a warmed-up caller
    /// allocates nothing. Fully deterministic: frontiers expand in
    /// insertion order with the fixed (succ, pred, chord) neighbor order,
    /// sides alternate strictly starting forward, and the first shortest
    /// meeting found in that order wins. The returned path length always
    /// equals [`PCycle::distance`] (a proptest enforces this); the path
    /// itself may differ from the unidirectional one — any shortest path
    /// is a valid route (Sect. 4.4).
    pub fn shortest_path_with(
        &self,
        from: VertexId,
        to: VertexId,
        scratch: &mut PathScratch,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        if from == to {
            out.push(from);
            return;
        }
        let PathScratch {
            fwd,
            bwd,
            fq,
            bq,
            next,
        } = scratch;
        fwd.clear();
        bwd.clear();
        fq.clear();
        bq.clear();
        next.clear();
        fwd.insert(from.0, (from.0, 0));
        bwd.insert(to.0, (to.0, 0));
        fq.push(from.0);
        bq.push(to.0);
        let (mut df, mut db) = (0u32, 0u32);
        let mut best: u32 = u32::MAX;
        let mut meet: u64 = u64::MAX;
        let mut forward = true;
        while (best as u64) > (df + db) as u64 {
            // Expand one full level of the chosen side (alternating;
            // falling back to the other side if this one is exhausted).
            let go_forward = (forward && !fq.is_empty()) || bq.is_empty();
            let (this, other, queue, depth) = if go_forward {
                (&mut *fwd, &*bwd, &mut *fq, &mut df)
            } else {
                (&mut *bwd, &*fwd, &mut *bq, &mut db)
            };
            if queue.is_empty() {
                break; // both exhausted: unreachable vertex (not on Z(p))
            }
            *depth += 1;
            next.clear();
            for &x in queue.iter() {
                for v in self.neighbors(VertexId(x)) {
                    if let std::collections::hash_map::Entry::Vacant(e) = this.entry(v.0) {
                        e.insert((x, *depth));
                        next.push(v.0);
                        if let Some(&(_, do_)) = other.get(&v.0) {
                            let cand = *depth + do_;
                            if cand < best {
                                best = cand;
                                meet = v.0;
                            }
                        }
                    }
                }
            }
            std::mem::swap(queue, next);
            forward = !forward;
        }
        assert!(meet != u64::MAX, "Z(p) is connected");
        // Reconstruct: forward half reversed, then the backward chain.
        out.push(VertexId(meet));
        let mut cur = meet;
        while cur != from.0 {
            cur = fwd[&cur].0;
            out.push(VertexId(cur));
        }
        out.reverse();
        cur = meet;
        while cur != to.0 {
            cur = bwd[&cur].0;
            out.push(VertexId(cur));
        }
    }

    /// Exact diameter by all-pairs BFS — O(p²); use for small `p`
    /// (tests and the Figure-1 harness only).
    pub fn diameter(&self) -> u32 {
        (0..self.p)
            .map(|x| {
                *self
                    .bfs_distances(VertexId(x))
                    .iter()
                    .max()
                    .expect("nonempty")
            })
            .max()
            .expect("nonempty")
    }
}

impl std::fmt::Debug for PCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Z({})", self.p)
    }
}

/// Pooled buffers for [`PCycle::shortest_path_with`] (bidirectional BFS):
/// two parent/depth maps, two frontiers, and a staging queue. One instance
/// serves unbounded routing operations with no steady-state allocation —
/// the maps retain their high-water capacity across calls.
#[derive(Default)]
pub struct PathScratch {
    /// Forward side: vertex → (parent toward `from`, depth).
    fwd: FxHashMap<u64, (u64, u32)>,
    /// Backward side: vertex → (parent toward `to`, depth).
    bwd: FxHashMap<u64, (u64, u32)>,
    fq: Vec<u64>,
    bq: Vec<u64>,
    next: Vec<u64>,
}

impl PathScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Caching next-hop oracle for routing on a fixed `Z(p)`.
///
/// Local routing in DEX ("node v can locally compute a shortest path in the
/// virtual graph", Sect. 4.4) is free in the model; this cache keeps the
/// *simulator* cost manageable by memoizing one BFS tree per routing target.
pub struct PathOracle {
    cycle: PCycle,
    toward: FxHashMap<u64, Box<[u32]>>,
}

impl PathOracle {
    /// New oracle for `cycle`.
    pub fn new(cycle: PCycle) -> Self {
        PathOracle {
            cycle,
            toward: FxHashMap::default(),
        }
    }

    /// The cycle this oracle routes on.
    pub fn cycle(&self) -> PCycle {
        self.cycle
    }

    /// Next hop on a shortest path `from → to`; `None` if already there.
    pub fn next_hop(&mut self, from: VertexId, to: VertexId) -> Option<VertexId> {
        if from == to {
            return None;
        }
        let parents = self
            .toward
            .entry(to.0)
            .or_insert_with(|| self.cycle.bfs_parents_toward(to).into_boxed_slice());
        Some(VertexId(parents[from.0 as usize] as u64))
    }

    /// Distance `from → to` (hops along the cached tree).
    pub fn distance(&mut self, from: VertexId, to: VertexId) -> u32 {
        let mut d = 0;
        let mut cur = from;
        while let Some(next) = self.next_hop(cur, to) {
            cur = next;
            d += 1;
        }
        d
    }
}

/// Pure arithmetic of p-cycle inflation and deflation (paper Eq. 6–8 and
/// Sect. 4.2.2). All functions are total and deterministic; the protocol
/// crates call these to compute clouds locally.
pub mod resize {
    /// `⌈a·x / b⌉` in integer arithmetic (no floats — the paper's `α = p₊/p`
    /// is rational and float rounding would break the bijection proofs).
    #[inline]
    fn ceil_mul_div(x: u64, a: u64, b: u64) -> u64 {
        ((x as u128) * (a as u128)).div_ceil(b as u128) as u64
    }

    /// `⌊a·x / b⌋` in integer arithmetic.
    #[inline]
    fn floor_mul_div(x: u64, a: u64, b: u64) -> u64 {
        (((x as u128) * (a as u128)) / (b as u128)) as u64
    }

    /// Inflation cloud size helper `c(x) = ⌈α(x+1)⌉ − ⌈αx⌉ − 1` (Eq. 6)
    /// where `α = p_new / p_old`.
    pub fn inflation_c(x: u64, p_old: u64, p_new: u64) -> u64 {
        ceil_mul_div(x + 1, p_new, p_old) - ceil_mul_div(x, p_new, p_old) - 1
    }

    /// The inflation cloud of old vertex `x`: new vertices
    /// `y_j = (⌈αx⌉ + j) mod p_new` for `0 ≤ j ≤ c(x)` (Eq. 7).
    ///
    /// Lemma 4(b): over all `x ∈ Z_{p_old}` these clouds partition
    /// `Z_{p_new}` (a bijection between ⋃ clouds and `Z_{p_new}`), with
    /// cloud size ≤ ζ = 8 because `α < 8`.
    pub fn inflation_cloud(x: u64, p_old: u64, p_new: u64) -> Vec<u64> {
        let (base, len) = inflation_cloud_range(x, p_old, p_new);
        (0..len).map(|j| (base + j) % p_new).collect()
    }

    /// The cloud of `x` as a contiguous `(start, len)` range — clouds are
    /// the consecutive intervals `[⌈αx⌉, ⌈α(x+1)⌉)` partitioning
    /// `[0, p_new)`, so no wraparound occurs. The allocation-free form the
    /// type-2 rebuild consumes (`VirtualMapping::assign_run`).
    pub fn inflation_cloud_range(x: u64, p_old: u64, p_new: u64) -> (u64, u64) {
        let base = ceil_mul_div(x, p_new, p_old);
        let c = inflation_c(x, p_old, p_new);
        debug_assert!(base + c < p_new, "cloud of {x} wraps");
        (base, c + 1)
    }

    /// Inverse of [`inflation_cloud`]: the old vertex whose cloud contains
    /// new vertex `y`. Clouds are the consecutive ranges
    /// `[⌈αx⌉, ⌈α(x+1)⌉)`, so the source is `⌊y·p_old/p_new⌋` (the
    /// boundary case `y = αx` cannot occur for coprime primes unless
    /// `x = 0`, where the formula is still right).
    pub fn inflation_source(y: u64, p_old: u64, p_new: u64) -> u64 {
        floor_mul_div(y, p_old, p_new)
    }

    /// Deflation image `y_x = ⌊x / α⌋ = ⌊x · p_new / p_old⌋` with
    /// `α = p_old / p_new` (Sect. 4.2.2).
    pub fn deflation_image(x: u64, p_old: u64, p_new: u64) -> u64 {
        floor_mul_div(x, p_new, p_old)
    }

    /// Is old vertex `x` *dominating*, i.e. the smallest preimage of its
    /// deflation image? Dominating vertices are the ones that survive into
    /// the smaller cycle (the node simulating one is guaranteed a vertex).
    pub fn is_dominating(x: u64, p_old: u64, p_new: u64) -> bool {
        x == 0 || deflation_image(x - 1, p_old, p_new) != deflation_image(x, p_old, p_new)
    }

    /// The deflation cloud (preimage) of new vertex `y`: the contiguous old
    /// vertices `x` with `⌊x/α⌋ = y`, i.e. `⌈yα⌉ ≤ x < ⌈(y+1)α⌉` clipped to
    /// `Z_{p_old}`.
    pub fn deflation_cloud(y: u64, p_old: u64, p_new: u64) -> std::ops::Range<u64> {
        let lo = ceil_mul_div(y, p_old, p_new);
        let hi = ceil_mul_div(y + 1, p_old, p_new).min(p_old);
        lo..hi
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::primes::{deflation_prime, inflation_prime};

        #[test]
        fn inflation_clouds_partition_new_cycle() {
            for p_old in [5u64, 23, 37, 101] {
                let p_new = inflation_prime(p_old);
                let mut seen = vec![false; p_new as usize];
                let mut max_cloud = 0;
                for x in 0..p_old {
                    let cloud = inflation_cloud(x, p_old, p_new);
                    assert!(!cloud.is_empty());
                    max_cloud = max_cloud.max(cloud.len());
                    for y in cloud {
                        assert!(
                            !seen[y as usize],
                            "vertex {y} generated twice (p {p_old}->{p_new})"
                        );
                        seen[y as usize] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "not surjective onto Z_{p_new}");
                assert!(max_cloud <= 8, "cloud size {max_cloud} exceeds ζ=8");
            }
        }

        #[test]
        fn inflation_source_inverts_cloud() {
            for p_old in [5u64, 23, 101] {
                let p_new = inflation_prime(p_old);
                for x in 0..p_old {
                    for y in inflation_cloud(x, p_old, p_new) {
                        assert_eq!(
                            inflation_source(y, p_old, p_new),
                            x,
                            "y={y} p {p_old}->{p_new}"
                        );
                    }
                }
            }
        }

        #[test]
        fn inflation_cloud_is_contiguous_mod_p() {
            let (p_old, p_new) = (23u64, inflation_prime(23));
            for x in 0..p_old {
                let cloud = inflation_cloud(x, p_old, p_new);
                for w in cloud.windows(2) {
                    assert_eq!((w[0] + 1) % p_new, w[1]);
                }
            }
        }

        #[test]
        fn deflation_surjective_with_unique_dominators() {
            for p_old in [101u64, 499, 1009] {
                let p_new = deflation_prime(p_old).unwrap();
                let mut dominated = vec![0usize; p_new as usize];
                for x in 0..p_old {
                    if is_dominating(x, p_old, p_new) {
                        dominated[deflation_image(x, p_old, p_new) as usize] += 1;
                    }
                }
                assert!(
                    dominated.iter().all(|&c| c == 1),
                    "each new vertex needs exactly one dominator"
                );
            }
        }

        #[test]
        fn deflation_clouds_cover_old_cycle() {
            let p_old = 499u64;
            let p_new = deflation_prime(p_old).unwrap();
            let mut covered = vec![false; p_old as usize];
            let mut max_cloud = 0usize;
            for y in 0..p_new {
                let r = deflation_cloud(y, p_old, p_new);
                max_cloud = max_cloud.max((r.end - r.start) as usize);
                for x in r {
                    assert!(!covered[x as usize]);
                    covered[x as usize] = true;
                    assert_eq!(deflation_image(x, p_old, p_new), y);
                }
            }
            assert!(covered.iter().all(|&c| c));
            // α = p_old/p_new < 8 ⇒ preimages have ≤ 8 elements.
            assert!(max_cloud <= 8, "deflation cloud {max_cloud} > 8");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vertex_has_degree_three() {
        for p in [5u64, 7, 23, 101] {
            let g = PCycle::new(p).to_multigraph();
            for u in g.nodes() {
                assert_eq!(g.degree(u), 3, "vertex {u} of Z({p})");
            }
            g.validate().unwrap();
        }
    }

    #[test]
    fn edge_count_formula() {
        for p in [5u64, 23, 101] {
            let z = PCycle::new(p);
            // p cycle edges + (p-3)/2 chords + 3 self-loops
            let expected = p as usize + (p as usize - 3) / 2 + 3;
            assert_eq!(z.edges().len(), expected);
            assert_eq!(z.to_multigraph().num_edges(), expected);
        }
    }

    #[test]
    fn self_loops_exactly_at_0_1_pm1() {
        let p = 23u64;
        let z = PCycle::new(p);
        for x in 0..p {
            let v = VertexId(x);
            let has_loop = z.adjacent(v, v);
            let expect = x == 0 || x == 1 || x == p - 1;
            assert_eq!(has_loop, expect, "vertex {x}");
        }
    }

    #[test]
    fn figure1_23_cycle_chords() {
        // Sanity against Figure 1: in Z(23), 2·12 = 24 ≡ 1, so 2 ↔ 12.
        let z = PCycle::new(23);
        assert_eq!(z.chord(VertexId(2)), VertexId(12));
        assert_eq!(z.chord(VertexId(12)), VertexId(2));
        assert!(z.adjacent(VertexId(2), VertexId(12)));
        assert_eq!(z.chord(VertexId(5)), VertexId(14)); // 5·14 = 70 = 3·23+1
    }

    #[test]
    fn neighbors_symmetric() {
        let z = PCycle::new(37);
        for x in 0..37 {
            let v = VertexId(x);
            for w in z.neighbors(v) {
                assert!(z.adjacent(w, v), "asymmetric adjacency {v} {w}");
            }
        }
    }

    #[test]
    fn bfs_and_paths() {
        let z = PCycle::new(23);
        let d = z.bfs_distances(VertexId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[22], 1);
        let path = z.shortest_path(VertexId(7), VertexId(0));
        assert_eq!(*path.first().unwrap(), VertexId(7));
        assert_eq!(*path.last().unwrap(), VertexId(0));
        assert_eq!(path.len() as u32 - 1, z.distance(VertexId(7), VertexId(0)));
        // every consecutive pair is an edge
        for w in path.windows(2) {
            assert!(z.adjacent(w[0], w[1]));
        }
    }

    #[test]
    fn diameter_is_logarithmic() {
        // Expander: diameter should be O(log p). Spot-check concrete values.
        assert!(PCycle::new(23).diameter() <= 6);
        assert!(PCycle::new(101).diameter() <= 10);
        assert!(PCycle::new(499).diameter() <= 14);
    }

    #[test]
    fn path_oracle_matches_bfs() {
        let z = PCycle::new(101);
        let mut oracle = PathOracle::new(z);
        for (a, b) in [(0u64, 50), (7, 93), (13, 13), (100, 1)] {
            let (a, b) = (VertexId(a), VertexId(b));
            assert_eq!(oracle.distance(a, b), z.distance(a, b));
        }
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn rejects_composite() {
        PCycle::new(21);
    }

    #[test]
    fn bidirectional_path_is_shortest_and_allocation_pooled() {
        let mut scratch = PathScratch::new();
        let mut out = Vec::new();
        for p in [5u64, 101, 499] {
            let z = PCycle::new(p);
            for a in 0..p.min(40) {
                for b in [0, 1, p - 1, (a * 7 + 3) % p, p / 2] {
                    let (a, b) = (VertexId(a), VertexId(b));
                    z.shortest_path_with(a, b, &mut scratch, &mut out);
                    assert_eq!(out.first(), Some(&a), "{a}->{b} on Z({p})");
                    assert_eq!(out.last(), Some(&b));
                    assert_eq!(
                        out.len() as u32 - 1,
                        z.distance(a, b),
                        "{a}->{b} on Z({p}) not shortest"
                    );
                    for w in out.windows(2) {
                        assert!(z.adjacent(w[0], w[1]), "non-edge step {w:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn bidirectional_path_is_deterministic() {
        let z = PCycle::new(499);
        let mut s1 = PathScratch::new();
        let mut s2 = PathScratch::new();
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        // A warm scratch (s1 reused) and a cold one must agree.
        z.shortest_path_with(VertexId(3), VertexId(404), &mut s1, &mut o1);
        for (a, b) in [(17u64, 481u64), (3, 404), (0, 250)] {
            z.shortest_path_with(VertexId(a), VertexId(b), &mut s1, &mut o1);
            z.shortest_path_with(VertexId(a), VertexId(b), &mut s2, &mut o2);
            assert_eq!(o1, o2, "{a}->{b}");
        }
    }
}
