//! Primality testing and Bertrand-range prime search.
//!
//! DEX sizes its virtual p-cycle with a prime `p`: the initial cycle uses the
//! smallest prime in `(4n₀, 8n₀)`, inflation moves to the smallest prime in
//! `(4pᵢ, 8pᵢ)`, and deflation to one in `(pᵢ/8, pᵢ/4)` (Sect. 4). Bertrand's
//! postulate guarantees such primes exist. We use a deterministic
//! Miller–Rabin test that is exact for all `u64` inputs.

/// Deterministic Miller–Rabin for `u64`.
///
/// Uses the base set `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}`, proven
/// sufficient for all `n < 3.3 · 10²⁴` (Sorenson & Webster), which covers the
/// full `u64` range.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n - 1 = d · 2^s with d odd
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// `(a * b) mod m` without overflow.
#[inline]
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

/// `(base ^ exp) mod m` by square-and-multiply. `m` must be nonzero.
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse of `x` modulo prime `p` via Fermat's little
/// theorem: `x⁻¹ = x^(p−2) mod p`.
///
/// # Panics
/// Panics if `x % p == 0` (zero has no inverse).
pub fn mod_inverse(x: u64, p: u64) -> u64 {
    assert!(!x.is_multiple_of(p), "0 has no inverse mod {p}");
    mod_pow(x, p - 2, p)
}

/// Smallest prime strictly inside the open interval `(lo, hi)`, or `None`.
pub fn smallest_prime_in(lo: u64, hi: u64) -> Option<u64> {
    let mut c = lo + 1;
    if c <= 2 {
        if 2 < hi {
            return Some(2);
        }
        c = 3;
    }
    if c.is_multiple_of(2) {
        c += 1;
    }
    while c < hi {
        if is_prime(c) {
            return Some(c);
        }
        c += 2;
    }
    None
}

/// Smallest prime in the inflation range `(4p, 8p)` (paper, Sect. 4.2.1).
/// Always exists for `p ≥ 1` by Bertrand's postulate.
pub fn inflation_prime(p: u64) -> u64 {
    smallest_prime_in(4 * p, 8 * p).expect("Bertrand guarantees a prime in (4p, 8p)")
}

/// Smallest prime in the deflation range `(p/8, p/4)` (paper, Sect. 4.2.2),
/// or `None` if the interval contains no prime (only possible for tiny `p`).
pub fn deflation_prime(p: u64) -> Option<u64> {
    smallest_prime_in(p / 8, p / 4)
}

/// Smallest prime in `(4n, 8n)` used for the initial p-cycle `Z₀(p₀)`.
pub fn initial_prime(n0: u64) -> u64 {
    smallest_prime_in(4 * n0, 8 * n0).expect("Bertrand guarantees a prime in (4n, 8n)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn large_known_primes_and_composites() {
        assert!(is_prime(2_147_483_647)); // 2^31 - 1 (Mersenne)
        assert!(is_prime(1_000_000_007));
        assert!(!is_prime(1_000_000_007u64 * 3));
        // Carmichael numbers must be rejected.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401] {
            assert!(!is_prime(c), "{c} is Carmichael, not prime");
        }
        // Strong pseudoprime to base 2.
        assert!(!is_prime(3_215_031_751));
    }

    #[test]
    fn mod_pow_matches_naive() {
        for base in 1u64..20 {
            for exp in 0u64..12 {
                let m = 1_000_003;
                let naive = (0..exp).fold(1u64, |acc, _| acc * base % m);
                assert_eq!(mod_pow(base, exp, m), naive);
            }
        }
    }

    #[test]
    fn mod_inverse_is_inverse() {
        for p in [23u64, 101, 65537, 1_000_000_007] {
            for x in [1u64, 2, 5, 17, p - 1] {
                let inv = mod_inverse(x, p);
                assert_eq!(mod_mul(x, inv, p), 1, "x={x} p={p}");
            }
        }
    }

    #[test]
    fn prime_ranges() {
        assert_eq!(smallest_prime_in(10, 20), Some(11));
        assert_eq!(smallest_prime_in(23, 29), None); // open interval: (23,29) has no prime
        assert_eq!(smallest_prime_in(0, 3), Some(2));
        assert_eq!(smallest_prime_in(2, 3), None);
    }

    #[test]
    fn paper_figure_prime() {
        // Figure 1 uses the 23-cycle; 23 is the smallest prime in (4·5, 8·5).
        assert_eq!(initial_prime(5), 23);
    }

    #[test]
    fn inflation_chain_grows_geometrically() {
        let mut p = initial_prime(8);
        for _ in 0..8 {
            let q = inflation_prime(p);
            assert!(q > 4 * p && q < 8 * p, "p={p} q={q}");
            p = q;
        }
    }

    #[test]
    fn deflation_inverts_inflation_range() {
        let p = 1009u64;
        let q = deflation_prime(p).unwrap();
        assert!(q > p / 8 && q < p / 4, "p={p} q={q}");
    }
}
