//! Random walks on multigraphs.
//!
//! Type-1 recovery is built on O(log n)-length random walks whose hitting
//! behaviour is controlled by Gillman's Chernoff bound for expanders
//! (paper, Lemma 2). This module provides the walk primitive used by tests
//! and analysis tooling; the *protocol* walk (token forwarding with round
//! accounting) lives in `dex-core::walk` and must match this semantics.
//!
//! Walks run in the graph's dense slot space: the public [`NodeId`]
//! entry points resolve the id→slot translation once, then every hop is
//! two array reads and one RNG draw — no hashing, no heap allocation.

use crate::adjacency::MultiGraph;
use crate::ids::NodeId;
use rand::Rng;

/// One uniform step from `u`: picks an adjacency entry uniformly, so
/// parallel edges weight their endpoint proportionally and a self-loop
/// stays put with probability `1/deg(u)`.
pub fn step<R: Rng + ?Sized>(g: &MultiGraph, u: NodeId, rng: &mut R) -> NodeId {
    let slot = g
        .slot_of(u)
        .unwrap_or_else(|| panic!("random walk from missing node {u}"));
    g.id_of_slot(g.step_slot(slot, rng))
}

/// Walk `len` steps from `start`; returns the endpoint.
pub fn walk<R: Rng + ?Sized>(g: &MultiGraph, start: NodeId, len: usize, rng: &mut R) -> NodeId {
    let slot = g
        .slot_of(start)
        .unwrap_or_else(|| panic!("random walk from missing node {start}"));
    g.id_of_slot(g.walk_slots(slot, len, rng))
}

/// Walk `len` steps from `start`; returns the full path (len+1 nodes).
pub fn walk_path<R: Rng + ?Sized>(
    g: &MultiGraph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(len + 1);
    path.push(start);
    let mut slot = g
        .slot_of(start)
        .unwrap_or_else(|| panic!("random walk from missing node {start}"));
    for _ in 0..len {
        slot = g.step_slot(slot, rng);
        path.push(g.id_of_slot(slot));
    }
    path
}

/// Total-variation distance of the `t`-step *lazy* walk distribution from
/// stationarity, starting at `start`. Dense O(t·m); for analysis and tests.
pub fn tv_distance_after(g: &MultiGraph, start: NodeId, t: usize) -> f64 {
    let csr = g.csr();
    let n = csr.n();
    let idx = csr
        .order
        .iter()
        .position(|&u| u == start)
        .expect("start not in graph");
    let deg_sum: f64 = (0..n).map(|i| csr.degree(i) as f64).sum();
    let pi: Vec<f64> = (0..n).map(|i| csr.degree(i) as f64 / deg_sum).collect();
    let mut dist = vec![0.0f64; n];
    dist[idx] = 1.0;
    let mut next = vec![0.0f64; n];
    for _ in 0..t {
        next.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            if dist[i] == 0.0 {
                continue;
            }
            let d = csr.degree(i) as f64;
            next[i] += dist[i] * 0.5;
            let share = dist[i] * 0.5 / d;
            for &j in csr.row(i) {
                next[j as usize] += share;
            }
        }
        std::mem::swap(&mut dist, &mut next);
    }
    0.5 * dist
        .iter()
        .zip(pi.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Smallest `t ≤ max_t` with TV distance below `eps` from the worst start,
/// or `None`. Exact dense computation — small graphs only.
pub fn mixing_time(g: &MultiGraph, eps: f64, max_t: usize) -> Option<usize> {
    let nodes = g.nodes_sorted();
    'outer: for t in 1..=max_t {
        for &u in &nodes {
            if tv_distance_after(g, u, t) > eps {
                continue 'outer;
            }
        }
        return Some(t);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcycle::PCycle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walk_stays_in_graph() {
        let g = PCycle::new(23).to_multigraph();
        let mut rng = StdRng::seed_from_u64(1);
        for start in [0u64, 7, 22] {
            let end = walk(&g, NodeId(start), 50, &mut rng);
            assert!(g.has_node(end));
        }
    }

    #[test]
    fn walk_path_steps_are_edges() {
        let g = PCycle::new(23).to_multigraph();
        let mut rng = StdRng::seed_from_u64(2);
        let path = walk_path(&g, NodeId(0), 30, &mut rng);
        assert_eq!(path.len(), 31);
        for w in path.windows(2) {
            assert!(
                g.contains_edge(w[0], w[1]),
                "non-edge step {:?}->{:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn lazy_walk_mixes_on_expander() {
        let g = PCycle::new(101).to_multigraph();
        // O(log n) mixing with the family's constant: the p-cycle gap is
        // ≈0.06 (lazy ≈0.03), so C·log p with C ≈ 35 suffices here.
        let tv250 = tv_distance_after(&g, NodeId(0), 250);
        assert!(tv250 < 0.02, "tv after 250 lazy steps: {tv250}");
        // And mixing is monotone in t.
        let tv80 = tv_distance_after(&g, NodeId(0), 80);
        assert!(tv80 > tv250);
    }

    #[test]
    fn expander_mixes_faster_than_ring() {
        let expander = PCycle::new(61).to_multigraph();
        let mut ring = MultiGraph::new();
        for i in 0..61 {
            ring.add_node(NodeId(i));
        }
        for i in 0..61u64 {
            ring.add_edge(NodeId(i), NodeId((i + 1) % 61));
        }
        let t_exp = mixing_time(&expander, 0.05, 400).unwrap();
        let t_ring = mixing_time(&ring, 0.05, 4000).unwrap_or(4000);
        assert!(
            t_exp * 4 < t_ring,
            "expander {t_exp} not clearly faster than ring {t_ring}"
        );
    }

    #[test]
    fn parallel_edges_bias_the_step() {
        let mut g = MultiGraph::new();
        g.add_node(NodeId(0));
        g.add_node(NodeId(1));
        g.add_node(NodeId(2));
        for _ in 0..9 {
            g.add_edge(NodeId(0), NodeId(1));
        }
        g.add_edge(NodeId(0), NodeId(2));
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits1 = 0;
        for _ in 0..2000 {
            if step(&g, NodeId(0), &mut rng) == NodeId(1) {
                hits1 += 1;
            }
        }
        // Expected 90%; allow generous slack.
        assert!(hits1 > 1650, "parallel edge bias missing: {hits1}/2000");
    }
}
