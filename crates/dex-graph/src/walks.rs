//! Random walks on multigraphs.
//!
//! Type-1 recovery is built on O(log n)-length random walks whose hitting
//! behaviour is controlled by Gillman's Chernoff bound for expanders
//! (paper, Lemma 2). This module provides the walk primitive used by tests
//! and analysis tooling; the *protocol* walk (token forwarding with round
//! accounting) lives in `dex-core::walk` and must match this semantics.
//!
//! Walks run in the graph's dense slot space: the public [`NodeId`]
//! entry points resolve the id→slot translation once, then every hop is
//! two array reads and one RNG draw — no hashing, no heap allocation.
//!
//! # The K-way interleaved walk engine
//!
//! A single random walk on a DRAM-resident graph is a *dependent-miss
//! chain*: the next hop's adjacency row cannot even be requested until the
//! current row has arrived and the RNG has drawn from it, so every hop
//! costs a full memory round trip and the core sits idle. Batch callers
//! (the batch-heal planner, trial fan-outs, DHT search storms) hold many
//! *independent* walks, which makes the latency hideable: [`run_interleaved`]
//! keeps K walks in flight round-robin, and each visit to a lane issues
//! the prefetches for that lane's *next* line(s) before rotating on — so
//! one lane's DRAM miss overlaps the other K−1 lanes' compute. Each hop is
//! two pipeline stages, mirroring the two dependent lines per hop in the
//! slot arena ([`MultiGraph::prefetch_slot`] pulls the record;
//! [`MultiGraph::prefetch_slot_adj`] needs that record resident to find
//! the adjacency storage).
//!
//! **Interleaving is bit-identical to running the walks back-to-back, by
//! construction**: every lane draws exclusively from its own RNG stream
//! (per-job seed, or a stream keyed by `(step, id, index)` — never by
//! arrival order), consumes its own adjacency rows in its own hop order,
//! and never reads another lane's state. The scheduler permutes *when*
//! draws happen, not *what* is drawn. Differential proptests
//! (`tests/props.rs`) pin this across K ∈ {1, 4, 8} and thread counts.
//!
//! Consumers implement [`WalkLane`] (per-hop draw + arrival test) and get
//! the pipeline for free; [`walk_endpoints_interleaved`] is the
//! fixed-length uniform-walk instantiation used by `dex-sim`. Pipeline
//! depth comes from [`crate::par::walk_pipeline_k`] (`DEX_WALK_K`, default
//! 8) and the engine reports mean in-flight occupancy for observability.

use crate::adjacency::MultiGraph;
use crate::ids::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ======================================================================
// K-way interleaved walk engine
// ======================================================================

/// One walk participating in [`run_interleaved`]. A lane owns *all* state
/// of its walk — RNG stream, hop budget, accumulated outcome — so lanes
/// are independent by construction and the engine's visit order can never
/// influence a result.
pub trait WalkLane {
    /// Draw the next slot from `slot`'s adjacency row (`nbrs`), or `None`
    /// to finish the walk (budget exhausted, stuck, or done). Must consume
    /// the lane's RNG exactly as the scalar walk would at this hop.
    fn choose(&mut self, g: &MultiGraph, slot: u32, nbrs: &[u32]) -> Option<u32>;

    /// The walk has arrived at `slot` (its record and adjacency prefetches
    /// were issued in earlier pipeline stages). Return `true` to finish
    /// (an accepting hit). Not called for the start slot — scalar walk
    /// semantics never test the start.
    fn arrive(&mut self, g: &MultiGraph, slot: u32) -> bool;

    /// Issue consumer-specific prefetches for `slot` one stage before
    /// [`WalkLane::arrive`] runs its test there (e.g. the Φ load entry the
    /// test will probe). Default: none.
    #[inline]
    fn prefetch_hint(&mut self, _g: &MultiGraph, _slot: u32) {}
}

/// Observability counters of one [`run_interleaved`] batch: how well the
/// pipeline stayed filled.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterleaveStats {
    /// Lane visits executed (pipeline stage steps).
    pub turns: u64,
    /// Sum over turns of the number of walks in flight at that turn.
    pub active_sum: u64,
}

impl InterleaveStats {
    /// Mean number of walks in flight per turn (≤ K; sags toward the tail
    /// as the batch drains).
    pub fn mean_in_flight(&self) -> f64 {
        if self.turns == 0 {
            0.0
        } else {
            self.active_sum as f64 / self.turns as f64
        }
    }

    /// Accumulate another batch's counters.
    pub fn merge(&mut self, other: InterleaveStats) {
        self.turns += other.turns;
        self.active_sum += other.active_sum;
    }
}

/// Pipeline position of one in-flight walk. Each hop takes two stages,
/// matching the slot arena's two dependent lines per hop: the stage that
/// *chose* a slot prefetches its record ([`MultiGraph::prefetch_slot`]);
/// the next visit prefetches its adjacency storage
/// ([`MultiGraph::prefetch_slot_adj`], which needs the record resident);
/// the visit after that consumes the row.
enum Stage {
    /// Start slot chosen at admission (record prefetched): pull its
    /// adjacency next.
    Seed,
    /// First hop: draw from the start row without testing the start.
    Boot,
    /// A chosen slot whose record is in flight: pull its adjacency + the
    /// consumer's hint lines.
    Fetch,
    /// A slot with both lines in flight: test arrival, then draw onward.
    Step,
}

struct Flight {
    lane: u32,
    slot: u32,
    stage: Stage,
}

/// Run `lanes[i]` as a walk starting at `starts[i]`, keeping up to `k`
/// walks in flight round-robin. Visits rotate through the in-flight ring;
/// each visit advances one pipeline stage and issues the prefetches for
/// that lane's next dependent line(s), so one lane's DRAM latency is
/// covered by the other lanes' work. Finished lanes are replaced from the
/// remaining backlog in index order.
///
/// Results are **bit-identical to running each lane's scalar walk
/// back-to-back** for any `k` (including 1): lanes own their RNG streams
/// and never observe each other, so the interleaving permutes only the
/// wall-clock order of memory accesses. Returns pipeline occupancy stats.
pub fn run_interleaved<L: WalkLane>(
    g: &MultiGraph,
    lanes: &mut [L],
    starts: &[u32],
    k: usize,
) -> InterleaveStats {
    assert_eq!(lanes.len(), starts.len(), "one start slot per lane");
    let k = k.clamp(1, lanes.len().max(1));
    let mut stats = InterleaveStats::default();
    let mut ring: Vec<Flight> = Vec::with_capacity(k);
    let mut backlog = 0usize; // next lane index to admit
    while ring.len() < k && backlog < lanes.len() {
        g.prefetch_slot(starts[backlog]);
        ring.push(Flight {
            lane: backlog as u32,
            slot: starts[backlog],
            stage: Stage::Seed,
        });
        backlog += 1;
    }
    let mut i = 0usize;
    while !ring.is_empty() {
        if i >= ring.len() {
            i = 0;
        }
        stats.turns += 1;
        stats.active_sum += ring.len() as u64;
        let fl = &mut ring[i];
        let lane = &mut lanes[fl.lane as usize];
        let done = match fl.stage {
            Stage::Seed => {
                g.prefetch_slot_adj(fl.slot);
                fl.stage = Stage::Boot;
                false
            }
            Stage::Fetch => {
                g.prefetch_slot_adj(fl.slot);
                lane.prefetch_hint(g, fl.slot);
                fl.stage = Stage::Step;
                false
            }
            Stage::Boot | Stage::Step => {
                let hit = matches!(fl.stage, Stage::Step) && lane.arrive(g, fl.slot);
                if hit {
                    true
                } else {
                    match lane.choose(g, fl.slot, g.neighbor_slots(fl.slot)) {
                        Some(next) => {
                            g.prefetch_slot(next);
                            fl.slot = next;
                            fl.stage = Stage::Fetch;
                            false
                        }
                        None => true,
                    }
                }
            }
        };
        if done {
            if backlog < lanes.len() {
                g.prefetch_slot(starts[backlog]);
                ring[i] = Flight {
                    lane: backlog as u32,
                    slot: starts[backlog],
                    stage: Stage::Seed,
                };
                backlog += 1;
                i += 1;
            } else {
                ring.swap_remove(i);
                // The swapped-in flight takes this ring position; visiting
                // it next keeps the rotation fair.
            }
        } else {
            i += 1;
        }
    }
    stats
}

/// Fixed-length uniform walk as a [`WalkLane`]: per-hop draws are exactly
/// [`MultiGraph::step_slot`]'s (`random_range(0..deg)`), so an interleaved
/// batch of these is bit-identical to per-job [`MultiGraph::walk_slots`].
pub struct EndpointLane<R> {
    rng: R,
    remaining: usize,
    /// Last slot visited (the endpoint once the lane finishes).
    pub end: u32,
}

impl<R> EndpointLane<R> {
    /// Lane walking `len` hops, drawing from `rng`.
    pub fn new(rng: R, len: usize, start: u32) -> Self {
        EndpointLane {
            rng,
            remaining: len,
            end: start,
        }
    }

    /// Consume the lane, returning its RNG — differential tests compare
    /// the stream position against the scalar walk's.
    pub fn into_rng(self) -> R {
        self.rng
    }
}

impl<R: Rng> WalkLane for EndpointLane<R> {
    fn choose(&mut self, g: &MultiGraph, slot: u32, nbrs: &[u32]) -> Option<u32> {
        self.end = slot;
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        assert!(
            !nbrs.is_empty(),
            "random walk stuck at isolated node {}",
            g.id_of_slot(slot)
        );
        Some(nbrs[self.rng.random_range(0..nbrs.len())])
    }

    fn arrive(&mut self, _g: &MultiGraph, slot: u32) -> bool {
        self.end = slot;
        false
    }
}

/// One fixed-length batch-walk job in slot space. Seeds are carried per
/// job so a batch can be split or re-ordered without changing endpoints.
#[derive(Debug, Clone, Copy)]
pub struct SlotWalkJob {
    /// Start slot (must be live).
    pub start: u32,
    /// Number of hops.
    pub len: usize,
    /// Per-walk RNG seed (`StdRng::seed_from_u64`).
    pub seed: u64,
}

/// Endpoints of a batch of independent fixed-length uniform walks, K-way
/// interleaved. `out[i]` is the endpoint of `jobs[i]`, bit-identical to
/// `g.walk_slots(jobs[i].start, jobs[i].len, &mut StdRng::seed_from_u64(jobs[i].seed))`
/// for every job, at any `k`. Returns pipeline occupancy stats.
pub fn walk_endpoints_interleaved(
    g: &MultiGraph,
    jobs: &[SlotWalkJob],
    k: usize,
    out: &mut [u32],
) -> InterleaveStats {
    assert_eq!(jobs.len(), out.len());
    let mut lanes: Vec<EndpointLane<StdRng>> = jobs
        .iter()
        .map(|j| EndpointLane::new(StdRng::seed_from_u64(j.seed), j.len, j.start))
        .collect();
    let starts: Vec<u32> = jobs.iter().map(|j| j.start).collect();
    let stats = run_interleaved(g, &mut lanes, &starts, k);
    for (slot, lane) in out.iter_mut().zip(&lanes) {
        *slot = lane.end;
    }
    stats
}

/// One uniform step from `u`: picks an adjacency entry uniformly, so
/// parallel edges weight their endpoint proportionally and a self-loop
/// stays put with probability `1/deg(u)`.
pub fn step<R: Rng + ?Sized>(g: &MultiGraph, u: NodeId, rng: &mut R) -> NodeId {
    let slot = g
        .slot_of(u)
        .unwrap_or_else(|| panic!("random walk from missing node {u}"));
    g.id_of_slot(g.step_slot(slot, rng))
}

/// Walk `len` steps from `start`; returns the endpoint.
pub fn walk<R: Rng + ?Sized>(g: &MultiGraph, start: NodeId, len: usize, rng: &mut R) -> NodeId {
    let slot = g
        .slot_of(start)
        .unwrap_or_else(|| panic!("random walk from missing node {start}"));
    g.id_of_slot(g.walk_slots(slot, len, rng))
}

/// Walk `len` steps from `start`; returns the full path (len+1 nodes).
pub fn walk_path<R: Rng + ?Sized>(
    g: &MultiGraph,
    start: NodeId,
    len: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut path = Vec::with_capacity(len + 1);
    path.push(start);
    let mut slot = g
        .slot_of(start)
        .unwrap_or_else(|| panic!("random walk from missing node {start}"));
    for _ in 0..len {
        slot = g.step_slot(slot, rng);
        path.push(g.id_of_slot(slot));
    }
    path
}

/// Total-variation distance of the `t`-step *lazy* walk distribution from
/// stationarity, starting at `start`. Dense O(t·m); for analysis and tests.
pub fn tv_distance_after(g: &MultiGraph, start: NodeId, t: usize) -> f64 {
    let csr = g.csr();
    let n = csr.n();
    let idx = csr
        .order
        .iter()
        .position(|&u| u == start)
        .expect("start not in graph");
    let deg_sum: f64 = (0..n).map(|i| csr.degree(i) as f64).sum();
    let pi: Vec<f64> = (0..n).map(|i| csr.degree(i) as f64 / deg_sum).collect();
    let mut dist = vec![0.0f64; n];
    dist[idx] = 1.0;
    let mut next = vec![0.0f64; n];
    for _ in 0..t {
        next.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..n {
            if dist[i] == 0.0 {
                continue;
            }
            let d = csr.degree(i) as f64;
            next[i] += dist[i] * 0.5;
            let share = dist[i] * 0.5 / d;
            for &j in csr.row(i) {
                next[j as usize] += share;
            }
        }
        std::mem::swap(&mut dist, &mut next);
    }
    0.5 * dist
        .iter()
        .zip(pi.iter())
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
}

/// Smallest `t ≤ max_t` with TV distance below `eps` from the worst start,
/// or `None`. Exact dense computation — small graphs only.
pub fn mixing_time(g: &MultiGraph, eps: f64, max_t: usize) -> Option<usize> {
    let nodes = g.nodes_sorted();
    'outer: for t in 1..=max_t {
        for &u in &nodes {
            if tv_distance_after(g, u, t) > eps {
                continue 'outer;
            }
        }
        return Some(t);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcycle::PCycle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn walk_stays_in_graph() {
        let g = PCycle::new(23).to_multigraph();
        let mut rng = StdRng::seed_from_u64(1);
        for start in [0u64, 7, 22] {
            let end = walk(&g, NodeId(start), 50, &mut rng);
            assert!(g.has_node(end));
        }
    }

    #[test]
    fn walk_path_steps_are_edges() {
        let g = PCycle::new(23).to_multigraph();
        let mut rng = StdRng::seed_from_u64(2);
        let path = walk_path(&g, NodeId(0), 30, &mut rng);
        assert_eq!(path.len(), 31);
        for w in path.windows(2) {
            assert!(
                g.contains_edge(w[0], w[1]),
                "non-edge step {:?}->{:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn lazy_walk_mixes_on_expander() {
        let g = PCycle::new(101).to_multigraph();
        // O(log n) mixing with the family's constant: the p-cycle gap is
        // ≈0.06 (lazy ≈0.03), so C·log p with C ≈ 35 suffices here.
        let tv250 = tv_distance_after(&g, NodeId(0), 250);
        assert!(tv250 < 0.02, "tv after 250 lazy steps: {tv250}");
        // And mixing is monotone in t.
        let tv80 = tv_distance_after(&g, NodeId(0), 80);
        assert!(tv80 > tv250);
    }

    #[test]
    fn expander_mixes_faster_than_ring() {
        let expander = PCycle::new(61).to_multigraph();
        let mut ring = MultiGraph::new();
        for i in 0..61 {
            ring.add_node(NodeId(i));
        }
        for i in 0..61u64 {
            ring.add_edge(NodeId(i), NodeId((i + 1) % 61));
        }
        let t_exp = mixing_time(&expander, 0.05, 400).unwrap();
        let t_ring = mixing_time(&ring, 0.05, 4000).unwrap_or(4000);
        assert!(
            t_exp * 4 < t_ring,
            "expander {t_exp} not clearly faster than ring {t_ring}"
        );
    }

    #[test]
    fn interleaved_endpoints_match_scalar_walks() {
        let g = PCycle::new(211).to_multigraph();
        let jobs: Vec<SlotWalkJob> = (0..97)
            .map(|i| SlotWalkJob {
                start: g.slot_of(NodeId(i % 211)).unwrap(),
                len: (i as usize * 7) % 40, // includes len = 0
                seed: 0x5eed ^ i,
            })
            .collect();
        let scalar: Vec<u32> = jobs
            .iter()
            .map(|j| {
                let mut rng = StdRng::seed_from_u64(j.seed);
                g.walk_slots(j.start, j.len, &mut rng)
            })
            .collect();
        for k in [1, 2, 4, 8, 64] {
            let mut out = vec![0u32; jobs.len()];
            let stats = walk_endpoints_interleaved(&g, &jobs, k, &mut out);
            assert_eq!(out, scalar, "k={k}");
            assert!(stats.turns > 0);
            assert!(stats.mean_in_flight() <= k as f64 + 1e-9, "k={k}");
        }
    }

    #[test]
    fn interleaved_pipeline_stays_occupied() {
        // Uniform-length batch: until the tail drains, every turn should
        // see ~K walks in flight.
        let g = PCycle::new(101).to_multigraph();
        let jobs: Vec<SlotWalkJob> = (0..64)
            .map(|i| SlotWalkJob {
                start: g.slot_of(NodeId(i % 101)).unwrap(),
                len: 50,
                seed: i,
            })
            .collect();
        let mut out = vec![0u32; jobs.len()];
        let stats = walk_endpoints_interleaved(&g, &jobs, 8, &mut out);
        assert!(
            stats.mean_in_flight() > 7.0,
            "occupancy {:.2} of 8",
            stats.mean_in_flight()
        );
    }

    #[test]
    fn interleaved_empty_batch_is_a_noop() {
        let g = PCycle::new(23).to_multigraph();
        let stats = walk_endpoints_interleaved(&g, &[], 8, &mut []);
        assert_eq!(stats.turns, 0);
        assert_eq!(stats.mean_in_flight(), 0.0);
    }

    #[test]
    fn parallel_edges_bias_the_step() {
        let mut g = MultiGraph::new();
        g.add_node(NodeId(0));
        g.add_node(NodeId(1));
        g.add_node(NodeId(2));
        for _ in 0..9 {
            g.add_edge(NodeId(0), NodeId(1));
        }
        g.add_edge(NodeId(0), NodeId(2));
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits1 = 0;
        for _ in 0..2000 {
            if step(&g, NodeId(0), &mut rng) == NodeId(1) {
                hits1 += 1;
            }
        }
        // Expected 90%; allow generous slack.
        assert!(hits1 > 1650, "parallel edge bias missing: {hits1}/2000");
    }
}
