//! Spectral machinery: eigenvalues of the random-walk operator,
//! spectral gap, and Cheeger-inequality helpers (paper, Theorem 2).
//!
//! The paper states its guarantee as a *constant spectral gap* `1 − λ` where
//! `λ` is the second-largest eigenvalue (of the normalized adjacency, for
//! regular graphs). The real network is an irregular multigraph, so we work
//! with the random-walk matrix `P = D⁻¹A` (equivalently the symmetric
//! `N = D^{-1/2} A D^{-1/2}`, which has the same spectrum). Conventions
//! match [`crate::MultiGraph`]: a self-loop contributes 1 to both the degree
//! and the diagonal of `A`.
//!
//! Three solvers are provided:
//!
//! * [`jacobi_eigenvalues`] — a dense cyclic Jacobi eigensolver, O(n³) but
//!   exact to machine precision; the oracle for tests and small graphs;
//! * [`power_lambda2`] — matrix-free power iteration on the *lazy* operator
//!   `W = (I + P)/2` (spectrum in `[0, 1]`, so no sign games), deflating the
//!   known top eigenvector; scales to the n ~ 10⁴–10⁵ graphs the benchmark
//!   harness produces;
//! * [`Lambda2Solver`] — the engine behind `power_lambda2`, kept as a value
//!   so repeated measurements **warm-start** from the previous eigenvector
//!   estimate and reuse scratch buffers. Under churn ("mutate, then
//!   re-measure") this converges in a handful of iterations instead of
//!   hundreds, and together with the graph's cached CSR snapshot it is the
//!   fast path the benchmarks exercise.
//!
//! All dense numeric loops are chunked via [`crate::par`]: reductions
//! combine fixed-size chunk partials in chunk order, so results are
//! bit-identical for every thread count (including 1) — a determinism test
//! enforces that parallel and sequential runs agree.
//!
//! # Memory-level-parallel kernels
//!
//! The iteration's hot loop is a CSR SpMV whose gathers (`x[target]`) are
//! random on DRAM-resident graphs. The solver's default kernel
//! ([`lazy_spmv`] with `blocked = true`) restructures the row loop into
//! 4-row blocks with independent accumulator chains and software-prefetches
//! gather targets a fixed distance ahead along the u32 column stream, so
//! misses overlap instead of serializing; the two reduction+rewrite
//! passes that follow each SpMV (deflation numerator; subtract + Rayleigh
//! quotient + norm) are fused into the same streaming pass via
//! [`par::for_chunks_fold_mut`]. **No arithmetic is reordered**: per-row
//! entry order, reduction chunking, and partial-combination order are
//! unchanged, so the MLP path is bit-identical to the scalar path at
//! every thread count — differential tests assert byte equality, and the
//! `DEX_MLP_KERNELS` knob ([`par::mlp_enabled`]) only changes the memory
//! access schedule. This stacks multiplicatively with pool parallelism:
//! each worker's chunk runs the blocked kernel on its own core.

// Dense linear-algebra kernels read clearer with explicit index loops.
#![allow(clippy::needless_range_loop)]

use crate::adjacency::{Csr, MultiGraph};
use crate::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Second-largest and smallest eigenvalues of the random-walk matrix `P`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spectrum {
    /// λ₂(P): second largest eigenvalue.
    pub lambda2: f64,
    /// λ_min(P): smallest (possibly negative) eigenvalue.
    pub lambda_min: f64,
}

impl Spectrum {
    /// Spectral gap `1 − λ₂` — the quantity Theorem 1 keeps constant.
    pub fn gap(&self) -> f64 {
        1.0 - self.lambda2
    }

    /// `max(|λ₂|, |λ_min|)` — governs mixing of the non-lazy walk.
    pub fn lambda_max_abs(&self) -> f64 {
        self.lambda2.abs().max(self.lambda_min.abs())
    }
}

/// Dense symmetric normalized adjacency `N = D^{-1/2} A D^{-1/2}` (row-major
/// square matrix). Requires every degree ≥ 1.
pub fn normalized_adjacency_dense(g: &MultiGraph) -> Vec<Vec<f64>> {
    let csr = g.csr();
    let n = csr.n();
    let mut m = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        let di = csr.degree(i) as f64;
        for &j in csr.row(i) {
            let dj = csr.degree(j as usize) as f64;
            m[i][j as usize] += 1.0 / (di * dj).sqrt();
        }
    }
    m
}

/// All eigenvalues of a dense symmetric matrix by cyclic Jacobi rotations,
/// sorted descending. Destroys `a`. Exact to ~1e-12 for well-conditioned
/// inputs; O(n³) — intended as a test oracle and for n ≤ ~512.
pub fn jacobi_eigenvalues(a: &mut [Vec<f64>]) -> Vec<f64> {
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, row) in a.iter().enumerate() {
        assert_eq!(row.len(), n, "matrix must be square");
        for j in 0..n {
            debug_assert!(
                (row[j] - a[j][i]).abs() < 1e-9,
                "matrix must be symmetric at ({i},{j})"
            );
        }
    }
    let max_sweeps = 64;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p][q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p][p];
                let aqq = a[q][q];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation J(p,q,θ)ᵀ A J(p,q,θ).
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    eig.sort_by(|x, y| y.partial_cmp(x).expect("NaN eigenvalue"));
    eig
}

/// Exact spectrum of the random-walk matrix via the dense Jacobi oracle.
/// Requires min degree ≥ 1. O(n³).
pub fn dense_spectrum(g: &MultiGraph) -> Spectrum {
    assert!(g.num_nodes() > 0, "empty graph has no spectrum");
    assert!(
        g.min_degree() >= 1,
        "dense_spectrum requires min degree >= 1"
    );
    let mut m = normalized_adjacency_dense(g);
    let eig = jacobi_eigenvalues(&mut m);
    let lambda2 = if eig.len() >= 2 { eig[1] } else { 1.0 };
    let lambda_min = *eig.last().expect("nonempty");
    Spectrum {
        lambda2,
        lambda_min,
    }
}

// ----------------------------------------------------------------------
// The SpMV kernel: y = 0.5·x ± 0.5·(P x), scalar and blocked variants
// ----------------------------------------------------------------------
//
// The power iteration's cost is one CSR SpMV per iteration, and on
// DRAM-resident graphs that SpMV is gather-bound: `x[targets[k]]` misses
// are random, and the scalar row loop exposes only one miss at a time.
// The blocked kernel recovers memory-level parallelism two ways without
// changing any arithmetic order:
//
// * **4-row blocks** — four independent accumulator chains per block, so
//   the out-of-order window holds gathers from four rows at once instead
//   of serializing on one row's `acc` dependency;
// * **streamed gather prefetch** — the u32 column stream `targets[..]` is
//   read ahead of the block being summed (a sequential, hardware-friendly
//   read) and `x[target]` lines are software-prefetched `SPMV_PF_DIST`
//   entries early, so by the time a row is summed its gathers are in
//   flight or resident.
//
// Per-row entry order is untouched and each `y[i]` is the same expression
// as the scalar kernel, so the blocked variant is bit-identical — tests
// assert byte equality, and the solver exposes both paths.

/// Flat adjacency entries to prefetch ahead of the block being summed.
/// 384 entries ≈ 1.5 KiB of sequential u32 column reads, keeping up to
/// ~384 gather targets in flight — deep enough to cover a full DRAM miss
/// in the `dram_resident` regime (measured best among {192, 384} on the
/// bench box) while the request stream itself stays hardware-friendly.
const SPMV_PF_DIST: usize = 384;

/// Scalar reference kernel over one row chunk: `out[k] = 0.5·x[start+k] +
/// (0.5·sign)·Σ_row x / deg`. `sign = ±1.0` selects the lazy walk
/// operator `(I + P)/2` or its reflection `(I − P)/2`; the multiplication
/// by `0.5·sign` is exact for both values, so the minus path is
/// bit-identical to the historical `0.5·x − 0.5·acc/deg` form.
fn spmv_chunk_scalar(csr: &Csr, x: &[f64], start: usize, out: &mut [f64], sign: f64) {
    let h = 0.5 * sign;
    for (k, yi) in out.iter_mut().enumerate() {
        let i = start + k;
        let row = csr.row(i);
        let mut acc = 0.0;
        for &j in row {
            acc += x[j as usize];
        }
        *yi = 0.5 * x[i] + h * acc / row.len() as f64;
    }
}

/// Blocked kernel: same chunk, same per-row arithmetic, restructured for
/// memory-level parallelism (see the section comment above).
fn spmv_chunk_blocked(csr: &Csr, x: &[f64], start: usize, out: &mut [f64], sign: f64) {
    let offsets = &csr.offsets;
    let targets = &csr.targets;
    let rows = out.len();
    let flat_end = offsets[start + rows] as usize;
    let mut pf = offsets[start] as usize;
    let h = 0.5 * sign;
    let mut r = 0usize;
    while r + 4 <= rows {
        let i = start + r;
        let o0 = offsets[i] as usize;
        let o1 = offsets[i + 1] as usize;
        let o2 = offsets[i + 2] as usize;
        let o3 = offsets[i + 3] as usize;
        let o4 = offsets[i + 4] as usize;
        // Walk the column stream ahead of the block, requesting the
        // gather targets early. The stream itself reads sequentially.
        let goal = (o4 + SPMV_PF_DIST).min(flat_end);
        while pf < goal {
            par::prefetch_read(&x[targets[pf] as usize]);
            pf += 1;
        }
        // Four independent accumulator chains; per-row order unchanged.
        let mut a0 = 0.0;
        for &j in &targets[o0..o1] {
            a0 += x[j as usize];
        }
        let mut a1 = 0.0;
        for &j in &targets[o1..o2] {
            a1 += x[j as usize];
        }
        let mut a2 = 0.0;
        for &j in &targets[o2..o3] {
            a2 += x[j as usize];
        }
        let mut a3 = 0.0;
        for &j in &targets[o3..o4] {
            a3 += x[j as usize];
        }
        out[r] = 0.5 * x[i] + h * a0 / (o1 - o0) as f64;
        out[r + 1] = 0.5 * x[i + 1] + h * a1 / (o2 - o1) as f64;
        out[r + 2] = 0.5 * x[i + 2] + h * a2 / (o3 - o2) as f64;
        out[r + 3] = 0.5 * x[i + 3] + h * a3 / (o4 - o3) as f64;
        r += 4;
    }
    if r < rows {
        spmv_chunk_scalar(csr, x, start + r, &mut out[r..], sign);
    }
}

#[inline]
fn spmv_chunk(csr: &Csr, x: &[f64], start: usize, out: &mut [f64], sign: f64, blocked: bool) {
    if blocked {
        spmv_chunk_blocked(csr, x, start, out, sign);
    } else {
        spmv_chunk_scalar(csr, x, start, out, sign);
    }
}

/// One application of `y = 0.5·x + sign·0.5·(P x)` over the whole vector,
/// chunk-deterministic. Public entry for the kernel benchmark and
/// differential tests; `blocked` selects the memory-level-parallel kernel
/// (bit-identical to scalar — byte-equality is asserted in tests).
pub fn lazy_spmv(csr: &Csr, x: &[f64], y: &mut [f64], threads: usize, sign: f64, blocked: bool) {
    assert_eq!(x.len(), csr.n());
    assert_eq!(y.len(), csr.n());
    par::for_chunks_mut(y, threads, |start, chunk| {
        spmv_chunk(csr, x, start, chunk, sign, blocked);
    });
}

/// Apply the lazy walk operator `W = (I + P)/2` to `x`, writing into `y`.
/// Rows are processed in fixed chunks, optionally across threads; each
/// `y[i]` is computed from the same inputs in the same order regardless of
/// the thread count.
fn apply_lazy(csr: &Csr, x: &[f64], y: &mut [f64], threads: usize, blocked: bool) {
    par::for_chunks_mut(y, threads, |start, chunk| {
        spmv_chunk(csr, x, start, chunk, 1.0, blocked);
    });
}

/// Fused iteration front half (the memory-level-parallel path): apply the
/// lazy operator *and* fold the deflation numerator `Σ π_i y_i` in the
/// same streaming pass over `y` — one pass instead of a write pass plus a
/// re-read reduction. Per-chunk partials combine in chunk order, so the
/// numerator is bit-identical to [`deflate_top`]'s separate reduction.
fn apply_lazy_fold_num(
    csr: &Csr,
    x: &[f64],
    y: &mut [f64],
    pi: &[f64],
    threads: usize,
    blocked: bool,
) -> f64 {
    par::for_chunks_fold_mut(
        y,
        threads,
        0.0f64,
        |start, chunk| {
            spmv_chunk(csr, x, start, chunk, 1.0, blocked);
            let mut acc = 0.0;
            for (k, &v) in chunk.iter().enumerate() {
                acc += pi[start + k] * v;
            }
            acc
        },
        |a, b| a + b,
    )
}

/// π-weighted dot product `Σ π_i a_i b_i`, chunk-deterministic.
fn dot_pi(pi: &[f64], a: &[f64], b: &[f64], threads: usize) -> f64 {
    par::reduce_chunks(pi.len(), threads, |lo, hi| {
        let mut acc = 0.0;
        for i in lo..hi {
            acc += pi[i] * a[i] * b[i];
        }
        acc
    })
}

/// π-weighted norm, chunk-deterministic.
fn pi_norm(pi: &[f64], x: &[f64], threads: usize) -> f64 {
    dot_pi(pi, x, x, threads).sqrt()
}

/// Remove the component along the top eigenvector of `W` (the constant
/// vector, orthogonal in the π-weighted inner product with π ∝ degree).
fn deflate_top(pi: &[f64], x: &mut [f64], threads: usize) {
    let num = par::reduce_chunks(pi.len(), threads, |lo, hi| {
        let mut acc = 0.0;
        for i in lo..hi {
            acc += pi[i] * x[i];
        }
        acc
    });
    par::for_chunks_mut(x, threads, |_, chunk| {
        for v in chunk.iter_mut() {
            *v -= num;
        }
    });
}

/// Reusable deflated power-iteration engine for λ₂ of the lazy walk
/// operator. Holds the iteration vector and scratch across calls:
///
/// * **warm start** — when the graph size matches the previous call, the
///   previous eigenvector estimate seeds the iteration. After a small
///   topology change λ₂'s eigenvector barely moves, so convergence takes a
///   handful of iterations instead of hundreds. This is the measurement
///   fast path for "mutate, then re-measure" loops, and it pairs with
///   [`MultiGraph::csr`]'s incremental snapshot so neither the CSR nor the
///   solver state is rebuilt from scratch;
/// * **zero steady-state allocation** — π, x, y buffers are reused.
///
/// Results are deterministic for a fixed call sequence and thread count
/// choice is *not* part of that: any `threads` value gives bit-identical
/// output (see [`crate::par`]).
pub struct Lambda2Solver {
    threads: usize,
    x: Vec<f64>,
    y: Vec<f64>,
    pi: Vec<f64>,
    warm: bool,
    /// Use the memory-level-parallel kernels (blocked SpMV + fused
    /// deflation/normalization passes). Bit-identical to the scalar path;
    /// defaults to the process-wide [`par::mlp_enabled`] knob.
    mlp: bool,
}

impl Default for Lambda2Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Lambda2Solver {
    /// Solver using [`par::default_threads`] workers.
    pub fn new() -> Self {
        Self::with_threads(par::default_threads())
    }

    /// Solver with an explicit worker count (1 = sequential).
    pub fn with_threads(threads: usize) -> Self {
        Lambda2Solver {
            threads: threads.max(1),
            x: Vec::new(),
            y: Vec::new(),
            pi: Vec::new(),
            warm: false,
            mlp: par::mlp_enabled(),
        }
    }

    /// Force the memory-level-parallel kernels on or off for this solver
    /// (default: the process-wide `DEX_MLP_KERNELS` knob). Results are
    /// bit-identical either way — this is a benchmarking/differential-test
    /// hook, not a semantic switch.
    pub fn set_mlp_kernels(&mut self, on: bool) -> &mut Self {
        self.mlp = on;
        self
    }

    /// Drop the warm-start state (the next call re-seeds from `seed`).
    pub fn reset(&mut self) {
        self.warm = false;
    }

    /// λ₂(P) by deflated power iteration on the lazy operator. Matrix-free;
    /// O(iters · m). Requires min degree ≥ 1 and a connected graph for a
    /// meaningful answer (on a disconnected graph it converges to λ₂ = 1,
    /// i.e. gap 0, which is the honest signal).
    pub fn lambda2(&mut self, g: &MultiGraph, max_iters: usize, tol: f64, seed: u64) -> f64 {
        assert!(
            g.min_degree() >= 1,
            "power_lambda2 requires min degree >= 1"
        );
        let csr = g.csr();
        self.run(&csr, max_iters, tol, seed)
    }

    /// Approximate Fiedler-style eigenvector for λ₂ (in the graph's sorted
    /// node order), by the same iteration as [`Lambda2Solver::lambda2`].
    pub fn fiedler(&mut self, g: &MultiGraph, max_iters: usize, tol: f64, seed: u64) -> Vec<f64> {
        assert!(g.min_degree() >= 1);
        let csr = g.csr();
        self.run(&csr, max_iters, tol, seed);
        self.x.clone()
    }

    fn run(&mut self, csr: &Csr, max_iters: usize, tol: f64, seed: u64) -> f64 {
        let n = csr.n();
        let threads = if n >= par::PAR_MIN_LEN {
            self.threads
        } else {
            1
        };
        if n <= 1 {
            self.warm = false;
            self.x.clear();
            return 0.0;
        }

        // Stationary distribution π ∝ degree.
        self.pi.clear();
        self.pi.resize(n, 0.0);
        let deg_sum = par::reduce_chunks(n, threads, |lo, hi| {
            let mut acc = 0.0;
            for i in lo..hi {
                acc += csr.degree(i) as f64;
            }
            acc
        });
        let pi = &mut self.pi;
        par::for_chunks_mut(pi, threads, |start, chunk| {
            for (k, p) in chunk.iter_mut().enumerate() {
                *p = csr.degree(start + k) as f64 / deg_sum;
            }
        });

        // Start vector: previous eigenvector estimate when the size
        // matches (warm start), fresh randomness otherwise.
        if !(self.warm && self.x.len() == n) {
            let mut rng = StdRng::seed_from_u64(seed);
            self.x.clear();
            self.x.extend((0..n).map(|_| rng.random_range(-1.0..1.0)));
        }
        let (x, y) = (&mut self.x, &mut self.y);
        y.clear();
        y.resize(n, 0.0);

        deflate_top(pi, x, threads);
        let norm = pi_norm(pi, x, threads);
        if norm < 1e-300 {
            // Degenerate start (fully in the top eigenspace): re-seed once.
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995);
            for v in x.iter_mut() {
                *v = rng.random_range(-1.0..1.0);
            }
            deflate_top(pi, x, threads);
            let norm = pi_norm(pi, x, threads);
            if norm < 1e-300 {
                self.warm = false;
                return 0.0;
            }
            par::for_chunks_mut(x, threads, |_, chunk| {
                for v in chunk.iter_mut() {
                    *v /= norm;
                }
            });
        } else {
            par::for_chunks_mut(x, threads, |_, chunk| {
                for v in chunk.iter_mut() {
                    *v /= norm;
                }
            });
        }

        let mut prev = f64::NAN;
        let mut prev_delta = f64::NAN;
        let mut prev_extrap = f64::NAN;
        for it in 0..max_iters {
            // One iteration = SpMV + deflate + Rayleigh quotient + norm.
            // The MLP path fuses them into two streaming passes over y
            // (apply⊕numerator, then subtract⊕rq⊕norm); partials combine
            // in chunk order, so both paths are bit-identical — asserted
            // by differential tests against the scalar sequence below.
            let (rq, norm) = if self.mlp {
                let num = apply_lazy_fold_num(csr, x, y, pi, threads, true);
                let x_ro: &[f64] = x;
                let (rq, norm2) = par::for_chunks_fold_mut(
                    y,
                    threads,
                    (0.0f64, 0.0f64),
                    |start, chunk| {
                        let mut rq = 0.0;
                        let mut n2 = 0.0;
                        for (k, v) in chunk.iter_mut().enumerate() {
                            let i = start + k;
                            *v -= num;
                            rq += pi[i] * x_ro[i] * *v;
                            n2 += pi[i] * *v * *v;
                        }
                        (rq, n2)
                    },
                    |a, b| (a.0 + b.0, a.1 + b.1),
                );
                (rq, norm2.sqrt())
            } else {
                apply_lazy(csr, x, y, threads, false);
                deflate_top(pi, y, threads);
                // Rayleigh quotient in the π inner product: <x, Wx>_π (x
                // is unit).
                (dot_pi(pi, x, y, threads), pi_norm(pi, y, threads))
            };
            if norm < 1e-300 {
                // x was (numerically) entirely in the top eigenspace.
                self.warm = false;
                return 0.0;
            }
            par::for_chunks_mut(x, threads, |start, chunk| {
                for (k, xv) in chunk.iter_mut().enumerate() {
                    *xv = y[start + k] / norm;
                }
            });
            let delta = rq - prev;
            if it > 16 {
                if delta.abs() < tol {
                    self.warm = true;
                    return (2.0 * rq - 1.0).clamp(-1.0, 1.0);
                }
                // Aitken Δ² acceleration: the Rayleigh quotients converge
                // geometrically, rq_k ≈ λ − c·ρᵏ, so successive deltas
                // estimate ρ and the extrapolated limit
                // λ̂_k = rq_k + Δ_k·ρ/(1−ρ) cancels the leading geometric
                // term. The seed's drift-only criterion iterates until Δ_k
                // itself is below tol — for ρ → 1 (clustered eigenvalues,
                // exactly the p-cycle regime) that is thousands of
                // mat-vecs past the point where λ̂ has stabilized, and the
                // un-extrapolated rq it returns is *less* accurate than λ̂
                // (its remaining error is Δ·ρ/(1−ρ)). Stop when λ̂
                // stabilizes to tol and return it.
                let rho = delta / prev_delta;
                if rho.is_finite() && (1e-6..=0.9999).contains(&rho) {
                    let extrap = rq + delta * rho / (1.0 - rho);
                    if (extrap - prev_extrap).abs() < tol {
                        self.warm = true;
                        return (2.0 * extrap - 1.0).clamp(-1.0, 1.0);
                    }
                    prev_extrap = extrap;
                }
            }
            prev_delta = delta;
            prev = rq;
        }
        self.warm = true;
        (2.0 * prev - 1.0).clamp(-1.0, 1.0)
    }
}

/// λ₂(P) by power iteration with a cold start (fresh solver per call).
/// Keep a [`Lambda2Solver`] instead when measuring the same graph family
/// repeatedly — warm starts are several times faster under churn.
pub fn power_lambda2(g: &MultiGraph, max_iters: usize, tol: f64, seed: u64) -> f64 {
    Lambda2Solver::new().lambda2(g, max_iters, tol, seed)
}

/// λ_min(P) by power iteration on `M = (I − P)/2` (largest eigenvalue of
/// `M` is `(1 − λ_min)/2`).
pub fn power_lambda_min(g: &MultiGraph, max_iters: usize, tol: f64, seed: u64) -> f64 {
    assert!(g.min_degree() >= 1);
    let csr = g.csr();
    let n = csr.n();
    if n <= 1 {
        return 0.0;
    }
    let threads = if n >= par::PAR_MIN_LEN {
        par::default_threads()
    } else {
        1
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let mut y = vec![0.0f64; n];
    let mut prev = f64::NAN;
    let norm0 =
        par::reduce_chunks(n, threads, |lo, hi| x[lo..hi].iter().map(|v| v * v).sum()).sqrt();
    for v in x.iter_mut() {
        *v /= norm0;
    }
    let blocked = par::mlp_enabled();
    for it in 0..max_iters {
        // y = (x - P x)/2 — the shared SpMV kernel with sign −1
        // (bit-identical to the historical `0.5·x − 0.5·acc/deg` loop).
        lazy_spmv(&csr, &x, &mut y, threads, -1.0, blocked);
        let rq = par::reduce_chunks(n, threads, |lo, hi| {
            let mut acc = 0.0;
            for i in lo..hi {
                acc += x[i] * y[i];
            }
            acc
        });
        let norm =
            par::reduce_chunks(n, threads, |lo, hi| y[lo..hi].iter().map(|v| v * v).sum()).sqrt();
        if norm < 1e-300 {
            return 1.0; // P x = x for every start: e.g. clique of loops
        }
        {
            let (x, y) = (&mut x, &y);
            par::for_chunks_mut(x, threads, |start, chunk| {
                for (k, xv) in chunk.iter_mut().enumerate() {
                    *xv = y[start + k] / norm;
                }
            });
        }
        if it > 16 && (rq - prev).abs() < tol {
            return (1.0 - 2.0 * rq).clamp(-1.0, 1.0);
        }
        prev = rq;
    }
    (1.0 - 2.0 * prev).clamp(-1.0, 1.0)
}

/// Approximate Fiedler-style vector: the (π-orthogonal-to-constants)
/// eigenvector of the lazy walk operator for λ₂, by the same deflated
/// power iteration as [`power_lambda2`]. Returned in the graph's sorted
/// node order (see [`MultiGraph::dense_index`]). Used for spectral sweep
/// cuts — both for measurement and for the sweep-cut *adversary*.
pub fn fiedler_vector(g: &MultiGraph, max_iters: usize, tol: f64, seed: u64) -> Vec<f64> {
    if g.num_nodes() <= 1 {
        return vec![0.0; g.num_nodes()];
    }
    Lambda2Solver::new().fiedler(g, max_iters, tol, seed)
}

/// Spectral sweep cut: sort nodes by the Fiedler vector, scan prefixes up
/// to half the volume, and return the prefix minimizing the conductance
/// `cut / min(vol, vol̄)`. Returns `(side, conductance)` where `side` is
/// the sparse side's node ids. Cheeger's inequality guarantees the result
/// is within `√(2·gap)` of optimal.
pub fn sweep_cut(g: &MultiGraph) -> (Vec<crate::ids::NodeId>, f64) {
    let n = g.num_nodes();
    if n < 2 {
        return (Vec::new(), f64::INFINITY);
    }
    let fv = fiedler_vector(g, 3000, 1e-9, 0x5eed);
    let csr = g.csr();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| fv[a].partial_cmp(&fv[b]).expect("no NaN"));
    let total_vol: usize = (0..n).map(|i| csr.degree(i)).sum();
    let mut in_prefix = vec![false; n];
    let mut cut = 0i64;
    let mut vol = 0usize;
    let mut best = (f64::INFINITY, 0usize);
    for (k, &i) in order.iter().enumerate().take(n - 1) {
        for &j in csr.row(i) {
            let j = j as usize;
            if j == i {
                continue; // self-loops never cross
            }
            if in_prefix[j] {
                cut -= 1;
            } else {
                cut += 1;
            }
        }
        in_prefix[i] = true;
        vol += csr.degree(i);
        let denom = vol.min(total_vol - vol);
        if denom == 0 {
            continue;
        }
        let phi = cut as f64 / denom as f64;
        if phi < best.0 {
            best = (phi, k + 1);
        }
    }
    let side: Vec<crate::ids::NodeId> = order[..best.1].iter().map(|&i| csr.order[i]).collect();
    (side, best.0)
}

/// Spectrum of the random-walk matrix; picks the dense oracle for
/// `n ≤ 256`, power iteration above. Degree-0 nodes (possible only in
/// degenerate intermediate states) yield a conservative gap of 0.
pub fn spectrum(g: &MultiGraph) -> Spectrum {
    let n = g.num_nodes();
    if n <= 1 {
        return Spectrum {
            lambda2: 0.0,
            lambda_min: 0.0,
        };
    }
    if g.min_degree() == 0 {
        return Spectrum {
            lambda2: 1.0,
            lambda_min: -1.0,
        };
    }
    if n <= 256 {
        dense_spectrum(g)
    } else {
        Spectrum {
            lambda2: power_lambda2(g, 6000, 1e-10, 0xdecafbad),
            lambda_min: power_lambda_min(g, 6000, 1e-10, 0xdecafbad),
        }
    }
}

/// Spectral gap `1 − λ₂(P)` of the graph (0 when disconnected).
pub fn spectral_gap(g: &MultiGraph) -> f64 {
    spectrum(g).gap()
}

/// Cheeger lower bound (Theorem 2, left): `h(G) ≥ (1 − λ)/2`.
pub fn cheeger_lower(gap: f64) -> f64 {
    gap / 2.0
}

/// Cheeger upper bound (Theorem 2, right): `h(G) ≤ √(2(1 − λ))`.
pub fn cheeger_upper(gap: f64) -> f64 {
    (2.0 * gap).sqrt()
}

/// The paper's worst-case floor during staggered type-2 recovery
/// (Lemma 9(b)): gap ≥ (1 − λ)² / 8 where `1 − λ` is the p-cycle family
/// gap.
pub fn staggered_gap_floor(family_gap: f64) -> f64 {
    family_gap * family_gap / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::pcycle::PCycle;

    fn cycle_graph(k: u64) -> MultiGraph {
        let mut g = MultiGraph::new();
        for i in 0..k {
            g.add_node(NodeId(i));
        }
        for i in 0..k {
            g.add_edge(NodeId(i), NodeId((i + 1) % k));
        }
        g
    }

    fn clique(k: u64) -> MultiGraph {
        let mut g = MultiGraph::new();
        for i in 0..k {
            g.add_node(NodeId(i));
        }
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    #[test]
    fn jacobi_on_known_2x2() {
        let mut m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let e = jacobi_eigenvalues(&mut m);
        assert!((e[0] - 3.0).abs() < 1e-10);
        assert!((e[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn cycle_eigenvalues_are_cosines() {
        // P of C_n has eigenvalues cos(2πk/n).
        let n = 12u64;
        let s = dense_spectrum(&cycle_graph(n));
        let expect2 = (2.0 * std::f64::consts::PI / n as f64).cos();
        assert!((s.lambda2 - expect2).abs() < 1e-9, "{s:?}");
        assert!(
            (s.lambda_min - (-1.0)).abs() < 1e-9,
            "even cycle is bipartite"
        );
    }

    #[test]
    fn clique_eigenvalues() {
        // P of K_n: eigenvalue 1 once and −1/(n−1) with multiplicity n−1.
        let n = 9u64;
        let s = dense_spectrum(&clique(n));
        let expect = -1.0 / (n as f64 - 1.0);
        assert!((s.lambda2 - expect).abs() < 1e-9, "{s:?}");
        assert!((s.lambda_min - expect).abs() < 1e-9);
    }

    #[test]
    fn power_iteration_matches_oracle_on_cycle() {
        let g = cycle_graph(40);
        let dense = dense_spectrum(&g);
        let iter2 = power_lambda2(&g, 20000, 1e-13, 7);
        assert!(
            (iter2 - dense.lambda2).abs() < 1e-4,
            "power {iter2} vs dense {}",
            dense.lambda2
        );
        let itmin = power_lambda_min(&g, 20000, 1e-13, 7);
        assert!((itmin - dense.lambda_min).abs() < 1e-4);
    }

    #[test]
    fn power_iteration_matches_oracle_on_pcycle() {
        let g = PCycle::new(101).to_multigraph();
        let dense = dense_spectrum(&g);
        let iter2 = power_lambda2(&g, 20000, 1e-13, 11);
        assert!(
            (iter2 - dense.lambda2).abs() < 1e-4,
            "power {iter2} vs dense {}",
            dense.lambda2
        );
    }

    #[test]
    fn pcycle_family_gap_is_bounded_below() {
        // The p-cycle family has a constant gap; empirically it sits well
        // above 0.01 for all sizes we use. This is experiment E2's floor.
        for p in [23u64, 101, 499, 1009] {
            let g = PCycle::new(p).to_multigraph();
            let gap = spectral_gap(&g);
            assert!(gap > 0.01, "Z({p}) gap {gap}");
        }
    }

    #[test]
    fn disconnected_graph_has_zero_gap() {
        let mut g = cycle_graph(6);
        // merge a disjoint second 6-cycle with shifted ids
        for i in 0..6 {
            g.add_node(NodeId(100 + i));
        }
        for i in 0..6u64 {
            g.add_edge(NodeId(100 + i), NodeId(100 + (i + 1) % 6));
        }
        let s = dense_spectrum(&g);
        assert!(
            s.gap() < 1e-9,
            "disconnected gap must be 0, got {}",
            s.gap()
        );
    }

    #[test]
    fn self_loops_increase_laziness() {
        // Adding a loop to every vertex of an even cycle destroys
        // bipartiteness: λ_min moves strictly above −1.
        let mut g = cycle_graph(8);
        for i in 0..8 {
            g.add_edge(NodeId(i), NodeId(i));
        }
        let s = dense_spectrum(&g);
        assert!(s.lambda_min > -0.9, "{s:?}");
    }

    #[test]
    fn cheeger_sandwich_on_pcycle() {
        let z = PCycle::new(23);
        let g = z.to_multigraph();
        let gap = spectral_gap(&g);
        let h = crate::expansion::edge_expansion(&g).expect("small graph");
        // Theorem 2: (1−λ)/2 ≤ h ≤ √(2(1−λ)) — for the *conductance-style*
        // normalized h. Our h is |E(S,S̄)|/|S| on a 3-regular graph, so
        // normalize by d=3 for the comparison.
        let h_norm = h / 3.0;
        assert!(
            cheeger_lower(gap) / 3.0 <= h_norm + 1e-9,
            "lower {} vs {}",
            cheeger_lower(gap),
            h
        );
        assert!(h_norm <= cheeger_upper(gap) + 1e-9);
    }

    #[test]
    fn spectrum_dispatch_large_graph() {
        let g = PCycle::new(499).to_multigraph();
        let s = spectrum(&g);
        assert!(s.gap() > 0.01);
    }

    #[test]
    fn sweep_cut_finds_the_barbell_bridge() {
        // Two 8-cliques joined by one edge: the sweep must isolate one
        // clique with conductance ≈ 1/vol(K8).
        let mut g = clique(8);
        for i in 100..108u64 {
            g.add_node(NodeId(i));
        }
        for i in 100..108u64 {
            for j in (i + 1)..108 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g.add_edge(NodeId(0), NodeId(100));
        let (side, phi) = sweep_cut(&g);
        assert_eq!(side.len(), 8, "should cut one clique off");
        assert!(phi < 0.03, "conductance {phi}");
        // All of one clique, none of the other.
        let low: Vec<_> = side.iter().filter(|u| u.0 < 100).collect();
        assert!(low.is_empty() || low.len() == 8);
    }

    #[test]
    fn sweep_cut_on_expander_is_not_sparse() {
        let g = PCycle::new(101).to_multigraph();
        let (_, phi) = sweep_cut(&g);
        // Cheeger: φ ≥ gap/2.
        let gap = spectral_gap(&g);
        assert!(phi >= gap / 2.0 - 1e-9, "φ {phi} below Cheeger floor");
    }

    #[test]
    fn fiedler_vector_separates_barbell() {
        let mut g = cycle_graph(6);
        for i in 100..106u64 {
            g.add_node(NodeId(i));
        }
        for i in 100..106u64 {
            let j = if i == 105 { 100 } else { i + 1 };
            g.add_edge(NodeId(i), NodeId(j));
        }
        g.add_edge(NodeId(0), NodeId(100));
        let fv = fiedler_vector(&g, 4000, 1e-12, 3);
        let (order, _) = g.dense_index();
        // Signs should split the two rings.
        let side_a: Vec<bool> = order
            .iter()
            .zip(fv.iter())
            .filter(|(u, _)| u.0 < 100)
            .map(|(_, &v)| v > 0.0)
            .collect();
        assert!(
            side_a.iter().all(|&b| b) || side_a.iter().all(|&b| !b),
            "ring A not on one side of the Fiedler vector"
        );
    }

    #[test]
    fn singleton_and_degree_zero_guards() {
        let mut g = MultiGraph::new();
        g.add_node(NodeId(0));
        assert_eq!(spectrum(&g).gap(), 1.0);
        g.add_node(NodeId(1));
        // degree-0 node present
        assert_eq!(spectrum(&g).gap(), 0.0);
    }

    // ---- solver engine behaviour ------------------------------------------

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // The requirement is agreement within 1e-9; the chunked reductions
        // actually deliver bit-identical results for any thread count, so
        // assert the stronger property. The graph must be at least
        // PAR_MIN_LEN nodes or the solver gates every run to one thread
        // and the test exercises nothing — 65537 is prime and just over
        // the 16·CHUNK threshold. tol = 0 keeps all runs iterating the
        // full budget (determinism needs identical loops, not
        // convergence).
        assert!(65537 >= crate::par::PAR_MIN_LEN as u64);
        let g = PCycle::new(65537).to_multigraph();
        let seq = Lambda2Solver::with_threads(1).lambda2(&g, 60, 0.0, 42);
        for threads in [2, 4, 8] {
            let par = Lambda2Solver::with_threads(threads).lambda2(&g, 60, 0.0, 42);
            assert_eq!(
                par.to_bits(),
                seq.to_bits(),
                "threads={threads}: {par} vs {seq}"
            );
        }
    }

    #[test]
    fn blocked_spmv_is_bitwise_equal_to_scalar() {
        // Both signs, both thread regimes, sizes exercising the 4-row
        // remainder and multiple chunks; irregular degrees via churn.
        let mut g = PCycle::new(4099).to_multigraph();
        let nodes = g.nodes_sorted();
        for w in nodes.windows(3).step_by(97) {
            g.add_edge(w[0], w[2]);
        }
        let csr = g.csr();
        let n = csr.n();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xb10c);
        let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
        for sign in [1.0, -1.0] {
            for threads in [1, 8] {
                let mut y_scalar = vec![0.0f64; n];
                let mut y_blocked = vec![0.0f64; n];
                lazy_spmv(&csr, &x, &mut y_scalar, threads, sign, false);
                lazy_spmv(&csr, &x, &mut y_blocked, threads, sign, true);
                let same = y_scalar
                    .iter()
                    .zip(&y_blocked)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "sign={sign} threads={threads}");
            }
        }
    }

    #[test]
    fn mlp_solver_is_bitwise_equal_to_scalar_solver() {
        // Full fused iteration (blocked SpMV + fold passes) vs the scalar
        // sequence, same budget, tol = 0 so both iterate identically.
        let g = PCycle::new(65537).to_multigraph();
        let mut scalar = Lambda2Solver::with_threads(2);
        scalar.set_mlp_kernels(false);
        let want = scalar.lambda2(&g, 40, 0.0, 42);
        for threads in [1, 8] {
            let mut mlp = Lambda2Solver::with_threads(threads);
            mlp.set_mlp_kernels(true);
            let got = mlp.lambda2(&g, 40, 0.0, 42);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "threads={threads}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn warm_start_agrees_with_cold_start_under_churn() {
        let mut g = PCycle::new(499).to_multigraph();
        let mut warm = Lambda2Solver::with_threads(1);
        let cold0 = power_lambda2(&g, 20000, 1e-12, 9);
        let warm0 = warm.lambda2(&g, 20000, 1e-12, 9);
        assert!((cold0 - warm0).abs() < 1e-6);
        // Perturb edges a little, re-measure: warm result tracks cold.
        let nodes = g.nodes_sorted();
        for w in nodes.windows(2).take(6) {
            g.add_edge(w[0], w[1]);
        }
        let cold1 = power_lambda2(&g, 20000, 1e-12, 9);
        let warm1 = warm.lambda2(&g, 20000, 1e-12, 9);
        assert!((cold1 - warm1).abs() < 1e-5, "cold {cold1} vs warm {warm1}");
    }

    #[test]
    fn solver_reuse_across_different_sizes() {
        let mut solver = Lambda2Solver::new();
        let a = PCycle::new(101).to_multigraph();
        let b = PCycle::new(211).to_multigraph();
        let la = solver.lambda2(&a, 20000, 1e-12, 5);
        let lb = solver.lambda2(&b, 20000, 1e-12, 5);
        let oracle_a = dense_spectrum(&a).lambda2;
        let oracle_b = dense_spectrum(&b).lambda2;
        assert!((la - oracle_a).abs() < 1e-4);
        assert!((lb - oracle_b).abs() < 1e-4);
    }
}
