//! Exact edge expansion and conductance by subset enumeration.
//!
//! `h(G) = min_{|S| ≤ n/2} |E(S, S̄)| / |S|` (paper, Definition 5).
//! Exponential in n — the honest oracle for small graphs, used to validate
//! the Cheeger sandwich (Theorem 2) and the spectral solvers. For large
//! graphs the spectral gap plus Cheeger bounds are the reported proxy.

use crate::adjacency::MultiGraph;

/// Largest `n` for which exact enumeration is allowed (2²⁴ subsets ≈ 16M).
pub const MAX_EXACT_N: usize = 24;

/// Exact edge expansion `h(G)`; `None` if the graph has more than
/// [`MAX_EXACT_N`] nodes or fewer than 2 nodes. Self-loops never cross a
/// cut; parallel edges count with multiplicity.
pub fn edge_expansion(g: &MultiGraph) -> Option<f64> {
    let csr = g.csr();
    let n = csr.n();
    if !(2..=MAX_EXACT_N).contains(&n) {
        return None;
    }
    let half = n / 2;
    let mut best = f64::INFINITY;
    for mask in 1u32..(1u32 << n) {
        let size = mask.count_ones() as usize;
        if size > half {
            continue;
        }
        let mut cut = 0usize;
        let mut m = mask;
        while m != 0 {
            let u = m.trailing_zeros() as usize;
            m &= m - 1;
            for &v in csr.row(u) {
                if mask & (1u32 << v) == 0 {
                    cut += 1;
                }
            }
        }
        let ratio = cut as f64 / size as f64;
        if ratio < best {
            best = ratio;
        }
    }
    Some(best)
}

/// Exact conductance `φ(G) = min_S cut(S) / min(vol S, vol S̄)` with
/// volume = degree sum. Same size limit as [`edge_expansion`].
pub fn conductance(g: &MultiGraph) -> Option<f64> {
    let csr = g.csr();
    let n = csr.n();
    if !(2..=MAX_EXACT_N).contains(&n) {
        return None;
    }
    let total_vol: usize = (0..n).map(|i| csr.degree(i)).sum();
    let mut best = f64::INFINITY;
    for mask in 1u32..((1u32 << n) - 1) {
        let mut cut = 0usize;
        let mut vol = 0usize;
        let mut m = mask;
        while m != 0 {
            let u = m.trailing_zeros() as usize;
            m &= m - 1;
            vol += csr.degree(u);
            for &v in csr.row(u) {
                if mask & (1u32 << v) == 0 {
                    cut += 1;
                }
            }
        }
        let denom = vol.min(total_vol - vol);
        if denom == 0 {
            continue;
        }
        let phi = cut as f64 / denom as f64;
        if phi < best {
            best = phi;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::pcycle::PCycle;
    use crate::spectral;

    fn cycle_graph(k: u64) -> MultiGraph {
        let mut g = MultiGraph::new();
        for i in 0..k {
            g.add_node(NodeId(i));
        }
        for i in 0..k {
            g.add_edge(NodeId(i), NodeId((i + 1) % k));
        }
        g
    }

    #[test]
    fn cycle_expansion_is_two_over_half() {
        // Worst cut of C_n is a contiguous arc of n/2 nodes: 2 edges cross.
        let g = cycle_graph(10);
        let h = edge_expansion(&g).unwrap();
        assert!((h - 2.0 / 5.0).abs() < 1e-12, "h = {h}");
    }

    #[test]
    fn clique_expansion() {
        // K_4: S of size 2 cuts 4 edges → h = 2; singleton cuts 3 → h = 3.
        let mut g = MultiGraph::new();
        for i in 0..4 {
            g.add_node(NodeId(i));
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        assert!((edge_expansion(&g).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graph_has_zero_expansion() {
        let mut g = cycle_graph(4);
        for i in 10..13u64 {
            g.add_node(NodeId(i));
        }
        g.add_edge(NodeId(10), NodeId(11));
        g.add_edge(NodeId(11), NodeId(12));
        g.add_edge(NodeId(12), NodeId(10));
        assert_eq!(edge_expansion(&g).unwrap(), 0.0);
        assert_eq!(conductance(&g).unwrap(), 0.0);
    }

    #[test]
    fn self_loops_do_not_cross_cuts() {
        let mut g = cycle_graph(6);
        let base = edge_expansion(&g).unwrap();
        for i in 0..6 {
            g.add_edge(NodeId(i), NodeId(i));
        }
        // Loops raise degrees but never cross, so h is unchanged.
        assert_eq!(edge_expansion(&g).unwrap(), base);
    }

    #[test]
    fn parallel_edges_count_with_multiplicity() {
        let mut g = MultiGraph::new();
        g.add_node(NodeId(0));
        g.add_node(NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(1));
        assert!((edge_expansion(&g).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn too_large_returns_none() {
        let g = cycle_graph(30);
        assert!(edge_expansion(&g).is_none());
    }

    #[test]
    fn cheeger_sandwich_exact_small_pcycles() {
        // φ(G) sandwich: (1−λ)/2 ≤ φ ≤ √(2(1−λ)). Conductance version is
        // exactly the normalized form Theorem 2 speaks about.
        for p in [5u64, 7, 11, 13, 17, 19, 23] {
            let g = PCycle::new(p).to_multigraph();
            let gap = spectral::spectral_gap(&g);
            let phi = conductance(&g).unwrap();
            assert!(
                spectral::cheeger_lower(gap) <= phi + 1e-9,
                "p={p}: lower {} > φ {phi}",
                spectral::cheeger_lower(gap)
            );
            assert!(
                phi <= spectral::cheeger_upper(gap) + 1e-9,
                "p={p}: φ {phi} > upper {}",
                spectral::cheeger_upper(gap)
            );
        }
    }
}
