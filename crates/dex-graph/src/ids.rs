//! Strongly-typed identifiers.
//!
//! The paper is careful to distinguish *vertices* of the virtual graph from
//! *nodes* (processors) of the real network ("we reserve the term 'vertex'
//! for vertices in a virtual graph and 'node' for the real network",
//! Sect. 3). We encode that distinction in the type system so the two can
//! never be mixed up.

use std::fmt;

/// Identifier of a *real* node (a processor in the network).
///
/// Node ids are chosen by the adversary on insertion (Sect. 2) and are never
/// reused within a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

/// Identifier of a *virtual* vertex, i.e. an element of `Z_p` for the
/// current p-cycle `Z(p)` (Definition 1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u64);

impl NodeId {
    /// Raw integer value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl VertexId {
    /// Raw integer value (the residue in `Z_p`).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "z{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats_are_distinct() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{:?}", VertexId(7)), "z7");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        assert!(VertexId(0) < VertexId(1));
    }

    #[test]
    fn from_raw_roundtrip() {
        assert_eq!(NodeId::from(42).raw(), 42);
        assert_eq!(VertexId::from(42).raw(), 42);
    }
}
