//! Graph and numeric substrate for the DEX self-healing expander reproduction.
//!
//! This crate provides everything "below" the distributed algorithm:
//!
//! * [`adjacency::MultiGraph`] — a dynamic undirected multigraph with
//!   self-loops. Multigraphs are essential here: the real network is a
//!   *vertex contraction* of the virtual p-cycle (paper, Sect. 3.1), and
//!   contraction creates parallel edges and loops that carry spectral weight.
//! * [`primes`] — deterministic Miller–Rabin primality and Bertrand-range
//!   prime search, used to pick the p-cycle size `p ∈ (4n, 8n)`.
//! * [`pcycle`] — the 3-regular p-cycle expander family `Z(p)`
//!   (paper, Definition 1; Lubotzky's construction).
//! * [`spectral`] — matrix-free power iteration for the second eigenvalue of
//!   the lazy random-walk operator, plus a dense Jacobi eigensolver used as a
//!   test oracle; Cheeger-inequality helpers (paper, Theorem 2).
//! * [`expansion`] — exact edge expansion `h(G)` by subset enumeration for
//!   small graphs (paper, Definition 5).
//! * [`contraction`] — vertex contraction, used both to *build* the real
//!   network from the virtual graph and to validate Lemma 10 numerically.
//! * [`generators`] — random regular graphs, unions of random Hamiltonian
//!   cycles (the Law–Siu baseline substrate), rings, cliques, hypercubes.
//! * [`walks`] — a random-walk engine and mixing-time estimation.
//! * [`connectivity`] — BFS/DFS, components, diameter.
//! * [`par`] — deterministic chunked parallelism for the numeric engines.
//!
//! # Storage and snapshot model
//!
//! [`adjacency::MultiGraph`] stores nodes in a dense **slot arena** (u32
//! slots, free-list reuse) with neighbor lists as contiguous slot-index
//! vectors, and owns a **generation-stamped cached CSR snapshot**:
//! mutations bump a generation counter and mark dirty rows;
//! [`adjacency::MultiGraph::csr`] returns a borrowed up-to-date snapshot,
//! refreshing only dirty rows under edge churn. Hot loops (walks, floods,
//! mat-vecs, expansion checks) run on dense indices with no hashing and no
//! per-step allocation; see the `adjacency` module docs for the
//! conventions.
//!
//! All structures are deterministic given an RNG seed, **including** the
//! parallel numeric paths: chunked reductions make results bit-identical
//! for every thread count.

pub mod adjacency;
pub mod connectivity;
pub mod contraction;
pub mod expansion;
pub mod fxhash;
pub mod generators;
pub mod ids;
pub mod par;
pub mod pcycle;
pub mod primes;
pub mod spectral;
pub mod walks;

pub use adjacency::{Csr, CsrRef, MultiGraph, Neighbors};
pub use ids::{NodeId, VertexId};
pub use pcycle::PCycle;
pub use spectral::Lambda2Solver;
