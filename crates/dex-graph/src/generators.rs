//! Graph generators: rings, cliques, hypercubes, random regular graphs and
//! unions of random Hamiltonian cycles (the Law–Siu substrate, baseline of
//! Table 1).

use crate::adjacency::MultiGraph;
use crate::ids::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Cycle graph `C_n` on ids `0..n`.
pub fn ring(n: u64) -> MultiGraph {
    assert!(n >= 3, "ring needs n >= 3");
    let mut g = MultiGraph::with_capacity(n as usize);
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n));
    }
    g
}

/// Complete graph `K_n` on ids `0..n`.
pub fn clique(n: u64) -> MultiGraph {
    let mut g = MultiGraph::with_capacity(n as usize);
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId(i), NodeId(j));
        }
    }
    g
}

/// `dim`-dimensional hypercube on ids `0..2^dim`.
pub fn hypercube(dim: u32) -> MultiGraph {
    let n = 1u64 << dim;
    let mut g = MultiGraph::with_capacity(n as usize);
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    for i in 0..n {
        for b in 0..dim {
            let j = i ^ (1 << b);
            if j > i {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
    }
    g
}

/// Union of `k` independent uniformly random Hamiltonian cycles on ids
/// `0..n` — the graph family Law–Siu [18] maintains (degree `2k`).
/// Parallel edges are kept (it is a multigraph union).
pub fn hamiltonian_union<R: Rng + ?Sized>(n: u64, k: usize, rng: &mut R) -> MultiGraph {
    assert!(n >= 3);
    let mut g = MultiGraph::with_capacity(n as usize);
    for i in 0..n {
        g.add_node(NodeId(i));
    }
    let mut perm: Vec<u64> = (0..n).collect();
    for _ in 0..k {
        perm.shuffle(rng);
        for w in 0..n as usize {
            let a = perm[w];
            let b = perm[(w + 1) % n as usize];
            g.add_edge(NodeId(a), NodeId(b));
        }
    }
    g
}

/// Simple random `d`-regular graph on ids `0..n` via the configuration
/// model with swap-repair of loops and parallel edges. `n·d` must be even
/// and `d < n`. The repair loop makes the result *simple* (no loops, no
/// parallels); distribution is approximately uniform, which is all the
/// baselines need.
pub fn random_regular<R: Rng + ?Sized>(n: u64, d: usize, rng: &mut R) -> MultiGraph {
    assert!((d as u64) < n, "need d < n");
    assert!((n as usize * d).is_multiple_of(2), "n·d must be even");
    const MAX_ATTEMPTS: usize = 200;
    for _ in 0..MAX_ATTEMPTS {
        if let Some(g) = try_configuration(n, d, rng) {
            return g;
        }
    }
    panic!("random_regular failed to produce a simple graph (n={n}, d={d})");
}

fn try_configuration<R: Rng + ?Sized>(n: u64, d: usize, rng: &mut R) -> Option<MultiGraph> {
    let mut stubs: Vec<u64> = Vec::with_capacity(n as usize * d);
    for i in 0..n {
        for _ in 0..d {
            stubs.push(i);
        }
    }
    stubs.shuffle(rng);
    // Pair stubs; use a set to detect duplicates/loops, retry-local repair.
    let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(stubs.len() / 2);
    let mut used: crate::fxhash::FxHashSet<(u64, u64)> = Default::default();
    let mut i = 0;
    let mut stalls = 0usize;
    while i + 1 < stubs.len() {
        let (a, b) = (stubs[i], stubs[i + 1]);
        let key = (a.min(b), a.max(b));
        if a == b || used.contains(&key) {
            // Swap stub i+1 with a random later stub and retry.
            if i + 2 >= stubs.len() {
                return None;
            }
            let j = rng.random_range(i + 2..stubs.len());
            stubs.swap(i + 1, j);
            stalls += 1;
            if stalls > stubs.len() * 10 {
                return None;
            }
            continue;
        }
        used.insert(key);
        pairs.push((a, b));
        i += 2;
    }
    let mut g = MultiGraph::with_capacity(n as usize);
    for v in 0..n {
        g.add_node(NodeId(v));
    }
    for (a, b) in pairs {
        g.add_edge(NodeId(a), NodeId(b));
    }
    Some(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use crate::spectral::spectral_gap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ring_shape() {
        let g = ring(8);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 8);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
    }

    #[test]
    fn clique_shape() {
        let g = clique(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.nodes().all(|u| g.degree(u) == 5));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 32);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
        assert!(is_connected(&g));
    }

    #[test]
    fn hamiltonian_union_is_2k_regular() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = hamiltonian_union(50, 3, &mut rng);
        assert!(g.nodes().all(|u| g.degree(u) == 6));
        assert!(is_connected(&g));
        g.validate().unwrap();
    }

    #[test]
    fn hamiltonian_union_is_good_expander_whp() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = hamiltonian_union(200, 3, &mut rng);
        let gap = spectral_gap(&g);
        assert!(gap > 0.1, "union of 3 Hamiltonian cycles gap {gap}");
    }

    #[test]
    fn random_regular_is_simple_and_regular() {
        let mut rng = StdRng::seed_from_u64(7);
        for (n, d) in [(20u64, 3usize), (50, 4), (101, 6)] {
            let g = random_regular(n, d, &mut rng);
            assert!(g.nodes().all(|u| g.degree(u) == d), "n={n} d={d}");
            for u in g.nodes() {
                assert_eq!(g.edge_multiplicity(u, u), 0, "loop at {u}");
                for v in g.neighbors(u) {
                    assert!(g.edge_multiplicity(u, v) <= 1, "parallel {u}-{v}");
                }
            }
            g.validate().unwrap();
        }
    }

    #[test]
    fn random_regular_expands() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_regular(300, 4, &mut rng);
        assert!(is_connected(&g));
        assert!(spectral_gap(&g) > 0.1);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_degree_sum_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = random_regular(5, 3, &mut rng);
    }
}
