//! Event-driven message-level simulator with fault injection.
//!
//! The rest of the workspace *charges* CONGEST costs — a walk calls
//! [`crate::tokens::random_walk_search`] and bills one round and one
//! message per hop, but the hop itself is a synchronous array read that
//! cannot fail. This module puts the same token exchanges on an actual
//! message schedule: every hop becomes a send that is enqueued into the
//! destination's inbox, delivered after a per-link latency, and subject
//! to pluggable fault models. Three fault families are supported:
//!
//! * **Bernoulli loss** — each send independently dropped with
//!   probability `loss_milli / 1000`, keyed on (seed, src, dst, round,
//!   op, send tag);
//! * **burst loss** — per-link bad windows of `burst_window` rounds
//!   (a deterministic Gilbert–Elliott-style gate: during a bad window
//!   every send on the link is dropped);
//! * **partitions** — a periodic schedule splits the node set in two
//!   (sides chosen by a seeded hash of the node id); while the partition
//!   is active, cross-side sends are dropped, and when the window ends
//!   the sides rejoin mid-protocol.
//!
//! Protocol-level robustness rides on top: every operation schedules a
//! timeout when it launches a token, sized so it can only fire after the
//! token has provably been lost; a firing timeout re-initiates the
//! operation from scratch (bounded retries, deterministic exponential
//! backoff), and an operation that exhausts its retry budget is closed
//! as abandoned and counted in [`FaultStats`] — graceful degradation,
//! never a hang.
//!
//! # Determinism
//!
//! Everything is a pure function of the inputs:
//!
//! * the event heap is keyed on `(round, slot, seq)` — total order, no
//!   ties, so pop order never depends on insertion order races;
//! * fault decisions are splitmix64 hashes of (spec seed, link/node ids,
//!   round, op key, send tag) — never wall-clock, never arrival order;
//! * the per-round decision pass fans delivered tokens over
//!   [`dex_exec::for_chunks_mut`] with fixed chunk boundaries, and each
//!   decision reads only its own token plus shared immutable state, so
//!   results are bit-identical at any thread count;
//! * side effects (new sends, stat charges, op completion) are committed
//!   sequentially in heap order after the parallel pass.
//!
//! With a zero [`FaultSpec`] the walk engine reproduces
//! [`crate::tokens::random_walk_search`] exactly — same RNG draws, same
//! hit, same hop count — which is what lets `dex-core` route its healing
//! walks through here unconditionally and stay bit-identical to the
//! centralized oracle when faults are off.
//!
//! [`run_flood`] puts the protocol's broadcast/convergecast aggregates
//! (Algorithm 4.4's computeSpare/computeLow) on the same schedule:
//! per-round frontier expansion where every forward and every
//! convergecast report is a faultable send, bounded re-flood on timeout,
//! and graceful degradation to a partial count plus best partial witness
//! when the budget exhausts. With a zero spec it reproduces
//! [`crate::flood::flood_count_with`]'s result and charges exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dex_graph::adjacency::MultiGraph;
use dex_graph::ids::NodeId;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::rng::splitmix64;

/// Domain-separation salts for the fault decision hashes. Arbitrary odd
/// constants; each fault family draws from its own stream.
const SALT_LOSS: u64 = 0x6c6f_7373_9e37_79b1;
const SALT_BURST: u64 = 0x6275_7273_7400_4d5d;
const SALT_PART: u64 = 0x7061_7274_1ce4_e5b9;
const SALT_LAT: u64 = 0x6c61_7465_6e63_79d3;

/// Fold context words into a salted seed, splitmix64 per word (same
/// construction as [`crate::rng::SeedSpace::stream`]).
#[inline]
fn fold(seed: u64, words: &[u64]) -> u64 {
    let mut acc = splitmix64(seed);
    for &w in words {
        acc = splitmix64(acc ^ w.wrapping_mul(0xe703_7ed1_a0b4_28db));
    }
    acc
}

/// Fault model + robustness budget for one simulated run.
///
/// All probabilities are in **milli** units (per-1000) so specs hash and
/// compare exactly — no floats anywhere in the decision path. The
/// default ([`FaultSpec::zero`]) injects nothing: unit latency, no loss,
/// no partitions; retry budgets are still set so the same spec can be
/// extended with builder calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Bernoulli per-send loss probability, in 1/1000 units.
    pub loss_milli: u32,
    /// Burst-loss window length in rounds (0 disables bursts).
    pub burst_window: u32,
    /// Probability that a given (link, window) is bad, in 1/1000 units.
    pub burst_milli: u32,
    /// Minimum per-link latency in rounds (clamped to ≥ 1).
    pub lat_min: u32,
    /// Maximum per-link latency in rounds (clamped to ≥ `lat_min`).
    pub lat_max: u32,
    /// Partition schedule period in rounds (0 disables partitions).
    pub partition_period: u32,
    /// Rounds the partition stays up at the start of each period.
    pub partition_len: u32,
    /// Re-initiation budget for walk operations.
    pub walk_retries: u32,
    /// Re-initiation budget for route operations.
    pub route_retries: u32,
    /// After this many *lost* walks for one heal step, `dex-core` falls
    /// back to a flood-discovered candidate instead of walking again.
    pub fallback_after: u32,
    /// Re-flood budget for flood/convergecast operations: how many times
    /// an initiator re-floods after an incomplete generation before
    /// settling for the partial count.
    pub flood_retries: u32,
    /// Re-initiation budget for type-2 (inflate/deflate) coordination:
    /// failed coordination attempts roll back and re-initiate up to this
    /// many times before escalating to a reliable (per-link ARQ) round.
    pub type2_retries: u32,
    /// Fault-stream seed (independent of the protocol's `SeedSpace`).
    pub seed: u64,
}

impl FaultSpec {
    /// The no-fault spec: unit latency, no loss, no partitions, default
    /// retry budgets. Running under this spec is bit-identical to the
    /// centralized execution.
    pub const fn zero() -> Self {
        FaultSpec {
            loss_milli: 0,
            burst_window: 0,
            burst_milli: 0,
            lat_min: 1,
            lat_max: 1,
            partition_period: 0,
            partition_len: 0,
            walk_retries: 6,
            route_retries: 6,
            fallback_after: 2,
            flood_retries: 4,
            type2_retries: 4,
            seed: 0xd5ef_0001,
        }
    }

    /// True when no fault model can ever fire (loss, bursts and
    /// partitions disabled, unit latency). Retry budgets are irrelevant
    /// at zero faults: timeouts are sized to fire only after a loss.
    pub fn is_zero(&self) -> bool {
        self.loss_milli == 0
            && (self.burst_window == 0 || self.burst_milli == 0)
            && (self.partition_period == 0 || self.partition_len == 0)
            && self.lat_hi() == 1
    }

    /// Effective minimum latency (≥ 1 round; a 0 in the spec means
    /// "default").
    #[inline]
    pub fn lat_lo(&self) -> u32 {
        self.lat_min.max(1)
    }

    /// Effective maximum latency (≥ [`Self::lat_lo`]).
    #[inline]
    pub fn lat_hi(&self) -> u32 {
        self.lat_max.max(self.lat_lo())
    }

    /// Set Bernoulli loss probability (per-1000).
    pub fn with_loss(mut self, milli: u32) -> Self {
        self.loss_milli = milli;
        self
    }

    /// Set the burst model: window length in rounds and per-(link,
    /// window) bad probability (per-1000).
    pub fn with_burst(mut self, window: u32, milli: u32) -> Self {
        self.burst_window = window;
        self.burst_milli = milli;
        self
    }

    /// Set the per-link latency band in rounds (clamped to ≥ 1).
    pub fn with_latency(mut self, min: u32, max: u32) -> Self {
        self.lat_min = min;
        self.lat_max = max;
        self
    }

    /// Set the partition schedule: up for `len` rounds at the start of
    /// every `period` rounds.
    pub fn with_partition(mut self, period: u32, len: u32) -> Self {
        self.partition_period = period;
        self.partition_len = len;
        self
    }

    /// Set re-initiation budgets for walks and routes.
    pub fn with_retries(mut self, walk: u32, route: u32) -> Self {
        self.walk_retries = walk;
        self.route_retries = route;
        self
    }

    /// Set the lost-walk threshold past which `dex-core` heals via a
    /// flood-discovered fallback candidate.
    pub fn with_fallback(mut self, after: u32) -> Self {
        self.fallback_after = after;
        self
    }

    /// Set the re-flood budget for flood/convergecast operations.
    pub fn with_flood_retries(mut self, retries: u32) -> Self {
        self.flood_retries = retries;
        self
    }

    /// Set the re-initiation budget for type-2 coordination.
    pub fn with_type2_retries(mut self, retries: u32) -> Self {
        self.type2_retries = retries;
        self
    }

    /// Set the fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::zero()
    }
}

/// Counters for everything the fault layer did to a run. Additive:
/// adapters keep one per network and [`FaultStats::merge`] run reports
/// into it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Sends attempted (every hop of every token, all generations).
    pub sent: u64,
    /// Sends that reached their destination inbox.
    pub delivered: u64,
    /// Sends dropped by the Bernoulli model.
    pub lost_random: u64,
    /// Sends dropped inside a per-link bad window.
    pub lost_burst: u64,
    /// Sends dropped across an active partition cut.
    pub lost_partition: u64,
    /// Timeouts that fired on a still-open operation.
    pub timeouts: u64,
    /// Operations re-initiated after a timeout.
    pub reinitiations: u64,
    /// Walk operations abandoned after exhausting their retry budget.
    pub walks_lost: u64,
    /// Route operations abandoned after exhausting their retry budget.
    pub routes_lost: u64,
    /// Heal steps that fell back to a flood-discovered candidate after
    /// repeated walk loss (maintained by `dex-core`).
    pub heal_fallbacks: u64,
    /// DHT operations abandoned because routing failed terminally
    /// (maintained by `dex-core`).
    pub dht_abandoned: u64,
    /// Re-floods launched after a flood generation timed out incomplete.
    pub flood_retries: u64,
    /// Floods that closed on a partial count after exhausting their
    /// re-flood budget (graceful degradation: partial count + best
    /// partial witness).
    pub floods_partial: u64,
    /// Type-2 coordination attempts rolled back with no state mutated
    /// (maintained by `dex-core`).
    pub type2_rollbacks: u64,
    /// Type-2 operations re-initiated after a rollback (maintained by
    /// `dex-core`).
    pub type2_reinitiations: u64,
    /// Wave-engine plans invalidated and re-planned while a non-zero
    /// fault spec was installed (maintained by `dex-core`).
    pub wave_replans: u64,
}

impl FaultStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.lost_random += other.lost_random;
        self.lost_burst += other.lost_burst;
        self.lost_partition += other.lost_partition;
        self.timeouts += other.timeouts;
        self.reinitiations += other.reinitiations;
        self.walks_lost += other.walks_lost;
        self.routes_lost += other.routes_lost;
        self.heal_fallbacks += other.heal_fallbacks;
        self.dht_abandoned += other.dht_abandoned;
        self.flood_retries += other.flood_retries;
        self.floods_partial += other.floods_partial;
        self.type2_rollbacks += other.type2_rollbacks;
        self.type2_reinitiations += other.type2_reinitiations;
        self.wave_replans += other.wave_replans;
    }

    /// Fraction of sends delivered (1.0 when nothing was sent).
    pub fn delivery_rate(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }
}

/// What happened to one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Delivered after `latency` rounds.
    Deliver {
        /// Link latency in rounds (≥ 1).
        latency: u32,
    },
    /// Dropped by the Bernoulli model.
    LostRandom,
    /// Dropped inside a per-link bad window.
    LostBurst,
    /// Dropped across an active partition cut.
    LostPartition,
}

/// Is the partition up at `round`?
#[inline]
pub fn partition_active(spec: &FaultSpec, round: u64) -> bool {
    spec.partition_period > 0
        && spec.partition_len > 0
        && round % (spec.partition_period as u64) < spec.partition_len as u64
}

/// Which side of the partition a node is on (seeded hash of the id, so
/// the split is stable across the whole run and across thread counts).
#[inline]
pub fn partition_side(spec: &FaultSpec, id: u64) -> bool {
    fold(spec.seed ^ SALT_PART, &[id]) & 1 == 1
}

/// Deterministic per-link latency in rounds, constant over the run and
/// symmetric (keyed on the unordered id pair).
#[inline]
pub fn link_latency(spec: &FaultSpec, a: u64, b: u64) -> u32 {
    let lo = spec.lat_lo();
    let hi = spec.lat_hi();
    if hi == lo {
        return lo;
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    lo + (fold(spec.seed ^ SALT_LAT, &[x, y]) % (hi - lo + 1) as u64) as u32
}

/// Is the (unordered) link inside a bad burst window at `round`?
#[inline]
pub fn burst_bad(spec: &FaultSpec, a: u64, b: u64, round: u64) -> bool {
    if spec.burst_window == 0 || spec.burst_milli == 0 {
        return false;
    }
    let (x, y) = if a <= b { (a, b) } else { (b, a) };
    let window = round / spec.burst_window as u64;
    fold(spec.seed ^ SALT_BURST, &[x, y, window]) % 1000 < spec.burst_milli as u64
}

/// Decide the fate of one send, as a pure function of the spec and the
/// send's identity — never of arrival order or wall-clock. Precedence:
/// partition cut, then burst window, then Bernoulli loss.
///
/// `op_key` names the operation (so two ops between the same nodes in
/// the same round draw independently) and `send_tag` names the send
/// within the operation (retry generation and hop index), so every
/// physical send gets its own Bernoulli draw.
pub fn send_fate(
    spec: &FaultSpec,
    src: u64,
    dst: u64,
    round: u64,
    op_key: u64,
    send_tag: u64,
) -> SendFate {
    if partition_active(spec, round) && partition_side(spec, src) != partition_side(spec, dst) {
        return SendFate::LostPartition;
    }
    if burst_bad(spec, src, dst, round) {
        return SendFate::LostBurst;
    }
    if spec.loss_milli > 0
        && fold(spec.seed ^ SALT_LOSS, &[src, dst, round, op_key, send_tag]) % 1000
            < spec.loss_milli as u64
    {
        return SendFate::LostRandom;
    }
    SendFate::Deliver {
        latency: link_latency(spec, src, dst),
    }
}

/// One random-walk search to schedule (same inputs as
/// [`crate::tokens::random_walk_search`], plus an op key for the fault
/// hashes).
#[derive(Debug, Clone)]
pub struct WalkOp {
    /// Start node (must be in the graph).
    pub start: NodeId,
    /// Hop budget.
    pub max_len: u64,
    /// Node never stepped onto.
    pub exclude: Option<NodeId>,
    /// Stable operation identity for fault draws (derive from protocol
    /// state — step number, node id — never from batch position).
    pub op_key: u64,
}

/// One token to route along a prescribed node path.
#[derive(Debug, Clone)]
pub struct RouteOp {
    /// Nodes visited in order, endpoints included (consecutive entries
    /// must be adjacent; a single-entry path delivers immediately).
    pub path: Vec<NodeId>,
    /// Route back along the reversed path after reaching the end (a DHT
    /// lookup's request + reply).
    pub round_trip: bool,
    /// Stable operation identity for fault draws.
    pub op_key: u64,
}

/// Terminal status of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpStatus {
    /// Walk reached an accepting node.
    Hit,
    /// Walk exhausted its hop budget (or got stuck) without a hit — a
    /// legitimate protocol outcome, not a fault.
    Miss,
    /// Route token reached the end of its path.
    Delivered,
    /// Abandoned: every retry generation lost its token.
    Lost,
}

/// Outcome of one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpResult {
    /// Accepting node (walks that hit).
    pub hit: Option<NodeId>,
    /// How the operation closed.
    pub status: OpStatus,
    /// Hops taken by the generation that closed the op.
    pub hops: u64,
    /// Sends attempted across all generations of this op.
    pub sends: u64,
    /// Round at which the operation closed.
    pub close_round: u64,
    /// Re-initiations consumed (0 = first generation closed it).
    pub retries: u32,
}

/// Whole-run accounting for one engine invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Fault-layer counters for the run.
    pub stats: FaultStats,
    /// Last round in which any operation closed (0 for an empty run) —
    /// the number of synchronous rounds the batch occupied.
    pub makespan: u64,
    /// Total sends (= `stats.sent`; the CONGEST message charge).
    pub messages: u64,
}

/// Adjacency view consulted by the walk engine's hop picks. The base
/// graph implements it directly; `dex-core`'s wave planner implements it
/// over a copy-on-write overlay so faulted delete walks can be planned
/// against pending in-batch edits without mutating the real graph. Node
/// identity (`id_of_slot`) always comes from the base graph — a view may
/// only re-route adjacency rows, never rename or add slots.
pub trait AdjView: Sync {
    /// Adjacency multiset of `slot` under this view.
    fn view_neighbor_slots(&self, slot: u32) -> &[u32];
}

impl AdjView for MultiGraph {
    #[inline]
    fn view_neighbor_slots(&self, slot: u32) -> &[u32] {
        self.neighbor_slots(slot)
    }
}

// ---------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------

/// Timers carry this pseudo-slot so they sort after every delivery of
/// the same round (real slots are always < `u32::MAX`).
const TIMER_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// Token `tok` arrives at `slot`.
    Deliver(u32),
    /// Timeout for op `op`, generation `retry`.
    Timer { op: u32, retry: u32 },
}

/// Heap key: `(round, slot, seq)` — `seq` is unique, so the order is
/// total and `kind` never breaks a tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    round: u64,
    slot: u32,
    seq: u64,
    kind: EvKind,
}

#[derive(Debug)]
enum MetaKind {
    Walk {
        start_slot: u32,
        max_len: u64,
        exclude_slot: Option<u32>,
    },
    Route {
        /// Flattened slot path (round trips already unrolled).
        path: Vec<u32>,
    },
}

#[derive(Debug)]
struct OpMeta {
    key: u64,
    /// Base timeout in rounds: strictly more than the longest possible
    /// in-flight lifetime of one token generation, so a firing timer
    /// proves the token was lost (and zero-fault runs never retry).
    timeout: u64,
    kind: MetaKind,
}

#[derive(Debug)]
struct OpState {
    retry: u32,
    done: bool,
    sends: u64,
    result_hops: u64,
    hit: Option<NodeId>,
    status: OpStatus,
    close_round: u64,
}

#[derive(Debug)]
enum TokBody {
    Walk { rng: StdRng, hops: u64 },
    Route { pos: u32 },
}

#[derive(Debug)]
struct Token {
    op: u32,
    retry: u32,
    body: TokBody,
}

/// What one delivered token decided to do (computed in the parallel
/// pass, committed sequentially).
#[derive(Debug)]
enum Intent {
    /// Not yet decided (placeholder before the parallel pass).
    Undecided,
    /// Forward to `dst` (a slot); the send's fate is already drawn.
    Send { dst: u32, fate: SendFate },
    /// Walk accepted this node.
    Hit(NodeId),
    /// Walk exhausted its budget or got stuck.
    Miss,
    /// Route reached the end of its path.
    Done,
}

struct Work {
    /// Arena index the token came from (returned there on `Send`).
    tok_idx: u32,
    /// Slot the token was delivered to (the event's slot key).
    arrival: u32,
    tok: Token,
    intent: Intent,
}

/// Decide what a token delivered at `slot` in `round` does next. Pure:
/// reads the graph, the spec and the op metadata, mutates only its own
/// token (RNG, hop/pos counters).
#[allow(clippy::too_many_arguments)]
fn decide<V: AdjView + ?Sized, A: Fn(NodeId) -> bool + Sync>(
    g: &MultiGraph,
    view: &V,
    spec: &FaultSpec,
    metas: &[OpMeta],
    accept: &A,
    round: u64,
    slot: u32,
    w: &mut Work,
) {
    let meta = &metas[w.tok.op as usize];
    w.intent = match (&meta.kind, &mut w.tok.body) {
        (
            MetaKind::Walk {
                max_len,
                exclude_slot,
                ..
            },
            TokBody::Walk { rng, hops },
        ) => {
            // Mirrors `random_walk_search` exactly: the start node is not
            // tested, the accept test runs after each hop, the budget
            // gate runs before each pick, and the pick is a reservoir
            // pass over the adjacency multiset skipping the excluded
            // node (which consumes no draw).
            if *hops > 0 && accept(g.id_of_slot(slot)) {
                Intent::Hit(g.id_of_slot(slot))
            } else if *hops >= *max_len {
                Intent::Miss
            } else {
                let mut choice: Option<u32> = None;
                let mut seen = 0usize;
                for &v in view.view_neighbor_slots(slot) {
                    if Some(v) == *exclude_slot {
                        continue;
                    }
                    seen += 1;
                    if rng.random_range(0..seen) == 0 {
                        choice = Some(v);
                    }
                }
                match choice {
                    None => Intent::Miss,
                    Some(next) => {
                        *hops += 1;
                        let tag = ((w.tok.retry as u64) << 32) | *hops;
                        let fate = send_fate(
                            spec,
                            g.id_of_slot(slot).0,
                            g.id_of_slot(next).0,
                            round,
                            meta.key,
                            tag,
                        );
                        Intent::Send { dst: next, fate }
                    }
                }
            }
        }
        (MetaKind::Route { path }, TokBody::Route { pos }) => {
            if *pos as usize + 1 >= path.len() {
                Intent::Done
            } else {
                let next = path[*pos as usize + 1];
                *pos += 1;
                let tag = ((w.tok.retry as u64) << 32) | *pos as u64;
                let fate = send_fate(
                    spec,
                    g.id_of_slot(slot).0,
                    g.id_of_slot(next).0,
                    round,
                    meta.key,
                    tag,
                );
                Intent::Send { dst: next, fate }
            }
        }
        _ => unreachable!("token body does not match op kind"),
    };
}

/// The shared engine: runs a batch of operations (walk and/or route
/// metadata) to completion and reports per-op outcomes plus run-level
/// fault stats. `mk_rng` builds the RNG for a walk op's generation
/// (op index, retry); route ops never call it.
#[allow(clippy::too_many_arguments)]
fn run_engine<V, A, M>(
    g: &MultiGraph,
    view: &V,
    spec: &FaultSpec,
    metas: Vec<OpMeta>,
    accept: A,
    mut mk_rng: M,
    threads: usize,
    mut traces: Option<&mut Vec<Vec<u32>>>,
) -> (Vec<OpResult>, RunReport)
where
    V: AdjView + ?Sized,
    A: Fn(NodeId) -> bool + Sync,
    M: FnMut(usize, u32) -> StdRng,
{
    let n_ops = metas.len();
    if let Some(tr) = traces.as_deref_mut() {
        tr.clear();
        tr.resize(n_ops, Vec::new());
    }
    let mut states: Vec<OpState> = Vec::with_capacity(n_ops);
    let mut arena: Vec<Option<Token>> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut stats = FaultStats::default();
    let mut makespan = 0u64;

    // Launch a fresh token generation for op `i` at `round`. The launch
    // "delivery" to the start slot is local state, not a message — no
    // send is charged for it.
    macro_rules! launch {
        ($i:expr, $retry:expr, $round:expr, $mk:expr) => {{
            let i: usize = $i;
            let retry: u32 = $retry;
            let round: u64 = $round;
            let (start, body) = match &metas[i].kind {
                MetaKind::Walk { start_slot, .. } => (
                    *start_slot,
                    TokBody::Walk {
                        rng: $mk(i, retry),
                        hops: 0,
                    },
                ),
                MetaKind::Route { path } => (path[0], TokBody::Route { pos: 0 }),
            };
            let tok = Token {
                op: i as u32,
                retry,
                body,
            };
            let idx = match free.pop() {
                Some(idx) => {
                    arena[idx as usize] = Some(tok);
                    idx
                }
                None => {
                    arena.push(Some(tok));
                    (arena.len() - 1) as u32
                }
            };
            heap.push(Reverse(Event {
                round,
                slot: start,
                seq,
                kind: EvKind::Deliver(idx),
            }));
            seq += 1;
            heap.push(Reverse(Event {
                round: round + (metas[i].timeout << retry.min(3)),
                slot: TIMER_SLOT,
                seq,
                kind: EvKind::Timer {
                    op: i as u32,
                    retry,
                },
            }));
            seq += 1;
        }};
    }

    for i in 0..n_ops {
        states.push(OpState {
            retry: 0,
            done: false,
            sends: 0,
            result_hops: 0,
            hit: None,
            status: OpStatus::Lost,
            close_round: 0,
        });
        launch!(i, 0, 0, mk_rng);
    }

    let mut open = n_ops;
    let mut work: Vec<Work> = Vec::new();
    let mut timers: Vec<Event> = Vec::new();

    while open > 0 {
        let round = heap
            .peek()
            .expect("open operations but an empty event heap")
            .0
            .round;

        // Phase A: drain every event of this round, in (slot, seq)
        // order. Deliveries of closed ops are freed on the spot; the
        // rest become the round's work list. Timers are deferred to
        // phase C.
        work.clear();
        timers.clear();
        while heap.peek().is_some_and(|e| e.0.round == round) {
            let ev = heap.pop().expect("peeked event vanished").0;
            match ev.kind {
                EvKind::Deliver(idx) => {
                    let tok = arena[idx as usize]
                        .take()
                        .expect("delivery for a freed token");
                    if states[tok.op as usize].done {
                        // A slow token of an earlier generation arriving
                        // after its op already closed: drop it.
                        free.push(idx);
                    } else {
                        // Every decided arrival reads the protocol state
                        // of its slot, so it belongs to the op's trace
                        // (the wave planner turns traces into touch
                        // sets).
                        if let Some(tr) = traces.as_deref_mut() {
                            tr[tok.op as usize].push(ev.slot);
                        }
                        work.push(Work {
                            tok_idx: idx,
                            arrival: ev.slot,
                            tok,
                            intent: Intent::Undecided,
                        });
                    }
                }
                EvKind::Timer { .. } => timers.push(ev),
            }
        }

        // Phase B: decide all deliveries in parallel (fixed chunk
        // boundaries; every decision touches only its own Work entry),
        // then commit sequentially in heap order.
        let metas_ref = &metas;
        let accept_ref = &accept;
        dex_exec::for_chunks_mut(&mut work, threads, |_, chunk| {
            for w in chunk {
                let arrival = w.arrival;
                decide(g, view, spec, metas_ref, accept_ref, round, arrival, w);
            }
        });

        for w in work.drain(..) {
            let op = w.tok.op as usize;
            let st = &mut states[op];
            if st.done {
                // Closed earlier in this same commit pass (e.g. an
                // older generation hit first): drop the token.
                free.push(w.tok_idx);
                continue;
            }
            match w.intent {
                Intent::Undecided => unreachable!("undecided work item"),
                Intent::Hit(id) => {
                    st.done = true;
                    st.hit = Some(id);
                    st.status = OpStatus::Hit;
                    st.close_round = round;
                    st.result_hops = match &w.tok.body {
                        TokBody::Walk { hops, .. } => *hops,
                        TokBody::Route { pos } => *pos as u64,
                    };
                    st.retry = w.tok.retry;
                    makespan = makespan.max(round);
                    open -= 1;
                    free.push(w.tok_idx);
                }
                Intent::Miss => {
                    st.done = true;
                    st.status = OpStatus::Miss;
                    st.close_round = round;
                    st.result_hops = match &w.tok.body {
                        TokBody::Walk { hops, .. } => *hops,
                        TokBody::Route { pos } => *pos as u64,
                    };
                    st.retry = w.tok.retry;
                    makespan = makespan.max(round);
                    open -= 1;
                    free.push(w.tok_idx);
                }
                Intent::Done => {
                    st.done = true;
                    st.status = OpStatus::Delivered;
                    st.close_round = round;
                    st.result_hops = match &w.tok.body {
                        TokBody::Walk { hops, .. } => *hops,
                        TokBody::Route { pos } => *pos as u64,
                    };
                    st.retry = w.tok.retry;
                    makespan = makespan.max(round);
                    open -= 1;
                    free.push(w.tok_idx);
                }
                Intent::Send { dst, fate } => {
                    stats.sent += 1;
                    st.sends += 1;
                    match fate {
                        SendFate::Deliver { latency } => {
                            stats.delivered += 1;
                            arena[w.tok_idx as usize] = Some(w.tok);
                            heap.push(Reverse(Event {
                                round: round + latency as u64,
                                slot: dst,
                                seq,
                                kind: EvKind::Deliver(w.tok_idx),
                            }));
                            seq += 1;
                        }
                        SendFate::LostRandom => {
                            stats.lost_random += 1;
                            free.push(w.tok_idx);
                        }
                        SendFate::LostBurst => {
                            stats.lost_burst += 1;
                            free.push(w.tok_idx);
                        }
                        SendFate::LostPartition => {
                            stats.lost_partition += 1;
                            free.push(w.tok_idx);
                        }
                    }
                }
            }
        }

        // Phase C: timers, in the order they were drained. A timer for
        // a closed op or a superseded generation is stale; otherwise
        // the token of that generation was provably lost (the timeout
        // exceeds any in-flight lifetime), so re-initiate or abandon.
        for ev in timers.drain(..) {
            let EvKind::Timer { op, retry } = ev.kind else {
                unreachable!("non-timer event deferred to phase C");
            };
            let opi = op as usize;
            if states[opi].done || states[opi].retry != retry {
                continue;
            }
            stats.timeouts += 1;
            let budget = match &metas[opi].kind {
                MetaKind::Walk { .. } => spec.walk_retries,
                MetaKind::Route { .. } => spec.route_retries,
            };
            if retry >= budget {
                let st = &mut states[opi];
                st.done = true;
                st.status = OpStatus::Lost;
                st.close_round = round;
                st.retry = retry;
                makespan = makespan.max(round);
                open -= 1;
                match &metas[opi].kind {
                    MetaKind::Walk { .. } => stats.walks_lost += 1,
                    MetaKind::Route { .. } => stats.routes_lost += 1,
                }
            } else {
                stats.reinitiations += 1;
                states[opi].retry = retry + 1;
                launch!(opi, retry + 1, round, mk_rng);
            }
        }
    }

    let results: Vec<OpResult> = states
        .iter()
        .map(|st| OpResult {
            hit: st.hit,
            status: st.status,
            hops: st.result_hops,
            sends: st.sends,
            close_round: st.close_round,
            retries: st.retry,
        })
        .collect();
    let report = RunReport {
        stats,
        makespan,
        messages: stats.sent,
    };
    (results, report)
}

/// Run a batch of random-walk searches on an actual message schedule.
///
/// `accept` is the membership test (pure, consulted at every delivered
/// hop except the start node); `mk_rng` builds the RNG for op `i`'s
/// generation `retry` — generation 0 must use exactly the stream the
/// centralized walk would use, so a zero [`FaultSpec`] reproduces
/// [`crate::tokens::random_walk_search`] bit-for-bit (same hit, same
/// hops, `makespan == hops` for a single op). Delivery decisions fan
/// over `threads` workers; results are thread-count invariant.
pub fn run_walks<A, M>(
    g: &MultiGraph,
    spec: &FaultSpec,
    ops: &[WalkOp],
    accept: A,
    mk_rng: M,
    threads: usize,
) -> (Vec<OpResult>, RunReport)
where
    A: Fn(NodeId) -> bool + Sync,
    M: FnMut(usize, u32) -> StdRng,
{
    run_walks_traced(g, g, spec, ops, accept, mk_rng, threads, None)
}

/// [`run_walks`] with two extensions used by `dex-core`'s wave planner:
/// hops pick from an [`AdjView`] (so pending in-batch edits can overlay
/// the base graph), and when `traces` is given, each op's delivered
/// arrival slots (every slot whose state the walk read, all generations,
/// start included) are collected into it — the planner's touch sets.
#[allow(clippy::too_many_arguments)]
pub fn run_walks_traced<V, A, M>(
    g: &MultiGraph,
    view: &V,
    spec: &FaultSpec,
    ops: &[WalkOp],
    accept: A,
    mk_rng: M,
    threads: usize,
    traces: Option<&mut Vec<Vec<u32>>>,
) -> (Vec<OpResult>, RunReport)
where
    V: AdjView + ?Sized,
    A: Fn(NodeId) -> bool + Sync,
    M: FnMut(usize, u32) -> StdRng,
{
    let metas: Vec<OpMeta> = ops
        .iter()
        .map(|op| {
            let start_slot = g
                .slot_of(op.start)
                .unwrap_or_else(|| panic!("walk start {} missing", op.start));
            let exclude_slot = op.exclude.and_then(|u| g.slot_of(u));
            OpMeta {
                key: op.op_key,
                timeout: (op.max_len + 2) * spec.lat_hi() as u64 + 1,
                kind: MetaKind::Walk {
                    start_slot,
                    max_len: op.max_len,
                    exclude_slot,
                },
            }
        })
        .collect();
    run_engine(g, view, spec, metas, accept, mk_rng, threads, traces)
}

/// Run a batch of path routes on an actual message schedule. Round
/// trips are unrolled (the reply retraces the request path), so one op
/// models a DHT lookup's request + reply. Route ops carry no RNG.
pub fn run_routes(
    g: &MultiGraph,
    spec: &FaultSpec,
    ops: &[RouteOp],
    threads: usize,
) -> (Vec<OpResult>, RunReport) {
    let metas: Vec<OpMeta> = ops
        .iter()
        .map(|op| {
            let mut slots: Vec<u32> = op
                .path
                .iter()
                .map(|&u| {
                    g.slot_of(u)
                        .unwrap_or_else(|| panic!("route node {u} missing"))
                })
                .collect();
            assert!(!slots.is_empty(), "empty route path");
            if op.round_trip && slots.len() > 1 {
                let back: Vec<u32> = slots[..slots.len() - 1].iter().rev().copied().collect();
                slots.extend(back);
            }
            OpMeta {
                key: op.op_key,
                timeout: (slots.len() as u64 + 2) * spec.lat_hi() as u64 + 1,
                kind: MetaKind::Route { path: slots },
            }
        })
        .collect();
    run_engine(
        g,
        g,
        spec,
        metas,
        |_| false,
        |_, _| StdRng::seed_from_u64(0),
        threads,
        None,
    )
}

// ---------------------------------------------------------------------
// Message-scheduled floods
// ---------------------------------------------------------------------

/// Outcome of a message-scheduled flood-aggregate ([`run_flood`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodOutcome {
    /// Nodes whose reports reached the initiator. Equals the component
    /// size exactly when `complete`; a partial count otherwise.
    pub n: usize,
    /// Reported nodes satisfying the predicate.
    pub matching: usize,
    /// Best reported witness: the reported matching node minimizing
    /// (flood-tree depth, node id). With zero faults this is exactly the
    /// centralized flood's (BFS distance, id) witness.
    pub witness: Option<NodeId>,
    /// Whether the count covers the whole component (every node reached
    /// and every convergecast report delivered before the initiator's
    /// timeout).
    pub complete: bool,
    /// Re-floods consumed (0 = the first generation completed).
    pub retries: u32,
    /// Round at which the initiator closed the flood (== the run's
    /// makespan; `2·ecc(root)` with zero faults).
    pub close_round: u64,
}

/// Broadcast delivery event for [`run_flood`]. Ordered by
/// `(round, slot, seq)` — `seq` is unique, so the trailing payload
/// fields never decide a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FloodEv {
    round: u64,
    slot: u32,
    seq: u64,
    /// Sender slot (`UNSEEN_SLOT` for the initiator's local launch).
    from: u32,
    /// Hop depth the token carries.
    depth: u32,
}

/// Sentinel for "no slot" (initiator launch / no parent). Real slots are
/// always `< u32::MAX` (the timer pseudo-slot convention).
const UNSEEN_SLOT: u32 = u32::MAX;

/// Best `(count, matching, witness)` convergecast seen so far, retained
/// across flood generations so an exhausted retry budget can still
/// report its richest partial evidence.
type PartialBest = (u64, u64, Option<(u32, NodeId)>);

/// One forward whose fate is still to be drawn (fates fan over
/// [`dex_exec::for_chunks_mut`]; tags are assigned sequentially first, so
/// the draws are independent of thread count).
struct PendSend {
    src: u32,
    dst: u32,
    depth: u32,
    tag: u64,
    fate: SendFate,
}

/// Run `flood_count_with`'s broadcast + convergecast on an actual
/// message schedule: every first-receipt forward and every convergecast
/// report is a send subject to [`send_fate`].
///
/// Protocol: the initiator floods; each node forwards on first receipt
/// (to all adjacency entries except the one it received on) and, once
/// every child subtree below it has reported, sends one aggregated
/// report (count, matching count, best witness) to its flood-tree
/// parent. The initiator's timeout is sized from its eccentricity bound
/// so that with zero faults the flood always completes first — a firing
/// timer proves loss. An incomplete generation (some node unreached or
/// some report lost/late) is re-flooded up to `retries` times with
/// deterministic exponential backoff; when the budget exhausts, the
/// initiator settles for the best partial count and witness seen
/// (graceful degradation, never a hang).
///
/// With a zero [`FaultSpec`] the outcome and charges reproduce the
/// centralized [`crate::flood::flood_count_with`] exactly: same `n`,
/// `matching` and witness, `2·ecc(root)` rounds, broadcast degree-sum
/// plus `n − 1` convergecast messages.
pub fn run_flood<P: Fn(NodeId) -> bool>(
    g: &MultiGraph,
    spec: &FaultSpec,
    root: NodeId,
    pred: P,
    op_key: u64,
    retries: u32,
    threads: usize,
) -> (FloodOutcome, RunReport) {
    let root_slot = g
        .slot_of(root)
        .unwrap_or_else(|| panic!("flood root {root} missing"));
    let bound = g.slot_bound();

    // Ground truth (the initiator's eccentricity bound sizes the
    // timeout; the component size is the completion check the per-hop
    // acks implement in the real protocol).
    let (truth_n, ecc) = {
        let mut dist: Vec<u32> = vec![UNSEEN_SLOT; bound];
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        dist[root_slot as usize] = 0;
        queue.push_back(root_slot);
        let mut n = 0u64;
        let mut ecc = 0u32;
        while let Some(u) = queue.pop_front() {
            n += 1;
            ecc = ecc.max(dist[u as usize]);
            for &v in g.neighbor_slots(u) {
                if dist[v as usize] == UNSEEN_SLOT {
                    dist[v as usize] = dist[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        (n, ecc)
    };

    // Strictly more than the longest possible in-flight lifetime of a
    // zero-fault generation (broadcast ≤ ecc hops + convergecast ≤ ecc
    // hops, each ≤ lat_hi rounds), so a firing timer proves loss.
    let t0 = (2 * ecc as u64 + 2) * spec.lat_hi() as u64 + 1;

    let mut stats = FaultStats::default();
    let mut seq = 0u64;
    let mut cur_round = 0u64;
    let mut best: Option<PartialBest> = None;

    let mut dist: Vec<u32> = Vec::new();
    let mut parent: Vec<u32> = Vec::new();
    let mut arrival: Vec<u64> = Vec::new();
    let mut acc_cnt: Vec<u64> = Vec::new();
    let mut acc_mat: Vec<u64> = Vec::new();
    let mut acc_wit: Vec<Option<(u32, NodeId)>> = Vec::new();
    let mut ready: Vec<u64> = Vec::new();
    let mut heap: BinaryHeap<Reverse<FloodEv>> = BinaryHeap::new();
    let mut pend: Vec<PendSend> = Vec::new();

    for gen in 0..=retries {
        let launch = cur_round;
        let timer = launch + (t0 << gen.min(3));
        let mut snd = 0u64;

        dist.clear();
        dist.resize(bound, UNSEEN_SLOT);
        parent.clear();
        parent.resize(bound, UNSEEN_SLOT);
        arrival.clear();
        arrival.resize(bound, 0);
        heap.clear();
        heap.push(Reverse(FloodEv {
            round: launch,
            slot: root_slot,
            seq,
            from: UNSEEN_SLOT,
            depth: 0,
        }));
        seq += 1;

        // Broadcast: per-round frontier expansion. Arrivals after the
        // initiator's timeout belong to a closed generation and are
        // dropped (they were charged at send time).
        while let Some(&Reverse(head)) = heap.peek() {
            let round = head.round;
            if round > timer {
                break;
            }
            pend.clear();
            while heap.peek().is_some_and(|e| e.0.round == round) {
                let ev = heap.pop().expect("peeked event vanished").0;
                if dist[ev.slot as usize] != UNSEEN_SLOT {
                    // Duplicate receipt: dropped, no forward.
                    continue;
                }
                dist[ev.slot as usize] = ev.depth;
                parent[ev.slot as usize] = ev.from;
                arrival[ev.slot as usize] = round;
                let mut skipped_parent = false;
                for &v in g.neighbor_slots(ev.slot) {
                    if !skipped_parent && ev.from != UNSEEN_SLOT && v == ev.from {
                        // One adjacency entry leads back to the sender;
                        // parallel edges each still carry a copy.
                        skipped_parent = true;
                        continue;
                    }
                    pend.push(PendSend {
                        src: ev.slot,
                        dst: v,
                        depth: ev.depth + 1,
                        tag: ((gen as u64) << 32) | snd,
                        fate: SendFate::LostRandom,
                    });
                    snd += 1;
                }
            }
            dex_exec::for_chunks_mut(&mut pend, threads, |_, chunk| {
                for p in chunk {
                    p.fate = send_fate(
                        spec,
                        g.id_of_slot(p.src).0,
                        g.id_of_slot(p.dst).0,
                        round,
                        op_key,
                        p.tag,
                    );
                }
            });
            for p in &pend {
                stats.sent += 1;
                match p.fate {
                    SendFate::Deliver { latency } => {
                        stats.delivered += 1;
                        heap.push(Reverse(FloodEv {
                            round: round + latency as u64,
                            slot: p.dst,
                            seq,
                            from: p.src,
                            depth: p.depth,
                        }));
                        seq += 1;
                    }
                    SendFate::LostRandom => stats.lost_random += 1,
                    SendFate::LostBurst => stats.lost_burst += 1,
                    SendFate::LostPartition => stats.lost_partition += 1,
                }
            }
        }

        // Convergecast: children before parents (a child's first receipt
        // is strictly later than its parent's), each report one send. A
        // lost or post-timeout report drops its whole aggregated
        // subtree.
        acc_cnt.clear();
        acc_cnt.resize(bound, 0);
        acc_mat.clear();
        acc_mat.resize(bound, 0);
        acc_wit.clear();
        acc_wit.resize(bound, None);
        ready.clear();
        ready.resize(bound, 0);
        let mut reached: Vec<u32> = (0..bound as u32)
            .filter(|&s| dist[s as usize] != UNSEEN_SLOT)
            .collect();
        reached.sort_unstable_by(|&a, &b| {
            arrival[b as usize]
                .cmp(&arrival[a as usize])
                .then(a.cmp(&b))
        });
        for &s in &reached {
            acc_cnt[s as usize] = 1;
            let id = g.id_of_slot(s);
            if pred(id) {
                acc_mat[s as usize] = 1;
                acc_wit[s as usize] = Some((dist[s as usize], id));
            }
        }
        let mut root_done = launch;
        for &s in &reached {
            if s == root_slot {
                continue;
            }
            let p = parent[s as usize];
            let send_round = arrival[s as usize].max(ready[s as usize]);
            if send_round > timer {
                continue;
            }
            let tag = ((gen as u64) << 32) | snd;
            snd += 1;
            stats.sent += 1;
            match send_fate(
                spec,
                g.id_of_slot(s).0,
                g.id_of_slot(p).0,
                send_round,
                op_key,
                tag,
            ) {
                SendFate::Deliver { latency } => {
                    stats.delivered += 1;
                    let arr = send_round + latency as u64;
                    if p == root_slot && arr > timer {
                        // Arrived after the initiator gave up.
                        continue;
                    }
                    acc_cnt[p as usize] += acc_cnt[s as usize];
                    acc_mat[p as usize] += acc_mat[s as usize];
                    if let Some(cand) = acc_wit[s as usize] {
                        if acc_wit[p as usize].is_none_or(|bw| cand < bw) {
                            acc_wit[p as usize] = Some(cand);
                        }
                    }
                    ready[p as usize] = ready[p as usize].max(arr);
                    if p == root_slot {
                        root_done = root_done.max(arr);
                    }
                }
                SendFate::LostRandom => stats.lost_random += 1,
                SendFate::LostBurst => stats.lost_burst += 1,
                SendFate::LostPartition => stats.lost_partition += 1,
            }
        }

        let got_n = acc_cnt[root_slot as usize];
        let got_mat = acc_mat[root_slot as usize];
        let got_wit = acc_wit[root_slot as usize];
        if got_n == truth_n {
            let outcome = FloodOutcome {
                n: got_n as usize,
                matching: got_mat as usize,
                witness: got_wit.map(|(_, id)| id),
                complete: true,
                retries: gen,
                close_round: root_done,
            };
            let report = RunReport {
                stats,
                makespan: root_done,
                messages: stats.sent,
            };
            return (outcome, report);
        }

        // Incomplete: the timer fires (provable loss — with zero faults
        // the flood always completes first), and the best partial result
        // across generations is retained.
        stats.timeouts += 1;
        let cand = (got_n, got_mat, got_wit);
        if best.is_none_or(|(bn, bm, _)| (got_n, got_mat) > (bn, bm)) {
            best = Some(cand);
        }
        cur_round = timer;
        if gen < retries {
            stats.flood_retries += 1;
        }
    }

    stats.floods_partial += 1;
    let (bn, bm, bw) = best.expect("at least one generation ran");
    let outcome = FloodOutcome {
        n: bn as usize,
        matching: bm as usize,
        witness: bw.map(|(_, id)| id),
        complete: false,
        retries,
        close_round: cur_round,
    };
    let report = RunReport {
        stats,
        makespan: cur_round,
        messages: stats.sent,
    };
    (outcome, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::tokens::random_walk_search;

    /// Ring of `n` nodes plus deterministic chords — connected, degree
    /// ≥ 2 everywhere, enough structure for walks to wander.
    fn test_net(n: u64) -> Network {
        let mut net = Network::new();
        for i in 0..n {
            net.adversary_add_node(NodeId(i));
        }
        for i in 0..n {
            net.adversary_add_edge(NodeId(i), NodeId((i + 1) % n));
            net.adversary_add_edge(NodeId(i), NodeId(splitmix64(i) % n));
        }
        net
    }

    fn walk_ops(n: u64, count: usize, max_len: u64) -> Vec<WalkOp> {
        (0..count)
            .map(|i| WalkOp {
                start: NodeId(splitmix64(0x5747 ^ i as u64) % n),
                max_len,
                exclude: None,
                op_key: 0x6f70_0000 + i as u64,
            })
            .collect()
    }

    fn accept_mod7(u: NodeId) -> bool {
        u.0.is_multiple_of(7)
    }

    /// Every counter — including the flood/type-2/wave additions — must
    /// survive a merge. Distinct per-field values catch a field that
    /// `merge` forgot (it would keep its pre-merge value, not the sum).
    #[test]
    fn fault_stats_merge_covers_every_field() {
        let fill = |base: u64| FaultStats {
            sent: base + 1,
            delivered: base + 2,
            lost_random: base + 3,
            lost_burst: base + 4,
            lost_partition: base + 5,
            timeouts: base + 6,
            reinitiations: base + 7,
            walks_lost: base + 8,
            routes_lost: base + 9,
            heal_fallbacks: base + 10,
            dht_abandoned: base + 11,
            flood_retries: base + 12,
            floods_partial: base + 13,
            type2_rollbacks: base + 14,
            type2_reinitiations: base + 15,
            wave_replans: base + 16,
        };
        let mut acc = FaultStats::default();
        acc.merge(&fill(100));
        assert_eq!(acc, fill(100), "a field was dropped by merge");
    }

    #[test]
    fn zero_fault_walk_matches_scalar_engine() {
        let mut net = test_net(64);
        let spec = FaultSpec::zero();
        for trial in 0..20u64 {
            let start = NodeId(splitmix64(trial) % 64);
            let exclude = (trial % 3 == 0).then(|| NodeId(splitmix64(trial ^ 1) % 64));
            let mut rng = StdRng::seed_from_u64(splitmix64(0xabc ^ trial));
            let scalar = random_walk_search(&mut net, start, 40, exclude, accept_mod7, &mut rng);
            let ops = [WalkOp {
                start,
                max_len: 40,
                exclude,
                op_key: trial,
            }];
            let (res, report) = run_walks(
                net.graph(),
                &spec,
                &ops,
                accept_mod7,
                |_, retry| {
                    assert_eq!(retry, 0, "zero faults must never retry");
                    StdRng::seed_from_u64(splitmix64(0xabc ^ trial))
                },
                2,
            );
            assert_eq!(res[0].hit, scalar.hit, "trial {trial}");
            assert_eq!(res[0].hops, scalar.hops, "trial {trial}");
            assert_eq!(res[0].sends, scalar.hops, "trial {trial}");
            assert_eq!(res[0].close_round, scalar.hops, "trial {trial}");
            assert_eq!(report.makespan, scalar.hops, "trial {trial}");
            assert_eq!(report.stats.sent, report.stats.delivered);
            assert_eq!(report.stats.reinitiations, 0);
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let net = test_net(96);
        let spec = FaultSpec::zero()
            .with_loss(300)
            .with_latency(1, 4)
            .with_burst(8, 200)
            .with_partition(40, 10)
            .with_seed(0xfa11);
        let ops = walk_ops(96, 40, 60);
        let run = |threads: usize| {
            run_walks(
                net.graph(),
                &spec,
                &ops,
                accept_mod7,
                |i, retry| StdRng::seed_from_u64(fold(0x777, &[i as u64, retry as u64])),
                threads,
            )
        };
        let (r1, rep1) = run(1);
        let (r3, rep3) = run(3);
        let (r8, rep8) = run(8);
        assert_eq!(r1, r3);
        assert_eq!(r1, r8);
        assert_eq!(rep1, rep3);
        assert_eq!(rep1, rep8);
        // The faulty schedule actually exercised the fault paths.
        assert!(rep1.stats.sent > rep1.stats.delivered);
        assert!(rep1.stats.timeouts > 0);
    }

    #[test]
    fn loss_degrades_delivery_monotonically() {
        let net = test_net(96);
        let ops = walk_ops(96, 30, 50);
        let mut prev_rate = 1.1f64;
        for loss in [0u32, 250, 500, 800] {
            let spec = FaultSpec::zero().with_loss(loss).with_seed(0x1055_f1f1);
            let (_, rep) = run_walks(
                net.graph(),
                &spec,
                &ops,
                accept_mod7,
                |i, retry| StdRng::seed_from_u64(fold(0x888, &[i as u64, retry as u64])),
                2,
            );
            let rate = rep.stats.delivery_rate();
            assert!(
                rate <= prev_rate + 0.05,
                "delivery rate should not grow with loss: {rate} after {prev_rate}"
            );
            prev_rate = rate;
            if loss == 0 {
                assert_eq!(rate, 1.0);
            }
            if loss >= 800 {
                assert!(rep.stats.walks_lost > 0, "heavy loss must abandon some ops");
                assert!(rep.stats.reinitiations > 0);
            }
        }
    }

    #[test]
    fn latency_stretches_makespan() {
        let net = test_net(32);
        // A fixed 5-hop path route at latency 3 closes at round 15.
        let path: Vec<NodeId> = (0..6).map(NodeId).collect();
        let ops = [RouteOp {
            path,
            round_trip: false,
            op_key: 9,
        }];
        let spec = FaultSpec::zero().with_latency(3, 3);
        let (res, rep) = run_routes(net.graph(), &spec, &ops, 2);
        assert_eq!(res[0].status, OpStatus::Delivered);
        assert_eq!(res[0].sends, 5);
        assert_eq!(res[0].close_round, 15);
        assert_eq!(rep.makespan, 15);
    }

    #[test]
    fn round_trip_route_retraces_path() {
        let net = test_net(32);
        let path: Vec<NodeId> = (0..4).map(NodeId).collect();
        let ops = [RouteOp {
            path,
            round_trip: true,
            op_key: 11,
        }];
        let (res, _) = run_routes(net.graph(), &FaultSpec::zero(), &ops, 1);
        assert_eq!(res[0].status, OpStatus::Delivered);
        // 3 hops out + 3 hops back.
        assert_eq!(res[0].sends, 6);
        assert_eq!(res[0].close_round, 6);
    }

    #[test]
    fn partition_blocks_then_rejoins() {
        let net = test_net(64);
        // Find an edge that crosses the partition cut.
        let spec = FaultSpec::zero()
            .with_partition(1 << 20, 12)
            .with_retries(6, 30)
            .with_seed(0xcafe);
        let g = net.graph();
        let mut cross = None;
        'outer: for i in 0..64u64 {
            let a = NodeId(i);
            let b = NodeId((i + 1) % 64);
            if partition_side(&spec, a.0) != partition_side(&spec, b.0) {
                cross = Some((a, b));
                break 'outer;
            }
        }
        let (a, b) = cross.expect("hash split leaves no crossing ring edge");
        let ops = [RouteOp {
            path: vec![a, b],
            round_trip: false,
            op_key: 3,
        }];
        let (res, rep) = run_routes(g, &spec, &ops, 2);
        // The partition is up for rounds 0..12; the op must stall, retry
        // with backoff, and complete after the rejoin.
        assert_eq!(res[0].status, OpStatus::Delivered);
        assert!(res[0].retries > 0);
        assert!(res[0].close_round >= 12, "closed at {}", res[0].close_round);
        assert!(rep.stats.lost_partition > 0);
        assert!(rep.stats.reinitiations > 0);
    }

    #[test]
    fn burst_windows_drop_whole_links() {
        let net = test_net(64);
        // Every (link, window) is bad: all sends lost, every op
        // abandoned after its retry budget — graceful degradation, no
        // hang.
        let spec = FaultSpec::zero().with_burst(16, 1000).with_retries(2, 2);
        let ops = walk_ops(64, 8, 20);
        let (res, rep) = run_walks(
            net.graph(),
            &spec,
            &ops,
            accept_mod7,
            |i, retry| StdRng::seed_from_u64(fold(0x999, &[i as u64, retry as u64])),
            2,
        );
        assert_eq!(rep.stats.delivered, 0);
        assert_eq!(rep.stats.lost_burst, rep.stats.sent);
        for r in &res {
            assert_eq!(r.status, OpStatus::Lost);
            assert_eq!(r.retries, 2);
        }
        assert_eq!(rep.stats.walks_lost, 8);
    }

    #[test]
    fn rerun_is_bit_identical() {
        let net = test_net(80);
        let spec = FaultSpec::zero().with_loss(400).with_latency(1, 3);
        let ops = walk_ops(80, 25, 40);
        let run = || {
            run_walks(
                net.graph(),
                &spec,
                &ops,
                accept_mod7,
                |i, retry| StdRng::seed_from_u64(fold(0xaaa, &[i as u64, retry as u64])),
                3,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_draws_ignore_arrival_order() {
        // send_fate is a pure function: permuting evaluation order
        // cannot change any verdict.
        let spec = FaultSpec::zero().with_loss(500).with_burst(8, 300);
        let forward: Vec<SendFate> = (0..200u64)
            .map(|i| send_fate(&spec, i % 9, (i + 1) % 9, i, i / 3, i))
            .collect();
        let backward: Vec<SendFate> = (0..200u64)
            .rev()
            .map(|i| send_fate(&spec, i % 9, (i + 1) % 9, i, i / 3, i))
            .collect();
        let backward: Vec<SendFate> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn zero_fault_flood_matches_centralized_flood() {
        use crate::flood::flood_count;
        let mut net = test_net(48);
        let spec = FaultSpec::zero();
        for trial in 0..8u64 {
            let root = NodeId(splitmix64(0xf10d ^ trial) % 48);
            let pred = |u: NodeId| u.0 % 5 == trial % 5;
            net.begin_step();
            let central = flood_count(&mut net, root, pred);
            net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
            let (out, rep) = run_flood(net.graph(), &spec, root, pred, trial, 4, 2);
            assert!(out.complete, "trial {trial}");
            assert_eq!(out.retries, 0, "zero faults must never re-flood");
            assert_eq!(out.n, central.n, "trial {trial}");
            assert_eq!(out.matching, central.matching, "trial {trial}");
            assert_eq!(out.witness, central.witness, "trial {trial}");
            assert_eq!(out.close_round, central.rounds, "trial {trial}");
            assert_eq!(rep.makespan, central.rounds, "trial {trial}");
            assert_eq!(rep.messages, central.messages, "trial {trial}");
            assert_eq!(rep.stats.sent, rep.stats.delivered);
            assert_eq!(rep.stats.timeouts, 0);
            assert_eq!(rep.stats.flood_retries, 0);
            assert_eq!(rep.stats.floods_partial, 0);
        }
    }

    #[test]
    fn flood_timeout_fires_exactly_when_all_frontier_deliveries_lost() {
        // Every (link, window) bad: the root's entire first frontier is
        // lost, nothing is ever in flight past round 0, and the only
        // thing that can close the generation is the timer — which fires
        // at exactly launch + t0 (a firing timer proves loss). With no
        // re-flood budget the initiator settles for the partial count of
        // itself alone.
        let net = test_net(32);
        let spec = FaultSpec::zero().with_burst(1 << 20, 1000);
        let root = NodeId(0);
        let (out, rep) = run_flood(net.graph(), &spec, root, |_| true, 7, 0, 2);
        assert!(!out.complete);
        assert_eq!(out.n, 1, "only the initiator is counted");
        assert_eq!(out.matching, 1);
        assert_eq!(out.witness, Some(root));
        // ecc of the ring-with-chords from node 0, recomputed here the
        // same way the engine sizes its timer.
        let g = net.graph();
        let mut dist = vec![u32::MAX; g.slot_bound()];
        let mut q = std::collections::VecDeque::new();
        let rs = g.slot_of(root).unwrap();
        dist[rs as usize] = 0;
        q.push_back(rs);
        let mut ecc = 0u32;
        while let Some(u) = q.pop_front() {
            ecc = ecc.max(dist[u as usize]);
            for &v in g.neighbor_slots(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        let t0 = (2 * ecc as u64 + 2) * spec.lat_hi() as u64 + 1;
        assert_eq!(out.close_round, t0, "timer fires exactly at launch + t0");
        assert_eq!(rep.stats.timeouts, 1);
        assert_eq!(rep.stats.floods_partial, 1);
        assert_eq!(rep.stats.flood_retries, 0);
        assert_eq!(rep.stats.delivered, 0);
        assert!(rep.stats.sent > 0, "the lost frontier was still charged");
    }

    #[test]
    fn flood_results_are_thread_count_invariant() {
        let net = test_net(72);
        let spec = FaultSpec::zero()
            .with_loss(350)
            .with_latency(1, 3)
            .with_partition(64, 12)
            .with_seed(0xf10d_fa57);
        let run = |threads: usize| {
            run_flood(
                net.graph(),
                &spec,
                NodeId(3),
                |u| u.0 % 4 == 0,
                0x77,
                3,
                threads,
            )
        };
        let a = run(1);
        let b = run(3);
        let c = run(8);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(a.1.stats.sent > a.1.stats.delivered);
    }

    #[test]
    fn flood_retry_recovers_or_degrades_gracefully() {
        let net = test_net(40);
        // Moderate loss: some generations fail; the budget either finds
        // a complete generation or settles for a partial count that
        // never exceeds the truth.
        for seed in 0..6u64 {
            let spec = FaultSpec::zero().with_loss(300).with_seed(0xbad0 + seed);
            let (out, rep) = run_flood(net.graph(), &spec, NodeId(1), |_| true, seed, 3, 2);
            assert!(out.n <= 40);
            assert!(out.matching <= out.n);
            if out.complete {
                assert_eq!(out.n, 40);
                assert_eq!(rep.stats.floods_partial, 0);
            } else {
                assert_eq!(out.retries, 3);
                assert_eq!(rep.stats.floods_partial, 1);
                assert_eq!(rep.stats.flood_retries, 3);
            }
            assert_eq!(rep.stats.flood_retries as u32, out.retries);
        }
    }

    #[test]
    fn flood_partial_count_degrades_with_loss() {
        let net = test_net(64);
        let mut prev = u64::MAX;
        for loss in [0u32, 250, 500, 800] {
            // No retry budget: one generation per loss level, so the
            // reported count directly tracks the loss rate.
            let spec = FaultSpec::zero().with_loss(loss).with_seed(0x10ad);
            let (out, _) = run_flood(net.graph(), &spec, NodeId(0), |_| true, 9, 0, 2);
            assert!(
                (out.n as u64) <= prev.saturating_add(6),
                "partial count should not grow with loss: {} after {prev}",
                out.n
            );
            prev = out.n as u64;
            if loss == 0 {
                assert!(out.complete);
                assert_eq!(out.n, 64);
            }
        }
    }

    #[test]
    fn spec_zero_detects_fault_models() {
        assert!(FaultSpec::zero().is_zero());
        assert!(!FaultSpec::zero().with_loss(1).is_zero());
        assert!(!FaultSpec::zero().with_burst(4, 100).is_zero());
        assert!(!FaultSpec::zero().with_partition(10, 2).is_zero());
        assert!(!FaultSpec::zero().with_latency(1, 2).is_zero());
        // Disabled halves keep the spec zero.
        assert!(FaultSpec::zero().with_burst(4, 0).is_zero());
        assert!(FaultSpec::zero().with_partition(0, 5).is_zero());
    }
}
