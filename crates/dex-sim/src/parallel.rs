//! Deterministic fork-join parallelism helpers — a thin facade over the
//! persistent [`dex_exec`] worker pool.
//!
//! Used by the measurement harness for embarrassingly parallel work such as
//! computing spectral gaps over hundreds of topology snapshots, or driving
//! thousands of independent random walks. Output order always equals input
//! order and results never depend on the thread count, so parallel and
//! sequential runs are interchangeable — determinism tests enforce it.
//! Workers are parked pool threads (spawned lazily at most once per
//! process), so a trial fan-out costs mailbox handoffs, not thread spawns.

use dex_graph::adjacency::MultiGraph;
use dex_graph::ids::NodeId;
use dex_graph::walks::SlotWalkJob;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parallel map preserving input order. Splits `items` into contiguous
/// chunks, one per worker; workers write into disjoint output slices, so no
/// synchronization is needed beyond the final join.
///
/// Falls back to a sequential map when `threads <= 1` or the input is
/// small.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    dex_exec::par_map(items, threads, f)
}

/// One batch-walk job: start node, walk length, and an RNG seed. Seeds are
/// carried per job (not derived from job position at run time) so a batch
/// can be split, filtered, or re-ordered without changing any endpoint.
#[derive(Debug, Clone, Copy)]
pub struct WalkJob {
    /// Start node (must be in the graph when the batch runs).
    pub start: NodeId,
    /// Number of hops.
    pub len: usize,
    /// Per-walk RNG seed.
    pub seed: u64,
}

/// Jobs per interleaving unit on the memory-level-parallel path. Fixed
/// (never derived from `threads`) so chunk boundaries — and therefore the
/// exact interleaving schedule — are thread-count invariant. The schedule
/// doesn't affect results anyway (each walk owns its RNG), but a fixed
/// split keeps the memory access pattern reproducible for profiling.
const WALK_CHUNK: usize = 1024;

/// Endpoints of a batch of independent random walks, computed in parallel
/// over `threads` workers. Walk `i` of the output corresponds to
/// `jobs[i]`; every walk derives its randomness exclusively from its own
/// `seed`, so results are identical for any thread count (a determinism
/// test enforces this).
///
/// Walks run on the graph's dense slot space: after one id→slot resolution
/// per job, each hop is two array reads and no heap allocation. Within a
/// worker, walks go through the K-way interleaved engine
/// ([`dex_graph::walks::run_interleaved`]) unless `DEX_MLP_KERNELS=0`:
/// ~K walks advance round-robin with their next rows prefetched, so
/// DRAM misses overlap instead of serializing — bit-identical endpoints
/// either way, since interleaving only permutes *when* each walk's own
/// RNG stream is consumed, never *what* it draws.
pub fn par_walk_endpoints(g: &MultiGraph, jobs: &[WalkJob], threads: usize) -> Vec<NodeId> {
    walk_endpoints_impl(g, jobs, threads, dex_graph::par::mlp_enabled())
}

/// Internal switch between the interleaved and scalar batch paths, so
/// differential tests can compare both in one process regardless of the
/// `DEX_MLP_KERNELS` environment.
fn walk_endpoints_impl(
    g: &MultiGraph,
    jobs: &[WalkJob],
    threads: usize,
    interleave: bool,
) -> Vec<NodeId> {
    if !interleave {
        return par_map(jobs, threads, |job| {
            let mut rng = StdRng::seed_from_u64(job.seed);
            let slot = g
                .slot_of(job.start)
                .unwrap_or_else(|| panic!("walk start {} not in graph", job.start));
            g.id_of_slot(g.walk_slots(slot, job.len, &mut rng))
        });
    }
    // Resolve ids to slots once up front (sequential: it's a hash probe per
    // job, cheap next to the walks), then fan WALK_CHUNK-sized runs of jobs
    // over the pool, each run driven K-way through the interleaved engine.
    let slot_jobs: Vec<SlotWalkJob> = jobs
        .iter()
        .map(|job| SlotWalkJob {
            start: g
                .slot_of(job.start)
                .unwrap_or_else(|| panic!("walk start {} not in graph", job.start)),
            len: job.len,
            seed: job.seed,
        })
        .collect();
    let k = dex_graph::par::walk_pipeline_k();
    let mut ends = vec![0u32; jobs.len()];
    dex_exec::for_chunks_state_mut(
        &mut ends,
        threads,
        WALK_CHUNK,
        || (),
        |start, chunk, ()| {
            dex_graph::walks::walk_endpoints_interleaved(
                g,
                &slot_jobs[start..start + chunk.len()],
                k,
                chunk,
            );
        },
    );
    ends.into_iter().map(|s| g.id_of_slot(s)).collect()
}

/// Number of worker threads to use by default: the executor's global
/// thread budget (`DEX_EXEC_THREADS` when set, else available
/// parallelism, clamped to [1, 16]).
pub fn default_threads() -> usize {
    dex_exec::thread_budget()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dex_graph::PCycle;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map(&items, threads, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn preserves_order_with_uneven_chunks() {
        let items: Vec<usize> = (0..17).collect();
        let out = par_map(&items, 4, |x| *x);
        assert_eq!(out, items);
    }

    #[test]
    fn default_threads_sane() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    fn batch_walks_deterministic_across_thread_counts() {
        let g = PCycle::new(101).to_multigraph();
        let jobs: Vec<WalkJob> = (0..64)
            .map(|i| WalkJob {
                start: NodeId(i % 101),
                len: 30,
                seed: 0xabcd ^ i,
            })
            .collect();
        let seq = par_walk_endpoints(&g, &jobs, 1);
        for threads in [2, 4, 16] {
            assert_eq!(
                par_walk_endpoints(&g, &jobs, threads),
                seq,
                "threads={threads}"
            );
        }
        for &u in &seq {
            assert!(g.has_node(u));
        }
    }

    #[test]
    fn interleaved_batch_is_bit_identical_to_scalar() {
        // The K-way engine must produce byte-equal endpoints to the scalar
        // per-job path at every thread count, including across the
        // WALK_CHUNK boundary (batch > 1024 jobs) and with zero-length and
        // repeated-start jobs in the mix.
        let g = PCycle::new(257).to_multigraph();
        let jobs: Vec<WalkJob> = (0..(WALK_CHUNK as u64 + 300))
            .map(|i| WalkJob {
                start: NodeId(i % 257),
                len: (i as usize * 13) % 50, // includes len == 0
                seed: 0x5eed_0000 ^ (i * 0x9e37),
            })
            .collect();
        let scalar = walk_endpoints_impl(&g, &jobs, 1, false);
        for threads in [1, 8] {
            assert_eq!(
                walk_endpoints_impl(&g, &jobs, threads, true),
                scalar,
                "interleaved vs scalar, threads={threads}"
            );
        }
    }
}
