//! Deterministic fork-join parallelism helpers (crossbeam scoped threads).
//!
//! Used by the measurement harness for embarrassingly parallel work such as
//! computing spectral gaps over hundreds of topology snapshots. Output
//! order always equals input order, so parallel and sequential runs are
//! interchangeable — a determinism test enforces it.

use crossbeam::thread;

/// Parallel map preserving input order. Splits `items` into contiguous
/// chunks, one per worker; workers write into disjoint output slices, so no
/// synchronization is needed beyond the final join.
///
/// Falls back to a sequential map when `threads <= 1` or the input is
/// small.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if threads <= 1 || n < 2 {
        return items.iter().map(&f).collect();
    }
    let workers = threads.min(n);
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(workers);
    thread::scope(|s| {
        let mut rest: &mut [Option<U>] = &mut out;
        let mut offset = 0usize;
        let f = &f;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let slice_items = &items[offset..offset + take];
            s.spawn(move |_| {
                for (slot, item) in head.iter_mut().zip(slice_items) {
                    *slot = Some(f(item));
                }
            });
            rest = tail;
            offset += take;
        }
    })
    .expect("worker panicked");
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

/// Number of worker threads to use by default: available parallelism
/// clamped to [1, 16].
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map(&items, threads, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 8, |x| *x).is_empty());
        assert_eq!(par_map(&[5u32], 8, |x| x + 1), vec![6]);
    }

    #[test]
    fn preserves_order_with_uneven_chunks() {
        let items: Vec<usize> = (0..17).collect();
        let out = par_map(&items, 4, |x| *x);
        assert_eq!(out, items);
    }

    #[test]
    fn default_threads_sane() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }
}
