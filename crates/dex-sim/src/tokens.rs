//! Token forwarding: random-walk searches and congestion-aware routing.
//!
//! Every hop of a token is one message over one physical edge in one round —
//! the unit of cost in the CONGEST model. Two primitives:
//!
//! * [`random_walk_search`] — the type-1 recovery walk (Algorithms
//!   4.2/4.3): forward a token to uniformly random neighbors until an
//!   accepting node is reached or the length budget runs out;
//! * [`random_walk_search_batch`] — many independent searches driven
//!   through the K-way interleaved walk engine, overlapping their DRAM
//!   misses; bit-identical per walk to calling [`random_walk_search`] in a
//!   loop, because each query carries its own RNG stream;
//! * [`route_batch`] — store-and-forward routing of many tokens along
//!   prescribed paths with a per-edge-per-round capacity; this is the
//!   congestion discipline under which the paper budgets `ρ = O(log² n)`
//!   rounds for Phase-2 rebalancing walks and runs permutation routing.

use crate::network::Network;
use dex_graph::adjacency::MultiGraph;
use dex_graph::fxhash::FxHashMap;
use dex_graph::ids::NodeId;
use dex_graph::walks::WalkLane;
use rand::Rng;

/// Result of a random-walk search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Accepting node the token reached, if any.
    pub hit: Option<NodeId>,
    /// Hops actually taken (= messages = rounds charged).
    pub hops: u64,
}

/// Forward a token from `start` for at most `max_len` hops, choosing a
/// uniformly random neighbor each hop (entries of the adjacency multiset,
/// so parallel edges bias the step and self-loops may keep it in place).
/// `exclude` is never stepped onto (the paper excludes the freshly inserted
/// node from insertion walks). The walk stops at the first node for which
/// `accept` returns true; the start node itself is *not* tested (the paper
/// has the initiator send the token out before any membership test).
///
/// Charges 1 round + 1 message per hop.
///
/// The walk runs in the graph's dense slot space: ids are resolved to
/// slots once up front, and each hop is a reservoir pass over a contiguous
/// `&[u32]` — no hashing and no heap allocation per hop.
pub fn random_walk_search<R: Rng + ?Sized>(
    net: &mut Network,
    start: NodeId,
    max_len: u64,
    exclude: Option<NodeId>,
    accept: impl Fn(NodeId) -> bool,
    rng: &mut R,
) -> WalkOutcome {
    let mut hops = 0u64;
    let hit = {
        let g = net.graph();
        let mut cur = g
            .slot_of(start)
            .unwrap_or_else(|| panic!("walk start {start} missing"));
        // The excluded node may have been deleted already (the paper's
        // type-1 deletion walk excludes the *vanished* node); a missing id
        // simply never matches.
        let exclude_slot = exclude.and_then(|u| g.slot_of(u));
        let mut hit = None;
        while hops < max_len {
            let nbrs = g.neighbor_slots(cur);
            // Reservoir-pick a uniformly random neighbor entry, skipping
            // the excluded node.
            let mut choice: Option<u32> = None;
            let mut seen = 0usize;
            for &v in nbrs {
                if Some(v) == exclude_slot {
                    continue;
                }
                seen += 1;
                if rng.random_range(0..seen) == 0 {
                    choice = Some(v);
                }
            }
            let Some(next) = choice else {
                // Only the excluded node is adjacent — the walk is stuck.
                break;
            };
            hops += 1;
            cur = next;
            if accept(g.id_of_slot(cur)) {
                hit = Some(g.id_of_slot(cur));
                break;
            }
        }
        hit
    };
    net.charge_rounds(hops);
    net.charge_messages(hops);
    WalkOutcome { hit, hops }
}

/// One pending search of a [`random_walk_search_batch`]: the same inputs as
/// [`random_walk_search`], with the RNG carried per query. Streams must be
/// keyed by the operation (seed, op id, …), never by batch position, so a
/// batch can be split or reordered without changing any walk.
#[derive(Debug)]
pub struct WalkQuery<R> {
    /// Start node (must be in the graph).
    pub start: NodeId,
    /// Hop budget.
    pub max_len: u64,
    /// Node never stepped onto (missing ids simply never match).
    pub exclude: Option<NodeId>,
    /// This walk's own randomness; advanced exactly as the scalar search
    /// would advance it.
    pub rng: R,
}

/// Run many independent [`random_walk_search`]es through the K-way
/// interleaved walk engine: ~K tokens advance round-robin with each one's
/// next adjacency row prefetched while the others consume already-resident
/// lines, so the batch overlaps DRAM misses a sequential loop would
/// serialize. `accept` is consulted for every walk (it must be a pure
/// predicate — it sees nodes in interleaved order).
///
/// Outcome `i` corresponds to `queries[i]`, and is **bit-identical** to
/// calling `random_walk_search` with the same inputs: each query's RNG sees
/// exactly the scalar draw sequence, because interleaving only reschedules
/// *when* a walk's next hop runs, never what it draws. Charges the same
/// total rounds and messages (1 + 1 per hop taken) as the sequential loop.
/// Pipeline depth comes from `DEX_WALK_K`; `DEX_MLP_KERNELS=0` degrades to
/// depth 1 (results unchanged either way).
pub fn random_walk_search_batch<R: Rng, F: Fn(NodeId) -> bool>(
    net: &mut Network,
    queries: &mut [WalkQuery<R>],
    accept: F,
) -> Vec<WalkOutcome> {
    struct SearchLane<'q, R, F> {
        rng: &'q mut R,
        max_len: u64,
        exclude_slot: Option<u32>,
        accept: &'q F,
        hops: u64,
        hit: Option<NodeId>,
    }
    impl<R: Rng, F: Fn(NodeId) -> bool> WalkLane for SearchLane<'_, R, F> {
        fn choose(&mut self, g: &MultiGraph, _slot: u32, nbrs: &[u32]) -> Option<u32> {
            if self.hops >= self.max_len {
                return None;
            }
            // Byte-for-byte the reservoir of `random_walk_search`: skip the
            // excluded slot without drawing, one draw per surviving entry.
            let mut choice: Option<u32> = None;
            let mut seen = 0usize;
            for &v in nbrs {
                if Some(v) == self.exclude_slot {
                    continue;
                }
                seen += 1;
                if self.rng.random_range(0..seen) == 0 {
                    choice = Some(v);
                    g.prefetch_slot(v);
                }
            }
            if choice.is_some() {
                self.hops += 1;
            }
            choice
        }
        fn arrive(&mut self, g: &MultiGraph, slot: u32) -> bool {
            let id = g.id_of_slot(slot);
            if (self.accept)(id) {
                self.hit = Some(id);
                true
            } else {
                false
            }
        }
    }
    let (outcomes, total_hops) = {
        let g = net.graph();
        let starts: Vec<u32> = queries
            .iter()
            .map(|q| {
                g.slot_of(q.start)
                    .unwrap_or_else(|| panic!("walk start {} missing", q.start))
            })
            .collect();
        let mut lanes: Vec<SearchLane<'_, R, F>> = queries
            .iter_mut()
            .map(|q| SearchLane {
                exclude_slot: q.exclude.and_then(|u| g.slot_of(u)),
                rng: &mut q.rng,
                max_len: q.max_len,
                accept: &accept,
                hops: 0,
                hit: None,
            })
            .collect();
        let k = if dex_graph::par::mlp_enabled() {
            dex_graph::par::walk_pipeline_k()
        } else {
            1
        };
        dex_graph::walks::run_interleaved(g, &mut lanes, &starts, k);
        let mut total = 0u64;
        let outs: Vec<WalkOutcome> = lanes
            .iter()
            .map(|l| {
                total += l.hops;
                WalkOutcome {
                    hit: l.hit,
                    hops: l.hops,
                }
            })
            .collect();
        (outs, total)
    };
    net.charge_rounds(total_hops);
    net.charge_messages(total_hops);
    outcomes
}

/// Send one message along an explicit node path (consecutive entries must
/// be physically adjacent). Charges `len−1` rounds and messages. Used for
/// routing to the coordinator along virtual-graph shortest paths, which map
/// to physical paths (Fact 1).
///
/// # Panics
/// Panics if a path step is not a physical edge.
pub fn route_path(net: &mut Network, path: &[NodeId]) {
    for w in path.windows(2) {
        assert!(
            w[0] == w[1] || net.graph().contains_edge(w[0], w[1]),
            "route_path: {:?} -> {:?} is not an edge",
            w[0],
            w[1]
        );
    }
    let hops = path.len().saturating_sub(1) as u64;
    // Consecutive equal entries (vertex-level hops that stay on one real
    // node) are free: local computation costs nothing in the model.
    let real_hops = path.windows(2).filter(|w| w[0] != w[1]).count() as u64;
    let _ = hops;
    net.charge_rounds(real_hops);
    net.charge_messages(real_hops);
}

/// Store-and-forward batch routing: token `i` follows `paths[i]`
/// (consecutive entries adjacent or equal; equal = local handoff, free).
/// At most `cap` tokens traverse any directed physical edge per round.
/// Returns the makespan in rounds; charges the makespan as rounds and each
/// actual traversal as one message.
///
/// Convenience shape for tests and small callers; hot paths resolve paths
/// into one flat buffer and call [`route_batch_flat`].
pub fn route_batch(net: &mut Network, paths: &[Vec<NodeId>], cap: usize) -> u64 {
    let mut flat: Vec<NodeId> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(paths.len());
    for p in paths {
        ranges.push((flat.len(), p.len()));
        flat.extend_from_slice(p);
    }
    route_batch_flat(net, &flat, &ranges, cap)
}

/// [`route_batch`] over flattened paths: token `i` follows
/// `flat[ranges[i].0 .. ranges[i].0 + ranges[i].1]`. Accepting the flat
/// form lets callers resolve an entire permutation into one reused buffer
/// with no per-token allocation (see `dex-core`'s `RouteScratch`).
pub fn route_batch_flat(
    net: &mut Network,
    flat: &[NodeId],
    ranges: &[(usize, usize)],
    cap: usize,
) -> u64 {
    assert!(cap >= 1);
    let path = |i: usize| -> &[NodeId] {
        let (start, len) = ranges[i];
        &flat[start..start + len]
    };
    // Positions of each token along its path.
    let mut pos: Vec<usize> = vec![0; ranges.len()];
    let mut done = (0..ranges.len()).filter(|&i| path(i).len() <= 1).count();
    // Skip leading local handoffs.
    for i in 0..ranges.len() {
        let p = path(i);
        while pos[i] + 1 < p.len() && p[pos[i]] == p[pos[i] + 1] {
            pos[i] += 1;
        }
        if pos[i] + 1 >= p.len() && p.len() > 1 {
            done += 1;
        }
    }
    let total = ranges.len();
    let mut rounds = 0u64;
    let mut messages = 0u64;
    let mut edge_use: FxHashMap<(NodeId, NodeId), usize> = FxHashMap::default();
    while done < total {
        rounds += 1;
        edge_use.clear();
        for i in 0..total {
            let p = path(i);
            if pos[i] + 1 >= p.len() {
                continue;
            }
            let (from, to) = (p[pos[i]], p[pos[i] + 1]);
            debug_assert!(
                net.graph().contains_edge(from, to),
                "route_batch: {from:?}->{to:?} not an edge"
            );
            let used = edge_use.entry((from, to)).or_insert(0);
            if *used >= cap {
                continue; // token waits this round
            }
            *used += 1;
            pos[i] += 1;
            messages += 1;
            // Consume any following local handoffs for free.
            while pos[i] + 1 < p.len() && p[pos[i]] == p[pos[i] + 1] {
                pos[i] += 1;
            }
            if pos[i] + 1 >= p.len() {
                done += 1;
            }
        }
    }
    net.charge_rounds(rounds);
    net.charge_messages(messages);
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(net: &mut Network, k: u64) {
        for i in 0..k {
            net.adversary_add_node(NodeId(i));
        }
        for i in 0..k - 1 {
            net.adversary_add_edge(NodeId(i), NodeId(i + 1));
        }
    }

    #[test]
    fn walk_finds_adjacent_target() {
        let mut net = Network::new();
        line(&mut net, 2);
        net.begin_step();
        let mut rng = StdRng::seed_from_u64(1);
        let out = random_walk_search(&mut net, NodeId(0), 10, None, |u| u == NodeId(1), &mut rng);
        assert_eq!(out.hit, Some(NodeId(1)));
        assert_eq!(out.hops, 1);
        let (r, m, _) = net.current_counters();
        assert_eq!((r, m), (1, 1));
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn walk_respects_budget_and_misses() {
        let mut net = Network::new();
        line(&mut net, 10);
        net.begin_step();
        let mut rng = StdRng::seed_from_u64(2);
        // Target unreachable within 3 hops from node 0 on a line.
        let out = random_walk_search(&mut net, NodeId(0), 3, None, |u| u == NodeId(9), &mut rng);
        assert_eq!(out.hit, None);
        assert_eq!(out.hops, 3);
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn walk_excludes_node() {
        // Star: 0 in the middle, leaves 1 and 2; exclude 1 ⇒ token can only
        // bounce 0 <-> 2.
        let mut net = Network::new();
        for i in 0..3 {
            net.adversary_add_node(NodeId(i));
        }
        net.adversary_add_edge(NodeId(0), NodeId(1));
        net.adversary_add_edge(NodeId(0), NodeId(2));
        net.begin_step();
        let mut rng = StdRng::seed_from_u64(3);
        let out = random_walk_search(
            &mut net,
            NodeId(0),
            50,
            Some(NodeId(1)),
            |u| u == NodeId(1),
            &mut rng,
        );
        assert_eq!(out.hit, None, "excluded node must be unreachable");
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn walk_stuck_when_only_excluded_neighbor() {
        let mut net = Network::new();
        line(&mut net, 2);
        net.begin_step();
        let mut rng = StdRng::seed_from_u64(4);
        let out = random_walk_search(&mut net, NodeId(0), 10, Some(NodeId(1)), |_| true, &mut rng);
        assert_eq!(out.hit, None);
        assert_eq!(out.hops, 0);
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    /// Ring of `k` nodes with chords every 7 — enough degree variance to
    /// exercise reservoir skipping and acceptance at different depths.
    fn chordal_ring(net: &mut Network, k: u64) {
        for i in 0..k {
            net.adversary_add_node(NodeId(i));
        }
        for i in 0..k {
            net.adversary_add_edge(NodeId(i), NodeId((i + 1) % k));
        }
        for i in (0..k).step_by(7) {
            net.adversary_add_edge(NodeId(i), NodeId((i + k / 2) % k));
        }
    }

    #[test]
    fn batch_search_is_bit_identical_to_sequential() {
        let accept = |u: NodeId| u.0 % 11 == 3;
        // Sequential reference: one scalar search per query on its own
        // stream.
        let mut net_a = Network::new();
        chordal_ring(&mut net_a, 41);
        net_a.begin_step();
        let mut seq = Vec::new();
        for i in 0..97u64 {
            let mut rng = StdRng::seed_from_u64(0xbeef ^ i);
            let exclude = (i % 3 == 0).then_some(NodeId((i + 5) % 41));
            seq.push(random_walk_search(
                &mut net_a,
                NodeId(i % 41),
                i % 23, // includes 0-budget walks
                exclude,
                accept,
                &mut rng,
            ));
        }
        let counters_a = net_a.current_counters();
        net_a.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);

        // Batch over an identical network: same outcomes, same charges.
        let mut net_b = Network::new();
        chordal_ring(&mut net_b, 41);
        net_b.begin_step();
        let mut queries: Vec<WalkQuery<StdRng>> = (0..97u64)
            .map(|i| WalkQuery {
                start: NodeId(i % 41),
                max_len: i % 23,
                exclude: (i % 3 == 0).then_some(NodeId((i + 5) % 41)),
                rng: StdRng::seed_from_u64(0xbeef ^ i),
            })
            .collect();
        let batch = random_walk_search_batch(&mut net_b, &mut queries, accept);
        assert_eq!(batch, seq);
        assert_eq!(net_b.current_counters(), counters_a);
        net_b.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn batch_search_handles_empty_and_stuck() {
        let mut net = Network::new();
        line(&mut net, 2);
        net.begin_step();
        let none: &mut [WalkQuery<StdRng>] = &mut [];
        assert!(random_walk_search_batch(&mut net, none, |_| true).is_empty());
        // Only neighbor excluded ⇒ stuck at 0 hops, exactly like scalar.
        let mut queries = vec![WalkQuery {
            start: NodeId(0),
            max_len: 10,
            exclude: Some(NodeId(1)),
            rng: StdRng::seed_from_u64(4),
        }];
        let out = random_walk_search_batch(&mut net, &mut queries, |_| true);
        assert_eq!(out, vec![WalkOutcome { hit: None, hops: 0 }]);
        let (r, m, _) = net.current_counters();
        assert_eq!((r, m), (0, 0));
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn route_path_charges_real_hops_only() {
        let mut net = Network::new();
        line(&mut net, 4);
        net.begin_step();
        // 0 -> 1 -> 1 (local handoff) -> 2 -> 3: 3 real hops
        route_path(
            &mut net,
            &[NodeId(0), NodeId(1), NodeId(1), NodeId(2), NodeId(3)],
        );
        let (r, m, _) = net.current_counters();
        assert_eq!((r, m), (3, 3));
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn congestion_serializes_shared_edge() {
        // 3 tokens all need edge 0->1; cap 1 ⇒ 3 rounds.
        let mut net = Network::new();
        line(&mut net, 2);
        net.begin_step();
        let paths = vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(0), NodeId(1)],
        ];
        let rounds = route_batch(&mut net, &paths, 1);
        assert_eq!(rounds, 3);
        let (r, m, _) = net.current_counters();
        assert_eq!(r, 3);
        assert_eq!(m, 3);
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn disjoint_paths_run_in_parallel() {
        let mut net = Network::new();
        line(&mut net, 6);
        net.begin_step();
        let paths = vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![NodeId(3), NodeId(4), NodeId(5)],
        ];
        let rounds = route_batch(&mut net, &paths, 1);
        assert_eq!(rounds, 2, "disjoint paths must not serialize");
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn empty_and_local_paths_cost_nothing() {
        let mut net = Network::new();
        line(&mut net, 3);
        net.begin_step();
        let rounds = route_batch(
            &mut net,
            &[vec![], vec![NodeId(1)], vec![NodeId(2), NodeId(2)]],
            1,
        );
        assert_eq!(rounds, 0);
        let (r, m, _) = net.current_counters();
        assert_eq!((r, m), (0, 0));
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        // cap applies per *directed* edge: 0->1 and 1->0 simultaneously OK.
        let mut net = Network::new();
        line(&mut net, 2);
        net.begin_step();
        let paths = vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(0)]];
        let rounds = route_batch(&mut net, &paths, 1);
        assert_eq!(rounds, 1);
        net.end_step(crate::StepKind::Insert, crate::RecoveryKind::Type1);
    }
}
