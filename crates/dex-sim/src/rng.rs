//! Deterministic RNG stream derivation.
//!
//! Every random choice in a run derives from one master seed through
//! [`SeedSpace`], keyed by a purpose tag and arbitrary context words
//! (step number, node id, walk index, …). Two consequences:
//!
//! * runs replay bit-identically — the determinism tests and the
//!   record/replay adversary depend on this;
//! * the *adaptive* adversary of the paper, which "knows the past random
//!   choices made by the algorithm", is modelled honestly: adversary code
//!   receives the full history of a deterministic run.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer — the standard 64-bit avalanche mix.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Purpose tags for RNG streams (keeps call sites self-describing and
/// collision-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Purpose {
    /// Type-1 insertion walk.
    InsertWalk,
    /// Type-1 deletion walks.
    DeleteWalk,
    /// Type-2 rebalancing walks on the virtual graph.
    RebalanceWalk,
    /// Baseline overlay internals.
    Baseline,
    /// Adversary decisions.
    Adversary,
    /// Workload generation (DHT keys etc.).
    Workload,
}

impl Purpose {
    fn tag(self) -> u64 {
        match self {
            Purpose::InsertWalk => 0x01,
            Purpose::DeleteWalk => 0x02,
            Purpose::RebalanceWalk => 0x03,
            Purpose::Baseline => 0x04,
            Purpose::Adversary => 0x05,
            Purpose::Workload => 0x06,
        }
    }
}

/// Derives independent [`StdRng`] streams from a master seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedSpace {
    master: u64,
}

impl SeedSpace {
    /// New seed space.
    pub fn new(master: u64) -> Self {
        SeedSpace { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive a stream for `purpose` with additional context words
    /// (e.g. `[step, node_id]`). Identical inputs give identical streams.
    pub fn stream(&self, purpose: Purpose, context: &[u64]) -> StdRng {
        let mut acc = splitmix64(self.master ^ purpose.tag().wrapping_mul(0xa076_1d64_78bd_642f));
        for &w in context {
            acc = splitmix64(acc ^ w.wrapping_mul(0xe703_7ed1_a0b4_28db));
        }
        StdRng::seed_from_u64(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_context_identical_stream() {
        let s = SeedSpace::new(42);
        let mut a = s.stream(Purpose::InsertWalk, &[3, 7]);
        let mut b = s.stream(Purpose::InsertWalk, &[3, 7]);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_purpose_different_stream() {
        let s = SeedSpace::new(42);
        let a: u64 = s.stream(Purpose::InsertWalk, &[3]).random();
        let b: u64 = s.stream(Purpose::DeleteWalk, &[3]).random();
        assert_ne!(a, b);
    }

    #[test]
    fn different_context_different_stream() {
        let s = SeedSpace::new(42);
        let a: u64 = s.stream(Purpose::InsertWalk, &[1]).random();
        let b: u64 = s.stream(Purpose::InsertWalk, &[2]).random();
        let c: u64 = s.stream(Purpose::InsertWalk, &[1, 0]).random();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_avalanches() {
        // Flipping one input bit flips ~half the output bits on average.
        let mut total = 0u32;
        for i in 0..64 {
            total += (splitmix64(0) ^ splitmix64(1u64 << i)).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "weak avalanche: {avg}");
    }
}
