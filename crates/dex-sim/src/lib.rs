//! Synchronous round-based CONGEST message-passing simulator substrate.
//!
//! The DEX paper's costs are *model* quantities — rounds of synchronous
//! communication, O(log n)-bit messages, and topology changes — not
//! wall-clock seconds. This crate realizes exactly that model:
//!
//! * [`network::Network`] owns the physical topology and meters every cost:
//!   healing edge changes are charged as topology changes, every message
//!   hop is charged, and rounds accumulate per recovery step;
//! * [`tokens`] implements per-hop token forwarding (random-walk searches
//!   and path routing) including store-and-forward **congestion** with a
//!   per-edge-per-round capacity — the CONGEST constraint that makes the
//!   paper give Phase-2 walks `ρ = O(log² n)` rounds;
//! * [`flood`] implements BFS broadcast + convergecast aggregation
//!   (the paper's `computeSpare` / `computeLow`, Algorithm 4.4);
//! * [`rng`] derives deterministic per-purpose RNG streams so whole runs
//!   replay bit-identically from one master seed (the adaptive adversary is
//!   entitled to all past random choices — determinism makes that honest);
//! * [`parallel`] provides a deterministic fork-join `par_map` used by the
//!   measurement harness (e.g. spectral series over many snapshots).
//!
//! Locality discipline: protocol code in `dex-core` reads only per-node
//! state and the physical adjacency; this crate's helpers take closures so
//! that *what a node can see* is explicit at every call site.

pub mod flood;
pub mod metrics;
pub mod msim;
pub mod network;
pub mod parallel;
pub mod rng;
pub mod tokens;

pub use metrics::{
    HasStepLog, RecoveryKind, StepAggregate, StepKind, StepLog, StepMetrics, Summary,
};
pub use msim::{FaultSpec, FaultStats, OpResult, OpStatus, RouteOp, RunReport, WalkOp};
pub use network::{HistoryMode, Network, StepTotals};
