//! BFS flood + convergecast aggregation (Algorithm 4.4).
//!
//! `computeSpare` / `computeLow` deterministically count the network size
//! and the size of a predicate set: the initiator floods a request through
//! the whole network (each node forwards on first receipt), then the counts
//! converge back up the implicit BFS tree. Cost charged: one message per
//! directed edge during the broadcast (`degree sum`), one message per
//! non-root node during the convergecast, and `2·ecc(root)` rounds.
//!
//! The BFS runs in the graph's dense slot space with reusable scratch
//! buffers ([`FloodScratch`]): after the one-time buffer sizing, a flood
//! performs no hashing and no per-node heap allocation. DEX floods the
//! network on every type-2 step, so callers that flood repeatedly should
//! hold a scratch and use [`flood_count_with`].

use crate::network::Network;
use dex_graph::ids::NodeId;
use std::collections::VecDeque;

/// Sentinel distance for unvisited slots.
const UNSEEN: u32 = u32::MAX;

/// Reusable BFS scratch for [`flood_count_with`]. One instance per driver
/// is enough; buffers grow to the network's slot bound and stay allocated.
#[derive(Default)]
pub struct FloodScratch {
    /// Slot-indexed BFS distance ([`UNSEEN`] = not reached).
    dist: Vec<u32>,
    /// BFS frontier of slot indices.
    queue: VecDeque<u32>,
}

impl FloodScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Outcome of a flood-aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodResult {
    /// Nodes reached (the component of the root — the whole network when
    /// connected, which DEX maintains).
    pub n: usize,
    /// Nodes satisfying the predicate.
    pub matching: usize,
    /// Rounds charged (2 × eccentricity of the root).
    pub rounds: u64,
    /// Messages charged.
    pub messages: u64,
    /// A deterministic representative of the predicate set: the matching
    /// node minimizing (BFS distance from the root, node id). The
    /// convergecast can carry one candidate id at no extra asymptotic
    /// cost; the fault-injected healer uses it as a walk-free fallback
    /// target when repeated walks are lost.
    pub witness: Option<NodeId>,
}

/// Flood from `root`, count nodes satisfying `pred`, converge-cast back.
/// Convenience wrapper allocating a throwaway [`FloodScratch`]; repeated
/// callers should keep one and use [`flood_count_with`].
pub fn flood_count(net: &mut Network, root: NodeId, pred: impl Fn(NodeId) -> bool) -> FloodResult {
    flood_count_with(net, root, pred, &mut FloodScratch::new())
}

/// Flood from `root` using caller-provided scratch buffers. See
/// [`flood_count`] for semantics and cost accounting.
pub fn flood_count_with(
    net: &mut Network,
    root: NodeId,
    pred: impl Fn(NodeId) -> bool,
    scratch: &mut FloodScratch,
) -> FloodResult {
    let (n, matching, ecc, broadcast_msgs, witness) = {
        let g = net.graph();
        let root_slot = g
            .slot_of(root)
            .unwrap_or_else(|| panic!("flood root {root} missing"));
        scratch.dist.clear();
        scratch.dist.resize(g.slot_bound(), UNSEEN);
        scratch.queue.clear();
        scratch.dist[root_slot as usize] = 0;
        scratch.queue.push_back(root_slot);
        let mut reached = 0usize;
        let mut ecc = 0u32;
        let mut broadcast_msgs = 0u64;
        let mut matching = 0usize;
        let mut witness: Option<(u32, NodeId)> = None;
        while let Some(u) = scratch.queue.pop_front() {
            let du = scratch.dist[u as usize];
            ecc = ecc.max(du);
            reached += 1;
            if pred(g.id_of_slot(u)) {
                matching += 1;
                let cand = (du, g.id_of_slot(u));
                if witness.is_none_or(|best| cand < best) {
                    witness = Some(cand);
                }
            }
            // On first receipt a node forwards to all neighbors (except the
            // sender); we charge its full degree minus one for non-roots,
            // the full degree for the root. Parallel edges each carry a
            // copy (the node cannot know its parallel edges lead to the
            // same peer without extra protocol).
            let nbrs = g.neighbor_slots(u);
            let deg = nbrs.len() as u64;
            broadcast_msgs += if u == root_slot {
                deg
            } else {
                deg.saturating_sub(1)
            };
            for &v in nbrs {
                if scratch.dist[v as usize] == UNSEEN {
                    scratch.dist[v as usize] = du + 1;
                    scratch.queue.push_back(v);
                }
            }
        }
        (
            reached,
            matching,
            ecc,
            broadcast_msgs,
            witness.map(|(_, id)| id),
        )
    };
    let convergecast_msgs = (n as u64).saturating_sub(1);
    let rounds = 2 * ecc as u64;
    let messages = broadcast_msgs + convergecast_msgs;
    net.charge_rounds(rounds);
    net.charge_messages(messages);
    FloodResult {
        n,
        matching,
        rounds,
        messages,
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecoveryKind, StepKind};

    fn ring_net(k: u64) -> Network {
        let mut net = Network::new();
        for i in 0..k {
            net.adversary_add_node(NodeId(i));
        }
        for i in 0..k {
            net.adversary_add_edge(NodeId(i), NodeId((i + 1) % k));
        }
        net
    }

    #[test]
    fn counts_whole_ring() {
        let mut net = ring_net(8);
        net.begin_step();
        let r = flood_count(&mut net, NodeId(0), |u| u.0 % 2 == 0);
        assert_eq!(r.n, 8);
        assert_eq!(r.matching, 4);
        assert_eq!(r.rounds, 2 * 4); // ecc of a ring root = n/2
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn message_cost_is_linear_in_edges() {
        let mut net = ring_net(8);
        net.begin_step();
        let r = flood_count(&mut net, NodeId(0), |_| true);
        // broadcast: root sends deg=2, others deg-1=1 each → 2 + 7 = 9;
        // convergecast: 7. Total 16.
        assert_eq!(r.messages, 16);
        let (_, m, _) = net.current_counters();
        assert_eq!(m, 16);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn flood_restricted_to_component() {
        let mut net = ring_net(4);
        for i in 10..13 {
            net.adversary_add_node(NodeId(i));
        }
        net.adversary_add_edge(NodeId(10), NodeId(11));
        net.begin_step();
        let r = flood_count(&mut net, NodeId(10), |_| true);
        assert_eq!(r.n, 2);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn singleton_flood() {
        let mut net = Network::new();
        net.adversary_add_node(NodeId(0));
        net.begin_step();
        let r = flood_count(&mut net, NodeId(0), |_| true);
        assert_eq!(r.n, 1);
        assert_eq!(r.matching, 1);
        assert_eq!(r.rounds, 0);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let mut net = ring_net(12);
        let mut scratch = FloodScratch::new();
        net.begin_step();
        let a = flood_count_with(&mut net, NodeId(0), |u| u.0 < 6, &mut scratch);
        let b = flood_count(&mut net, NodeId(0), |u| u.0 < 6);
        assert_eq!(a, b);
        // Mutate, re-flood with the same scratch: results track the graph.
        net.adversary_remove_node(NodeId(6));
        let c = flood_count_with(&mut net, NodeId(0), |u| u.0 < 6, &mut scratch);
        assert_eq!(c.n, 11);
        assert_eq!(c.matching, 6);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn witness_is_nearest_matching_node_lowest_id() {
        let mut net = ring_net(10);
        net.begin_step();
        // pred = odd ids; from root 0 the nearest odd nodes are 1 and 9
        // (both at distance 1) — the witness is the lower id.
        let r = flood_count(&mut net, NodeId(0), |u| u.0 % 2 == 1);
        assert_eq!(r.witness, Some(NodeId(1)));
        // No matching node: no witness.
        let r2 = flood_count(&mut net, NodeId(0), |u| u.0 > 100);
        assert_eq!(r2.witness, None);
        // Root matches: the witness is the root itself (distance 0).
        let r3 = flood_count(&mut net, NodeId(4), |_| true);
        assert_eq!(r3.witness, Some(NodeId(4)));
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }
}
