//! BFS flood + convergecast aggregation (Algorithm 4.4).
//!
//! `computeSpare` / `computeLow` deterministically count the network size
//! and the size of a predicate set: the initiator floods a request through
//! the whole network (each node forwards on first receipt), then the counts
//! converge back up the implicit BFS tree. Cost charged: one message per
//! directed edge during the broadcast (`degree sum`), one message per
//! non-root node during the convergecast, and `2·ecc(root)` rounds.

use crate::network::Network;
use dex_graph::fxhash::FxHashMap;
use dex_graph::ids::NodeId;
use std::collections::VecDeque;

/// Outcome of a flood-aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodResult {
    /// Nodes reached (the component of the root — the whole network when
    /// connected, which DEX maintains).
    pub n: usize,
    /// Nodes satisfying the predicate.
    pub matching: usize,
    /// Rounds charged (2 × eccentricity of the root).
    pub rounds: u64,
    /// Messages charged.
    pub messages: u64,
}

/// Flood from `root`, count nodes satisfying `pred`, converge-cast back.
pub fn flood_count(
    net: &mut Network,
    root: NodeId,
    pred: impl Fn(NodeId) -> bool,
) -> FloodResult {
    let g = net.graph();
    assert!(g.has_node(root), "flood root {root} missing");
    let mut dist: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut queue = VecDeque::new();
    dist.insert(root, 0);
    queue.push_back(root);
    let mut ecc = 0u32;
    let mut broadcast_msgs = 0u64;
    let mut matching = 0usize;
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        ecc = ecc.max(du);
        if pred(u) {
            matching += 1;
        }
        // On first receipt a node forwards to all neighbors (except the
        // sender); we charge its full degree minus one for non-roots, the
        // full degree for the root. Parallel edges each carry a copy (the
        // node cannot know its parallel edges lead to the same peer without
        // extra protocol).
        let deg = g.degree(u) as u64;
        broadcast_msgs += if u == root { deg } else { deg.saturating_sub(1) };
        for &v in g.neighbors(u) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(du + 1);
                queue.push_back(v);
            }
        }
    }
    let n = dist.len();
    let convergecast_msgs = (n as u64).saturating_sub(1);
    let rounds = 2 * ecc as u64;
    let messages = broadcast_msgs + convergecast_msgs;
    net.charge_rounds(rounds);
    net.charge_messages(messages);
    FloodResult {
        n,
        matching,
        rounds,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecoveryKind, StepKind};

    fn ring_net(k: u64) -> Network {
        let mut net = Network::new();
        for i in 0..k {
            net.adversary_add_node(NodeId(i));
        }
        for i in 0..k {
            net.adversary_add_edge(NodeId(i), NodeId((i + 1) % k));
        }
        net
    }

    #[test]
    fn counts_whole_ring() {
        let mut net = ring_net(8);
        net.begin_step();
        let r = flood_count(&mut net, NodeId(0), |u| u.0 % 2 == 0);
        assert_eq!(r.n, 8);
        assert_eq!(r.matching, 4);
        assert_eq!(r.rounds, 2 * 4); // ecc of a ring root = n/2
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn message_cost_is_linear_in_edges() {
        let mut net = ring_net(8);
        net.begin_step();
        let r = flood_count(&mut net, NodeId(0), |_| true);
        // broadcast: root sends deg=2, others deg-1=1 each → 2 + 7 = 9;
        // convergecast: 7. Total 16.
        assert_eq!(r.messages, 16);
        let (_, m, _) = net.current_counters();
        assert_eq!(m, 16);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn flood_restricted_to_component() {
        let mut net = ring_net(4);
        for i in 10..13 {
            net.adversary_add_node(NodeId(i));
        }
        net.adversary_add_edge(NodeId(10), NodeId(11));
        net.begin_step();
        let r = flood_count(&mut net, NodeId(10), |_| true);
        assert_eq!(r.n, 2);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }

    #[test]
    fn singleton_flood() {
        let mut net = Network::new();
        net.adversary_add_node(NodeId(0));
        net.begin_step();
        let r = flood_count(&mut net, NodeId(0), |_| true);
        assert_eq!(r.n, 1);
        assert_eq!(r.matching, 1);
        assert_eq!(r.rounds, 0);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }
}
