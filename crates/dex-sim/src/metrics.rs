//! Per-step cost metrics and summaries.
//!
//! Theorem 1 is a statement about three counters per adversarial step:
//! rounds, messages, topology changes. Every experiment in the harness
//! ultimately reports a [`Summary`] of a stream of [`StepMetrics`].

/// What the adversary did in a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// One node inserted.
    Insert,
    /// One node deleted.
    Delete,
    /// Batch of `k` insertions (Sect. 5 extension).
    BatchInsert(u32),
    /// Batch of `k` deletions (Sect. 5 extension).
    BatchDelete(u32),
    /// Runtime reconfiguration (fault spec installed or cleared) —
    /// charges nothing but keeps the step ledger contiguous.
    Config,
}

/// Which recovery flavour the algorithm used in a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Plain type-1 (random-walk rebalancing).
    Type1,
    /// Type-1 while a staggered type-2 is in progress (worst-case variant).
    Type1Staggered,
    /// Simplified one-shot inflation (Algorithm 4.5).
    InflateSimple,
    /// Simplified one-shot deflation (Algorithm 4.6).
    DeflateSimple,
    /// A staggered inflation was initiated or advanced this step.
    InflateStaggered,
    /// A staggered deflation was initiated or advanced this step.
    DeflateStaggered,
}

impl RecoveryKind {
    /// Is this one of the type-2 (virtual-graph replacement) flavours?
    pub fn is_type2(self) -> bool {
        !matches!(self, RecoveryKind::Type1 | RecoveryKind::Type1Staggered)
    }
}

/// Cost of a single adversarial step and its recovery.
#[derive(Debug, Clone, Copy)]
pub struct StepMetrics {
    /// Step index (1-based, matching the paper's `t`).
    pub step: u64,
    /// What the adversary did.
    pub kind: StepKind,
    /// Which recovery ran.
    pub recovery: RecoveryKind,
    /// Synchronous rounds used by recovery.
    pub rounds: u64,
    /// Messages sent during recovery.
    pub messages: u64,
    /// Edges added or removed by the *algorithm* (adversarial attach /
    /// attack edges are not charged).
    pub topology_changes: u64,
    /// Conflict-free waves the parallel batch-heal engine applied this
    /// step (0 when the step healed through the sequential path). Pure
    /// observability: the metered costs above are charged identically
    /// either way.
    pub waves: u32,
    /// Whether the adaptive small-n crossover controller routed this
    /// batch step to the sequential heal path (cache-resident regime or
    /// high observed replan rate). Pure observability, like `waves`:
    /// either route produces bit-identical state and charges.
    pub crossover: bool,
    /// Network size after the step.
    pub n_after: usize,
}

/// Order statistics over a metric stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile — the serving harness's headline tail number
    /// (same nearest-rank scheme as p95/p99; equals `max` below 1000
    /// samples, as nearest-rank must).
    pub p999: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Summarize a sequence of values. Returns a zero summary when empty.
    pub fn of(values: impl IntoIterator<Item = u64>) -> Summary {
        let mut v: Vec<u64> = values.into_iter().collect();
        if v.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                p50: 0,
                p95: 0,
                p99: 0,
                p999: 0,
                max: 0,
            };
        }
        v.sort_unstable();
        let count = v.len();
        let mean = v.iter().sum::<u64>() as f64 / count as f64;
        // Nearest-rank percentile: smallest value with at least q·count
        // values ≤ it.
        let pct = |q: f64| -> u64 {
            let idx = ((q * count as f64).ceil() as usize).clamp(1, count) - 1;
            v[idx]
        };
        Summary {
            count,
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            p999: pct(0.999),
            max: *v.last().expect("nonempty"),
        }
    }
}

/// Compact columnar log of a [`StepMetrics`] stream: just the three
/// counters Theorem 1 talks about, one `u64` column each, plus the type-2
/// step count. This is what a streaming driver retains per step instead of
/// whole `StepMetrics` records (24 bytes/step vs. the full struct), and it
/// is exactly the input [`Summary`] percentiles need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepLog {
    /// Rounds per step.
    pub rounds: Vec<u64>,
    /// Messages per step.
    pub messages: Vec<u64>,
    /// Topology changes per step.
    pub topology: Vec<u64>,
    /// Steps whose recovery was a type-2 flavour.
    pub type2_steps: usize,
}

impl StepLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one step's counters.
    pub fn push(&mut self, m: &StepMetrics) {
        self.rounds.push(m.rounds);
        self.messages.push(m.messages);
        self.topology.push(m.topology_changes);
        if m.recovery.is_type2() {
            self.type2_steps += 1;
        }
    }

    /// Number of steps logged.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Percentile aggregate over a whole [`StepMetrics`] stream — the shape
/// every scenario/workload report reduces to. Aggregates from several
/// independent trials concatenate before summarizing (the percentiles are
/// over the pooled per-step samples).
#[derive(Debug, Clone, PartialEq)]
pub struct StepAggregate {
    /// Number of steps pooled.
    pub steps: usize,
    /// Rounds per step.
    pub rounds: Summary,
    /// Messages per step.
    pub messages: Summary,
    /// Topology changes per step.
    pub topology: Summary,
    /// Steps whose recovery was a type-2 flavour.
    pub type2_steps: usize,
}

impl StepAggregate {
    /// Aggregate a stream of per-step metrics.
    pub fn of<'a>(steps: impl IntoIterator<Item = &'a StepMetrics>) -> StepAggregate {
        let mut rounds = Vec::new();
        let mut messages = Vec::new();
        let mut topology = Vec::new();
        let mut type2_steps = 0usize;
        for m in steps {
            rounds.push(m.rounds);
            messages.push(m.messages);
            topology.push(m.topology_changes);
            if m.recovery.is_type2() {
                type2_steps += 1;
            }
        }
        StepAggregate {
            steps: rounds.len(),
            rounds: Summary::of(rounds),
            messages: Summary::of(messages),
            topology: Summary::of(topology),
            type2_steps,
        }
    }

    /// Pool the [`StepLog`]s of a slice of reports into one aggregate —
    /// the single pooling entry point every trial/shard harness shares
    /// (`dex-workload` trials, the bench churn trials, the serving
    /// harness's per-shard logs). Each report exposes its log through
    /// [`HasStepLog`].
    pub fn pooled<T: HasStepLog>(reports: &[T]) -> StepAggregate {
        StepAggregate::of_logs(reports.iter().map(|r| r.step_log()))
    }

    /// Pool several trials' [`StepLog`]s into one aggregate (percentiles
    /// over the concatenated per-step samples, matching
    /// [`StepAggregate::of`] on the equivalent `StepMetrics` stream).
    pub fn of_logs<'a>(logs: impl IntoIterator<Item = &'a StepLog>) -> StepAggregate {
        let logs: Vec<&StepLog> = logs.into_iter().collect();
        let steps = logs.iter().map(|l| l.len()).sum();
        let pool = |col: fn(&StepLog) -> &[u64]| {
            Summary::of(logs.iter().flat_map(|l| col(l).iter().copied()))
        };
        StepAggregate {
            steps,
            rounds: pool(|l| &l.rounds),
            messages: pool(|l| &l.messages),
            topology: pool(|l| &l.topology),
            type2_steps: logs.iter().map(|l| l.type2_steps).sum(),
        }
    }
}

/// Anything that carries a per-step [`StepLog`] — the hook
/// [`StepAggregate::pooled`] aggregates over, so every report type
/// (workload trials, bench churn trials, serve shards) pools through the
/// same code path instead of hand-rolling `of_logs` adapters.
pub trait HasStepLog {
    /// The report's columnar per-step log.
    fn step_log(&self) -> &StepLog;
}

impl HasStepLog for StepLog {
    fn step_log(&self) -> &StepLog {
        self
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:.1}  p50 {}  p95 {}  p99 {}  p999 {}  max {}  (k={})",
            self.mean, self.p50, self.p95, self.p99, self.p999, self.max, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn summary_order_statistics() {
        let s = Summary::of(1..=100u64);
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.p99, 99); // index round(99·0.99) = 98 → value 99
        assert_eq!(s.p999, 100, "below 1000 samples p999 is the max");
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn summary_p999_resolves_above_1000_samples() {
        // 2000 samples: nearest-rank p999 is the ⌈0.999·2000⌉ = 1998th
        // value — strictly below the max, unlike p99's neighborhood.
        let s = Summary::of(1..=2000u64);
        assert_eq!(s.p999, 1998);
        assert_eq!(s.p99, 1980);
        assert_eq!(s.max, 2000);
        // Exactly 1000 samples: rank ⌈0.999·1000⌉ = 999 → value 999.
        let s = Summary::of(1..=1000u64);
        assert_eq!(s.p999, 999);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of([7u64]);
        assert_eq!(s.p50, 7);
        assert_eq!(s.p95, 7);
        assert_eq!(s.p999, 7);
        assert_eq!(s.max, 7);
    }

    #[test]
    fn step_aggregate_pools_counters() {
        let mk = |step: u64, rounds: u64, recovery: RecoveryKind| StepMetrics {
            step,
            kind: StepKind::Insert,
            recovery,
            rounds,
            messages: rounds * 10,
            topology_changes: 2,
            waves: 0,
            crossover: false,
            n_after: 16,
        };
        let steps = vec![
            mk(1, 4, RecoveryKind::Type1),
            mk(2, 8, RecoveryKind::InflateSimple),
            mk(3, 6, RecoveryKind::Type1),
        ];
        let agg = StepAggregate::of(&steps);
        assert_eq!(agg.steps, 3);
        assert_eq!(agg.type2_steps, 1);
        assert_eq!(agg.rounds.max, 8);
        assert_eq!(agg.rounds.p50, 6);
        assert_eq!(agg.messages.max, 80);
        assert_eq!(agg.topology.p50, 2);
        let empty = StepAggregate::of(std::iter::empty());
        assert_eq!(empty.steps, 0);
        assert_eq!(empty.type2_steps, 0);
    }

    #[test]
    fn log_pooling_matches_full_metrics_aggregate() {
        let mk = |step: u64, rounds: u64, recovery: RecoveryKind| StepMetrics {
            step,
            kind: StepKind::Insert,
            recovery,
            rounds,
            messages: rounds * 3 + 1,
            topology_changes: step % 4,
            waves: 0,
            crossover: false,
            n_after: 9,
        };
        let steps: Vec<StepMetrics> = (1..40)
            .map(|i| {
                mk(
                    i,
                    i * 7 % 13,
                    if i % 5 == 0 {
                        RecoveryKind::DeflateSimple
                    } else {
                        RecoveryKind::Type1
                    },
                )
            })
            .collect();
        // Split the stream over two logs like two trials would.
        let mut a = StepLog::new();
        let mut b = StepLog::new();
        for (i, m) in steps.iter().enumerate() {
            if i % 2 == 0 { &mut a } else { &mut b }.push(m);
        }
        assert_eq!(
            StepAggregate::of_logs([&a, &b]),
            StepAggregate::of(&steps),
            "pooled log percentiles must match the StepMetrics path"
        );
        // The shared report-pooling entry point is the same computation.
        assert_eq!(
            StepAggregate::pooled(&[a.clone(), b.clone()]),
            StepAggregate::of(&steps),
            "StepAggregate::pooled must match of_logs"
        );
        assert_eq!(StepAggregate::of_logs([]).steps, 0);
        assert_eq!(StepAggregate::pooled::<StepLog>(&[]).steps, 0);
        // p999 pools over the concatenated samples like every other rank.
        let agg = StepAggregate::of_logs([&a, &b]);
        assert_eq!(agg.rounds.p999, agg.rounds.max, "39 samples: p999 = max");
    }

    #[test]
    fn recovery_kind_classification() {
        assert!(!RecoveryKind::Type1.is_type2());
        assert!(!RecoveryKind::Type1Staggered.is_type2());
        assert!(RecoveryKind::InflateSimple.is_type2());
        assert!(RecoveryKind::DeflateStaggered.is_type2());
    }
}
