//! The metered physical network.
//!
//! Wraps a [`MultiGraph`] and charges every cost the paper reports:
//!
//! * **topology changes** — edges added/removed by the healing algorithm
//!   (`add_edge` / `remove_edge`). The adversary's own attack — attaching a
//!   new node, or a deletion taking its incident edges down — is applied
//!   through the `adversary_*` methods and is *not* charged, matching the
//!   paper's accounting (the algorithm's "number of topology changes").
//! * **messages** and **rounds** — charged explicitly by protocol helpers
//!   ([`crate::tokens`], [`crate::flood`]) and by protocol code in
//!   `dex-core`.
//!
//! A *step scope* (`begin_step` / `end_step`) brackets each adversarial
//! event and snapshots the counters into a [`StepMetrics`] history entry.

use crate::metrics::{RecoveryKind, StepKind, StepMetrics};
use dex_graph::adjacency::MultiGraph;
use dex_graph::ids::NodeId;

/// Metered dynamic network. See module docs.
pub struct Network {
    graph: MultiGraph,
    rounds: u64,
    messages: u64,
    topology_changes: u64,
    in_step: bool,
    step_counter: u64,
    /// Per-step metric history (push order = step order).
    pub history: Vec<StepMetrics>,
}

impl Network {
    /// Empty network.
    pub fn new() -> Self {
        Network {
            graph: MultiGraph::new(),
            rounds: 0,
            messages: 0,
            topology_changes: 0,
            in_step: false,
            step_counter: 0,
            history: Vec::new(),
        }
    }

    /// Read-only view of the physical topology.
    #[inline]
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// Current network size.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.num_nodes()
    }

    // ---- adversarial (uncharged) mutations -------------------------------

    /// Adversary inserts an isolated node.
    pub fn adversary_add_node(&mut self, u: NodeId) {
        assert!(
            self.graph.add_node(u),
            "adversary inserted existing node {u}"
        );
    }

    /// Adversary attaches an edge (e.g. the initial connection of an
    /// inserted node). Not charged to the algorithm.
    pub fn adversary_add_edge(&mut self, u: NodeId, v: NodeId) {
        self.graph.add_edge(u, v);
    }

    /// Adversary (or uncharged bootstrap code) removes one edge copy.
    /// Not charged. Returns whether a copy existed.
    pub fn adversary_remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.graph.remove_edge(u, v)
    }

    /// Adversary deletes a node with all incident edges. Not charged.
    pub fn adversary_remove_node(&mut self, u: NodeId) -> usize {
        self.graph
            .remove_node(u)
            .unwrap_or_else(|| panic!("adversary deleted missing node {u}"))
    }

    // ---- algorithm (charged) mutations ------------------------------------

    /// Healing code adds an edge: one topology change.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.graph.add_edge(u, v);
        self.topology_changes += 1;
    }

    /// Healing code removes one edge copy: one topology change.
    /// Returns whether an edge was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.graph.remove_edge(u, v);
        if removed {
            self.topology_changes += 1;
        }
        removed
    }

    /// Healing code adds a node (only used when bootstrapping).
    pub fn add_node(&mut self, u: NodeId) {
        assert!(self.graph.add_node(u), "node {u} already present");
    }

    // ---- cost charging -----------------------------------------------------

    /// Charge `k` synchronous rounds.
    #[inline]
    pub fn charge_rounds(&mut self, k: u64) {
        self.rounds += k;
    }

    /// Charge `k` messages.
    #[inline]
    pub fn charge_messages(&mut self, k: u64) {
        self.messages += k;
    }

    /// Counters since the current step began: `(rounds, messages,
    /// topology_changes)`.
    pub fn current_counters(&self) -> (u64, u64, u64) {
        (self.rounds, self.messages, self.topology_changes)
    }

    // ---- step scoping ------------------------------------------------------

    /// Begin an adversarial step: zero the per-step counters.
    pub fn begin_step(&mut self) {
        assert!(!self.in_step, "begin_step inside an open step");
        self.in_step = true;
        self.step_counter += 1;
        self.rounds = 0;
        self.messages = 0;
        self.topology_changes = 0;
    }

    /// End the step, record and return its metrics.
    pub fn end_step(&mut self, kind: StepKind, recovery: RecoveryKind) -> StepMetrics {
        assert!(self.in_step, "end_step without begin_step");
        self.in_step = false;
        let m = StepMetrics {
            step: self.step_counter,
            kind,
            recovery,
            rounds: self.rounds,
            messages: self.messages,
            topology_changes: self.topology_changes,
            n_after: self.n(),
        };
        self.history.push(m);
        m
    }

    /// Number of completed steps.
    pub fn steps_completed(&self) -> u64 {
        self.step_counter
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn charges_algorithm_edges_only() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.adversary_add_node(n(1));
        net.begin_step();
        net.adversary_add_edge(n(0), n(1)); // attack: free
        net.add_edge(n(0), n(1)); // healing: charged
        net.remove_edge(n(0), n(1)); // healing: charged
        let m = net.end_step(StepKind::Insert, RecoveryKind::Type1);
        assert_eq!(m.topology_changes, 2);
        assert_eq!(net.graph().num_edges(), 1);
    }

    #[test]
    fn step_scope_resets_counters() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.begin_step();
        net.charge_rounds(5);
        net.charge_messages(9);
        let m1 = net.end_step(StepKind::Insert, RecoveryKind::Type1);
        assert_eq!((m1.rounds, m1.messages), (5, 9));
        net.begin_step();
        let m2 = net.end_step(StepKind::Delete, RecoveryKind::Type1);
        assert_eq!((m2.rounds, m2.messages), (0, 0));
        assert_eq!(net.history.len(), 2);
        assert_eq!(net.history[1].step, 2);
    }

    #[test]
    #[should_panic(expected = "begin_step inside an open step")]
    fn nested_steps_rejected() {
        let mut net = Network::new();
        net.begin_step();
        net.begin_step();
    }

    #[test]
    fn adversary_remove_reports_edge_count() {
        let mut net = Network::new();
        for i in 0..3 {
            net.adversary_add_node(n(i));
        }
        net.adversary_add_edge(n(0), n(1));
        net.adversary_add_edge(n(0), n(2));
        assert_eq!(net.adversary_remove_node(n(0)), 2);
        assert_eq!(net.n(), 2);
    }

    #[test]
    fn remove_missing_edge_not_charged() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.adversary_add_node(n(1));
        net.begin_step();
        assert!(!net.remove_edge(n(0), n(1)));
        let m = net.end_step(StepKind::Delete, RecoveryKind::Type1);
        assert_eq!(m.topology_changes, 0);
    }
}
