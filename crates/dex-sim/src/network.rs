//! The metered physical network.
//!
//! Wraps a [`MultiGraph`] and charges every cost the paper reports:
//!
//! * **topology changes** — edges added/removed by the healing algorithm
//!   (`add_edge` / `remove_edge`). The adversary's own attack — attaching a
//!   new node, or a deletion taking its incident edges down — is applied
//!   through the `adversary_*` methods and is *not* charged, matching the
//!   paper's accounting (the algorithm's "number of topology changes").
//! * **messages** and **rounds** — charged explicitly by protocol helpers
//!   ([`crate::tokens`], [`crate::flood`]) and by protocol code in
//!   `dex-core`.
//!
//! A *step scope* (`begin_step` / `end_step`) brackets each adversarial
//! event and snapshots the counters into a [`StepMetrics`] history entry.

use crate::metrics::{RecoveryKind, StepKind, StepMetrics};
use dex_graph::adjacency::MultiGraph;
use dex_graph::ids::NodeId;
use std::collections::VecDeque;

/// How the network records per-step metrics. Long-running large-n drivers
/// (the 1M-node churn benchmarks) switch away from [`HistoryMode::Full`]
/// so a multi-thousand-step run does not hold every [`StepMetrics`] live;
/// running [`StepTotals`] are maintained in every mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryMode {
    /// Keep every step (default — tests and experiment-scale harnesses).
    Full,
    /// Ring buffer of the most recent `k` steps.
    Window(usize),
    /// Keep no per-step history at all.
    Off,
}

/// Running totals over every completed step, maintained regardless of the
/// [`HistoryMode`] — the O(1)-memory summary a streaming driver reads
/// instead of the history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepTotals {
    /// Completed steps.
    pub steps: u64,
    /// Total rounds across all steps.
    pub rounds: u64,
    /// Total messages across all steps.
    pub messages: u64,
    /// Total topology changes across all steps.
    pub topology_changes: u64,
    /// Steps whose recovery was a type-2 flavour.
    pub type2_steps: u64,
    /// Conflict-free waves applied by the parallel batch-heal engine
    /// across all steps (observability only; costs are charged the same
    /// as sequential application).
    pub heal_waves: u64,
    /// Batch steps the adaptive small-n crossover controller routed to
    /// the sequential heal path (observability only).
    pub crossover_steps: u64,
}

/// Metered dynamic network. See module docs.
pub struct Network {
    graph: MultiGraph,
    rounds: u64,
    messages: u64,
    topology_changes: u64,
    waves: u64,
    crossover: bool,
    in_step: bool,
    step_counter: u64,
    mode: HistoryMode,
    /// Per-step metric history (push order = step order; bounded by the
    /// mode's window).
    history: VecDeque<StepMetrics>,
    totals: StepTotals,
}

impl Network {
    /// Empty network recording full history.
    pub fn new() -> Self {
        Network {
            graph: MultiGraph::new(),
            rounds: 0,
            messages: 0,
            topology_changes: 0,
            waves: 0,
            crossover: false,
            in_step: false,
            step_counter: 0,
            mode: HistoryMode::Full,
            history: VecDeque::new(),
            totals: StepTotals::default(),
        }
    }

    /// Change how per-step metrics are retained. Shrinking modes drop the
    /// oldest retained entries immediately; totals are unaffected.
    pub fn set_history_mode(&mut self, mode: HistoryMode) {
        self.mode = mode;
        match mode {
            HistoryMode::Full => {}
            HistoryMode::Window(k) => {
                while self.history.len() > k {
                    self.history.pop_front();
                }
            }
            HistoryMode::Off => self.history.clear(),
        }
    }

    /// The retained per-step history (everything under
    /// [`HistoryMode::Full`], the trailing window under
    /// [`HistoryMode::Window`], empty under [`HistoryMode::Off`]).
    #[inline]
    pub fn history(&self) -> &VecDeque<StepMetrics> {
        &self.history
    }

    /// Running totals over *all* completed steps (mode-independent).
    #[inline]
    pub fn totals(&self) -> StepTotals {
        self.totals
    }

    /// Read-only view of the physical topology.
    #[inline]
    pub fn graph(&self) -> &MultiGraph {
        &self.graph
    }

    /// Current network size.
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.num_nodes()
    }

    // ---- adversarial (uncharged) mutations -------------------------------

    /// Adversary inserts an isolated node.
    pub fn adversary_add_node(&mut self, u: NodeId) {
        self.adversary_add_node_slot(u);
    }

    /// Adversary inserts an isolated node; returns its arena slot (the
    /// batch commit path keeps working in slot space from here on).
    pub fn adversary_add_node_slot(&mut self, u: NodeId) -> u32 {
        self.graph
            .add_node_slot(u)
            .unwrap_or_else(|| panic!("adversary inserted existing node {u}"))
    }

    /// Adversary attaches an edge (e.g. the initial connection of an
    /// inserted node). Not charged to the algorithm.
    pub fn adversary_add_edge(&mut self, u: NodeId, v: NodeId) {
        self.graph.add_edge(u, v);
    }

    /// [`Network::adversary_add_edge`] in slot space (uncharged).
    pub fn adversary_add_edge_slots(&mut self, su: u32, sv: u32) {
        self.graph.add_edge_slots(su, sv);
    }

    /// Adversary (or uncharged bootstrap code) removes one edge copy.
    /// Not charged. Returns whether a copy existed.
    pub fn adversary_remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.graph.remove_edge(u, v)
    }

    /// Adversary deletes a node with all incident edges. Not charged.
    pub fn adversary_remove_node(&mut self, u: NodeId) -> usize {
        self.graph
            .remove_node(u)
            .unwrap_or_else(|| panic!("adversary deleted missing node {u}"))
    }

    // ---- algorithm (charged) mutations ------------------------------------

    /// Healing code adds an edge: one topology change.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.graph.add_edge(u, v);
        self.topology_changes += 1;
    }

    /// Healing code removes one edge copy: one topology change.
    /// Returns whether an edge was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let removed = self.graph.remove_edge(u, v);
        if removed {
            self.topology_changes += 1;
        }
        removed
    }

    /// [`Network::add_edge`] in slot space: the batch commit path resolves
    /// each endpoint slot once per heal plan instead of hashing per edge
    /// instance. Charged identically.
    pub fn add_edge_slots(&mut self, su: u32, sv: u32) {
        self.graph.add_edge_slots(su, sv);
        self.topology_changes += 1;
    }

    /// [`Network::remove_edge`] in slot space. Charged identically.
    pub fn remove_edge_slots(&mut self, su: u32, sv: u32) -> bool {
        let removed = self.graph.remove_edge_slots(su, sv);
        if removed {
            self.topology_changes += 1;
        }
        removed
    }

    /// Healing code adds a node (only used when bootstrapping).
    pub fn add_node(&mut self, u: NodeId) {
        assert!(self.graph.add_node(u), "node {u} already present");
    }

    // ---- cost charging -----------------------------------------------------

    /// Charge `k` synchronous rounds.
    #[inline]
    pub fn charge_rounds(&mut self, k: u64) {
        self.rounds += k;
    }

    /// Charge `k` messages.
    #[inline]
    pub fn charge_messages(&mut self, k: u64) {
        self.messages += k;
    }

    /// Record one conflict-free wave applied by the parallel batch-heal
    /// engine within the current step. Observability only — never affects
    /// the metered rounds/messages/topology counters, which the waved
    /// engine charges exactly as sequential application would.
    #[inline]
    pub fn note_heal_wave(&mut self) {
        self.waves += 1;
    }

    /// Record that the adaptive small-n crossover controller routed the
    /// current batch step to the sequential heal path. Observability only,
    /// like [`Network::note_heal_wave`] — both routes produce bit-identical
    /// state and charges.
    #[inline]
    pub fn note_crossover(&mut self) {
        self.crossover = true;
    }

    /// Counters since the current step began: `(rounds, messages,
    /// topology_changes)`.
    pub fn current_counters(&self) -> (u64, u64, u64) {
        (self.rounds, self.messages, self.topology_changes)
    }

    // ---- step scoping ------------------------------------------------------

    /// Begin an adversarial step: zero the per-step counters.
    pub fn begin_step(&mut self) {
        assert!(!self.in_step, "begin_step inside an open step");
        self.in_step = true;
        self.step_counter += 1;
        self.rounds = 0;
        self.messages = 0;
        self.topology_changes = 0;
        self.waves = 0;
        self.crossover = false;
    }

    /// End the step, record and return its metrics.
    pub fn end_step(&mut self, kind: StepKind, recovery: RecoveryKind) -> StepMetrics {
        assert!(self.in_step, "end_step without begin_step");
        self.in_step = false;
        let m = StepMetrics {
            step: self.step_counter,
            kind,
            recovery,
            rounds: self.rounds,
            messages: self.messages,
            topology_changes: self.topology_changes,
            waves: u32::try_from(self.waves).expect("wave count overflow"),
            crossover: self.crossover,
            n_after: self.n(),
        };
        self.totals.steps += 1;
        self.totals.rounds += m.rounds;
        self.totals.messages += m.messages;
        self.totals.topology_changes += m.topology_changes;
        self.totals.heal_waves += self.waves;
        if self.crossover {
            self.totals.crossover_steps += 1;
        }
        if recovery.is_type2() {
            self.totals.type2_steps += 1;
        }
        match self.mode {
            HistoryMode::Full => self.history.push_back(m),
            HistoryMode::Window(k) => {
                if k > 0 {
                    if self.history.len() == k {
                        self.history.pop_front();
                    }
                    self.history.push_back(m);
                }
            }
            HistoryMode::Off => {}
        }
        m
    }

    /// Number of completed steps.
    pub fn steps_completed(&self) -> u64 {
        self.step_counter
    }
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn charges_algorithm_edges_only() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.adversary_add_node(n(1));
        net.begin_step();
        net.adversary_add_edge(n(0), n(1)); // attack: free
        net.add_edge(n(0), n(1)); // healing: charged
        net.remove_edge(n(0), n(1)); // healing: charged
        let m = net.end_step(StepKind::Insert, RecoveryKind::Type1);
        assert_eq!(m.topology_changes, 2);
        assert_eq!(net.graph().num_edges(), 1);
    }

    #[test]
    fn step_scope_resets_counters() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.begin_step();
        net.charge_rounds(5);
        net.charge_messages(9);
        let m1 = net.end_step(StepKind::Insert, RecoveryKind::Type1);
        assert_eq!((m1.rounds, m1.messages), (5, 9));
        net.begin_step();
        let m2 = net.end_step(StepKind::Delete, RecoveryKind::Type1);
        assert_eq!((m2.rounds, m2.messages), (0, 0));
        assert_eq!(net.history().len(), 2);
        assert_eq!(net.history()[1].step, 2);
    }

    #[test]
    fn window_mode_keeps_trailing_steps_and_totals_everything() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.set_history_mode(HistoryMode::Window(2));
        for i in 0..5u64 {
            net.begin_step();
            net.charge_rounds(i + 1);
            net.end_step(StepKind::Insert, RecoveryKind::Type1);
        }
        assert_eq!(net.history().len(), 2);
        assert_eq!(net.history()[0].step, 4);
        assert_eq!(net.history()[1].step, 5);
        let t = net.totals();
        assert_eq!(t.steps, 5);
        assert_eq!(t.rounds, 1 + 2 + 3 + 4 + 5);
        assert_eq!(t.type2_steps, 0);
    }

    #[test]
    fn off_mode_retains_nothing_but_still_totals() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.set_history_mode(HistoryMode::Off);
        net.begin_step();
        net.charge_messages(7);
        net.end_step(StepKind::Delete, RecoveryKind::InflateSimple);
        assert!(net.history().is_empty());
        assert_eq!(net.totals().messages, 7);
        assert_eq!(net.totals().type2_steps, 1);
        // Switching modes later drops retained entries but keeps totals.
        net.set_history_mode(HistoryMode::Full);
        net.begin_step();
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
        assert_eq!(net.history().len(), 1);
        assert_eq!(net.totals().steps, 2);
    }

    #[test]
    #[should_panic(expected = "begin_step inside an open step")]
    fn nested_steps_rejected() {
        let mut net = Network::new();
        net.begin_step();
        net.begin_step();
    }

    #[test]
    fn adversary_remove_reports_edge_count() {
        let mut net = Network::new();
        for i in 0..3 {
            net.adversary_add_node(n(i));
        }
        net.adversary_add_edge(n(0), n(1));
        net.adversary_add_edge(n(0), n(2));
        assert_eq!(net.adversary_remove_node(n(0)), 2);
        assert_eq!(net.n(), 2);
    }

    #[test]
    fn remove_missing_edge_not_charged() {
        let mut net = Network::new();
        net.adversary_add_node(n(0));
        net.adversary_add_node(n(1));
        net.begin_step();
        assert!(!net.remove_edge(n(0), n(1)));
        let m = net.end_step(StepKind::Delete, RecoveryKind::Type1);
        assert_eq!(m.topology_changes, 0);
    }
}
