//! Cross-module tests for the simulator substrate: metering composes
//! correctly across walks, floods, and batch routing within one step.

use dex_graph::ids::NodeId;
use dex_sim::flood::flood_count;
use dex_sim::rng::{Purpose, SeedSpace};
use dex_sim::tokens::{random_walk_search, route_batch, route_path};
use dex_sim::{Network, RecoveryKind, StepKind, Summary};

fn expander_net(p: u64) -> Network {
    let z = dex_graph::pcycle::PCycle::new(p);
    let mut net = Network::new();
    for x in 0..p {
        net.adversary_add_node(NodeId(x));
    }
    for (a, b) in z.edges() {
        net.adversary_add_edge(NodeId(a.0), NodeId(b.0));
    }
    net
}

#[test]
fn mixed_operations_accumulate_in_one_step() {
    let mut net = expander_net(101);
    let seeds = SeedSpace::new(5);
    net.begin_step();

    let mut rng = seeds.stream(Purpose::InsertWalk, &[1]);
    let walk = random_walk_search(&mut net, NodeId(0), 30, None, |u| u == NodeId(50), &mut rng);
    let (r1, m1, _) = net.current_counters();
    assert_eq!(r1, walk.hops);
    assert_eq!(m1, walk.hops);

    let flood = flood_count(&mut net, NodeId(0), |u| u.0 % 2 == 0);
    assert_eq!(flood.n, 101);
    assert_eq!(flood.matching, 51);
    let (r2, m2, _) = net.current_counters();
    assert_eq!(r2, r1 + flood.rounds);
    assert_eq!(m2, m1 + flood.messages);

    route_path(&mut net, &[NodeId(0), NodeId(1), NodeId(2)]);
    let (r3, m3, _) = net.current_counters();
    assert_eq!(r3, r2 + 2);
    assert_eq!(m3, m2 + 2);

    let metrics = net.end_step(StepKind::Insert, RecoveryKind::Type1);
    assert_eq!(metrics.rounds, r3);
    assert_eq!(metrics.messages, m3);
    assert_eq!(metrics.topology_changes, 0);
}

#[test]
fn walk_on_expander_finds_large_targets_quickly() {
    // On Z(499): a target set of half the nodes is hit within a few hops
    // almost always — Lemma 2's practical face.
    let mut net = expander_net(499);
    let seeds = SeedSpace::new(6);
    let mut hops = Vec::new();
    net.begin_step();
    for i in 0..200u64 {
        let mut rng = seeds.stream(Purpose::InsertWalk, &[i]);
        let out = random_walk_search(&mut net, NodeId(0), 100, None, |u| u.0 % 2 == 1, &mut rng);
        assert!(out.hit.is_some());
        hops.push(out.hops);
    }
    net.end_step(StepKind::Insert, RecoveryKind::Type1);
    let s = Summary::of(hops);
    assert!(s.p95 <= 10, "p95 hops {} to hit half the graph", s.p95);
}

#[test]
fn congested_routing_is_conserving() {
    // Total messages equals total real hops regardless of capacity.
    let mut paths = Vec::new();
    for i in 0..20u64 {
        paths.push(vec![NodeId(i), NodeId(i + 1), NodeId(i + 2)]);
    }
    for cap in [1usize, 2, 8] {
        let mut net = expander_net(101);
        net.begin_step();
        route_batch(&mut net, &paths, cap);
        let (_, m, _) = net.current_counters();
        assert_eq!(m, 40, "cap {cap}: messages {m}");
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }
}

#[test]
fn history_records_every_step_in_order() {
    let mut net = expander_net(23);
    for i in 0..5 {
        net.begin_step();
        net.charge_rounds(i);
        net.end_step(StepKind::Insert, RecoveryKind::Type1);
    }
    assert_eq!(net.history().len(), 5);
    for (i, m) in net.history().iter().enumerate() {
        assert_eq!(m.step, i as u64 + 1);
        assert_eq!(m.rounds, i as u64);
    }
}
