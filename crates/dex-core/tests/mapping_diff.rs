//! Differential tests: the slot-arena Φ against the legacy HashMap Φ.
//!
//! A long random insert/delete/batch-style op sequence is driven through
//! both implementations; after *every* operation the observable state —
//! owner of every touched vertex, every `Sim` slice (order included: both
//! implementations use push + swap-remove, so slices must match exactly),
//! load, `|Spare|`, `|Low|`, node and vertex counts — must be identical,
//! and the slot implementation's internal structures must validate.

use dex_core::mapping::oracle::HashMapping;
use dex_core::VirtualMapping;
use dex_graph::ids::{NodeId, VertexId};
use proptest::prelude::*;

/// One scripted operation over a bounded vertex/node universe.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Assign vertex `z` to node `u` (skipped if `z` is owned).
    Assign(u64, u64),
    /// Unassign vertex `z` (skipped if unowned).
    Unassign(u64),
    /// Transfer vertex `z` to node `u` (skipped if unowned).
    Transfer(u64, u64),
    /// Batch: assign a run of `k` consecutive vertices starting at `z`
    /// to node `u` (the type-2 rebuild / batch-insert shape).
    AssignRun(u64, u64, u8),
    /// Batch: unassign a run of `k` consecutive vertices starting at `z`
    /// (the batch-delete shape).
    UnassignRun(u64, u8),
}

const VERTS: u64 = 512;
const NODES: u64 = 37;

fn arb_op() -> impl Strategy<Value = Op> {
    (0u8..8, 0u64..VERTS, 0u64..NODES, 0u8..9).prop_map(|(kind, z, u, k)| match kind % 8 {
        0 | 1 => Op::Assign(z, u),
        2 => Op::Unassign(z),
        3..=5 => Op::Transfer(z, u),
        6 => Op::AssignRun(z, u, k % 9 + 1),
        _ => Op::UnassignRun(z, k % 9 + 1),
    })
}

/// Apply `op` to both implementations, asserting identical behaviour.
fn apply_both(fast: &mut VirtualMapping, slow: &mut HashMapping, op: Op) {
    let one = |fast: &mut VirtualMapping, slow: &mut HashMapping, z: u64, u: Option<u64>| {
        let z = VertexId(z);
        let owned = slow.owner(z).is_some();
        assert_eq!(fast.owner(z), slow.owner(z));
        match (u, owned) {
            (Some(u), false) => {
                fast.assign(z, NodeId(u));
                slow.assign(z, NodeId(u));
            }
            (Some(u), true) => {
                assert_eq!(fast.transfer(z, NodeId(u)), slow.transfer(z, NodeId(u)));
            }
            (None, true) => {
                assert_eq!(fast.unassign(z), slow.unassign(z));
            }
            (None, false) => {}
        }
    };
    match op {
        Op::Assign(z, u) => {
            if slow.owner(VertexId(z)).is_none() {
                one(fast, slow, z, Some(u));
            }
        }
        Op::Transfer(z, u) => {
            if slow.owner(VertexId(z)).is_some() {
                one(fast, slow, z, Some(u));
            }
        }
        Op::Unassign(z) => one(fast, slow, z, None),
        Op::AssignRun(z, u, k) => {
            for i in 0..k as u64 {
                let zi = (z + i) % VERTS;
                if slow.owner(VertexId(zi)).is_none() {
                    one(fast, slow, zi, Some((u + i) % NODES));
                }
            }
        }
        Op::UnassignRun(z, k) => {
            for i in 0..k as u64 {
                one(fast, slow, (z + i) % VERTS, None);
            }
        }
    }
}

/// Full observable-state comparison.
fn assert_same(fast: &VirtualMapping, slow: &HashMapping) {
    assert_eq!(fast.num_vertices(), slow.num_vertices());
    assert_eq!(fast.num_nodes(), slow.num_nodes());
    assert_eq!(fast.spare_count(), slow.spare_count());
    assert_eq!(fast.low_count(), slow.low_count());
    assert_eq!(fast.max_load(), slow.max_load());
    for u in 0..NODES {
        assert_eq!(fast.load(NodeId(u)), slow.load(NodeId(u)), "load({u})");
        assert_eq!(fast.sim(NodeId(u)), slow.sim(NodeId(u)), "sim({u})");
    }
    for z in 0..VERTS {
        assert_eq!(
            fast.owner(VertexId(z)),
            slow.owner(VertexId(z)),
            "owner({z})"
        );
    }
    // Canonical-order entries: the dense scan vs the collect-and-sort
    // oracle path.
    assert_eq!(fast.entries_sorted(), slow.entries_sorted());
    let scanned: Vec<_> = fast.entries().collect();
    assert_eq!(scanned, slow.entries_sorted());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn slot_phi_matches_hashmap_phi_on_random_scripts(
        ops in proptest::collection::vec(arb_op(), 1..400)
    ) {
        let mut fast = VirtualMapping::new(8);
        let mut slow = HashMapping::new(8);
        for (i, &op) in ops.iter().enumerate() {
            apply_both(&mut fast, &mut slow, op);
            // Counters/owners after every op; full deep compare periodically
            // (the deep compare is O(V + N·load)).
            prop_assert_eq!(fast.num_vertices(), slow.num_vertices());
            prop_assert_eq!(fast.spare_count(), slow.spare_count());
            prop_assert_eq!(fast.low_count(), slow.low_count());
            if i % 16 == 0 {
                fast.validate().map_err(proptest::prelude::TestCaseError::fail)?;
                assert_same(&fast, &slow);
            }
        }
        fast.validate().map_err(proptest::prelude::TestCaseError::fail)?;
        assert_same(&fast, &slow);
    }

    #[test]
    fn slot_phi_survives_dense_fill_and_drain(
        seed in any::<u64>()
    ) {
        // Type-2 shape: fill the whole vertex space, churn, drain.
        let mut fast = VirtualMapping::new(8);
        let mut slow = HashMapping::new(8);
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 11
        };
        for z in 0..VERTS {
            let u = next() % NODES;
            fast.assign(VertexId(z), NodeId(u));
            slow.assign(VertexId(z), NodeId(u));
        }
        assert_same(&fast, &slow);
        for _ in 0..200 {
            let z = next() % VERTS;
            let u = next() % NODES;
            assert_eq!(fast.transfer(VertexId(z), NodeId(u)), slow.transfer(VertexId(z), NodeId(u)));
        }
        fast.validate().map_err(proptest::prelude::TestCaseError::fail)?;
        assert_same(&fast, &slow);
        for z in 0..VERTS {
            assert_eq!(fast.unassign(VertexId(z)), slow.unassign(VertexId(z)));
        }
        prop_assert_eq!(fast.num_vertices(), 0);
        prop_assert_eq!(fast.num_nodes(), 0);
        fast.validate().map_err(proptest::prelude::TestCaseError::fail)?;
    }
}
