//! Property-based tests: arbitrary churn scripts never break the
//! structural invariants, in either type-2 mode.

use dex_core::{invariants, DexConfig, DexNetwork};
use dex_graph::ids::NodeId;
use proptest::prelude::*;

/// A churn script: per step, insert? plus an index used to pick the
/// attach point / victim among the live nodes.
fn arb_script(max_len: usize) -> impl Strategy<Value = Vec<(bool, usize)>> {
    proptest::collection::vec((any::<bool>(), 0usize..1 << 16), 1..max_len)
}

fn run_script(cfg: DexConfig, script: &[(bool, usize)]) -> Result<(), TestCaseError> {
    let mut net = DexNetwork::bootstrap(cfg, 10);
    let mut next = 1_000_000u64;
    for &(insert, raw) in script {
        let live = net.node_ids();
        let idx = raw % live.len();
        if insert || live.len() <= 4 {
            net.insert(NodeId(next), live[idx]);
            next += 1;
        } else {
            net.delete(live[idx]);
        }
        prop_assert!(
            invariants::check(&net).is_ok(),
            "invariant broke: {:?}",
            invariants::check(&net)
        );
    }
    // Structural health at the end.
    prop_assert!(net.max_total_load() <= net.cfg.max_load_staggered());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simplified_mode_survives_arbitrary_scripts(script in arb_script(80)) {
        run_script(DexConfig::new(1).simplified(), &script)?;
    }

    #[test]
    fn staggered_mode_survives_arbitrary_scripts(script in arb_script(80)) {
        run_script(DexConfig::new(2).staggered(), &script)?;
    }

    #[test]
    fn insert_heavy_scripts_trigger_clean_inflations(
        raws in proptest::collection::vec(0usize..1 << 16, 150..260)
    ) {
        // Pure insertion: guaranteed to exhaust the initial spares.
        let mut net = DexNetwork::bootstrap(DexConfig::new(3).simplified(), 8);
        for (i, raw) in raws.into_iter().enumerate() {
            let live = net.node_ids();
            net.insert(NodeId(2_000_000 + i as u64), live[raw % live.len()]);
            prop_assert!(invariants::check(&net).is_ok());
        }
        prop_assert!(net.walk_stats.type2 >= 1, "no inflation after filling spares");
        prop_assert!(net.spectral_gap() > 0.01);
    }

    #[test]
    fn dht_agrees_with_store_semantics(
        keys in proptest::collection::vec(0u64..64, 1..60),
        churn in arb_script(25)
    ) {
        // Model-based: the DHT must behave exactly like a plain map,
        // regardless of interleaved churn. BTreeMap (not HashMap): the
        // model is iterated to drive the lookup phase, and a RandomState
        // order would make proptest failures seed-irreproducible.
        let mut net = DexNetwork::bootstrap(DexConfig::new(4).simplified(), 12);
        let mut model = std::collections::BTreeMap::new();
        let mut next = 3_000_000u64;
        for (i, &k) in keys.iter().enumerate() {
            let live = net.node_ids();
            let from = live[i % live.len()];
            net.dht_insert(from, k, k * 31 + i as u64);
            model.insert(k, k * 31 + i as u64);
            if let Some(&(insert, raw)) = churn.get(i % churn.len()) {
                let live = net.node_ids();
                let idx = raw % live.len();
                if insert || live.len() <= 4 {
                    net.insert(NodeId(next), live[idx]);
                    next += 1;
                } else {
                    net.delete(live[idx]);
                }
            }
        }
        for (&k, &v) in &model {
            let from = net.node_ids()[0];
            let (got, _) = net.dht_lookup(from, k);
            prop_assert_eq!(got, Some(v), "key {}", k);
        }
    }
}
