//! End-to-end churn tests with full invariant checking after every step.

use dex_core::{invariants, DexConfig, DexNetwork};
use dex_graph::ids::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_live_node(dex: &DexNetwork, rng: &mut StdRng) -> NodeId {
    let ids = dex.node_ids();
    ids[rng.random_range(0..ids.len())]
}

/// Mixed random churn driver; checks invariants after every step.
fn churn(mut dex: DexNetwork, steps: usize, p_insert: f64, seed: u64) -> DexNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = dex.fresh_node_id().0.max(1_000_000);
    invariants::assert_ok(&dex);
    for s in 0..steps {
        if rng.random_bool(p_insert) || dex.n() <= 4 {
            let u = NodeId(next_id);
            next_id += 1;
            let v = random_live_node(&dex, &mut rng);
            dex.insert(u, v);
        } else {
            let victim = random_live_node(&dex, &mut rng);
            dex.delete(victim);
        }
        if let Err(e) = invariants::check(&dex) {
            panic!("step {s}: {e}\n{dex:?}");
        }
    }
    dex
}

#[test]
fn bootstrap_is_valid_and_expanding() {
    for n0 in [2u64, 5, 16, 64] {
        let dex = DexNetwork::bootstrap(DexConfig::new(1), n0);
        invariants::assert_ok(&dex);
        assert_eq!(dex.n(), n0 as usize);
        assert!(dex.cycle.p() > 4 * n0 && dex.cycle.p() < 8 * n0);
        let gap = dex.spectral_gap();
        assert!(gap > 0.01, "bootstrap n0={n0} gap {gap}");
    }
}

#[test]
fn simplified_balanced_churn() {
    let dex = DexNetwork::bootstrap(DexConfig::new(7).simplified(), 16);
    let dex = churn(dex, 300, 0.5, 77);
    assert!(dex.spectral_gap() > 0.01);
}

#[test]
fn simplified_growth_forces_inflation() {
    let dex = DexNetwork::bootstrap(DexConfig::new(8).simplified(), 8);
    // Insert-heavy: spares run out after ~p0 - n0 insertions.
    let dex = churn(dex, 400, 0.95, 88);
    assert!(dex.n() > 300, "n = {}", dex.n());
    assert!(
        dex.walk_stats.type2 >= 1,
        "expected at least one inflation: {:?}",
        dex.walk_stats
    );
    assert!(dex.spectral_gap() > 0.01);
}

#[test]
fn simplified_shrink_forces_deflation() {
    let cfg = DexConfig::new(9).simplified();
    let mut dex = DexNetwork::bootstrap(cfg, 8);
    // Grow first (forces inflation), then shrink hard.
    dex = churn(dex, 500, 0.97, 99);
    let grown = dex.n();
    dex = churn(dex, grown - 8, 0.0, 100);
    assert!(dex.n() <= 10);
    assert!(dex.spectral_gap() > 0.01);
}

#[test]
fn staggered_balanced_churn() {
    let dex = DexNetwork::bootstrap(DexConfig::new(10).staggered(), 16);
    let dex = churn(dex, 300, 0.5, 111);
    assert!(dex.spectral_gap() > 0.005);
}

#[test]
fn staggered_growth_triggers_inflation_windows() {
    let dex = DexNetwork::bootstrap(DexConfig::new(11).staggered(), 8);
    let dex = churn(dex, 600, 0.95, 122);
    assert!(dex.n() > 400);
    // Every step must stay cheap: O(1) topology changes outside staggered
    // windows is checked in the metrics tests; here we check health.
    assert!(dex.spectral_gap() > 0.005);
}

#[test]
fn staggered_shrink_triggers_deflation_windows() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(12).staggered(), 8);
    dex = churn(dex, 600, 0.97, 133);
    let grown = dex.n();
    dex = churn(dex, grown - 8, 0.02, 134);
    // With p_insert = 0.02 the expected floor is 8 + 0.04·grown, so assert
    // the >90% shrink (deflation windows engaged) rather than a constant
    // that depends on the exact RNG stream.
    assert!(
        dex.n() <= 8 + grown / 10,
        "n {} after shrink from {grown}",
        dex.n()
    );
    assert!(dex.spectral_gap() > 0.005);
}

#[test]
fn deterministic_replay() {
    let run = |seed| {
        let dex = DexNetwork::bootstrap(DexConfig::new(31).simplified(), 12);
        let dex = churn(dex, 120, 0.6, seed);
        let mut edges = dex.graph().edges();
        edges.sort();
        (dex.n(), edges, dex.net.history().len())
    };
    assert_eq!(run(42), run(42));
}
