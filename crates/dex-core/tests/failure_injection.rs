//! Failure injection: hand-crafted worst-case adversarial sequences that
//! target specific mechanisms of the algorithm.

use dex_core::{invariants, DexConfig, DexNetwork, RecoveryMode};
use dex_graph::ids::{NodeId, VertexId};

fn cfg(mode: RecoveryMode, seed: u64) -> DexConfig {
    match mode {
        RecoveryMode::Simplified => DexConfig::new(seed).simplified(),
        RecoveryMode::Staggered => DexConfig::new(seed).staggered(),
    }
}

const MODES: [RecoveryMode; 2] = [RecoveryMode::Simplified, RecoveryMode::Staggered];

/// Kill the entire founding population: every node that bootstrapped the
/// network dies; only adversarially inserted nodes remain.
#[test]
fn genocide_of_the_founders() {
    for mode in MODES {
        let mut net = DexNetwork::bootstrap(cfg(mode, 1), 16);
        // First, add 32 newcomers.
        for i in 0..32u64 {
            let live = net.node_ids();
            net.insert(NodeId(1000 + i), live[i as usize % live.len()]);
        }
        // Then delete all 16 founders (ids 0..16).
        for i in 0..16u64 {
            net.delete(NodeId(i));
            invariants::assert_ok(&net);
        }
        assert_eq!(net.n(), 32);
        assert!(net.spectral_gap() > 0.01, "{mode:?}");
    }
}

/// Always delete the node that rescued the previous deletion — a chain of
/// rescuer assassinations.
#[test]
fn rescuer_assassination_chain() {
    for mode in MODES {
        let mut net = DexNetwork::bootstrap(cfg(mode, 2), 24);
        // Find the current rescuer convention: the minimum-id neighbor.
        let mut victim = net.node_ids()[5];
        for step in 0..40 {
            // The rescuer of `victim` will be its min-id neighbor.
            let mut nbrs: Vec<NodeId> = net
                .graph()
                .neighbors(victim)
                .iter()
                .filter(|&w| w != victim)
                .collect();
            nbrs.sort_unstable();
            let rescuer = nbrs[0];
            net.delete(victim);
            invariants::assert_ok(&net);
            // Keep size up and aim at the rescuer next.
            let live = net.node_ids();
            net.insert(NodeId(50_000 + step), live[step as usize % live.len()]);
            victim = if net.graph().has_node(rescuer) {
                rescuer
            } else {
                net.node_ids()[0]
            };
        }
    }
}

/// Hotspot: every insertion attaches to the same node.
#[test]
fn hotspot_attachment() {
    for mode in MODES {
        let mut net = DexNetwork::bootstrap(cfg(mode, 3), 8);
        let hotspot = net.node_ids()[0];
        for i in 0..120u64 {
            net.insert(NodeId(2000 + i), hotspot);
            invariants::assert_ok(&net);
        }
        // The hotspot must not have accumulated degree or load.
        assert!(
            net.map.load(hotspot) <= net.cfg.max_load(),
            "{mode:?}: hotspot load {}",
            net.map.load(hotspot)
        );
        assert!(net.graph().degree(hotspot) <= 3 * net.cfg.max_load() as usize);
    }
}

/// Orphan the newcomer: delete the attach point right after each insert.
#[test]
fn attach_point_assassination() {
    for mode in MODES {
        let mut net = DexNetwork::bootstrap(cfg(mode, 4), 16);
        for i in 0..40u64 {
            let live = net.node_ids();
            let attach = live[(i as usize * 3) % live.len()];
            let id = NodeId(3000 + i);
            net.insert(id, attach);
            if net.graph().has_node(attach) && net.n() > 4 {
                net.delete(attach);
            }
            invariants::assert_ok(&net);
        }
        assert!(net.spectral_gap() > 0.01);
    }
}

/// Follow the vertices: always delete the owner of virtual vertex 0 (the
/// coordinator seat) *and* the node that most recently received a
/// transferred vertex.
#[test]
fn follow_the_coordinator_seat() {
    for mode in MODES {
        let mut net = DexNetwork::bootstrap(cfg(mode, 5), 20);
        for i in 0..60u64 {
            let coord = net.map.owner_of(VertexId(0));
            if net.n() > 6 {
                net.delete(coord);
                invariants::assert_ok(&net);
            }
            let live = net.node_ids();
            net.insert(NodeId(4000 + i), live[i as usize % live.len()]);
            invariants::assert_ok(&net);
        }
        // Vertex 0 always has a live owner.
        assert!(net.graph().has_node(net.map.owner_of(VertexId(0))));
    }
}

/// Deletions in strictly increasing id order (always the rescuer-by-
/// convention side of the id space).
#[test]
fn ordered_sweep_deletions() {
    for mode in MODES {
        let mut net = DexNetwork::bootstrap(cfg(mode, 6), 32);
        for i in 0..24u64 {
            // Delete the smallest id (often a recent rescuer).
            let victim = net.node_ids()[0];
            net.delete(victim);
            let live = net.node_ids();
            net.insert(NodeId(6000 + i), live[0]);
            invariants::assert_ok(&net);
        }
    }
}

/// Churn hammered directly onto a mid-flight staggered operation: start an
/// inflation, then delete aggressively among the nodes holding staged
/// vertices (max staged load first).
#[test]
fn staggered_operation_under_fire() {
    let mut net = DexNetwork::bootstrap(DexConfig::new(7).staggered(), 8);
    // Pure growth until an operation starts.
    let mut i = 0u64;
    while !net.type2_in_progress() {
        let live = net.node_ids();
        net.insert(NodeId(7000 + i), live[i as usize % live.len()]);
        i += 1;
        assert!(i < 30_000, "staggered inflation never started");
    }
    // Now alternate: delete a heavy staged holder, insert a newcomer.
    let mut steps_in_op = 0;
    while net.type2_in_progress() && steps_in_op < 400 {
        let heavy = net
            .node_ids()
            .into_iter()
            .max_by_key(|&u| net.staged_load(u) + net.map.load(u))
            .unwrap();
        if net.n() > 6 {
            net.delete(heavy);
            invariants::assert_ok(&net);
        }
        let live = net.node_ids();
        net.insert(NodeId(8000 + steps_in_op), live[0]);
        invariants::assert_ok(&net);
        steps_in_op += 1;
    }
    // Operation either finished cleanly or is still healthy.
    invariants::assert_ok(&net);
    assert!(net.spectral_gap() > 0.003);
}

/// Deep shrink through several deflations: grow large, then delete down to
/// the minimum in one unbroken run.
#[test]
fn collapse_through_multiple_deflations() {
    for mode in MODES {
        let mut net = DexNetwork::bootstrap(cfg(mode, 8), 8);
        for i in 0..800u64 {
            let live = net.node_ids();
            net.insert(NodeId(9000 + i), live[i as usize % live.len()]);
        }
        let p_grown = net.cycle.p();
        let mut guard = 0;
        while net.n() > 6 {
            let victim = net.node_ids()[guard % 3];
            net.delete(victim);
            guard += 1;
            if guard % 50 == 0 {
                invariants::assert_ok(&net);
            }
        }
        invariants::assert_ok(&net);
        assert!(net.cycle.p() < p_grown, "{mode:?}: no deflation happened");
        assert!(net.spectral_gap() > 0.01);
    }
}
