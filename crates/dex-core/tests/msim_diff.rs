//! Differential tests for the fault-injected execution mode
//! (`dex_core::faulted` over `dex_sim::msim`): a network with a **zero**
//! fault spec installed must be bit-identical to a plain network — same
//! graph arena, same Φ, same DHT contents, same per-step rounds and
//! messages, same walk statistics — because the message-level walk
//! replays exactly the RNG stream and reservoir logic of the centralized
//! `random_walk_search`, and unit-latency scheduling charges exactly one
//! round and one message per hop.
//!
//! Random scripts mix single ops, wave-sized batches (≥ 8 ops engage the
//! parallel wave engine in *both* worlds — the faulted subject plans its
//! walks on the message schedule and stays waved), flood- and
//! type-2-triggering churn, and DHT puts/gets. The subject runs at
//! simulator fan-out 1, 3 and 8 workers; everything must match the
//! oracle bit-for-bit in all three.

use dex_core::{invariants, DexConfig, DexNetwork, FaultSpec};
use dex_graph::ids::NodeId;
use dex_sim::rng::splitmix64;
use dex_sim::StepMetrics;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Step {
    SingleInsert,
    SingleDelete,
    /// Batch insert of `k` fresh nodes (k ≥ 8 engages the wave engine
    /// in both the subject and the oracle).
    Inserts(u8),
    /// Batch delete of `k` distinct victims.
    Deletes(u8),
    /// DHT put of a scripted key/value.
    DhtPut,
    /// DHT lookup of a scripted (possibly absent) key.
    DhtGet,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0u8..6, 1u8..20).prop_map(|(kind, k)| match kind {
        0 => Step::SingleInsert,
        1 => Step::SingleDelete,
        2 => Step::Inserts(k.max(8)),
        3 => Step::Deletes(k),
        4 => Step::DhtPut,
        _ => Step::DhtGet,
    })
}

struct Script {
    live: Vec<NodeId>,
    next_id: u64,
    state: u64,
}

impl Script {
    fn new(dex: &DexNetwork, seed: u64) -> Self {
        let live = dex.node_ids();
        let next_id = live.iter().map(|u| u.0).max().unwrap_or(0) + 1;
        Script {
            live,
            next_id,
            state: splitmix64(seed),
        }
    }

    fn rnd(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    fn pick_live(&mut self) -> NodeId {
        let i = (self.rnd() % self.live.len() as u64) as usize;
        self.live[i]
    }

    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn joins(&mut self, k: u8) -> Vec<(NodeId, NodeId)> {
        let mut joins: Vec<(NodeId, NodeId)> = Vec::with_capacity(k as usize);
        for _ in 0..k {
            let attach = loop {
                let v = self.pick_live();
                if joins.iter().filter(|&&(_, a)| a == v).count() < 8 {
                    break v;
                }
            };
            joins.push((self.fresh(), attach));
        }
        joins
    }

    fn victims(&mut self, k: u8) -> Option<Vec<NodeId>> {
        let k = k as usize;
        if self.live.len() < 2 * k + 48 {
            return None;
        }
        let mut victims: Vec<NodeId> = Vec::with_capacity(k);
        while victims.len() < k {
            let v = self.pick_live();
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        self.live.retain(|u| !victims.contains(u));
        Some(victims)
    }
}

fn assert_metrics_match(a: &StepMetrics, b: &StepMetrics) {
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.recovery, b.recovery, "recovery kind diverged");
    assert_eq!(a.rounds, b.rounds, "charged rounds diverged");
    assert_eq!(a.messages, b.messages, "charged messages diverged");
    assert_eq!(
        a.topology_changes, b.topology_changes,
        "topology changes diverged"
    );
    assert_eq!(a.n_after, b.n_after);
}

/// Deep bit-level comparison (graph arena order, Φ, DHT, walk stats,
/// totals) — the same notion of identity `tests/batch_par.rs` uses, plus
/// the DHT store.
fn assert_networks_identical(a: &DexNetwork, b: &DexNetwork) {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.cycle.p(), b.cycle.p());
    assert_eq!(a.graph().num_edges(), b.graph().num_edges());
    let nodes_a: Vec<NodeId> = a.graph().nodes().collect();
    let nodes_b: Vec<NodeId> = b.graph().nodes().collect();
    assert_eq!(nodes_a, nodes_b, "slot allocation order diverged");
    for &u in &nodes_a {
        let na: Vec<NodeId> = a.graph().neighbors(u).iter().collect();
        let nb: Vec<NodeId> = b.graph().neighbors(u).iter().collect();
        assert_eq!(na, nb, "adjacency of {u} diverged (order included)");
        assert_eq!(a.map.sim(u), b.map.sim(u), "Sim({u}) diverged");
        assert_eq!(a.map.load(u), b.map.load(u));
    }
    assert_eq!(a.map.entries_sorted(), b.map.entries_sorted());
    assert_eq!(
        a.dht_store().entries_sorted(),
        b.dht_store().entries_sorted(),
        "DHT contents diverged"
    );
    assert_eq!(a.walk_stats.attempts, b.walk_stats.attempts);
    assert_eq!(a.walk_stats.hits, b.walk_stats.hits);
    assert_eq!(a.walk_stats.misses, b.walk_stats.misses);
    assert_eq!(a.walk_stats.type2, b.walk_stats.type2);
    let ta = a.net.totals();
    let tb = b.net.totals();
    assert_eq!(ta.rounds, tb.rounds, "total rounds diverged");
    assert_eq!(ta.messages, tb.messages, "total messages diverged");
    assert_eq!(ta.topology_changes, tb.topology_changes);
    assert_eq!(ta.type2_steps, tb.type2_steps);
}

/// Drive the same script through a zero-fault message-level subject and
/// the centralized oracle. Returns the subject so callers can assert on
/// what the script actually exercised (misses, type-2 steps, …).
fn run_script(n0: u64, seed: u64, steps: &[Step], threads: usize) -> DexNetwork {
    let cfg = DexConfig::new(splitmix64(seed ^ 0xfa17)).simplified();
    let mut subject = DexNetwork::bootstrap(cfg, n0);
    let mut oracle = DexNetwork::bootstrap(cfg, n0);
    subject.set_heal_threads(threads);
    subject.set_faults(Some(FaultSpec::zero()));
    let mut script = Script::new(&subject, seed ^ 0x51ff);
    for (i, &step) in steps.iter().enumerate() {
        let pair = match step {
            Step::SingleInsert => {
                let attach = script.pick_live();
                let u = script.fresh();
                let ms = subject.insert(u, attach);
                let mo = oracle.insert(u, attach);
                script.live.push(u);
                Some((ms, mo))
            }
            Step::SingleDelete => {
                if script.live.len() < 64 {
                    None
                } else {
                    let idx = (script.rnd() % script.live.len() as u64) as usize;
                    let victim = script.live.swap_remove(idx);
                    Some((subject.delete(victim), oracle.delete(victim)))
                }
            }
            Step::Inserts(k) => {
                let joins = script.joins(k);
                let ms = subject.insert_batch(&joins);
                let mo = oracle.insert_batch(&joins);
                script.live.extend(joins.iter().map(|&(u, _)| u));
                Some((ms, mo))
            }
            Step::Deletes(k) => script
                .victims(k)
                .map(|v| (subject.delete_batch(&v), oracle.delete_batch(&v))),
            Step::DhtPut => {
                let from = script.pick_live();
                let key = script.rnd() % 512;
                let val = script.rnd();
                Some((
                    subject.dht_insert(from, key, val),
                    oracle.dht_insert(from, key, val),
                ))
            }
            Step::DhtGet => {
                let from = script.pick_live();
                let key = script.rnd() % 512;
                let (vs, ms) = subject.dht_lookup(from, key);
                let (vo, mo) = oracle.dht_lookup(from, key);
                assert_eq!(vs, vo, "lookup value diverged");
                Some((ms, mo))
            }
        };
        if let Some((ms, mo)) = pair {
            assert_metrics_match(&ms, &mo);
        }
        if i % 4 == 3 {
            assert_networks_identical(&subject, &oracle);
        }
    }
    assert_networks_identical(&subject, &oracle);
    // The zero spec must never have engaged any fault machinery.
    let fs = subject.fault_stats();
    assert_eq!(fs.sent, fs.delivered, "zero faults lost a message");
    assert_eq!(fs.timeouts, 0);
    assert_eq!(fs.reinitiations, 0);
    assert_eq!(fs.heal_fallbacks, 0);
    assert_eq!(fs.dht_abandoned, 0);
    assert_eq!(fs.flood_retries, 0, "zero faults re-flooded");
    assert_eq!(fs.floods_partial, 0, "zero faults degraded a flood");
    assert_eq!(fs.type2_rollbacks, 0, "zero faults rolled back a type-2");
    assert_eq!(fs.type2_reinitiations, 0);
    assert_eq!(fs.wave_replans, 0, "replans counted under a zero spec");
    assert!(fs.sent > 0, "script never exercised the simulator");
    invariants::assert_ok(&subject);
    subject
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn zero_fault_simulator_matches_centralized(
        seed in any::<u64>(),
        steps in proptest::collection::vec(arb_step(), 6..20),
    ) {
        run_script(160, seed, &steps, 1);
    }

    #[test]
    fn zero_fault_simulator_matches_at_higher_fanout(
        seed in any::<u64>(),
        steps in proptest::collection::vec(arb_step(), 4..12),
    ) {
        // Simulator delivery fan-out at 3 and 8 workers: the message
        // schedule must be thread-count invariant, so both still match
        // the centralized oracle bit-for-bit.
        run_script(160, seed, &steps, 3);
        run_script(160, seed, &steps, 8);
    }
}

/// A fixed deterministic spot check that stays cheap enough for `--smoke`
/// environments and pins one concrete script forever.
#[test]
fn zero_fault_fixed_script_matches() {
    let steps = [
        Step::Inserts(10),
        Step::DhtPut,
        Step::SingleInsert,
        Step::Deletes(6),
        Step::DhtGet,
        Step::SingleDelete,
        Step::Inserts(8),
        Step::DhtPut,
        Step::DhtGet,
        Step::Deletes(9),
    ];
    for threads in [1usize, 3, 8] {
        run_script(120, 0xbeef, &steps, threads);
    }
}

/// Flood- and type-2-triggering script: a tiny bootstrap (p ∈ (64, 128))
/// flooded with insert-heavy churn runs the spare pool dry, forcing walk
/// misses (→ message-scheduled flood counts) and at least one inflation
/// (→ message-scheduled type-2 coordination). The zero-fault subject
/// must still match the centralized oracle bit-for-bit at every fan-out.
#[test]
fn zero_fault_flood_and_type2_script_matches() {
    let mut steps = Vec::new();
    for _ in 0..7 {
        steps.push(Step::Inserts(19));
    }
    steps.extend([Step::Deletes(10), Step::DhtPut, Step::DhtGet]);
    for threads in [1usize, 3, 8] {
        let subject = run_script(16, 0xf100d, &steps, threads);
        assert!(subject.walk_stats.type2 >= 1, "script never ran a type-2");
        assert!(
            subject.walk_stats.misses >= 1,
            "script never missed → never flooded"
        );
    }
}

/// The wave engine must stay engaged under a real fault spec and produce
/// *exactly* the interleaved faulted-sequential result: same graph, same
/// Φ, same DHT, same charges, same fault counters (modulo the
/// planner-only `wave_replans` counter) — at every worker count.
#[test]
fn faulted_waved_batch_matches_faulted_sequential() {
    let spec = FaultSpec::zero()
        .with_loss(350)
        .with_latency(1, 3)
        .with_retries(4, 4)
        .with_fallback(2)
        .with_seed(0x57a7e);
    for threads in [1usize, 3, 8] {
        let cfg = DexConfig::new(0x3a7b_a7c4).simplified();
        let mut waved = DexNetwork::bootstrap(cfg, 140);
        let mut seq = DexNetwork::bootstrap(cfg, 140);
        waved.set_heal_threads(threads);
        waved.set_faults(Some(spec));
        seq.set_faults(Some(spec));
        let mut script = Script::new(&waved, 0x5e9_0b47);
        for step in [
            Step::Inserts(12),
            Step::Deletes(9),
            Step::Inserts(16),
            Step::Deletes(8),
        ] {
            let pair = match step {
                Step::Inserts(k) => {
                    let joins = script.joins(k);
                    let mw = waved.insert_batch(&joins);
                    let ms = seq.insert_batch_seq(&joins);
                    script.live.extend(joins.iter().map(|&(u, _)| u));
                    Some((mw, ms))
                }
                Step::Deletes(k) => script
                    .victims(k)
                    .map(|v| (waved.delete_batch(&v), seq.delete_batch_seq(&v))),
                _ => unreachable!(),
            };
            let (mw, ms) = pair.expect("bootstrap is large enough for every batch");
            assert_metrics_match(&mw, &ms);
            invariants::assert_ok(&waved);
        }
        assert_networks_identical(&waved, &seq);
        assert!(
            waved.batch_stats.waved_ops > 0,
            "wave engine disengaged under the fault spec"
        );
        let mut fw = waved.fault_stats();
        fw.wave_replans = 0; // planner-only counter; sequential never plans
        assert_eq!(fw, seq.fault_stats(), "fault counters diverged");
        assert!(fw.sent > fw.delivered, "loss never fired");
    }
}

/// Under real faults there is no centralized oracle to compare against —
/// instead: structural invariants must hold after every healing step,
/// the fault machinery must actually engage, and the whole run must be
/// deterministic and thread-count invariant.
#[test]
fn faulted_run_is_deterministic_and_invariant_preserving() {
    let spec = FaultSpec::zero()
        .with_loss(400)
        .with_latency(1, 3)
        .with_burst(16, 200)
        .with_retries(4, 4)
        .with_fallback(1)
        .with_seed(0xfa57);
    let steps = [
        Step::Inserts(9),
        Step::DhtPut,
        Step::SingleInsert,
        Step::Deletes(5),
        Step::DhtGet,
        Step::DhtPut,
        Step::SingleDelete,
        Step::Inserts(8),
        Step::DhtGet,
        Step::Deletes(7),
    ];
    let run = |threads: usize| {
        let cfg = DexConfig::new(0x600d_5eed).simplified();
        let mut dex = DexNetwork::bootstrap(cfg, 120);
        dex.set_heal_threads(threads);
        dex.set_faults(Some(spec));
        let mut script = Script::new(&dex, 0x7357);
        for &step in &steps {
            match step {
                Step::SingleInsert => {
                    let attach = script.pick_live();
                    let u = script.fresh();
                    dex.insert(u, attach);
                    script.live.push(u);
                }
                Step::SingleDelete => {
                    if script.live.len() >= 64 {
                        let idx = (script.rnd() % script.live.len() as u64) as usize;
                        let victim = script.live.swap_remove(idx);
                        dex.delete(victim);
                    }
                }
                Step::Inserts(k) => {
                    let joins = script.joins(k);
                    dex.insert_batch(&joins);
                    script.live.extend(joins.iter().map(|&(u, _)| u));
                }
                Step::Deletes(k) => {
                    if let Some(v) = script.victims(k) {
                        dex.delete_batch(&v);
                    }
                }
                Step::DhtPut => {
                    let from = script.pick_live();
                    let (key, val) = (script.rnd() % 64, script.rnd());
                    dex.dht_insert(from, key, val);
                }
                Step::DhtGet => {
                    let from = script.pick_live();
                    let key = script.rnd() % 64;
                    dex.dht_lookup(from, key);
                }
            }
            invariants::assert_ok(&dex);
        }
        let fs = dex.fault_stats();
        assert!(fs.sent > fs.delivered, "loss never fired");
        assert!(fs.timeouts > 0, "no stall was ever detected");
        (
            dex.map.entries_sorted(),
            dex.dht_store().entries_sorted(),
            dex.net.totals(),
            fs,
        )
    };
    let a = run(1);
    let b = run(3);
    let c = run(8);
    assert_eq!(a, b, "faulted run diverged between 1 and 3 workers");
    assert_eq!(a, c, "faulted run diverged between 1 and 8 workers");
}
