//! The determinism contract is enforced statically: `cargo test` in any
//! deterministic crate fails if the workspace picks up an un-waived
//! dex-lint violation (raw threads, RandomState maps, stray env reads,
//! undocumented `unsafe`, wall-clock in results, unkeyed RNG).

use std::path::Path;

#[test]
fn workspace_passes_dex_lint() {
    let root = dex_lint::workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let report = dex_lint::lint_workspace(&root).expect("lint run");
    assert!(report.is_clean(), "\n{report}");
}
