//! Cost-bound tests: Theorem 1's shape at test scale.
//!
//! These enforce the *scaling shape*, not absolute constants: rounds and
//! messages per type-1 step grow like log n, topology changes stay O(1),
//! loads never exceed 4ζ (8ζ during staggering), and the spectral gap
//! never collapses.

use dex_core::{invariants, DexConfig, DexNetwork, RecoveryMode};
use dex_graph::ids::NodeId;
use dex_sim::{RecoveryKind, Summary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn mixed_churn(dex: &mut DexNetwork, steps: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = 5_000_000u64;
    for _ in 0..steps {
        let ids = dex.node_ids();
        if rng.random_bool(0.5) || dex.n() <= 4 {
            let v = ids[rng.random_range(0..ids.len())];
            dex.insert(NodeId(next), v);
            next += 1;
        } else {
            let victim = ids[rng.random_range(0..ids.len())];
            dex.delete(victim);
        }
    }
}

#[test]
fn type1_topology_changes_are_constant() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(1).simplified(), 64);
    mixed_churn(&mut dex, 200, 42);
    let type1: Vec<u64> = dex
        .net
        .history()
        .iter()
        .filter(|m| m.recovery == RecoveryKind::Type1)
        .map(|m| m.topology_changes)
        .collect();
    assert!(!type1.is_empty());
    let max = type1.iter().copied().max().unwrap();
    // Deletion of a load-4ζ node touches ≤ (6+4)·4ζ edges; in practice far
    // fewer. The point is independence of n, checked across scales below.
    assert!(max <= 12 * 32, "type-1 topology changes {max}");
}

#[test]
fn per_step_costs_scale_logarithmically() {
    // Same churn at three scales; p95 rounds must grow ~log, not ~linear.
    let mut p95 = Vec::new();
    for n0 in [32u64, 128, 512] {
        let mut dex = DexNetwork::bootstrap(DexConfig::new(2).simplified(), n0);
        mixed_churn(&mut dex, 150, 7);
        let rounds = Summary::of(
            dex.net
                .history()
                .iter()
                .filter(|m| m.recovery == RecoveryKind::Type1)
                .map(|m| m.rounds),
        );
        p95.push(rounds.p95);
    }
    // 16× the nodes: allow ~2.5× the rounds (log scaling + slack), never 16×.
    assert!(
        p95[2] < p95[0] * 4,
        "rounds look super-logarithmic: {p95:?}"
    );
}

#[test]
fn loads_and_degrees_bounded_throughout() {
    for mode in [RecoveryMode::Simplified, RecoveryMode::Staggered] {
        let cfg = match mode {
            RecoveryMode::Simplified => DexConfig::new(3).simplified(),
            RecoveryMode::Staggered => DexConfig::new(3).staggered(),
        };
        let mut dex = DexNetwork::bootstrap(cfg, 16);
        let mut rng = StdRng::seed_from_u64(13);
        let mut next = 6_000_000u64;
        let mut worst_load = 0;
        let mut worst_deg = 0;
        for _ in 0..400 {
            let ids = dex.node_ids();
            if rng.random_bool(0.55) || dex.n() <= 4 {
                let v = ids[rng.random_range(0..ids.len())];
                dex.insert(NodeId(next), v);
                next += 1;
            } else {
                dex.delete(ids[rng.random_range(0..ids.len())]);
            }
            worst_load = worst_load.max(dex.max_total_load());
            worst_deg = worst_deg.max(dex.max_degree());
            let bound = if dex.type2_in_progress() {
                dex.cfg.max_load_staggered()
            } else {
                dex.cfg.max_load()
            };
            assert!(
                dex.max_total_load() <= bound,
                "{mode:?}: load {} > {bound}",
                dex.max_total_load()
            );
        }
        // Degrees are deterministically O(1) — Theorem 1.
        assert!(
            worst_deg <= 16 * worst_load as usize,
            "{mode:?}: degree {worst_deg}"
        );
        invariants::assert_ok(&dex);
    }
}

#[test]
fn spectral_gap_constant_under_long_churn() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(4).staggered(), 24);
    let mut rng = StdRng::seed_from_u64(17);
    let mut next = 7_000_000u64;
    let mut min_gap: f64 = f64::INFINITY;
    for step in 0..300 {
        let ids = dex.node_ids();
        if rng.random_bool(0.5) || dex.n() <= 4 {
            let v = ids[rng.random_range(0..ids.len())];
            dex.insert(NodeId(next), v);
            next += 1;
        } else {
            dex.delete(ids[rng.random_range(0..ids.len())]);
        }
        if step % 10 == 0 {
            min_gap = min_gap.min(dex.spectral_gap());
        }
    }
    // Lemma 9(b): during staggering the gap may dip to (1−λ)²/8 of the
    // family gap (~0.06²-ish); 0.003 is a conservative floor at this scale.
    assert!(min_gap > 0.003, "gap collapsed to {min_gap}");
}

#[test]
fn walks_almost_always_hit_on_first_try() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(5).simplified(), 128);
    mixed_churn(&mut dex, 300, 23);
    let s = dex.walk_stats;
    assert!(s.attempts > 0);
    let hit_rate = s.hits as f64 / s.attempts as f64;
    assert!(hit_rate > 0.9, "walk hit rate {hit_rate} ({s:?})");
}
