//! Differential tests for the parallel wave engine (`dex_core::parheal`):
//! waved batch application must leave the network **bit-identical** to
//! sequential application — same graph arena (adjacency lists in the same
//! order, same slot allocation), same Φ (owners, `Sim` slice order,
//! Spare/Low counters), same metered costs — and must itself be
//! bit-identical for any planner thread count.
//!
//! Long random batch scripts (mixed batch inserts/deletes of waveable and
//! sub-threshold sizes, plus interleaved single ops) drive two networks
//! from the same bootstrap: one through `insert_batch`/`delete_batch`
//! (the wave engine) and one through the `*_seq` oracle entry points.
//! The only observable allowed to differ is `StepMetrics::waves` /
//! `StepTotals::heal_waves` — pure observability counters the sequential
//! path doesn't track.

use dex_core::{invariants, DexConfig, DexNetwork};
use dex_graph::ids::NodeId;
use dex_sim::rng::splitmix64;
use dex_sim::StepMetrics;
use proptest::prelude::*;

/// One scripted adversarial step over the live-node universe.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Insert a batch of `k` fresh nodes on random live attach points
    /// (`k >= 8` engages the wave engine; smaller batches take the
    /// sequential small-batch path inside the same entry point).
    Inserts(u8),
    /// Insert a batch where later newcomers attach to *earlier newcomers
    /// of the same batch* (chained joins: plans block, then commit).
    ChainedInserts(u8),
    /// Insert a batch where every newcomer shares one attach point
    /// (a fully-conflicting clique: degenerates to sequential waves).
    CliqueInserts(u8),
    /// Delete a batch of `k` distinct random victims.
    Deletes(u8),
    /// Delete a batch of `k` distinct victims drawn from one node's
    /// neighborhood (overlapping touch sets spanning waves).
    NeighborhoodDeletes(u8),
    /// One single insert (sequential path; perturbs state between
    /// batches).
    SingleInsert,
    /// One single delete.
    SingleDelete,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0u8..7, 1u8..25).prop_map(|(kind, k)| match kind {
        0 => Step::Inserts(k),
        1 => Step::ChainedInserts(k.max(8)),
        2 => Step::CliqueInserts(k.max(8)),
        3 => Step::Deletes(k),
        4 => Step::NeighborhoodDeletes(k.max(8)),
        5 => Step::SingleInsert,
        _ => Step::SingleDelete,
    })
}

/// Deterministic script driver: mirrors the bench churn driver's
/// bookkeeping (live list, fresh ids) so both networks see the exact same
/// adversarial requests.
struct Script {
    live: Vec<NodeId>,
    next_id: u64,
    state: u64,
}

impl Script {
    fn new(dex: &DexNetwork, seed: u64) -> Self {
        let live = dex.node_ids();
        let next_id = live.iter().map(|u| u.0).max().unwrap_or(0) + 1;
        Script {
            live,
            next_id,
            state: splitmix64(seed),
        }
    }

    fn rnd(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    fn pick_live(&mut self) -> NodeId {
        let i = (self.rnd() % self.live.len() as u64) as usize;
        self.live[i]
    }

    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Pick a live attach point that still has spare fan-in budget in the
    /// batch under construction (validation caps fan-in at 8).
    fn pick_attach(&mut self, joins: &[(NodeId, NodeId)]) -> NodeId {
        loop {
            let v = self.pick_live();
            if joins.iter().filter(|&&(_, a)| a == v).count() < 8 {
                return v;
            }
        }
    }

    /// Materialize `step` into concrete joins/victims against the current
    /// live set. Returns `None` when the step is not applicable (network
    /// too small to delete from safely).
    fn joins_for(&mut self, step: Step) -> Option<Vec<(NodeId, NodeId)>> {
        match step {
            Step::Inserts(k) => {
                let mut joins: Vec<(NodeId, NodeId)> = Vec::with_capacity(k as usize);
                for _ in 0..k {
                    let attach = self.pick_attach(&joins);
                    let u = self.fresh();
                    joins.push((u, attach));
                }
                Some(joins)
            }
            Step::ChainedInserts(k) => {
                // First newcomer attaches to a live node, each subsequent
                // one to the previous newcomer.
                let mut joins = Vec::with_capacity(k as usize);
                let mut attach = self.pick_live();
                for _ in 0..k {
                    let u = self.fresh();
                    joins.push((u, attach));
                    attach = u;
                }
                Some(joins)
            }
            Step::CliqueInserts(k) => {
                // Fan-in is capped at 8 by validation; chunk the clique
                // into groups of 8 sharing one attach point each, with all
                // groups inside one batch (heavy conflicts either way).
                let mut joins: Vec<(NodeId, NodeId)> = Vec::with_capacity(k as usize);
                let mut attach = self.pick_attach(&joins);
                for i in 0..k {
                    if i % 8 == 0 && i > 0 {
                        attach = self.pick_attach(&joins);
                    }
                    joins.push((self.fresh(), attach));
                }
                Some(joins)
            }
            _ => None,
        }
    }

    fn victims_for(&mut self, step: Step, dex: &DexNetwork) -> Option<Vec<NodeId>> {
        let k = match step {
            Step::Deletes(k) => k as usize,
            Step::NeighborhoodDeletes(k) => k as usize,
            _ => return None,
        };
        // Keep a healthy floor so victims always retain a live neighbor
        // and the graph stays well above the "would empty the network"
        // panic.
        if self.live.len() < 2 * k + 48 {
            return None;
        }
        let mut victims: Vec<NodeId> = Vec::with_capacity(k);
        if matches!(step, Step::NeighborhoodDeletes(_)) {
            // Victims clustered around one center: its neighbors, their
            // neighbors, ... (deduped, center excluded so the batch never
            // orphans a newcomer mid-script).
            let center = self.pick_live();
            let mut frontier = vec![center];
            'fill: while victims.len() < k {
                let Some(c) = frontier.pop() else { break };
                for w in dex.graph().neighbors(c) {
                    if w != center && !victims.contains(&w) {
                        victims.push(w);
                        frontier.push(w);
                        if victims.len() == k {
                            break 'fill;
                        }
                    }
                }
            }
            if victims.is_empty() {
                return None;
            }
        } else {
            while victims.len() < k {
                let v = self.pick_live();
                if !victims.contains(&v) {
                    victims.push(v);
                }
            }
        }
        self.live.retain(|u| !victims.contains(u));
        Some(victims)
    }
}

/// Everything observable must match, except the wave counters.
fn assert_metrics_match(a: &StepMetrics, b: &StepMetrics) {
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.recovery, b.recovery, "recovery kind diverged");
    assert_eq!(a.rounds, b.rounds, "charged rounds diverged");
    assert_eq!(a.messages, b.messages, "charged messages diverged");
    assert_eq!(
        a.topology_changes, b.topology_changes,
        "topology changes diverged"
    );
    assert_eq!(a.n_after, b.n_after);
}

/// Deep bit-level comparison of two networks: graph arena (including
/// adjacency *order* — slot programs replicate push/swap_remove
/// semantics), Φ, and cycle state.
fn assert_networks_identical(a: &DexNetwork, b: &DexNetwork) {
    assert_eq!(a.n(), b.n());
    assert_eq!(a.cycle.p(), b.cycle.p());
    assert_eq!(a.graph().num_edges(), b.graph().num_edges());
    let nodes_a: Vec<NodeId> = a.graph().nodes().collect();
    let nodes_b: Vec<NodeId> = b.graph().nodes().collect();
    assert_eq!(nodes_a, nodes_b, "slot allocation order diverged");
    for &u in &nodes_a {
        let na: Vec<NodeId> = a.graph().neighbors(u).iter().collect();
        let nb: Vec<NodeId> = b.graph().neighbors(u).iter().collect();
        assert_eq!(na, nb, "adjacency of {u} diverged (order included)");
        assert_eq!(a.map.sim(u), b.map.sim(u), "Sim({u}) diverged");
        assert_eq!(a.map.load(u), b.map.load(u));
    }
    assert_eq!(a.map.spare_count(), b.map.spare_count());
    assert_eq!(a.map.low_count(), b.map.low_count());
    assert_eq!(a.map.max_load(), b.map.max_load());
    assert_eq!(a.map.entries_sorted(), b.map.entries_sorted());
    assert_eq!(a.walk_stats.attempts, b.walk_stats.attempts);
    assert_eq!(a.walk_stats.hits, b.walk_stats.hits);
    assert_eq!(a.walk_stats.misses, b.walk_stats.misses);
    assert_eq!(a.walk_stats.type2, b.walk_stats.type2);
    let ta = a.net.totals();
    let tb = b.net.totals();
    assert_eq!(ta.rounds, tb.rounds, "total rounds diverged");
    assert_eq!(ta.messages, tb.messages, "total messages diverged");
    assert_eq!(ta.topology_changes, tb.topology_changes);
    assert_eq!(ta.type2_steps, tb.type2_steps);
}

fn bootstrap_pair(n0: u64, seed: u64) -> (DexNetwork, DexNetwork) {
    let cfg = DexConfig::new(splitmix64(seed ^ 0xd5c0)).simplified();
    (
        DexNetwork::bootstrap(cfg, n0),
        DexNetwork::bootstrap(cfg, n0),
    )
}

/// Drive `steps` through a waved network and the sequential oracle,
/// asserting identical state after every step.
fn run_script(n0: u64, seed: u64, steps: &[Step], threads: usize) {
    let (mut waved, mut oracle) = bootstrap_pair(n0, seed);
    waved.set_heal_threads(threads);
    let mut script = Script::new(&waved, seed ^ 0x5c71);
    for (i, &step) in steps.iter().enumerate() {
        let pair = match step {
            Step::Inserts(_) | Step::ChainedInserts(_) | Step::CliqueInserts(_) => {
                let joins = script.joins_for(step).unwrap();
                let mw = waved.insert_batch(&joins);
                let mo = oracle.insert_batch_seq(&joins);
                script.live.extend(joins.iter().map(|&(u, _)| u));
                Some((mw, mo))
            }
            Step::Deletes(_) | Step::NeighborhoodDeletes(_) => {
                script.victims_for(step, &oracle).map(|victims| {
                    (
                        waved.delete_batch(&victims),
                        oracle.delete_batch_seq(&victims),
                    )
                })
            }
            Step::SingleInsert => {
                let attach = script.pick_live();
                let u = script.fresh();
                let mw = waved.insert(u, attach);
                let mo = oracle.insert(u, attach);
                script.live.push(u);
                Some((mw, mo))
            }
            Step::SingleDelete => {
                if script.live.len() < 64 {
                    None
                } else {
                    let idx = (script.rnd() % script.live.len() as u64) as usize;
                    let victim = script.live.swap_remove(idx);
                    Some((waved.delete(victim), oracle.delete(victim)))
                }
            }
        };
        if let Some((mw, mo)) = pair {
            assert_metrics_match(&mw, &mo);
        }
        if i % 4 == 3 {
            assert_networks_identical(&waved, &oracle);
        }
    }
    assert_networks_identical(&waved, &oracle);
    invariants::assert_ok(&waved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn waved_matches_sequential_on_random_batch_scripts(
        seed in any::<u64>(),
        steps in proptest::collection::vec(arb_step(), 4..24),
    ) {
        run_script(160, seed, &steps, 1);
    }

    #[test]
    fn waved_is_bit_identical_across_thread_counts(
        seed in any::<u64>(),
        steps in proptest::collection::vec(arb_step(), 4..12),
    ) {
        // threads=3 and threads=8 against the sequential oracle: catches
        // both cross-thread divergence and waved-vs-sequential divergence.
        run_script(160, seed, &steps, 3);
        run_script(160, seed, &steps, 8);
    }
}

/// A large all-fresh-attach batch is overwhelmingly disjoint: most ops
/// must actually commit through waves (the engine must not silently
/// serialize everything), and the wave counters must show it.
#[test]
fn disjoint_batches_actually_wave() {
    let (mut waved, mut oracle) = bootstrap_pair(512, 0xbeef);
    let mut script = Script::new(&waved, 0xbeef);
    for _ in 0..4 {
        let joins = script.joins_for(Step::Inserts(24)).unwrap();
        let mw = waved.insert_batch(&joins);
        let mo = oracle.insert_batch_seq(&joins);
        script.live.extend(joins.iter().map(|&(u, _)| u));
        assert_metrics_match(&mw, &mo);
        assert!(mw.waves >= 1, "wave counter not recorded");
        assert!(
            (mw.waves as usize) < 24,
            "24 inserts over a 512-node bootstrap should form multi-op waves, got {} waves",
            mw.waves
        );
        assert_eq!(mo.waves, 0, "sequential path must not count waves");
    }
    assert!(
        waved.batch_stats.waved_ops > waved.batch_stats.serial_ops,
        "most disjoint-batch ops should commit through waves: {:?}",
        waved.batch_stats
    );
    assert!(waved.batch_stats.max_wave >= 4);
    assert_networks_identical(&waved, &oracle);
    invariants::assert_ok(&waved);
}

/// Batches that trigger the type-2 switchover (inflate via spare
/// exhaustion under pure growth, then deflate under pure shrink) must
/// stay bit-identical to the sequential oracle at every planner thread
/// count: the rebuild itself now fans out over the executor pool
/// (permutation resolution, cloud-assignment staging), so this is the
/// waved-type-2 determinism contract end to end.
fn run_type2_script(threads: usize) {
    let (mut waved, mut oracle) = bootstrap_pair(48, 0x7e2);
    waved.set_heal_threads(threads);
    let mut script = Script::new(&waved, 0x7e2);

    // Growth phase: batch inserts until inflation has fired (hard cap so
    // a regression cannot loop forever).
    let mut grew = 0;
    while waved.walk_stats.type2 == 0 && grew < 80 {
        let joins = script.joins_for(Step::Inserts(16)).unwrap();
        let mw = waved.insert_batch(&joins);
        let mo = oracle.insert_batch_seq(&joins);
        script.live.extend(joins.iter().map(|&(u, _)| u));
        assert_metrics_match(&mw, &mo);
        grew += 1;
    }
    assert!(
        waved.walk_stats.type2 > 0,
        "growth phase must trigger an inflation"
    );
    assert_networks_identical(&waved, &oracle);

    // Shrink phase: batch deletes until deflation has fired too. Victims
    // are drawn directly (no safety floor — healing restores the fabric
    // victim-by-victim, so the network stays connected all the way down
    // to the deflation regime where nearly every node is overloaded).
    let type2_after_growth = waved.walk_stats.type2;
    let mut shrank = 0;
    while waved.walk_stats.type2 == type2_after_growth && shrank < 200 {
        let n = script.live.len();
        assert!(n > 14, "ran out of nodes before a deflation fired");
        let k = 8.min(n - 14);
        let mut victims: Vec<NodeId> = Vec::with_capacity(k);
        while victims.len() < k {
            let v = script.pick_live();
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        script.live.retain(|u| !victims.contains(u));
        let mw = waved.delete_batch(&victims);
        let mo = oracle.delete_batch_seq(&victims);
        assert_metrics_match(&mw, &mo);
        shrank += 1;
    }
    assert!(
        waved.walk_stats.type2 > type2_after_growth,
        "shrink phase must trigger a deflation (threads={threads})"
    );
    assert_networks_identical(&waved, &oracle);
    invariants::assert_ok(&waved);
}

#[test]
fn type2_triggering_batches_match_sequential_across_thread_counts() {
    for threads in [1, 3, 8] {
        run_type2_script(threads);
    }
}

/// Warm-pool contract on the real engine: after the executor pool is
/// saturated, whole batch steps — planning waves, commits, replans —
/// spawn zero threads.
#[test]
fn warm_pool_batch_steps_spawn_no_threads() {
    dex_exec::prewarm(dex_exec::MAX_WORKERS);
    let spawned = dex_exec::total_spawns();
    let (mut waved, _) = bootstrap_pair(512, 0x90a);
    waved.set_heal_threads(8);
    let mut script = Script::new(&waved, 0x90a);
    for _ in 0..6 {
        let joins = script.joins_for(Step::Inserts(24)).unwrap();
        waved.insert_batch(&joins);
        script.live.extend(joins.iter().map(|&(u, _)| u));
        let victims = script.victims_for(Step::Deletes(16), &waved);
        if let Some(victims) = victims {
            waved.delete_batch(&victims);
        }
    }
    assert_eq!(
        dex_exec::total_spawns(),
        spawned,
        "planning waves on a warm pool must not spawn threads"
    );
}

/// Deleting a whole neighborhood forces maximal touch-set overlap; the
/// engine must stay correct when nearly everything conflicts and replans.
#[test]
fn neighborhood_deletes_conflict_and_still_match() {
    let (mut waved, mut oracle) = bootstrap_pair(400, 0xfeed);
    let mut script = Script::new(&waved, 0xfeed);
    for _ in 0..6 {
        if let Some(victims) = script.victims_for(Step::NeighborhoodDeletes(12), &oracle) {
            let mw = waved.delete_batch(&victims);
            let mo = oracle.delete_batch_seq(&victims);
            assert_metrics_match(&mw, &mo);
        }
        // Refill so the floor check keeps passing.
        let joins = script.joins_for(Step::Inserts(12)).unwrap();
        let mw = waved.insert_batch(&joins);
        let mo = oracle.insert_batch_seq(&joins);
        script.live.extend(joins.iter().map(|&(u, _)| u));
        assert_metrics_match(&mw, &mo);
    }
    assert_networks_identical(&waved, &oracle);
    invariants::assert_ok(&waved);
}
