//! DHT (Sect. 4.4.4) and batch-churn (Sect. 5) end-to-end tests.

use dex_core::{invariants, DexConfig, DexNetwork};
use dex_graph::ids::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn dht_store_and_lookup() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(1).simplified(), 16);
    let ids = dex.node_ids();
    for k in 0..100u64 {
        dex.dht_insert(ids[(k % 16) as usize], k, k * 10);
    }
    for k in 0..100u64 {
        let (v, m) = dex.dht_lookup(ids[((k + 3) % 16) as usize], k);
        assert_eq!(v, Some(k * 10), "key {k}");
        assert!(m.rounds <= 64, "lookup rounds {}", m.rounds);
    }
    let (v, _) = dex.dht_lookup(ids[0], 10_000);
    assert_eq!(v, None);
}

#[test]
fn dht_survives_churn_and_rehash() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(2).simplified(), 8);
    let mut rng = StdRng::seed_from_u64(5);
    for k in 0..50u64 {
        let ids = dex.node_ids();
        let from = ids[rng.random_range(0..ids.len())];
        dex.dht_insert(from, k, 7000 + k);
    }
    // Heavy growth: forces at least one inflation (rehash).
    for next in 1_000_000u64..1_000_300 {
        let ids = dex.node_ids();
        let v = ids[rng.random_range(0..ids.len())];
        dex.insert(NodeId(next), v);
    }
    assert!(dex.walk_stats.type2 >= 1, "inflation expected");
    invariants::assert_ok(&dex);
    for k in 0..50u64 {
        let ids = dex.node_ids();
        let from = ids[rng.random_range(0..ids.len())];
        let (v, _) = dex.dht_lookup(from, k);
        assert_eq!(v, Some(7000 + k), "key {k} lost after churn");
    }
}

#[test]
fn dht_lookup_cost_is_logarithmic() {
    // Routing cost must track the p-cycle diameter (O(log n)), not n.
    let mut costs = Vec::new();
    for n0 in [16u64, 64, 256] {
        let mut dex = DexNetwork::bootstrap(DexConfig::new(3).simplified(), n0);
        let ids = dex.node_ids();
        let mut worst = 0;
        for k in 0..40u64 {
            dex.dht_insert(ids[0], k, k);
            let (_, m) = dex.dht_lookup(ids[(k % n0) as usize], k);
            worst = worst.max(m.rounds);
        }
        costs.push(worst);
    }
    // 16× more nodes must not cost anywhere near 16× the rounds.
    assert!(
        costs[2] < costs[0] * 4 + 16,
        "lookup cost not logarithmic: {costs:?}"
    );
}

#[test]
fn batch_insert_heals_in_one_step() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(4).simplified(), 32);
    let ids = dex.node_ids();
    let joins: Vec<(NodeId, NodeId)> = (0..8)
        .map(|i| (NodeId(2_000_000 + i), ids[i as usize * 3]))
        .collect();
    let m = dex.insert_batch(&joins);
    assert_eq!(dex.n(), 40);
    assert!(m.messages > 0);
    invariants::assert_ok(&dex);
}

#[test]
fn batch_delete_heals_in_one_step() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(5).simplified(), 32);
    let ids = dex.node_ids();
    let victims: Vec<NodeId> = ids.iter().copied().take(6).collect();
    dex.delete_batch(&victims);
    assert_eq!(dex.n(), 26);
    invariants::assert_ok(&dex);
}

#[test]
fn repeated_batches_with_type2() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(6).simplified(), 16);
    let mut rng = StdRng::seed_from_u64(9);
    let mut next = 3_000_000u64;
    for round in 0..30 {
        if round % 3 != 2 {
            let ids = dex.node_ids();
            let joins: Vec<(NodeId, NodeId)> = (0..4)
                .map(|_| {
                    let v = ids[rng.random_range(0..ids.len())];
                    next += 1;
                    (NodeId(next), v)
                })
                .collect();
            dex.insert_batch(&joins);
        } else {
            let ids = dex.node_ids();
            let mut victims = Vec::new();
            let mut i = 0;
            while victims.len() < 3 && i < ids.len() {
                victims.push(ids[rng.random_range(0..ids.len())]);
                victims.dedup();
                i += 1;
            }
            victims.sort_unstable();
            victims.dedup();
            dex.delete_batch(&victims);
        }
        invariants::assert_ok(&dex);
    }
    assert!(dex.spectral_gap() > 0.01);
}

#[test]
#[should_panic(expected = "fan-in")]
fn batch_rejects_excess_fan_in() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(7).simplified(), 8);
    let v = dex.node_ids()[0];
    let joins: Vec<(NodeId, NodeId)> = (0..9).map(|i| (NodeId(900 + i), v)).collect();
    dex.insert_batch(&joins);
}

#[test]
fn batch_fan_in_boundary_accepts_exactly_the_bound() {
    // MAX_ATTACH_FAN_IN newcomers on one attach point is legal; one more
    // is not (covered by `batch_rejects_excess_fan_in`).
    let mut dex = DexNetwork::bootstrap(DexConfig::new(8).simplified(), 32);
    let v = dex.node_ids()[0];
    let joins: Vec<(NodeId, NodeId)> = (0..dex_core::batch::MAX_ATTACH_FAN_IN as u64)
        .map(|i| (NodeId(910 + i), v))
        .collect();
    dex.insert_batch(&joins);
    assert_eq!(dex.n(), 32 + dex_core::batch::MAX_ATTACH_FAN_IN);
    invariants::assert_ok(&dex);
}

#[test]
fn batch_accepts_chained_intra_batch_attaches() {
    // A later pair may attach to an earlier newcomer of the same batch
    // (healing runs pair-by-pair, so the attach point exists by then).
    let mut dex = DexNetwork::bootstrap(DexConfig::new(14).simplified(), 16);
    let live = dex.node_ids()[0];
    let joins = vec![
        (NodeId(7_000_000), live),
        (NodeId(7_000_001), NodeId(7_000_000)),
        (NodeId(7_000_002), NodeId(7_000_001)),
    ];
    dex.insert_batch(&joins);
    assert_eq!(dex.n(), 19);
    invariants::assert_ok(&dex);
}

#[test]
fn batch_rejects_id_collision_before_mutating() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(9).simplified(), 16);
    let ids = dex.node_ids();
    // First pair is fine; the second newcomer collides with a live node.
    let joins = vec![(NodeId(5_000_000), ids[0]), (ids[1], ids[2])];
    let n_before = dex.n();
    let mut edges_before = dex.graph().edges();
    edges_before.sort();
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| dex.insert_batch(&joins)));
    let err = *result
        .expect_err("collision must panic")
        .downcast::<String>()
        .unwrap();
    assert!(err.contains("collides"), "{err}");
    // Validation runs before any mutation: nothing changed.
    assert_eq!(dex.n(), n_before);
    let mut edges_after = dex.graph().edges();
    edges_after.sort();
    assert_eq!(edges_after, edges_before);
    invariants::assert_ok(&dex);
}

#[test]
#[should_panic(expected = "duplicate newcomer")]
fn batch_rejects_duplicate_newcomers() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(10).simplified(), 16);
    let ids = dex.node_ids();
    let joins = vec![(NodeId(6_000_000), ids[0]), (NodeId(6_000_000), ids[1])];
    dex.insert_batch(&joins);
}

#[test]
#[should_panic(expected = "duplicate victim")]
fn batch_rejects_duplicate_victims() {
    let mut dex = DexNetwork::bootstrap(DexConfig::new(11).simplified(), 16);
    let ids = dex.node_ids();
    dex.delete_batch(&[ids[0], ids[0]]);
}

#[test]
fn dht_remigrates_when_hashed_under_changes_across_staggered_switchover() {
    // Data stored under Z(p₀) must follow the hash function to the new
    // cycle when a *staggered* type-2 operation switches over, with the
    // lump migration charged exactly once.
    let mut dex = DexNetwork::bootstrap(DexConfig::new(12).staggered(), 8);
    let ids = dex.node_ids();
    for k in 0..40u64 {
        dex.dht_insert(ids[(k % 8) as usize], k, 9000 + k);
    }
    let p0 = dex.cycle.p();
    assert_eq!(dex.dht_store().hashed_under(), Some(p0));

    // Grow until an inflation fires, staggers through its windows, and
    // switches over (p changes only at switchover).
    let mut rng = StdRng::seed_from_u64(13);
    let mut next = 5_000_000u64;
    while dex.cycle.p() == p0 {
        let live = dex.node_ids();
        let v = live[rng.random_range(0..live.len())];
        dex.insert(NodeId(next), v);
        next += 1;
        assert!(next < 5_010_000, "staggered inflation never completed");
    }
    assert!(dex.cycle.p() > p0);
    // The store is still partitioned under p₀ until the next DHT op
    // observes the new cycle...
    assert_eq!(dex.dht_store().hashed_under(), Some(p0));

    let from = dex.node_ids()[0];
    let (v, m_migrating) = dex.dht_lookup(from, 0);
    assert_eq!(v, Some(9000));
    // ...which re-partitions everything and charges one message per item.
    assert_eq!(dex.dht_store().hashed_under(), Some(dex.cycle.p()));
    let (_, m_settled) = dex.dht_lookup(from, 0);
    assert_eq!(
        m_migrating.messages,
        m_settled.messages + dex.dht_store().len() as u64,
        "migration must be charged exactly once, one message per item"
    );

    // No key was lost across the rehash.
    for k in 0..40u64 {
        let (v, _) = dex.dht_lookup(from, k);
        assert_eq!(v, Some(9000 + k), "key {k} lost across switchover");
    }
    invariants::assert_ok(&dex);
}
