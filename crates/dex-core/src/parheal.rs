//! Deterministic parallel batch healing: conflict-graph scheduling of a
//! whole adversarial batch inside one network.
//!
//! DEX repair is local by design — each insertion/deletion touches only an
//! O(1)-size neighborhood of Φ and the fabric — so concurrent repairs that
//! touch disjoint regions commute (the Xheal observation). This module
//! exploits that inside a single network: a batch of k ops is partitioned
//! into **conflict-free waves** and each wave is applied with exactly the
//! state the sequential path would have given it, so the result is
//! **bit-identical to sequential application for any `--threads` value**
//! (the repo's standing determinism contract; differential proptests in
//! `tests/batch_par.rs` enforce it op-for-op).
//!
//! # How a wave is built: speculate → partition → commit
//!
//! 1. **Plan (parallel, read-only).** Every not-yet-applied op is
//!    *speculatively healed* against the current network state: its type-1
//!    walk is replayed hop-for-hop with the very RNG stream the sequential
//!    path would use (streams are keyed by `(step, id, index)`, never by
//!    arrival order), recording the walk outcome plus the op's **touch
//!    set** over the graph's dense slot indices — the slots its decisions
//!    *read* (walk visits, load probes, the victim's neighborhood) and the
//!    slots its application will *write* (attach point, donor/destination
//!    nodes, the Φ owner slots of every fabric instance it rewires).
//!    Deletions interleave walks with their own mutations, so they plan
//!    against a copy-on-write [`Overlay`] that replays adoption and vertex
//!    moves with exact `swap_remove`/`push` semantics. Because the plan
//!    already resolves every owner, the finished plan is a **slot
//!    program**: the exact fabric edge edits as pre-resolved arena slot
//!    pairs — all `NodeId → slot` hashing is hoisted out of the commit.
//!    Planning fans out over the persistent [`dex_exec`] worker pool via
//!    the chunk-deterministic [`dex_exec::for_chunks_scratch_mut`], with
//!    one [`PlanScratch`] living in each pool worker's persistent scratch
//!    slot — a planning round costs parked-worker handoffs, **zero thread
//!    spawns and zero scratch construction once warm** (a differential
//!    test asserts the spawn counter stays flat). Chunk boundaries are
//!    fixed, so the plans are identical for any thread count.
//! 2. **Partition (sequential, deterministic).** Scan plans in canonical
//!    (batch) order and accept the longest prefix whose members are
//!    pairwise compatible: op j joins the wave iff no slot in its touch
//!    set was *written* by an already-accepted op (greedy coloring over a
//!    slot-indexed epoch map, [`TouchTracker`]). Conflicting ops stay
//!    queued in order — ops sharing a slot therefore serialize across
//!    waves in canonical order. Keeping waves *prefix-shaped* (rather than
//!    hole-punching later ops forward) is what makes waved application
//!    provably equal to sequential: every committed op has seen either the
//!    exact pre-wave state (disjointness) or runs after all lower-indexed
//!    ops (next wave).
//! 3. **Commit (in-order).** Accepted plans replay their slot programs
//!    through the charged slot-space editors
//!    (`Network::{add,remove}_edge_slots`,
//!    [`crate::VirtualMapping::transfer_all`]) with the planned walk
//!    outcomes substituted for re-walking; costs are charged exactly as
//!    the sequential path charges them. Ops whose plan went *serial* (a
//!    walk miss → flood, a type-2 trigger, an attach point that is an
//!    earlier-in-batch newcomer) run through the untouched sequential heal
//!    code when they reach the head of the queue — a fully-conflicting
//!    batch degenerates to plain sequential application.
//!
//! Soundness of the touch sets (why accepted plans replay exactly): a
//! plan's *decisions* are its walk outcomes, victim/rescuer choices, and
//! resolved owner slots, all functions of the slots in its touch set — so
//! by induction over the wave's accept order, nothing an accepted op read
//! or will rewrite has changed since it was planned, and the slot program
//! it carries is exactly the edit the sequential path would compute.
//!
//! Why commits are sequential: a wave's writes are disjoint, but the
//! arenas' shared bookkeeping (slot free-lists, `num_edges`, Φ counters,
//! the metered step counters) is not, and slot allocation order is part of
//! the determinism contract. The planning pass carries the parallelizable
//! work — walks, probes, owner resolution, conflict hashing; what remains
//! is lean arena edits. On a single core the engine attacks the other
//! axis, **memory-level parallelism**: heal cost here is dominated by
//! dependent chains of scattered DRAM reads (arena records, Φ meta, hash
//! buckets), and the batch shape makes the *next* op's lines known while
//! the current one executes — the planner and the commit loop run a
//! depth-2 prefetch pipeline over op entry points and slot programs
//! ([`dex_graph::par::prefetch_read`]) so consecutive ops' misses overlap
//! instead of serializing.
//!
//! The sequential entry points survive as
//! [`DexNetwork::insert_batch_seq`]/[`DexNetwork::delete_batch_seq`] — the
//! differential oracle for tests and the baseline for `bench_batch`.

use crate::dex::DexNetwork;
use crate::fabric;
use dex_graph::adjacency::MultiGraph;
use dex_graph::ids::{NodeId, VertexId};
use dex_graph::walks::{run_interleaved, WalkLane};
use dex_sim::msim::{AdjView, FaultStats};
use dex_sim::rng::Purpose;
use rand::rngs::StdRng;
use rand::Rng;

/// Smallest batch routed through the waved engine; below this the
/// sequential path is applied directly (identical results either way —
/// the engine is bit-exact — but planning overhead isn't worth four ops).
pub const PAR_BATCH_MIN: usize = 8;

/// Fixed ops-per-chunk for the planning fan-out. Chunk boundaries must not
/// depend on the thread count (determinism), and a chunk is also the unit
/// over which one worker's pooled scratch amortizes.
const PLAN_CHUNK: usize = 16;

/// Hard cap on ops speculatively planned per wave round. The effective
/// lookahead is adaptive — ~4× the EMA of committed wave sizes
/// (`ParScratch::wave_ema`), clamped to `[32, PLAN_WINDOW]` — so under
/// heavy conflict the engine stops planning ops that the waves in front
/// of them would invalidate anyway.
const PLAN_WINDOW: usize = 1024;

/// Sentinel slot in an insert plan's program standing for the newcomer's
/// slot, which exists only once the commit creates the node.
const NEW_SLOT: u32 = u32::MAX;

/// Log₂-bucketed wave-size histogram: bucket `i` counts waves of size in
/// `[2^i, 2^(i+1))`, with the last bucket open-ended.
pub const WAVE_HIST_BUCKETS: usize = 12;

/// Cross-step statistics of the waved engine, accumulated on the network
/// (`DexNetwork::batch_stats`); `bench_batch` reads and resets them.
#[derive(Debug, Clone, Default)]
pub struct BatchHealStats {
    /// Conflict-free waves committed (serial fallbacks count as waves of
    /// size 1 — they occupy a wave slot in the schedule).
    pub waves: u64,
    /// Ops that fell back to the sequential heal path (walk miss/type-2
    /// risk, chained attach, or a panic-bound precondition).
    pub serial_ops: u64,
    /// Ops committed from parallel-planned waves.
    pub waved_ops: u64,
    /// Largest wave committed.
    pub max_wave: usize,
    /// Plans recomputed because a committed wave wrote into their touch
    /// set (speculation waste metric).
    pub replans: u64,
    /// Wall nanoseconds in the (parallelizable) planning pass.
    pub plan_ns: u64,
    /// Wall nanoseconds in partition scans + plan invalidation.
    pub partition_ns: u64,
    /// Wall nanoseconds committing waves.
    pub commit_ns: u64,
    /// Wall nanoseconds in serial fallback ops.
    pub serial_ns: u64,
    /// Log₂ histogram of committed wave sizes.
    pub wave_hist: [u64; WAVE_HIST_BUCKETS],
    /// Batches the adaptive small-n crossover routed to the sequential
    /// path (never entered the wave engine).
    pub crossover_batches: u64,
    /// Ops inside crossover-routed batches.
    pub crossover_ops: u64,
}

impl BatchHealStats {
    fn record_wave(&mut self, size: usize) {
        self.waves += 1;
        self.max_wave = self.max_wave.max(size);
        let b = (usize::BITS - 1 - size.max(1).leading_zeros()) as usize;
        self.wave_hist[b.min(WAVE_HIST_BUCKETS - 1)] += 1;
    }

    /// Reset all counters (between benchmark sections).
    pub fn reset(&mut self) {
        *self = BatchHealStats::default();
    }
}

/// One batched adversarial event.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BatchOp {
    /// Insert `u` attached to `v`.
    Insert { u: NodeId, v: NodeId },
    /// Delete `victim`.
    Delete { victim: NodeId },
}

/// A speculative heal plan for one op (or the reason it cannot be waved).
#[cfg_attr(test, derive(Debug, PartialEq))]
enum OpPlan {
    /// Not planned against the current state (fresh, or invalidated by a
    /// committed wave).
    Stale,
    /// Attach point not alive yet — an earlier-in-batch newcomer must
    /// commit first. Re-planned every wave.
    Blocked,
    /// The op's heal leaves the pure type-1 fast path (walk miss → flood
    /// and possibly type-2) or trips a precondition; it must run through
    /// the sequential code. `touch` is everything its decision read (the
    /// plan stays valid while those slots are untouched).
    Serial { touch: Vec<u32> },
    /// Insert resolved to a single-transfer type-1 heal.
    Insert(InsertPlan),
    /// Delete resolved to an adopt-and-redistribute type-1 heal.
    Delete(DeletePlan),
}

/// The walk-phase cost a faulted plan replayed on the message schedule:
/// charged at commit in place of the centralized hops-based charges.
/// `None` on centrally-planned (no fault spec) plans.
#[cfg_attr(test, derive(Debug, PartialEq))]
#[derive(Default)]
struct FaultedCharge {
    /// Engine makespans summed over the op's walk attempts.
    rounds: u64,
    /// Engine sends summed over the op's walk attempts.
    messages: u64,
    /// `walk_stats.attempts` consumed (lost generations re-attempt).
    attempts: u64,
    /// Fault-layer counters accumulated by the replayed walks.
    stats: FaultStats,
}

/// Planned insert: walk outcome, donated vertex, and the fabric edit as a
/// pre-resolved slot program (≤ 3 instances; the newcomer's side of a
/// re-add is [`NEW_SLOT`]).
#[cfg_attr(test, derive(Debug, PartialEq))]
struct InsertPlan {
    hit: NodeId,
    hit_slot: u32,
    v_slot: u32,
    /// Donated vertex (`max(Sim(hit))` at plan time — unchanged by wave
    /// disjointness; commit `debug_assert`s it).
    z: VertexId,
    hops: u64,
    /// Instance removals (owners before the move).
    rm: [(u32, u32); 3],
    /// Instance re-adds (owners after the move; [`NEW_SLOT`] = newcomer).
    ad: [(u32, u32); 3],
    n_inst: u8,
    reads: Vec<u32>,
    writes: Vec<u32>,
    /// Simulated walk charge when planned under a fault spec.
    faulted: Option<Box<FaultedCharge>>,
}

/// Planned delete: rescuer election, one planned walk outcome per adopted
/// vertex (in `Sim(victim)` order), and the whole fabric edit as one flat
/// slot program.
#[cfg_attr(test, derive(Debug, PartialEq))]
struct DeletePlan {
    rescuer: NodeId,
    /// Destination of vertex `i` of the victim's `Sim` set.
    dests: Vec<NodeId>,
    /// Hops the walk for vertex `i` took (charged at commit).
    hops: Vec<u64>,
    /// Slot program: `prog[..adopt_n]` are the adoption re-adds; then for
    /// each move with `dest != rescuer`, `move_insts[j]` removals followed
    /// by the same number of re-adds.
    prog: Vec<(u32, u32)>,
    adopt_n: u32,
    move_insts: Vec<u8>,
    reads: Vec<u32>,
    writes: Vec<u32>,
    /// Simulated walk charge when planned under a fault spec.
    faulted: Option<Box<FaultedCharge>>,
}

impl OpPlan {
    /// (reads, writes) of a waveable plan; `None` otherwise.
    fn touch_sets(&self) -> Option<(&[u32], &[u32])> {
        match self {
            OpPlan::Insert(p) => Some((&p.reads, &p.writes)),
            OpPlan::Delete(p) => Some((&p.reads, &p.writes)),
            _ => None,
        }
    }

    /// Does a committed wave's write set overlap this plan's touch set?
    fn invalidated_by(&self, tracker: &TouchTracker) -> bool {
        match self {
            OpPlan::Stale => false,  // will be re-planned anyway
            OpPlan::Blocked => true, // unblocked only by commits: re-plan
            OpPlan::Serial { touch } => touch.iter().any(|&s| tracker.written(s)),
            OpPlan::Insert(p) => p.reads.iter().chain(&p.writes).any(|&s| tracker.written(s)),
            OpPlan::Delete(p) => p.reads.iter().chain(&p.writes).any(|&s| tracker.written(s)),
        }
    }
}

// ======================================================================
// Conflict tracking
// ======================================================================

/// Epoch-stamped write marks over the graph's dense slot space: `O(1)`
/// mark/test, `O(1)` wave reset (bump the epoch), reused across batches
/// with no clearing.
#[derive(Default)]
pub(crate) struct TouchTracker {
    mark: Vec<u32>,
    epoch: u32,
}

impl TouchTracker {
    fn begin_wave(&mut self, slot_bound: usize) {
        if self.mark.len() < slot_bound {
            // Power-of-two headroom: the bound creeps upward as inserts
            // commit, and an exact per-wave resize would be steady-state
            // allocation pressure (cf. `Overlay::ensure_slots`).
            self.mark.resize(slot_bound.next_power_of_two(), 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.fill(0);
                1
            }
        };
    }

    #[inline]
    fn mark_write(&mut self, slot: u32) {
        // Slots created after the wave snapshot never appear in plans.
        if let Some(m) = self.mark.get_mut(slot as usize) {
            *m = self.epoch;
        }
    }

    #[inline]
    fn written(&self, slot: u32) -> bool {
        self.mark.get(slot as usize).copied() == Some(self.epoch)
    }
}

// ======================================================================
// Per-worker planning scratch
// ======================================================================

/// Free-lists of the vectors plans carry (touch sets, per-vertex walk
/// outcomes, slot programs). Retired plans recycle their buffers here
/// instead of freeing them, so the steady-state single-thread waved path
/// allocates nothing per batch once warm (parallel workers allocate afresh
/// per wave — amortized over their chunks — because plans outlive workers).
#[derive(Default)]
struct BufPool {
    u32s: Vec<Vec<u32>>,
    u64s: Vec<Vec<u64>>,
    u8s: Vec<Vec<u8>>,
    nodes: Vec<Vec<NodeId>>,
    pairs: Vec<Vec<(u32, u32)>>,
}

/// Free-list cap — bounds pool growth when the parallel path recycles
/// worker-allocated buffers it will never hand back out.
const BUF_POOL_CAP: usize = 4096;

macro_rules! pool_lane {
    ($get:ident, $put:ident, $field:ident, $t:ty) => {
        fn $get(&mut self) -> Vec<$t> {
            self.$field.pop().unwrap_or_default()
        }
        fn $put(&mut self, mut v: Vec<$t>) {
            if self.$field.len() < BUF_POOL_CAP {
                v.clear();
                self.$field.push(v);
            }
        }
    };
}

impl BufPool {
    pool_lane!(get_u32, put_u32, u32s, u32);
    pool_lane!(get_u64, put_u64, u64s, u64);
    pool_lane!(get_u8, put_u8, u8s, u8);
    pool_lane!(get_nodes, put_nodes, nodes, NodeId);
    pool_lane!(get_pairs, put_pairs, pairs, (u32, u32));

    /// Reclaim a retired plan's buffers.
    fn recycle(&mut self, plan: OpPlan) {
        match plan {
            OpPlan::Stale | OpPlan::Blocked => {}
            OpPlan::Serial { touch } => self.put_u32(touch),
            OpPlan::Insert(p) => {
                self.put_u32(p.reads);
                self.put_u32(p.writes);
            }
            OpPlan::Delete(p) => {
                self.put_u32(p.reads);
                self.put_u32(p.writes);
                self.put_u64(p.hops);
                self.put_u8(p.move_insts);
                self.put_nodes(p.dests);
                self.put_pairs(p.prog);
            }
        }
    }
}

/// Pooled buffers for one planning worker: the copy-on-write overlay a
/// delete plan mutates, plus list/instance staging and the plan-buffer
/// free-lists. One instance per worker per wave (persistent across waves
/// in the single-thread path); contents never influence results — pure
/// scratch.
#[derive(Default)]
pub(crate) struct PlanScratch {
    overlay: Overlay,
    /// Victim `Sim` snapshot (plan-local).
    zs: Vec<VertexId>,
    /// Rescuer-election neighbor staging.
    nbrs: Vec<NodeId>,
    /// Fabric instance staging for adoption / per-vertex moves.
    insts: Vec<(VertexId, VertexId)>,
    /// Victim adjacency snapshot for overlay node removal.
    incident: Vec<u32>,
    /// Arrival-slot traces of the faulted planner's simulated walks
    /// (reused across attempts; contents drained into plan read sets).
    traces: Vec<Vec<u32>>,
    /// Plan-buffer free-lists.
    pool: BufPool,
}

impl PlanScratch {
    fn new() -> Self {
        Self::default()
    }
}

/// Copy-on-write view of (graph adjacency, Φ ownership) that a delete plan
/// mutates while the real structures stay read-only. Materialized lists
/// replicate the arena's exact `push`/`swap_remove` semantics, so list
/// *order* — which feeds the reservoir sampling of later walk hops — is
/// byte-for-byte what the sequential path would have produced.
///
/// An op materializes a few dozen rows at most, so rows live in flat
/// pooled vectors — but the *hit test* runs on every walk hop and edge
/// edit, so it goes through an epoch-stamped dense `slot → row` index
/// (O(1), reset by bumping the epoch) instead of a linear scan. The
/// small `Sim`/owner override sets stay linear.
#[derive(Default)]
struct Overlay {
    /// Materialized adjacency rows: `adj_slots[i]`'s row is `adj_pool[i]`.
    adj_slots: Vec<u32>,
    adj_pool: Vec<Vec<u32>>,
    /// Dense `(epoch, row)` per graph slot; a stamp equal to the current
    /// epoch means the slot is overlaid at `adj_pool[row]`.
    adj_idx: Vec<(u32, u32)>,
    epoch: u32,
    /// Materialized `Sim` sets: `sim_nodes[i]`'s set is `sim_pool[i]`.
    sim_nodes: Vec<NodeId>,
    sim_pool: Vec<Vec<VertexId>>,
    /// Vertex-owner overrides (append-only; last entry wins).
    owner_z: Vec<u64>,
    owner_node: Vec<NodeId>,
}

impl Overlay {
    /// Pre-size the dense row index to the arena's slot bound so the
    /// steady-state (inline, pooled) planning path never grows it
    /// mid-measurement. Worker-local overlays skip this and grow lazily —
    /// a fresh worker scratch lives for one planning round, and zeroing
    /// `slot_bound` entries per round would cost more than it saves.
    fn ensure_slots(&mut self, bound: usize) {
        if self.adj_idx.len() < bound {
            // Power-of-two headroom: the bound creeps upward under growth
            // churn, and re-sizing every batch would itself be steady-state
            // allocation pressure.
            self.adj_idx.resize(bound.next_power_of_two(), (0, 0));
        }
    }

    fn reset(&mut self) {
        self.adj_slots.clear();
        self.sim_nodes.clear();
        self.owner_z.clear();
        self.owner_node.clear();
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.adj_idx.fill((0, 0));
                1
            }
        };
    }

    /// Overlay row of `slot`, if materialized this epoch.
    #[inline]
    fn row_of(&self, slot: u32) -> Option<usize> {
        match self.adj_idx.get(slot as usize) {
            Some(&(e, row)) if e == self.epoch => Some(row as usize),
            _ => None,
        }
    }

    /// Adjacency row of `slot` (overlaid or underlying).
    #[inline]
    fn adj<'a>(&'a self, g: &'a MultiGraph, slot: u32) -> &'a [u32] {
        match self.row_of(slot) {
            Some(i) => &self.adj_pool[i],
            None => g.neighbor_slots(slot),
        }
    }

    /// Materialize (copy-on-write) `slot`'s adjacency row for mutation,
    /// write-marking it on first touch.
    fn adj_mut(&mut self, g: &MultiGraph, slot: u32, writes: &mut Vec<u32>) -> &mut Vec<u32> {
        let i = match self.row_of(slot) {
            Some(i) => i,
            None => {
                let i = self.adj_slots.len();
                self.adj_slots.push(slot);
                if self.adj_pool.len() <= i {
                    self.adj_pool.push(Vec::new());
                }
                self.adj_pool[i].clear();
                self.adj_pool[i].extend_from_slice(g.neighbor_slots(slot));
                if self.adj_idx.len() <= slot as usize {
                    self.adj_idx.resize(slot as usize + 1, (0, 0));
                }
                self.adj_idx[slot as usize] = (self.epoch, i as u32);
                writes.push(slot);
                i
            }
        };
        &mut self.adj_pool[i]
    }

    /// Replicate `MultiGraph::remove_node` (entry order, first-occurrence
    /// `swap_remove` per reverse entry). `incident` is caller staging.
    fn remove_node(
        &mut self,
        g: &MultiGraph,
        slot: u32,
        incident: &mut Vec<u32>,
        writes: &mut Vec<u32>,
    ) {
        incident.clear();
        incident.extend_from_slice(self.adj(g, slot));
        for &vs in incident.iter() {
            if vs != slot {
                let list = self.adj_mut(g, vs, writes);
                let pos = list
                    .iter()
                    .position(|&w| w == slot)
                    .expect("adjacency symmetry violated in overlay");
                list.swap_remove(pos);
            }
        }
        self.adj_mut(g, slot, writes).clear();
    }

    /// Replicate `MultiGraph::add_edge` in slot space.
    fn add_edge(&mut self, g: &MultiGraph, su: u32, sv: u32, writes: &mut Vec<u32>) {
        if su == sv {
            self.adj_mut(g, su, writes).push(su);
        } else {
            self.adj_mut(g, su, writes).push(sv);
            self.adj_mut(g, sv, writes).push(su);
        }
    }

    /// Replicate `MultiGraph::remove_edge` in slot space (must exist —
    /// the fabric invariant the real path asserts too).
    fn remove_edge(&mut self, g: &MultiGraph, su: u32, sv: u32, writes: &mut Vec<u32>) {
        let lu = self.adj_mut(g, su, writes);
        let pos = lu
            .iter()
            .position(|&w| w == sv)
            .expect("overlay fabric desync: missing instance");
        lu.swap_remove(pos);
        if su != sv {
            let lv = self.adj_mut(g, sv, writes);
            let pos = lv
                .iter()
                .position(|&w| w == su)
                .expect("overlay fabric desync: missing reverse instance");
            lv.swap_remove(pos);
        }
    }

    /// Current owner of `z` under the overlay.
    #[inline]
    fn owner_of(&self, dex: &DexNetwork, z: VertexId) -> NodeId {
        // Last write wins (a vertex can move twice: adoption, then spread).
        match self.owner_z.iter().rposition(|&y| y == z.0) {
            Some(i) => self.owner_node[i],
            None => dex.map.owner_of(z),
        }
    }

    /// Materialize `u`'s `Sim` set for mutation, write-marking `u`'s graph
    /// slot on first touch.
    fn sim_mut(
        &mut self,
        dex: &DexNetwork,
        u: NodeId,
        writes: &mut Vec<u32>,
    ) -> &mut Vec<VertexId> {
        let i = match self.sim_nodes.iter().position(|&w| w == u) {
            Some(i) => i,
            None => {
                let i = self.sim_nodes.len();
                self.sim_nodes.push(u);
                if self.sim_pool.len() <= i {
                    self.sim_pool.push(Vec::new());
                }
                self.sim_pool[i].clear();
                self.sim_pool[i].extend_from_slice(dex.map.sim(u));
                if let Some(slot) = dex.net.graph().slot_of(u) {
                    writes.push(slot);
                }
                i
            }
        };
        &mut self.sim_pool[i]
    }

    /// Load of `u` under the overlay.
    #[inline]
    fn load(&self, dex: &DexNetwork, u: NodeId) -> u64 {
        match self.sim_nodes.iter().position(|&w| w == u) {
            Some(i) => self.sim_pool[i].len() as u64,
            None => dex.map.load(u),
        }
    }

    /// Replicate `VirtualMapping::transfer` (swap-remove from the old
    /// owner's `Sim`, push onto the new one's).
    fn transfer(&mut self, dex: &DexNetwork, z: VertexId, to: NodeId, writes: &mut Vec<u32>) {
        let from = self.owner_of(dex, z);
        let list = self.sim_mut(dex, from, writes);
        let pos = list
            .iter()
            .position(|&y| y == z)
            .expect("overlay Sim desync");
        list.swap_remove(pos);
        self.sim_mut(dex, to, writes).push(z);
        self.owner_z.push(z.0);
        self.owner_node.push(to);
    }
}

/// [`AdjView`] over a plan overlay: the faulted planner's simulated
/// delete walks read adjacency through the pending in-batch edits while
/// the real graph stays untouched (node identity still resolves through
/// the base graph, per the trait contract).
struct OverlayView<'a> {
    g: &'a MultiGraph,
    ov: &'a Overlay,
}

impl AdjView for OverlayView<'_> {
    #[inline]
    fn view_neighbor_slots(&self, slot: u32) -> &[u32] {
        self.ov.adj(self.g, slot)
    }
}

// ======================================================================
// Engine state pooled on the network
// ======================================================================

/// Batch-engine state owned by [`crate::scratch::HealScratch`]: plans,
/// the conflict map, the op staging buffer, and the single-thread
/// planning scratch — all reused across batches.
#[derive(Default)]
pub(crate) struct ParScratch {
    plans: Vec<OpPlan>,
    tracker: TouchTracker,
    pub(crate) ops: Vec<BatchOp>,
    /// Planning scratch for the inline (threads ≤ 1) path, kept warm
    /// across waves and batches.
    inline_scratch: Option<Box<PlanScratch>>,
    /// EMA of committed wave sizes, persisted across batches: sets the
    /// speculation lookahead (plans that would only be invalidated by the
    /// waves in front of them are never computed). Deterministic — a pure
    /// function of the committed wave history.
    wave_ema: usize,
    /// Small-n batches seen by the crossover controller (drives the
    /// deterministic probe schedule).
    small_batches: u64,
    /// EMA of replans per planned op, in milli-replans (integer — the
    /// controller must be bit-deterministic). Updated after every waved
    /// batch; a pure function of the waved-batch history.
    replan_ema_milli: u64,
    /// Whether `replan_ema_milli` has been seeded by a first observation.
    ema_seeded: bool,
}

/// Network size above which the crossover controller always waves: beyond
/// cache-resident state, planning is profitable regardless of conflicts.
pub const CROSSOVER_N_MAX: usize = 32_768;

/// Replan-rate threshold (milli-replans per planned op) above which a
/// small-n batch is routed to the sequential path. PR 4 measured ~0.35
/// replans/op at n≈20k (overlapping touch sets) vs ~0.05 at 200k+.
const CROSSOVER_REPLAN_MILLI: u64 = 150;

/// Every `PROBE`-th small-n batch runs waved regardless, keeping the
/// replan EMA fresh so the controller can exit the sequential regime when
/// the conflict profile changes. Deterministic: a pure function of the
/// batch count.
const CROSSOVER_PROBE_PERIOD: u64 = 16;

impl ParScratch {
    /// Adaptive small-n crossover: should this batch skip the wave engine
    /// and run through the sequential path? Keyed on the live network
    /// size and the observed replan rate (speculation-waste EMA), with a
    /// deterministic probe schedule — a pure function of `(n, waved-batch
    /// history)`, so the decision is identical for every thread count.
    pub(crate) fn crossover_route_seq(&mut self, n: usize) -> bool {
        if n >= CROSSOVER_N_MAX {
            return false;
        }
        self.small_batches += 1;
        if !self.ema_seeded || (self.small_batches - 1).is_multiple_of(CROSSOVER_PROBE_PERIOD) {
            return false; // probe: keep the EMA fresh
        }
        self.replan_ema_milli >= CROSSOVER_REPLAN_MILLI
    }

    /// Fold one waved batch's observed replan rate into the EMA.
    fn observe_replans(&mut self, replans: u64, ops: usize) {
        let milli = replans * 1000 / ops.max(1) as u64;
        if self.ema_seeded {
            self.replan_ema_milli = (3 * self.replan_ema_milli + milli) / 4;
        } else {
            self.replan_ema_milli = milli;
            self.ema_seeded = true;
        }
    }
}

// ======================================================================
// Planning
// ======================================================================

/// Replay the reservoir step of `dex_sim::tokens::random_walk_search` over
/// an adjacency row: identical candidate set and identical RNG consumption
/// (the sequential walk's `exclude` slot never appears in any row the
/// planner sees — for inserts the newcomer is not in the graph yet, which
/// skips without drawing in both worlds).
#[inline]
fn reservoir_step(g: &MultiGraph, nbrs: &[u32], rng: &mut StdRng) -> Option<u32> {
    let mut choice: Option<u32> = None;
    for (i, &v) in nbrs.iter().enumerate() {
        // `seen` in the sequential reservoir is `i + 1`; the range bound —
        // and hence the RNG draw sequence — is identical.
        if rng.random_range(0..i + 1) == 0 {
            choice = Some(v);
            // Start pulling the candidate's arena record now: the
            // reservoir settles after ~H(deg) updates, so by the end of
            // the scan the chosen next hop's line is usually in flight —
            // the walk's dependent-miss chain overlaps with the scan.
            g.prefetch_slot(v);
        }
    }
    choice
}

/// Speculatively heal one op against the current state. Read-only; all
/// mutation happens in `scratch.overlay`.
fn plan_op(dex: &DexNetwork, op: BatchOp, walk_len: u64, scratch: &mut PlanScratch) -> OpPlan {
    match op {
        BatchOp::Insert { u, v } => plan_insert(dex, u, v, walk_len, scratch),
        BatchOp::Delete { victim } => plan_delete(dex, victim, walk_len, scratch),
    }
}

/// Pay the entry-point resolutions of `op` early (slot hash + record
/// line) so they overlap the planning of the op before it.
fn prefetch_plan_entry(dex: &DexNetwork, op: BatchOp) {
    let g = dex.net.graph();
    match op {
        BatchOp::Insert { v, .. } => {
            if let Some(s) = g.slot_of(v) {
                g.prefetch_slot(s);
            }
        }
        BatchOp::Delete { victim } => {
            if let Some(s) = g.slot_of(victim) {
                g.prefetch_slot(s);
            }
            dex.map.prefetch_node(victim);
        }
    }
}

/// Second prefetch stage: the entry row itself (its record is resident
/// from [`prefetch_plan_entry`] one op earlier).
fn prefetch_plan_row(dex: &DexNetwork, op: BatchOp) {
    let g = dex.net.graph();
    let u = match op {
        BatchOp::Insert { v, .. } => v,
        BatchOp::Delete { victim } => victim,
    };
    if let Some(s) = g.slot_of(u) {
        g.prefetch_slot_adj(s);
    }
}

/// One insert walk in flight in the K-way interleaved planner: replays
/// [`plan_insert`]'s walk loop — same keyed RNG stream, same `reads`
/// trace, same spare test — while the engine schedules *when* each hop's
/// adjacency row is read.
struct InsertLane<'d> {
    dex: &'d DexNetwork,
    rng: StdRng,
    walk_len: u64,
    hops: u64,
    hit: Option<u32>,
    reads: Vec<u32>,
}

impl WalkLane for InsertLane<'_> {
    fn choose(&mut self, g: &MultiGraph, _slot: u32, nbrs: &[u32]) -> Option<u32> {
        if self.hops >= self.walk_len {
            return None;
        }
        let next = reservoir_step(g, nbrs, &mut self.rng)?;
        self.hops += 1;
        Some(next)
    }

    fn arrive(&mut self, g: &MultiGraph, slot: u32) -> bool {
        self.reads.push(slot);
        if self.dex.map.is_spare(g.id_of_slot(slot)) {
            self.hit = Some(slot);
            true
        } else {
            false
        }
    }

    fn prefetch_hint(&mut self, g: &MultiGraph, slot: u32) {
        // The spare test at arrival reads the Φ map's node meta; start
        // that line alongside the adjacency row (the slot record itself
        // is resident from the previous pipeline stage).
        self.dex.map.prefetch_node(g.id_of_slot(slot));
    }
}

/// Scalar planner for one chunk of ops (`chunk[i]` plans op
/// `ops[first + i]`): depth-2 entry pipeline — resolve + prefetch op
/// i+2's entry record, row-prefetch op i+1, plan op i.
fn plan_chunk_scalar(
    dex: &DexNetwork,
    ops: &[BatchOp],
    first: usize,
    walk_len: u64,
    chunk: &mut [OpPlan],
    ps: &mut PlanScratch,
) {
    let len = chunk.len();
    for (off, slot) in chunk.iter_mut().enumerate() {
        if off + 2 < len {
            prefetch_plan_entry(dex, ops[first + off + 2]);
        }
        if off + 1 < len {
            prefetch_plan_row(dex, ops[first + off + 1]);
        }
        if matches!(slot, OpPlan::Stale) {
            *slot = plan_op(dex, ops[first + off], walk_len, ps);
        }
    }
}

/// Memory-level-parallel planner for one chunk: phase 1 drives every
/// stale insert's walk through the K-way interleaved engine — ~K walks
/// advance round-robin, each one's next adjacency row prefetched while
/// the others consume already-resident lines — then phase 2 finishes the
/// insert plans from the recorded outcomes and plans deletes (whose
/// redistribution walks run over a per-op overlay and therefore stay
/// serial within the op) under the retained depth-2 entry pipeline.
///
/// Bit-identical to [`plan_chunk_scalar`]: every walk owns its keyed RNG
/// stream, so interleaving permutes only the wall-clock order of row
/// reads, never a draw — a differential test compares whole plans.
fn plan_chunk_interleaved(
    dex: &DexNetwork,
    ops: &[BatchOp],
    first: usize,
    walk_len: u64,
    chunk: &mut [OpPlan],
    ps: &mut PlanScratch,
) {
    let g = dex.net.graph();
    // ---- phase 1: fan the stale inserts' walks K-way -----------------
    let mut lanes: Vec<InsertLane> = Vec::with_capacity(chunk.len());
    let mut starts: Vec<u32> = Vec::with_capacity(chunk.len());
    for (off, slot) in chunk.iter_mut().enumerate() {
        if !matches!(slot, OpPlan::Stale) {
            continue;
        }
        if let BatchOp::Insert { u, v } = ops[first + off] {
            let Some(start) = g.slot_of(v) else {
                // Chained join: the attach point is an earlier newcomer
                // of this batch that has not committed yet.
                *slot = OpPlan::Blocked;
                continue;
            };
            let mut reads = ps.pool.get_u32();
            reads.push(start);
            lanes.push(InsertLane {
                dex,
                rng: dex
                    .seeds
                    .stream(Purpose::InsertWalk, &[dex.step_no, u.0, 0]),
                walk_len,
                hops: 0,
                hit: None,
                reads,
            });
            starts.push(start);
        }
    }
    run_interleaved(g, &mut lanes, &starts, dex_graph::par::walk_pipeline_k());
    // ---- phase 2: finish plans in op order ---------------------------
    let len = chunk.len();
    let mut lane = lanes.into_iter();
    for (off, slot) in chunk.iter_mut().enumerate() {
        // Deletes keep the depth-2 entry pipeline; insert entries were
        // already streamed through the engine in phase 1.
        if off + 2 < len {
            if let op @ BatchOp::Delete { .. } = ops[first + off + 2] {
                prefetch_plan_entry(dex, op);
            }
        }
        if off + 1 < len {
            if let op @ BatchOp::Delete { .. } = ops[first + off + 1] {
                prefetch_plan_row(dex, op);
            }
        }
        if !matches!(slot, OpPlan::Stale) {
            continue;
        }
        *slot = match ops[first + off] {
            BatchOp::Insert { .. } => {
                let l = lane.next().expect("one lane per stale insert");
                plan_insert_finish(dex, l.hit, l.hops, l.reads, None, ps)
            }
            BatchOp::Delete { victim } => plan_delete(dex, victim, walk_len, ps),
        };
    }
    debug_assert!(lane.next().is_none(), "all insert lanes consumed");
}

fn plan_insert(
    dex: &DexNetwork,
    u: NodeId,
    v: NodeId,
    walk_len: u64,
    scratch: &mut PlanScratch,
) -> OpPlan {
    let g = dex.net.graph();
    let Some(start) = g.slot_of(v) else {
        // Chained join: the attach point is an earlier newcomer of this
        // batch that has not committed yet.
        return OpPlan::Blocked;
    };
    let mut reads: Vec<u32> = scratch.pool.get_u32();
    reads.push(start);
    // Exactly `heal_one_insert`, attempt 0: walk from the attach point
    // with the stream keyed by the newcomer id.
    let mut rng = dex
        .seeds
        .stream(Purpose::InsertWalk, &[dex.step_no, u.0, 0]);
    let mut cur = start;
    let mut hops = 0u64;
    let mut hit = None;
    while hops < walk_len {
        let Some(next) = reservoir_step(g, g.neighbor_slots(cur), &mut rng) else {
            break;
        };
        hops += 1;
        cur = next;
        reads.push(cur);
        if dex.map.is_spare(g.id_of_slot(cur)) {
            hit = Some(cur);
            break;
        }
    }
    plan_insert_finish(dex, hit, hops, reads, None, scratch)
}

/// Resolve a planned insert's fabric edit from its walk outcome:
/// `reads[0]` is the attach slot, `hit` the spare's slot (`None` = walk
/// miss ⇒ sequential territory). Shared tail of the scalar
/// [`plan_insert`] and the K-way interleaved planner, so both produce
/// the plan from one code path.
fn plan_insert_finish(
    dex: &DexNetwork,
    hit: Option<u32>,
    hops: u64,
    reads: Vec<u32>,
    faulted: Option<Box<FaultedCharge>>,
    scratch: &mut PlanScratch,
) -> OpPlan {
    let g = dex.net.graph();
    let start = reads[0];
    let Some(hit_slot) = hit else {
        // Walk miss ⇒ flood count ⇒ possibly type-2: whole-state reads.
        return OpPlan::Serial { touch: reads };
    };
    let mut writes: Vec<u32> = scratch.pool.get_u32();
    let w = g.id_of_slot(hit_slot);
    writes.push(start);
    writes.push(hit_slot);
    // The donated vertex, and the whole fabric edit as a slot program:
    // owners resolved here, once, instead of hash-by-hash at commit.
    let z = *dex
        .map
        .sim(w)
        .iter()
        .max()
        .expect("spare node simulates a vertex");
    fabric::incident_edges_into(&dex.cycle, &[z], &mut scratch.insts);
    let mut rm = [(0u32, 0u32); 3];
    let mut ad = [(0u32, 0u32); 3];
    let n_inst = scratch.insts.len();
    debug_assert!(n_inst <= 3);
    for (i, &(a, b)) in scratch.insts.iter().enumerate() {
        // One owner resolution per endpoint serves both the removal (z
        // still at the donor) and the re-add (z at the newcomer).
        let resolve = |x: VertexId| -> (u32, u32) {
            if x == z {
                return (hit_slot, NEW_SLOT);
            }
            let owner = dex.map.owner_of(x);
            let s = g.slot_of(owner).expect("owner is live");
            (s, s)
        };
        let (ra, aa) = resolve(a);
        let (rb, ab) = resolve(b);
        rm[i] = (ra, rb);
        ad[i] = (aa, ab);
        for s in [ra, rb] {
            if s != hit_slot {
                writes.push(s);
            }
        }
    }
    OpPlan::Insert(InsertPlan {
        hit: w,
        hit_slot,
        v_slot: start,
        z,
        hops,
        rm,
        ad,
        n_inst: n_inst as u8,
        reads,
        writes,
        faulted,
    })
}

fn plan_delete(
    dex: &DexNetwork,
    victim: NodeId,
    walk_len: u64,
    scratch: &mut PlanScratch,
) -> OpPlan {
    let g = dex.net.graph();
    let cycle = &dex.cycle;
    let vslot = g.slot_of(victim).expect("victim validated live");
    let mut reads: Vec<u32> = scratch.pool.get_u32();
    let mut writes: Vec<u32> = scratch.pool.get_u32();
    reads.push(vslot);

    // Overlap the op's scattered dependent reads before chasing them:
    // every victim neighbor's record (rescuer election + removal fix-ups)
    // and the Φ meta of every incident vertex the adoption will resolve
    // (the incident list is a pure function of (cycle, zs), so it is
    // computed here once and reused below).
    for &s in g.neighbor_slots(vslot) {
        g.prefetch_slot(s);
    }
    let zs = &mut scratch.zs;
    zs.clear();
    zs.extend_from_slice(dex.map.sim(victim));
    fabric::incident_edges_into(cycle, zs, &mut scratch.insts);
    for &(a, b) in scratch.insts.iter() {
        dex.map.prefetch_vertex(a);
        dex.map.prefetch_vertex(b);
    }

    // Rescuer election, exactly as the sequential entry loop does it.
    let nbrs = &mut scratch.nbrs;
    nbrs.clear();
    nbrs.extend(
        g.neighbor_slots(vslot)
            .iter()
            .map(|&s| g.id_of_slot(s))
            .filter(|&w| w != victim),
    );
    nbrs.sort_unstable();
    nbrs.dedup();
    if nbrs.is_empty() {
        // The sequential path panics ("lost all neighbors"); route through
        // it so the failure is identical.
        scratch.pool.put_u32(writes);
        return OpPlan::Serial { touch: reads };
    }
    let rescuer = nbrs[0];
    let rescuer_slot = g.slot_of(rescuer).expect("rescuer is live");

    let ov = &mut scratch.overlay;
    ov.reset();
    let mut prog: Vec<(u32, u32)> = scratch.pool.get_pairs();
    let mut move_insts: Vec<u8> = scratch.pool.get_u8();

    // adversary_remove_node(victim).
    ov.remove_node(g, vslot, &mut scratch.incident, &mut writes);
    // adopt_vertices: transfer all to the rescuer, then restore incident
    // instances under the new owners.
    for &z in zs.iter() {
        ov.transfer(dex, z, rescuer, &mut writes);
    }
    // `scratch.insts` still holds the adoption incident list from above.
    for i in 0..scratch.insts.len() {
        let (a, b) = scratch.insts[i];
        let (ua, ub) = (ov.owner_of(dex, a), ov.owner_of(dex, b));
        let (sa, sb) = (
            g.slot_of(ua).expect("owner is live"),
            g.slot_of(ub).expect("owner is live"),
        );
        ov.add_edge(g, sa, sb, &mut writes);
        prog.push((sa, sb));
    }
    let adopt_n = prog.len() as u32;

    // Per-vertex redistribution walks, each over the overlayed state.
    let mut dests: Vec<NodeId> = scratch.pool.get_nodes();
    let mut hops_per: Vec<u64> = scratch.pool.get_u64();
    for (i, &z) in zs.iter().enumerate() {
        let mut rng = dex
            .seeds
            .stream(Purpose::DeleteWalk, &[dex.step_no, victim.0, i as u64, 0]);
        let mut cur = rescuer_slot;
        let mut hops = 0u64;
        let mut hit = None;
        while hops < walk_len {
            let Some(next) = reservoir_step(g, ov.adj(g, cur), &mut rng) else {
                break;
            };
            hops += 1;
            cur = next;
            reads.push(cur);
            let id = g.id_of_slot(cur);
            let l = ov.load(dex, id);
            if l >= 1 && l <= 2 * dex.cfg.zeta {
                hit = Some(id);
                break;
            }
        }
        let Some(w) = hit else {
            // Miss ⇒ flood ⇒ possibly deflate: sequential path territory.
            reads.extend_from_slice(&writes);
            scratch.pool.put_u32(writes);
            scratch.pool.put_nodes(dests);
            scratch.pool.put_u64(hops_per);
            scratch.pool.put_u8(move_insts);
            scratch.pool.put_pairs(prog);
            return OpPlan::Serial { touch: reads };
        };
        if w != rescuer {
            // Replicate move_vertices([z], w) on the overlay, emitting the
            // slot program (removals under pre-move owners, re-adds under
            // post-move owners).
            fabric::incident_edges_into(cycle, &[z], &mut scratch.insts);
            move_insts.push(scratch.insts.len() as u8);
            for i in 0..scratch.insts.len() {
                let (a, b) = scratch.insts[i];
                let (ua, ub) = (ov.owner_of(dex, a), ov.owner_of(dex, b));
                let (sa, sb) = (
                    g.slot_of(ua).expect("owner is live"),
                    g.slot_of(ub).expect("owner is live"),
                );
                ov.remove_edge(g, sa, sb, &mut writes);
                prog.push((sa, sb));
            }
            ov.transfer(dex, z, w, &mut writes);
            for i in 0..scratch.insts.len() {
                let (a, b) = scratch.insts[i];
                let (ua, ub) = (ov.owner_of(dex, a), ov.owner_of(dex, b));
                let (sa, sb) = (
                    g.slot_of(ua).expect("owner is live"),
                    g.slot_of(ub).expect("owner is live"),
                );
                ov.add_edge(g, sa, sb, &mut writes);
                prog.push((sa, sb));
            }
        }
        dests.push(w);
        hops_per.push(hops);
    }
    OpPlan::Delete(DeletePlan {
        rescuer,
        dests,
        hops: hops_per,
        prog,
        adopt_n,
        move_insts,
        reads,
        writes,
        faulted: None,
    })
}

// ======================================================================
// Faulted planning (a FaultSpec is installed)
// ======================================================================

/// Plan one chunk of ops under a fault spec: each walk is replayed on
/// the message-level simulator (read-only, single-engine-thread — the
/// engine is thread-count invariant) exactly as the faulted sequential
/// heal would run it, so a committed wave is bit-identical to sequential
/// faulted application. Ops whose heal leaves the walk fast path (a
/// protocol miss → flood, a lost-walk fallback, retry exhaustion) come
/// back [`OpPlan::Serial`] and run through the untouched faulted
/// sequential code at the head of the queue.
fn plan_chunk_faulted(
    dex: &DexNetwork,
    ops: &[BatchOp],
    first: usize,
    chunk: &mut [OpPlan],
    ps: &mut PlanScratch,
) {
    for (off, slot) in chunk.iter_mut().enumerate() {
        if matches!(slot, OpPlan::Stale) {
            *slot = match ops[first + off] {
                BatchOp::Insert { u, v } => plan_insert_faulted(dex, u, v, ps),
                BatchOp::Delete { victim } => plan_delete_faulted(dex, victim, ps),
            };
        }
    }
}

/// Faulted mirror of [`plan_insert`]: replay `heal_one_insert_faulted`'s
/// attempt loop on the schedule. Waveable iff an attempt hits before the
/// lost-walk budget or a protocol miss forces the flood path.
fn plan_insert_faulted(
    dex: &DexNetwork,
    u: NodeId,
    v: NodeId,
    scratch: &mut PlanScratch,
) -> OpPlan {
    let g = dex.net.graph();
    let Some(start) = g.slot_of(v) else {
        // Chained join: the attach point is an earlier newcomer of this
        // batch that has not committed yet.
        return OpPlan::Blocked;
    };
    let spec = dex.faults.expect("faulted planning without a fault spec");
    let mut reads: Vec<u32> = scratch.pool.get_u32();
    reads.push(start);
    let mut charge = Box::new(FaultedCharge::default());
    let mut lost = 0u32;
    let mut hit_slot = None;
    for attempt in 0..dex.cfg.max_walk_retries {
        charge.attempts += 1;
        let map = &dex.map;
        let (out, report) = crate::faulted::plan_walk_faulted(
            dex,
            g,
            v,
            Some(u),
            |w| map.is_spare(w),
            Purpose::InsertWalk,
            &[dex.step_no, u.0, attempt],
            &mut scratch.traces,
        );
        charge.rounds += report.makespan;
        charge.messages += report.messages;
        charge.stats.merge(&report.stats);
        reads.extend_from_slice(&scratch.traces[0]);
        if let Some(w) = out.hit {
            hit_slot = Some(g.slot_of(w).expect("hit node is live"));
            break;
        }
        if out.lost {
            lost += 1;
            if lost > spec.fallback_after {
                // Lost-walk fallback ⇒ flood: whole-state reads.
                return OpPlan::Serial { touch: reads };
            }
            continue;
        }
        // Protocol miss ⇒ flood ⇒ possibly type-2.
        return OpPlan::Serial { touch: reads };
    }
    // Retry exhaustion panics in the sequential path; route through it
    // so the failure is identical.
    plan_insert_finish(dex, hit_slot, 0, reads, Some(charge), scratch)
}

/// Faulted mirror of [`plan_delete`]: adoption and moves replay on the
/// overlay exactly as before, but every redistribution walk runs on the
/// message schedule *against the overlay* ([`OverlayView`]), replicating
/// `heal_one_delete_core_faulted`'s attempt loop per vertex.
fn plan_delete_faulted(dex: &DexNetwork, victim: NodeId, scratch: &mut PlanScratch) -> OpPlan {
    let g = dex.net.graph();
    let cycle = &dex.cycle;
    let spec = dex.faults.expect("faulted planning without a fault spec");
    let vslot = g.slot_of(victim).expect("victim validated live");
    let mut reads: Vec<u32> = scratch.pool.get_u32();
    let mut writes: Vec<u32> = scratch.pool.get_u32();
    reads.push(vslot);

    // Rescuer election, exactly as the sequential entry loop does it.
    let nbrs = &mut scratch.nbrs;
    nbrs.clear();
    nbrs.extend(
        g.neighbor_slots(vslot)
            .iter()
            .map(|&s| g.id_of_slot(s))
            .filter(|&w| w != victim),
    );
    nbrs.sort_unstable();
    nbrs.dedup();
    if nbrs.is_empty() {
        scratch.pool.put_u32(writes);
        return OpPlan::Serial { touch: reads };
    }
    let rescuer = nbrs[0];

    let zs = &mut scratch.zs;
    zs.clear();
    zs.extend_from_slice(dex.map.sim(victim));
    let ov = &mut scratch.overlay;
    ov.reset();
    let mut prog: Vec<(u32, u32)> = scratch.pool.get_pairs();
    let mut move_insts: Vec<u8> = scratch.pool.get_u8();

    // adversary_remove_node(victim), then adoption — identical to the
    // centralized planner (the faulted path shares this mutation code).
    ov.remove_node(g, vslot, &mut scratch.incident, &mut writes);
    for &z in zs.iter() {
        ov.transfer(dex, z, rescuer, &mut writes);
    }
    fabric::incident_edges_into(cycle, zs, &mut scratch.insts);
    for i in 0..scratch.insts.len() {
        let (a, b) = scratch.insts[i];
        let (ua, ub) = (ov.owner_of(dex, a), ov.owner_of(dex, b));
        let (sa, sb) = (
            g.slot_of(ua).expect("owner is live"),
            g.slot_of(ub).expect("owner is live"),
        );
        ov.add_edge(g, sa, sb, &mut writes);
        prog.push((sa, sb));
    }
    let adopt_n = prog.len() as u32;

    let mut charge = Box::new(FaultedCharge::default());
    let mut dests: Vec<NodeId> = scratch.pool.get_nodes();
    let mut hops_per: Vec<u64> = scratch.pool.get_u64();
    let mut serial = false;
    'vertices: for (i, &z) in zs.iter().enumerate() {
        let mut attempt = 0u64;
        let mut lost = 0u32;
        let w = loop {
            charge.attempts += 1;
            let (out, report) = {
                let view = OverlayView { g, ov };
                let zeta = dex.cfg.zeta;
                let accept = |w: NodeId| {
                    let l = view.ov.load(dex, w);
                    l >= 1 && l <= 2 * zeta
                };
                crate::faulted::plan_walk_faulted(
                    dex,
                    &view,
                    rescuer,
                    None,
                    accept,
                    Purpose::DeleteWalk,
                    &[dex.step_no, victim.0, i as u64, attempt],
                    &mut scratch.traces,
                )
            };
            charge.rounds += report.makespan;
            charge.messages += report.messages;
            charge.stats.merge(&report.stats);
            reads.extend_from_slice(&scratch.traces[0]);
            if let Some(w) = out.hit {
                break w;
            }
            if out.lost {
                lost += 1;
                if lost > spec.fallback_after {
                    // Lost-walk fallback ⇒ flood: sequential territory.
                    serial = true;
                    break 'vertices;
                }
            } else {
                // Protocol miss ⇒ flood ⇒ possibly deflate.
                serial = true;
                break 'vertices;
            }
            attempt += 1;
            if attempt >= dex.cfg.max_walk_retries {
                // The sequential path asserts here; route through it so
                // the failure is identical.
                serial = true;
                break 'vertices;
            }
        };
        if w != rescuer {
            fabric::incident_edges_into(cycle, &[z], &mut scratch.insts);
            move_insts.push(scratch.insts.len() as u8);
            for i in 0..scratch.insts.len() {
                let (a, b) = scratch.insts[i];
                let (ua, ub) = (ov.owner_of(dex, a), ov.owner_of(dex, b));
                let (sa, sb) = (
                    g.slot_of(ua).expect("owner is live"),
                    g.slot_of(ub).expect("owner is live"),
                );
                ov.remove_edge(g, sa, sb, &mut writes);
                prog.push((sa, sb));
            }
            ov.transfer(dex, z, w, &mut writes);
            for i in 0..scratch.insts.len() {
                let (a, b) = scratch.insts[i];
                let (ua, ub) = (ov.owner_of(dex, a), ov.owner_of(dex, b));
                let (sa, sb) = (
                    g.slot_of(ua).expect("owner is live"),
                    g.slot_of(ub).expect("owner is live"),
                );
                ov.add_edge(g, sa, sb, &mut writes);
                prog.push((sa, sb));
            }
        }
        dests.push(w);
        hops_per.push(0);
    }
    if serial {
        reads.extend_from_slice(&writes);
        scratch.pool.put_u32(writes);
        scratch.pool.put_nodes(dests);
        scratch.pool.put_u64(hops_per);
        scratch.pool.put_u8(move_insts);
        scratch.pool.put_pairs(prog);
        return OpPlan::Serial { touch: reads };
    }
    OpPlan::Delete(DeletePlan {
        rescuer,
        dests,
        hops: hops_per,
        prog,
        adopt_n,
        move_insts,
        reads,
        writes,
        faulted: Some(charge),
    })
}

// ======================================================================
// Commit
// ======================================================================

/// Issue prefetches for the lines a plan's commit will touch — its slot
/// program's arena rows and the Φ segments it edits. Called one op ahead
/// of the commit loop so the next commit's dependent-miss chain overlaps
/// the current one (single-core memory-level parallelism).
fn prefetch_commit(dex: &DexNetwork, op: &BatchOp, plan: &OpPlan) {
    let g = dex.net.graph();
    match (op, plan) {
        (BatchOp::Insert { .. }, OpPlan::Insert(p)) => {
            g.prefetch_slot(p.v_slot);
            g.prefetch_slot_adj(p.v_slot);
            g.prefetch_slot(p.hit_slot);
            dex.map.prefetch_node(p.hit);
            dex.map.prefetch_vertex(p.z);
            for i in 0..p.n_inst as usize {
                for s in [p.rm[i].0, p.rm[i].1] {
                    g.prefetch_slot(s);
                    g.prefetch_slot_adj(s);
                }
            }
        }
        (BatchOp::Delete { victim }, OpPlan::Delete(p)) => {
            if let Some(s) = g.slot_of(*victim) {
                g.prefetch_slot(s);
                g.prefetch_slot_adj(s);
            }
            dex.map.prefetch_node(*victim);
            dex.map.prefetch_node(p.rescuer);
            for &(a, b) in p.prog.iter() {
                g.prefetch_slot(a);
                g.prefetch_slot(b);
            }
        }
        _ => {}
    }
}

/// Apply a planned insert through the charged slot-space editors (no
/// hashing beyond the newcomer's unavoidable arena inserts), charging
/// exactly what the sequential path charges; the walk is replaced by its
/// planned outcome.
fn commit_insert(dex: &mut DexNetwork, u: NodeId, v: NodeId, plan: &InsertPlan) {
    debug_assert_eq!(dex.net.graph().slot_of(v), Some(plan.v_slot));
    let _ = v;
    let u_slot = dex.net.adversary_add_node_slot(u);
    dex.net.adversary_add_edge_slots(u_slot, plan.v_slot);
    dex.walk_stats.hits += 1;
    if let Some(fc) = &plan.faulted {
        // Walks ran on the message schedule at plan time: apply the
        // recorded engine charge instead of the hops-based one.
        dex.walk_stats.attempts += fc.attempts;
        dex.net.charge_rounds(fc.rounds);
        dex.net.charge_messages(fc.messages);
        dex.fault_stats.merge(&fc.stats);
    } else {
        dex.walk_stats.attempts += 1;
        dex.net.charge_rounds(plan.hops);
        dex.net.charge_messages(plan.hops);
    }
    // give_vertex_to_new_node, pre-resolved: move z's instances off the
    // old owners, transfer, re-add under the new owners.
    debug_assert!(dex.map.load(plan.hit) >= 2);
    debug_assert_eq!(
        dex.map.sim(plan.hit).iter().max(),
        Some(&plan.z),
        "speculative donated vertex diverged"
    );
    for i in 0..plan.n_inst as usize {
        let (a, b) = plan.rm[i];
        assert!(
            dex.net.remove_edge_slots(a, b),
            "fabric desync: missing planned instance"
        );
    }
    dex.map.transfer(plan.z, u);
    for i in 0..plan.n_inst as usize {
        let (a, b) = plan.ad[i];
        let a = if a == NEW_SLOT { u_slot } else { a };
        let b = if b == NEW_SLOT { u_slot } else { b };
        dex.net.add_edge_slots(a, b);
    }
    dex.net.charge_messages(4);
    dex.net.charge_rounds(1);
    // charge_load_updates(&[hit, u]) — degrees read before the attach edge
    // comes down, exactly like the sequential path.
    let g = dex.net.graph();
    let msgs = (g.degree_of_slot(plan.hit_slot) + g.degree_of_slot(u_slot)) as u64;
    dex.net.charge_messages(msgs);
    // Remove the adversary's temporary attach edge (charged).
    assert!(dex.net.remove_edge_slots(u_slot, plan.v_slot));
}

/// Apply a planned delete; see [`commit_insert`].
fn commit_delete(dex: &mut DexNetwork, victim: NodeId, plan: &DeletePlan) {
    #[cfg(debug_assertions)]
    {
        // The rescuer election re-run against live state must equal the
        // planned one (wave disjointness).
        let mut nbrs: Vec<NodeId> = dex
            .net
            .graph()
            .neighbors(victim)
            .iter()
            .filter(|&w| w != victim)
            .collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        assert_eq!(
            nbrs.first(),
            Some(&plan.rescuer),
            "speculative rescuer diverged"
        );
    }
    dex.net.adversary_remove_node(victim);

    let mut zs = std::mem::take(&mut dex.heal.zs);
    zs.clear();
    zs.extend_from_slice(dex.map.sim(victim));
    debug_assert_eq!(zs.len(), plan.dests.len(), "speculative Sim diverged");
    // Adoption: Φ transfers with one slot resolution, then the planned
    // instance re-adds.
    dex.map.transfer_all(&zs, plan.rescuer);
    for &(a, b) in &plan.prog[..plan.adopt_n as usize] {
        dex.net.add_edge_slots(a, b);
    }
    dex.net.charge_messages(3 * zs.len() as u64);
    dex.net.charge_rounds(1);
    if let Some(fc) = &plan.faulted {
        // Redistribution walks ran on the message schedule at plan time:
        // one aggregate engine charge replaces the per-vertex hops ones
        // (charges are additive within the step, so totals are exactly
        // the faulted sequential path's).
        dex.walk_stats.attempts += fc.attempts;
        dex.net.charge_rounds(fc.rounds);
        dex.net.charge_messages(fc.messages);
        dex.fault_stats.merge(&fc.stats);
    }

    let mut cursor = plan.adopt_n as usize;
    let mut mv = 0usize;
    for (i, &z) in zs.iter().enumerate() {
        if plan.faulted.is_none() {
            dex.walk_stats.attempts += 1;
            dex.net.charge_rounds(plan.hops[i]);
            dex.net.charge_messages(plan.hops[i]);
        }
        dex.walk_stats.hits += 1;
        let w = plan.dests[i];
        if w != plan.rescuer {
            let n = plan.move_insts[mv] as usize;
            mv += 1;
            for &(a, b) in &plan.prog[cursor..cursor + n] {
                assert!(
                    dex.net.remove_edge_slots(a, b),
                    "fabric desync: missing planned instance"
                );
            }
            dex.map.transfer(z, w);
            for &(a, b) in &plan.prog[cursor + n..cursor + 2 * n] {
                dex.net.add_edge_slots(a, b);
            }
            cursor += 2 * n;
            dex.net.charge_messages(4);
            dex.net.charge_rounds(1);
        }
    }
    debug_assert_eq!(cursor, plan.prog.len());
    dex.heal.zs = zs;
}

/// Run one op through the untouched sequential heal path (the op is at
/// the head of the queue, so this *is* sequential semantics). Returns
/// whether type-2 fired.
fn run_sequential_op(dex: &mut DexNetwork, op: BatchOp) -> bool {
    match op {
        BatchOp::Insert { u, v } => {
            dex.net.adversary_add_node(u);
            dex.net.adversary_add_edge(u, v);
            dex.heal_one_insert(u, v)
        }
        BatchOp::Delete { victim } => {
            dex.heal.nbrs.clear();
            let nbrs = &mut dex.heal.nbrs;
            nbrs.extend(
                dex.net
                    .graph()
                    .neighbors(victim)
                    .iter()
                    .filter(|&w| w != victim),
            );
            nbrs.sort_unstable();
            nbrs.dedup();
            assert!(!nbrs.is_empty(), "victim {victim} lost all neighbors");
            let rescuer = nbrs[0];
            dex.net.adversary_remove_node(victim);
            dex.heal_one_delete(victim, rescuer)
        }
    }
}

// ======================================================================
// The engine
// ======================================================================

/// Apply a validated batch through conflict-free waves. The step scope is
/// already open and `step_no` bumped; returns whether any op used type-2.
pub(crate) fn run_batch(dex: &mut DexNetwork, threads: usize) -> bool {
    let mut state = std::mem::take(&mut dex.heal.par);
    let ops = std::mem::take(&mut state.ops);
    let mut used_type2 = false;
    let replans_at_entry = dex.batch_stats.replans;
    // Faulted batches plan on the message-level simulator; a replan
    // under a *non-zero* spec is a planning walk invalidated by a
    // committed wave (counted so zero-fault runs can assert none of the
    // fault machinery engaged).
    let faulted = dex.faults.is_some();
    let faults_active = dex.faults.is_some_and(|s| !s.is_zero());

    state.plans.clear();
    state.plans.resize_with(ops.len(), || OpPlan::Stale);
    let mut inline_scratch = state
        .inline_scratch
        .take()
        .unwrap_or_else(|| Box::new(PlanScratch::new()));
    inline_scratch
        .overlay
        .ensure_slots(dex.net.graph().slot_bound());

    if state.wave_ema == 0 {
        state.wave_ema = 64; // optimistic first batch
    }
    let mut next = 0usize;
    while next < ops.len() {
        let walk_len = dex.cfg.walk_len(dex.cycle.p());
        // Speculate ~4 expected waves ahead: under heavy conflict (small
        // waves) most longer-range plans would be invalidated before
        // their turn, so planning them is pure waste; under low conflict
        // the lookahead covers the whole window anyway.
        let lookahead = (4 * state.wave_ema).clamp(32, PLAN_WINDOW);
        let window_end = (next + lookahead).min(ops.len());

        // ---- 1. (re)plan stale ops, fanned out over workers -----------
        let t_plan = std::time::Instant::now();
        {
            let dex_ref: &DexNetwork = dex;
            let ops_ref = &ops[..];
            let base = next;
            let plans = &mut state.plans[next..window_end];
            let stale = plans.iter().filter(|p| matches!(p, OpPlan::Stale)).count();
            // Engage workers only when there is enough stale work to fill
            // their chunks (results are identical either way — the clamp
            // is purely a throughput guard). With the persistent pool a
            // fan-out costs parked-worker handoffs, not spawns, so the
            // requested thread count is honored even above the core count.
            let workers = threads.min(stale.div_ceil(PLAN_CHUNK)).max(1);
            // Per-chunk planner: the K-way interleaved engine unless
            // `DEX_MLP_KERNELS=0` forces the scalar depth-2 pipeline.
            // Both produce bit-identical plans (differentially tested).
            let interleave = dex_graph::par::mlp_enabled();
            let plan_chunk = |start: usize, chunk: &mut [OpPlan], ps: &mut PlanScratch| {
                if faulted {
                    plan_chunk_faulted(dex_ref, ops_ref, base + start, chunk, ps);
                } else if interleave {
                    plan_chunk_interleaved(dex_ref, ops_ref, base + start, walk_len, chunk, ps);
                } else {
                    plan_chunk_scalar(dex_ref, ops_ref, base + start, walk_len, chunk, ps);
                }
            };
            if workers <= 1 {
                plan_chunk(0, plans, &mut inline_scratch);
            } else {
                // Persistent pool + persistent per-worker scratch slots:
                // once warm, a planning round spawns no threads and builds
                // no scratch — workers are handed their fixed chunk spans
                // and reuse the PlanScratch living in their TLS slot.
                dex_exec::for_chunks_scratch_mut::<_, PlanScratch, _>(
                    plans, workers, PLAN_CHUNK, plan_chunk,
                );
            }
        }
        dex.batch_stats.plan_ns += t_plan.elapsed().as_nanos() as u64;

        // ---- 2. partition: maximal conflict-free prefix ----------------
        let t_part = std::time::Instant::now();
        state.tracker.begin_wave(dex.net.graph().slot_bound());
        let mut wave_end = next;
        while wave_end < window_end {
            let Some((reads, writes)) = state.plans[wave_end].touch_sets() else {
                break; // Serial or Blocked truncates the wave
            };
            if reads
                .iter()
                .chain(writes)
                .any(|&s| state.tracker.written(s))
            {
                break;
            }
            for &s in writes {
                state.tracker.mark_write(s);
            }
            wave_end += 1;
        }
        dex.batch_stats.partition_ns += t_part.elapsed().as_nanos() as u64;

        if wave_end == next {
            // ---- serial fallback: head op through the sequential path --
            assert!(
                !matches!(state.plans[next], OpPlan::Blocked),
                "head op blocked: validation guarantees the attach point is \
                 live or an earlier newcomer (already committed)"
            );
            let t_serial = std::time::Instant::now();
            used_type2 |= run_sequential_op(dex, ops[next]);
            dex.batch_stats.serial_ns += t_serial.elapsed().as_nanos() as u64;
            next += 1;
            dex.net.note_heal_wave();
            dex.batch_stats.record_wave(1);
            dex.batch_stats.serial_ops += 1;
            state.wave_ema = (3 * state.wave_ema + 1) / 4;
            // A sequential op's writes are untracked (it may have run a
            // type-2 rebuild): every surviving plan is stale.
            for p in &mut state.plans[next..] {
                if !matches!(p, OpPlan::Stale) {
                    dex.batch_stats.replans += 1;
                    if faults_active {
                        dex.fault_stats.wave_replans += 1;
                    }
                    let old = std::mem::replace(p, OpPlan::Stale);
                    inline_scratch.pool.recycle(old);
                }
            }
            continue;
        }

        // ---- 3. commit the wave in canonical order ---------------------
        let t_commit = std::time::Instant::now();
        for idx in next..wave_end {
            if idx + 1 < wave_end {
                prefetch_commit(dex, &ops[idx + 1], &state.plans[idx + 1]);
            }
            match (&ops[idx], &state.plans[idx]) {
                (&BatchOp::Insert { u, v }, OpPlan::Insert(p)) => commit_insert(dex, u, v, p),
                (&BatchOp::Delete { victim }, OpPlan::Delete(p)) => commit_delete(dex, victim, p),
                _ => unreachable!("accepted plan shape mismatch"),
            }
        }
        dex.batch_stats.commit_ns += t_commit.elapsed().as_nanos() as u64;
        let wave_size = wave_end - next;
        next = wave_end;
        dex.net.note_heal_wave();
        dex.batch_stats.record_wave(wave_size);
        dex.batch_stats.waved_ops += wave_size as u64;
        state.wave_ema = (3 * state.wave_ema + wave_size) / 4;

        // ---- 4. invalidate surviving plans the wave wrote into ---------
        let t_inval = std::time::Instant::now();
        for p in &mut state.plans[next..] {
            if p.invalidated_by(&state.tracker) {
                dex.batch_stats.replans += 1;
                if faults_active {
                    dex.fault_stats.wave_replans += 1;
                }
                let old = std::mem::replace(p, OpPlan::Stale);
                inline_scratch.pool.recycle(old);
            }
        }
        dex.batch_stats.partition_ns += t_inval.elapsed().as_nanos() as u64;
    }

    // Feed the crossover controller: replans per planned op this batch.
    state.observe_replans(dex.batch_stats.replans - replans_at_entry, ops.len());

    // Reclaim every plan's buffers for the next batch.
    for plan in state.plans.drain(..) {
        inline_scratch.pool.recycle(plan);
    }
    state.inline_scratch = Some(inline_scratch);
    state.ops = ops;
    dex.heal.par = state;
    used_type2
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the partitioner directly with synthetic touch sets: the edge
    /// cases the scheduler must get right independently of walk behavior.
    fn waves_of(plans: Vec<(Vec<u32>, Vec<u32>)>, slot_bound: usize) -> Vec<Vec<usize>> {
        let mut tracker = TouchTracker::default();
        let plans: Vec<OpPlan> = plans
            .into_iter()
            .map(|(reads, writes)| {
                OpPlan::Insert(InsertPlan {
                    hit: NodeId(0),
                    hit_slot: 0,
                    v_slot: 0,
                    z: VertexId(0),
                    hops: 0,
                    rm: [(0, 0); 3],
                    ad: [(0, 0); 3],
                    n_inst: 0,
                    reads,
                    writes,
                    faulted: None,
                })
            })
            .collect();
        let mut waves = Vec::new();
        let mut next = 0;
        while next < plans.len() {
            tracker.begin_wave(slot_bound);
            let mut wave = Vec::new();
            let mut idx = next;
            while idx < plans.len() {
                let (reads, writes) = plans[idx].touch_sets().unwrap();
                if reads.iter().chain(writes).any(|&s| tracker.written(s)) {
                    break;
                }
                for &s in writes {
                    tracker.mark_write(s);
                }
                wave.push(idx);
                idx += 1;
            }
            assert!(!wave.is_empty(), "head of queue always schedulable");
            next = idx;
            waves.push(wave);
        }
        waves
    }

    #[test]
    fn all_disjoint_batch_is_a_single_wave() {
        let plans: Vec<_> = (0..16u32)
            .map(|i| (vec![100 + i], vec![i, 32 + i]))
            .collect();
        let waves = waves_of(plans, 256);
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 16);
    }

    #[test]
    fn fully_conflicting_clique_degenerates_to_sequential() {
        // Every op writes slot 7 (e.g. all joins share one attach point).
        let plans: Vec<_> = (0..8u32).map(|i| (vec![i], vec![7])).collect();
        let waves = waves_of(plans, 64);
        assert_eq!(waves.len(), 8, "one op per wave");
        assert!(waves.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn overlapping_attach_neighborhoods_serialize_in_canonical_order() {
        // Ops 0 and 2 share written slot 5; op 1 and 3 are disjoint.
        // Prefix waves: {0, 1} (op 2 conflicts and truncates), then {2, 3}.
        let plans = vec![
            (vec![10], vec![5]),
            (vec![11], vec![6]),
            (vec![12], vec![5]),
            (vec![13], vec![8]),
        ];
        let waves = waves_of(plans, 64);
        assert_eq!(waves, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn read_of_earlier_write_conflicts_but_write_of_earlier_read_does_not() {
        // Op 1 reads what op 0 wrote → separate waves.
        let waves = waves_of(vec![(vec![], vec![3]), (vec![3], vec![9])], 64);
        assert_eq!(waves.len(), 2);
        // Op 1 *writes* what op 0 only read → same wave (commit order is
        // canonical, so the earlier op's decisions are unaffected).
        let waves = waves_of(vec![(vec![3], vec![1]), (vec![], vec![3])], 64);
        assert_eq!(waves.len(), 1);
    }

    #[test]
    fn duplicate_victim_region_spans_waves() {
        // Deletes in one neighborhood: op 0 writes the whole shared region
        // {20, 21}, so ops 1 and 2 (each touching half of it) must wait a
        // wave; between themselves they are disjoint and wave together,
        // and disjoint op 3 rides along. Conflicts against *earlier*
        // waves are not the partitioner's job — the engine invalidates
        // and re-plans overlapped plans after each commit — so each
        // partition round only guards the wave being built.
        let plans = vec![
            (vec![], vec![20, 21, 1]),
            (vec![], vec![20, 2]),
            (vec![], vec![21, 3]),
            (vec![], vec![40]),
        ];
        let waves = waves_of(plans, 64);
        assert_eq!(waves, vec![vec![0], vec![1, 2, 3]]);
        // Fully shared region: strict one-per-wave serialization.
        let plans = vec![
            (vec![], vec![20, 21, 1]),
            (vec![], vec![20, 21, 2]),
            (vec![], vec![20, 21, 3]),
            (vec![], vec![40]),
        ];
        let waves = waves_of(plans, 64);
        assert_eq!(waves, vec![vec![0], vec![1], vec![2, 3]]);
    }

    #[test]
    fn tracker_epochs_reset_without_clearing() {
        let mut t = TouchTracker::default();
        t.begin_wave(8);
        t.mark_write(3);
        assert!(t.written(3));
        t.begin_wave(8);
        assert!(!t.written(3), "new wave must not see old marks");
        t.mark_write(5);
        assert!(t.written(5) && !t.written(3));
        // Out-of-range slots (created mid-batch) are never tracked.
        t.mark_write(100);
        assert!(!t.written(100));
    }

    #[test]
    fn crossover_controller_probes_then_engages_on_high_replan_rate() {
        let mut s = ParScratch::default();
        // Large n never crosses over and never consumes the probe budget.
        assert!(!s.crossover_route_seq(CROSSOVER_N_MAX));
        assert!(!s.crossover_route_seq(1_000_000));
        assert_eq!(s.small_batches, 0);
        // First small-n batch is an unconditional probe (EMA unseeded).
        assert!(!s.crossover_route_seq(20_000));
        s.observe_replans(35, 100); // 0.35 replans/op — the 20k regime
                                    // Now the controller engages the sequential route...
        assert!(s.crossover_route_seq(20_000));
        assert!(s.crossover_route_seq(20_000));
        // ...but keeps probing on its deterministic schedule.
        let mut probed = 0;
        for _ in 0..CROSSOVER_PROBE_PERIOD {
            if !s.crossover_route_seq(20_000) {
                probed += 1;
            }
        }
        assert_eq!(probed, 1, "exactly one probe per period");
        // A calm conflict profile releases the crossover after the EMA
        // decays below the threshold.
        for _ in 0..8 {
            s.observe_replans(0, 100);
        }
        assert!(s.replan_ema_milli < CROSSOVER_REPLAN_MILLI);
        assert!(!s.crossover_route_seq(20_000));
    }

    #[test]
    fn replan_ema_is_seeded_then_smoothed() {
        let mut s = ParScratch::default();
        s.observe_replans(100, 100); // seed at 1000 milli
        assert_eq!(s.replan_ema_milli, 1000);
        s.observe_replans(0, 100);
        assert_eq!(s.replan_ema_milli, 750);
        s.observe_replans(20, 10); // 2000 milli
        assert_eq!(s.replan_ema_milli, (3 * 750 + 2000) / 4);
    }

    #[test]
    fn wave_histogram_buckets_by_log2() {
        let mut s = BatchHealStats::default();
        s.record_wave(1);
        s.record_wave(2);
        s.record_wave(3);
        s.record_wave(700);
        assert_eq!(s.wave_hist[0], 1);
        assert_eq!(s.wave_hist[1], 2); // sizes 2 and 3
        assert_eq!(s.wave_hist[9], 1); // 512 ≤ 700 < 1024
        assert_eq!(s.waves, 4);
        assert_eq!(s.max_wave, 700);
    }

    #[test]
    fn interleaved_planner_is_bit_identical_to_scalar() {
        use crate::DexConfig;
        // A churned network with spares, then a mixed chunk stream of
        // inserts (incl. chained = Blocked), deletes, and already-planned
        // slots: every produced plan — walk trace, touch sets, slot
        // programs — must match the scalar planner field for field.
        let cfg = DexConfig::new(0x9e37_79b9_7f4a_7c15).simplified();
        let mut dex = DexNetwork::bootstrap(cfg, 400);
        let ids = dex.node_ids();
        for &v in ids.iter().step_by(9).take(20) {
            dex.delete(v);
        }
        let live = dex.node_ids();
        let mut ops: Vec<BatchOp> = Vec::new();
        for i in 0..(3 * PLAN_CHUNK as u64 + 5) {
            ops.push(match i % 4 {
                0 | 1 => BatchOp::Insert {
                    u: NodeId(1_000_000 + i),
                    v: live[(i as usize * 17) % live.len()],
                },
                // Attach point not live: must come back Blocked.
                2 => BatchOp::Insert {
                    u: NodeId(2_000_000 + i),
                    v: NodeId(1_000_000 + i),
                },
                _ => BatchOp::Delete {
                    victim: live[(i as usize * 31) % live.len()],
                },
            });
        }
        let walk_len = dex.cfg.walk_len(dex.cycle.p());
        let bound = dex.net.graph().slot_bound();
        let plan_with = |interleaved: bool| -> Vec<OpPlan> {
            let mut ps = PlanScratch::new();
            ps.overlay.ensure_slots(bound);
            let mut plans: Vec<OpPlan> = Vec::new();
            plans.resize_with(ops.len(), || OpPlan::Stale);
            // Pre-planned slots must be left untouched by both planners.
            plans[5] = OpPlan::Serial {
                touch: vec![1, 2, 3],
            };
            for start in (0..ops.len()).step_by(PLAN_CHUNK) {
                let end = (start + PLAN_CHUNK).min(ops.len());
                let chunk = &mut plans[start..end];
                if interleaved {
                    plan_chunk_interleaved(&dex, &ops, start, walk_len, chunk, &mut ps);
                } else {
                    plan_chunk_scalar(&dex, &ops, start, walk_len, chunk, &mut ps);
                }
            }
            plans
        };
        let scalar = plan_with(false);
        let interleaved = plan_with(true);
        assert!(
            scalar.iter().any(|p| matches!(p, OpPlan::Insert(_))),
            "mix must exercise resolved insert plans"
        );
        assert!(scalar.iter().any(|p| matches!(p, OpPlan::Blocked)));
        assert_eq!(scalar.len(), interleaved.len());
        for (i, (a, b)) in scalar.iter().zip(&interleaved).enumerate() {
            assert_eq!(a, b, "plan {i} diverged");
        }
    }
}
