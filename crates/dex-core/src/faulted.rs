//! Fault-injected execution: type-1 healing walks and DHT routing on
//! the message-level simulator ([`dex_sim::msim`]).
//!
//! With a [`FaultSpec`] installed ([`DexNetwork::set_faults`]), every
//! type-1 walk and every DHT route runs as actual scheduled messages —
//! subject to loss, latency skew and partitions — instead of the
//! centralized fast path. The adapter preserves the protocol shape of
//! each centralized heal loop exactly (flood-once vs flood-per-miss,
//! load-update batching, RNG stream keying), so a **zero** fault spec is
//! bit-identical to running with no spec at all: same end state, same
//! per-step rounds and messages (`tests/msim_diff.rs` enforces this at
//! several thread counts).
//!
//! Under real faults, three robustness layers engage:
//!
//! 1. **transport retries** — inside the simulator, a lost token fires
//!    its timeout and the operation relaunches with deterministic
//!    exponential backoff, up to the spec's retry budget (each
//!    re-initiation draws a fresh RNG stream keyed by the retry index);
//! 2. **heal fallback** — a heal step whose walks keep getting lost
//!    (more than `fallback_after` abandoned walks) stops walking and
//!    heals to the flood's witness node — the best member of the target
//!    set the (possibly partial) flood reported — so a heal step always
//!    terminates with the invariants intact;
//! 3. **graceful degradation** — DHT operations whose route is lost
//!    terminally are abandoned and counted ([`FaultStats`]'s
//!    `dht_abandoned`): a put is not applied, a get returns `None`.
//!
//! Floods (Algorithm 4.4's computeSpare/computeLow) run on the same
//! schedule via [`dex_sim::msim::run_flood`]: per-round frontier
//! expansion where every forward and every convergecast report is a
//! faultable send. An incomplete flood re-floods up to `flood_retries`
//! times with deterministic backoff and then settles for the partial
//! count plus the best partial witness (`flood_retries` /
//! `floods_partial` in [`FaultStats`]) — a heal decision taken on a
//! partial count (e.g. concluding the spare set ran dry and inflating)
//! is the protocol's honest degradation, never an unsoundness: every
//! path still terminates with the invariants intact.
//!
//! Type-2 rebuilds coordinate on the schedule too
//! ([`DexNetwork::type2_coordinate`]): the announcement flood's
//! broadcast carries the cloud-range announcement, and its convergecast
//! reports double as permutation-route reservations and commit acks. The
//! initiator releases the rebuild only after a *complete* convergecast;
//! an incomplete attempt rolls back cleanly — nothing has been staged,
//! so graph/Φ/DHT are byte-identical to the pre-op state — and
//! re-initiates with exponential backoff up to `type2_retries` times
//! before escalating to a per-link-ARQ reliable announcement (charged at
//! the centralized flood cost), so a type-2 always completes. Only the
//! in-rebuild traffic models (permutation routing, phase-2 rebalance
//! walks) stay analytical/centralized — they run after the commit point
//! on charged cost models.

use crate::config::RecoveryMode;
use crate::dex::DexNetwork;
use crate::dht::{hash_to_vertex, Key};
use dex_graph::ids::{NodeId, VertexId};
use dex_sim::flood::flood_count_with;
use dex_sim::msim::{self, FaultSpec, FaultStats, OpStatus, RouteOp, WalkOp};
use dex_sim::rng::{splitmix64, Purpose};
use dex_sim::{RecoveryKind, StepKind, StepMetrics};

/// Context word appended for transport-level re-initiations: each retry
/// generation draws a fresh, deterministic RNG stream (`"RETRY" | r`).
pub(crate) const RETRY_WORD: u64 = 0x5245_5452_5900;

/// Op-key salt for flood operations (`"FLOOD"`), separating their fault
/// draws from walk and route streams.
const FLOOD_WORD: u64 = 0x464c_4f4f_4400;

/// Context word for type-2 coordination attempts (`"TYPE2" | attempt`).
const TYPE2_WORD: u64 = 0x5459_5045_3200;

/// Deterministic op key: a splitmix64 chain of `seed ^ word` over the
/// context words. Shared by the live heal paths and the wave planner so
/// both derive identical fault draws for the same operation.
fn op_key_for(seed: u64, word: u64, ctx: &[u64]) -> u64 {
    let mut acc = splitmix64(seed ^ word);
    for &w in ctx {
        acc = splitmix64(acc ^ w);
    }
    acc
}

/// What a faulted walk is searching for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalkGoal {
    /// A node in Spare (insertion healing).
    Spare,
    /// A node in Low (deletion healing).
    Low,
}

/// Outcome of one faulted walk attempt.
pub(crate) struct FaultedWalk {
    /// Accepting node, if the walk hit.
    pub hit: Option<NodeId>,
    /// The walk was abandoned: every transport retry lost its token.
    /// (`false` + `hit: None` is a genuine protocol miss.)
    pub lost: bool,
}

impl DexNetwork {
    /// Install (or clear) the fault model. While set, type-1 walks and
    /// DHT routing run on the message-level simulator (see the module
    /// docs). Requires simplified mode with no staggered operation in
    /// progress (the staggered machinery assumes one event per step).
    pub fn set_faults(&mut self, spec: Option<FaultSpec>) {
        if spec.is_some() {
            assert_eq!(
                self.cfg.mode,
                RecoveryMode::Simplified,
                "fault injection requires simplified mode"
            );
            assert!(
                self.stag.is_none(),
                "cannot install faults mid staggered operation"
            );
        }
        self.faults = spec;
    }

    /// [`Self::set_faults`] recorded as its own (cost-free) step in the
    /// metric history, so replayed traces keep a contiguous step ledger.
    /// Does **not** advance the protocol's `step_no` — the RNG streams
    /// of subsequent heals must not depend on how often the fault model
    /// was reconfigured.
    pub fn set_faults_step(&mut self, spec: Option<FaultSpec>) -> StepMetrics {
        self.net.begin_step();
        self.set_faults(spec);
        self.net.end_step(StepKind::Config, RecoveryKind::Type1)
    }

    /// The installed fault model, if any.
    pub fn faults(&self) -> Option<FaultSpec> {
        self.faults
    }

    /// Fault-layer counters accumulated since bootstrap.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Run one healing walk on the message schedule. `ctx` is exactly
    /// the context the centralized path would key its stream with;
    /// generation 0 replays that stream, so at zero faults the outcome
    /// (hit, hops, charge) is bit-identical to
    /// [`dex_sim::tokens::random_walk_search`].
    fn walk_faulted(
        &mut self,
        start: NodeId,
        exclude: Option<NodeId>,
        goal: WalkGoal,
        purpose: Purpose,
        ctx: &[u64],
    ) -> FaultedWalk {
        let spec = self.faults.expect("walk_faulted without a fault spec");
        let walk_len = self.cfg.walk_len(self.cycle.p());
        let op_key = op_key_for(spec.seed, RETRY_WORD, ctx);
        let ops = [WalkOp {
            start,
            max_len: walk_len,
            exclude,
            op_key,
        }];
        let (results, report) = {
            let g = self.net.graph();
            let map = &self.map;
            let seeds = &self.seeds;
            let accept = move |w: NodeId| match goal {
                WalkGoal::Spare => map.is_spare(w),
                WalkGoal::Low => map.is_low(w),
            };
            let mk_rng = |_: usize, retry: u32| {
                if retry == 0 {
                    seeds.stream(purpose, ctx)
                } else {
                    let mut ext = Vec::with_capacity(ctx.len() + 1);
                    ext.extend_from_slice(ctx);
                    ext.push(RETRY_WORD | retry as u64);
                    seeds.stream(purpose, &ext)
                }
            };
            msim::run_walks(g, &spec, &ops, accept, mk_rng, self.heal_threads)
        };
        self.net.charge_rounds(report.makespan);
        self.net.charge_messages(report.messages);
        self.fault_stats.merge(&report.stats);
        let r = &results[0];
        FaultedWalk {
            hit: r.hit,
            lost: r.status == OpStatus::Lost,
        }
    }

    // ------------------------------------------------------------------
    // Floods & type-2 coordination
    // ------------------------------------------------------------------

    /// Run one flood-aggregate on the message schedule, charging its
    /// makespan and sends. At zero faults the outcome and charges are
    /// bit-identical to [`flood_count_with`]; under faults the result
    /// may be a partial count with the best partial witness.
    fn flood_faulted_inner(
        &mut self,
        root: NodeId,
        goal: Option<WalkGoal>,
        ctx: &[u64],
        retries: u32,
    ) -> msim::FloodOutcome {
        let spec = self.faults.expect("flood_faulted without a fault spec");
        let op_key = op_key_for(spec.seed, FLOOD_WORD, ctx);
        let (outcome, report) = {
            let g = self.net.graph();
            let map = &self.map;
            let pred = move |w: NodeId| match goal {
                Some(WalkGoal::Spare) => map.is_spare(w),
                Some(WalkGoal::Low) => map.is_low(w),
                None => false,
            };
            msim::run_flood(g, &spec, root, pred, op_key, retries, self.heal_threads)
        };
        self.net.charge_rounds(report.makespan);
        self.net.charge_messages(report.messages);
        self.fault_stats.merge(&report.stats);
        outcome
    }

    /// Heal-path flood (computeSpare/computeLow) with the spec's
    /// re-flood budget.
    fn flood_faulted(&mut self, root: NodeId, goal: WalkGoal, ctx: &[u64]) -> msim::FloodOutcome {
        let retries = self
            .faults
            .expect("flood_faulted without a fault spec")
            .flood_retries;
        self.flood_faulted_inner(root, Some(goal), ctx, retries)
    }

    /// One type-2 coordination attempt: a single flood generation (no
    /// internal re-flood — retries are type-2 re-initiations, counted
    /// separately by [`Self::type2_coordinate`]). The broadcast carries
    /// the cloud-range announcement, the convergecast reports double as
    /// permutation-route reservations and commit acks. Returns whether
    /// the convergecast completed; a failed attempt charges its timeout
    /// rounds and messages but stages nothing — graph, Φ and DHT are
    /// byte-identical to the pre-op state.
    pub(crate) fn type2_coordinate_attempt(
        &mut self,
        root: NodeId,
        attempt: u32,
    ) -> msim::FloodOutcome {
        self.flood_faulted_inner(
            root,
            None,
            &[self.step_no, root.0, TYPE2_WORD | attempt as u64],
            0,
        )
    }

    /// Coordinate a type-2 rebuild (inflate/deflate) on the message
    /// schedule. The initiator releases the rebuild — the commit rides
    /// the first Phase-1 message wave — only after an attempt's
    /// convergecast completes. An incomplete attempt rolls back cleanly
    /// (counted in `type2_rollbacks`), waits out a deterministic
    /// exponential backoff, and re-initiates (`type2_reinitiations`) up
    /// to the spec's `type2_retries`; when the budget exhausts, the
    /// announcement escalates to per-link ARQ (reliable, charged at the
    /// centralized flood cost), so a type-2 always completes.
    pub(crate) fn type2_coordinate(&mut self, root: NodeId) {
        let spec = self.faults.expect("type2_coordinate without a fault spec");
        for attempt in 0..=spec.type2_retries {
            let out = self.type2_coordinate_attempt(root, attempt);
            if out.complete {
                return;
            }
            self.fault_stats.type2_rollbacks += 1;
            if attempt < spec.type2_retries {
                self.fault_stats.type2_reinitiations += 1;
                // Deterministic exponential backoff: the failed attempt
                // already charged one timeout window (its close round);
                // the initiator idles for 2^min(a,3) − 1 more of them
                // before re-initiating.
                let wait = out.close_round * ((1u64 << attempt.min(3)) - 1);
                self.net.charge_rounds(wait);
            }
        }
        // Budget exhausted: reliable announcement (per-link ARQ).
        flood_count_with(&mut self.net, root, |_| false, &mut self.flood_scratch);
    }

    // ------------------------------------------------------------------
    // Insertion healing (mirrors `insert_normal` / `heal_one_insert`)
    // ------------------------------------------------------------------

    /// Faulted single-insert recovery: same shape as `insert_normal`
    /// (flood at most once per step, then keep retrying walks), plus the
    /// lost-walk fallback.
    pub(crate) fn insert_normal_faulted(&mut self, u: NodeId, v: NodeId) -> RecoveryKind {
        let spec = self.faults.expect("faulted heal without a fault spec");
        let mut flooded = false;
        let mut lost = 0u32;
        for attempt in 0..self.cfg.max_walk_retries {
            self.walk_stats.attempts += 1;
            let out = self.walk_faulted(
                v,
                Some(u),
                WalkGoal::Spare,
                Purpose::InsertWalk,
                &[self.step_no, attempt],
            );
            if let Some(w) = out.hit {
                self.walk_stats.hits += 1;
                self.give_vertex_to_new_node(w, u, v);
                return RecoveryKind::Type1;
            }
            if out.lost {
                lost += 1;
                if lost > spec.fallback_after {
                    return match self.insert_fallback(u, v) {
                        true => RecoveryKind::Type1,
                        false => RecoveryKind::InflateSimple,
                    };
                }
                continue;
            }
            self.walk_stats.misses += 1;
            if flooded {
                continue;
            }
            flooded = true;
            let res = self.flood_faulted(v, WalkGoal::Spare, &[self.step_no, attempt]);
            let n_prev = res.n.saturating_sub(1);
            if !self.cfg.spare_sufficient(res.matching, n_prev) {
                // Only a *complete* convergecast proves the spare set is
                // dry: a partial count is a lower bound, and inflating on
                // it compounds under sustained loss until the mapping can
                // no longer balance. Partial + insufficient degrades to
                // the best partial witness; no witness → keep walking.
                if res.complete {
                    self.walk_stats.type2 += 1;
                    crate::type2_simple::inflate(self, Some((u, v)));
                    return RecoveryKind::InflateSimple;
                }
                if let Some(w) = res.witness {
                    self.fault_stats.heal_fallbacks += 1;
                    self.walk_stats.hits += 1;
                    self.give_vertex_to_new_node(w, u, v);
                    return RecoveryKind::Type1;
                }
            }
        }
        panic!(
            "faulted insertion walk failed {} times (n={}, p={})",
            self.cfg.max_walk_retries,
            self.n(),
            self.cycle.p()
        );
    }

    /// Faulted batch-insert healing: same shape as `heal_one_insert`
    /// (flood on every miss). Returns whether type-2 was needed.
    pub(crate) fn heal_one_insert_faulted(&mut self, u: NodeId, v: NodeId) -> bool {
        let spec = self.faults.expect("faulted heal without a fault spec");
        let mut lost = 0u32;
        for attempt in 0..self.cfg.max_walk_retries {
            self.walk_stats.attempts += 1;
            let out = self.walk_faulted(
                v,
                Some(u),
                WalkGoal::Spare,
                Purpose::InsertWalk,
                &[self.step_no, u.0, attempt],
            );
            if let Some(w) = out.hit {
                self.walk_stats.hits += 1;
                self.give_vertex_to_new_node(w, u, v);
                return false;
            }
            if out.lost {
                lost += 1;
                if lost > spec.fallback_after {
                    return !self.insert_fallback(u, v);
                }
                continue;
            }
            self.walk_stats.misses += 1;
            let res = self.flood_faulted(v, WalkGoal::Spare, &[self.step_no, u.0, attempt]);
            if !self
                .cfg
                .spare_sufficient(res.matching, res.n.saturating_sub(1))
            {
                // Same partial-evidence rule as `insert_normal_faulted`:
                // only a complete convergecast may trigger inflation.
                if res.complete {
                    self.walk_stats.type2 += 1;
                    crate::type2_simple::inflate(self, Some((u, v)));
                    return true;
                }
                if let Some(w) = res.witness {
                    self.fault_stats.heal_fallbacks += 1;
                    self.walk_stats.hits += 1;
                    self.give_vertex_to_new_node(w, u, v);
                    return false;
                }
            }
        }
        panic!("faulted batch insertion starved (n={})", self.n());
    }

    /// Walk-free insert fallback after repeated walk loss: flood for the
    /// spare set, heal to its witness (or inflate if spares ran out).
    /// Returns `true` when type-1 healing sufficed.
    fn insert_fallback(&mut self, u: NodeId, v: NodeId) -> bool {
        let res = self.flood_faulted(v, WalkGoal::Spare, &[self.step_no, u.0, FLOOD_WORD]);
        let n_prev = res.n.saturating_sub(1);
        // Inflate only on *proof* that the spare set is dry: a complete
        // convergecast (exact count) that fails the sufficiency test. A
        // partial count is a lower bound, never proof — inflation jumps
        // p into (4p, 8p), so a spurious one while n ≪ p leaves a
        // mapping that can never rebalance, and under sustained loss the
        // spurious rebuilds compound.
        if res.complete && !self.cfg.spare_sufficient(res.matching, n_prev) {
            self.walk_stats.type2 += 1;
            crate::type2_simple::inflate(self, Some((u, v)));
            return false;
        }
        // Partial flood: heal to the best partial witness. When not even
        // one spare was reachable, degrade to a local donation — the
        // attach point, or failing that its least-loaded direct neighbor
        // (one ARQ-reliable link away), hands `u` one of its vertices.
        // Only a neighborhood uniformly down to its last vertex — the
        // local signature of n ≈ p — still escalates to inflation.
        let donor = res.witness.or_else(|| {
            if self.map.load(v) >= 2 {
                return Some(v);
            }
            self.net
                .graph()
                .neighbors(v)
                .iter()
                .filter(|&w| self.map.load(w) >= 2)
                .min_by_key(|&w| (self.map.load(w), w))
        });
        let Some(w) = donor else {
            self.walk_stats.type2 += 1;
            crate::type2_simple::inflate(self, Some((u, v)));
            return false;
        };
        self.fault_stats.heal_fallbacks += 1;
        self.walk_stats.hits += 1;
        self.give_vertex_to_new_node(w, u, v);
        true
    }

    // ------------------------------------------------------------------
    // Deletion healing (mirrors `delete_normal_core` /
    // `heal_one_delete_core`)
    // ------------------------------------------------------------------

    /// Faulted single-delete recovery: same shape as
    /// `delete_normal_core` (re-flood after every miss; batched load
    /// updates at the end), plus the lost-walk fallback.
    pub(crate) fn delete_normal_core_faulted(
        &mut self,
        rescuer: NodeId,
        zs: &[VertexId],
        touched: &mut Vec<NodeId>,
    ) -> RecoveryKind {
        let spec = self.faults.expect("faulted heal without a fault spec");
        debug_assert!(!zs.is_empty(), "every node simulates >= 1 vertex");
        crate::fabric::adopt_vertices(
            &mut self.net,
            &mut self.map,
            &self.cycle,
            zs,
            rescuer,
            &mut self.heal.insts,
        );
        self.net.charge_messages(3 * zs.len() as u64);
        self.net.charge_rounds(1);
        touched.push(rescuer);
        for (i, &z) in zs.iter().enumerate() {
            let mut attempt = 0;
            let mut lost = 0u32;
            loop {
                self.walk_stats.attempts += 1;
                let out = self.walk_faulted(
                    rescuer,
                    None,
                    WalkGoal::Low,
                    Purpose::DeleteWalk,
                    &[self.step_no, i as u64, attempt],
                );
                if let Some(w) = out.hit {
                    self.walk_stats.hits += 1;
                    self.move_to_low(z, rescuer, w, Some(touched));
                    break;
                }
                if out.lost {
                    lost += 1;
                    if lost > spec.fallback_after {
                        match self.delete_fallback(z, rescuer, Some(touched)) {
                            true => break,
                            false => return RecoveryKind::DeflateSimple,
                        }
                    }
                } else {
                    self.walk_stats.misses += 1;
                    let res = self.flood_faulted(
                        rescuer,
                        WalkGoal::Low,
                        &[self.step_no, i as u64, attempt],
                    );
                    if !self.cfg.low_sufficient(res.matching, res.n) {
                        // Deflate only on a complete convergecast — a
                        // partial count undercounts the Low set, and a
                        // spurious deflation can shrink p below what the
                        // surviving nodes need. Partial + witness heals
                        // to the witness; no witness → keep walking.
                        if res.complete {
                            self.walk_stats.type2 += 1;
                            crate::type2_simple::deflate(self, rescuer);
                            return RecoveryKind::DeflateSimple;
                        }
                        if let Some(w) = res.witness {
                            self.fault_stats.heal_fallbacks += 1;
                            self.walk_stats.hits += 1;
                            self.move_to_low(z, rescuer, w, Some(touched));
                            break;
                        }
                    }
                }
                attempt += 1;
                assert!(
                    attempt < self.cfg.max_walk_retries,
                    "faulted deletion walk failed {} times",
                    self.cfg.max_walk_retries
                );
            }
        }
        touched.sort_unstable();
        touched.dedup();
        self.charge_load_updates(touched);
        RecoveryKind::Type1
    }

    /// Faulted batch-delete healing: same shape as
    /// `heal_one_delete_core` (no load-update batching; deflation
    /// rehomes the remaining vertices). Returns whether type-2 was
    /// needed.
    pub(crate) fn heal_one_delete_core_faulted(
        &mut self,
        victim: NodeId,
        rescuer: NodeId,
        zs: &[VertexId],
    ) -> bool {
        let spec = self.faults.expect("faulted heal without a fault spec");
        crate::fabric::adopt_vertices(
            &mut self.net,
            &mut self.map,
            &self.cycle,
            zs,
            rescuer,
            &mut self.heal.insts,
        );
        self.net.charge_messages(3 * zs.len() as u64);
        self.net.charge_rounds(1);
        let mut used_type2 = false;
        for (i, &z) in zs.iter().enumerate() {
            let mut attempt = 0u64;
            let mut lost = 0u32;
            loop {
                self.walk_stats.attempts += 1;
                let out = self.walk_faulted(
                    rescuer,
                    None,
                    WalkGoal::Low,
                    Purpose::DeleteWalk,
                    &[self.step_no, victim.0, i as u64, attempt],
                );
                if let Some(w) = out.hit {
                    self.walk_stats.hits += 1;
                    self.move_to_low(z, rescuer, w, None);
                    break;
                }
                if out.lost {
                    lost += 1;
                    if lost > spec.fallback_after {
                        match self.delete_fallback(z, rescuer, None) {
                            true => break,
                            false => {
                                used_type2 = true;
                                break;
                            }
                        }
                    }
                } else {
                    self.walk_stats.misses += 1;
                    let res = self.flood_faulted(
                        rescuer,
                        WalkGoal::Low,
                        &[self.step_no, victim.0, i as u64, attempt],
                    );
                    if !self.cfg.low_sufficient(res.matching, res.n) {
                        // Same partial-evidence rule as the single-delete
                        // path: only a complete convergecast may deflate.
                        if res.complete {
                            self.walk_stats.type2 += 1;
                            crate::type2_simple::deflate(self, rescuer);
                            used_type2 = true;
                            break;
                        }
                        if let Some(w) = res.witness {
                            self.fault_stats.heal_fallbacks += 1;
                            self.walk_stats.hits += 1;
                            self.move_to_low(z, rescuer, w, None);
                            break;
                        }
                    }
                }
                attempt += 1;
                assert!(
                    attempt < self.cfg.max_walk_retries,
                    "faulted batch deletion starved"
                );
            }
            if used_type2 {
                break; // remaining vertices were redistributed by deflate
            }
        }
        used_type2
    }

    /// Move vertex `z` from `rescuer` to the Low node `w` (no-op when the
    /// rescuer itself was picked), recording `w` in `touched` when the
    /// caller batches load updates.
    fn move_to_low(
        &mut self,
        z: VertexId,
        rescuer: NodeId,
        w: NodeId,
        touched: Option<&mut Vec<NodeId>>,
    ) {
        if w != rescuer {
            crate::fabric::move_vertices(
                &mut self.net,
                &mut self.map,
                &self.cycle,
                &[z],
                w,
                &mut self.heal.insts,
            );
            self.net.charge_messages(4);
            self.net.charge_rounds(1);
            if let Some(t) = touched {
                t.push(w);
            }
        }
    }

    /// Walk-free delete fallback after repeated walk loss: flood for the
    /// low set, rehome `z` to its witness (or deflate if Low ran out).
    /// Returns `true` when type-1 healing sufficed.
    fn delete_fallback(
        &mut self,
        z: VertexId,
        rescuer: NodeId,
        touched: Option<&mut Vec<NodeId>>,
    ) -> bool {
        let res = self.flood_faulted(rescuer, WalkGoal::Low, &[self.step_no, z.0, rescuer.0]);
        // Deflate when no Low node was reached at all, or when a
        // *complete* convergecast proves the Low set insufficient; a
        // partial count with a witness in hand degrades to healing to
        // that witness (mirrors `insert_fallback`).
        let proven_dry = res.complete && !self.cfg.low_sufficient(res.matching, res.n);
        if res.witness.is_none() || proven_dry {
            self.walk_stats.type2 += 1;
            crate::type2_simple::deflate(self, rescuer);
            return false;
        }
        let w = res.witness.expect("checked above");
        self.fault_stats.heal_fallbacks += 1;
        self.walk_stats.hits += 1;
        self.move_to_low(z, rescuer, w, touched);
        true
    }

    // ------------------------------------------------------------------
    // DHT routing
    // ------------------------------------------------------------------

    /// Route a DHT message on the actual schedule: resolve the virtual
    /// shortest path exactly as the centralized `route_dht` does, then
    /// run the physical hop sequence as one [`RouteOp`] (round-trip for
    /// lookups). Charges the run's makespan and sends; returns `false`
    /// when the route was abandoned (counted in `dht_abandoned`).
    pub(crate) fn route_dht_faulted(&mut self, from: NodeId, key: Key, round_trip: bool) -> bool {
        let spec = self.faults.expect("faulted route without a fault spec");
        let target = hash_to_vertex(key, self.cycle.p());
        let start = *self
            .map
            .sim(from)
            .iter()
            .min()
            .expect("initiator simulates a vertex");
        let route = &mut self.heal.route;
        self.cycle
            .shortest_path_with(start, target, &mut route.bfs, &mut route.vpath);
        // Physical node path: the owner sequence of the virtual path with
        // consecutive duplicates collapsed (same-node virtual hops are
        // free local computation).
        let mut path: Vec<NodeId> = Vec::with_capacity(route.vpath.len());
        path.push(self.map.owner_of(route.vpath[0]));
        for &zv in &route.vpath[1..] {
            let cur = self.map.owner_of(zv);
            if cur != *path.last().expect("path starts non-empty") {
                debug_assert!(
                    self.net
                        .graph()
                        .contains_edge(*path.last().expect("non-empty"), cur),
                    "virtual path step not physical"
                );
                path.push(cur);
            }
        }
        let op_key = splitmix64(
            splitmix64(spec.seed ^ key) ^ (self.net.steps_completed().wrapping_mul(0x9e37)),
        );
        let ops = [RouteOp {
            path,
            round_trip,
            op_key,
        }];
        let (results, report) = msim::run_routes(self.net.graph(), &spec, &ops, self.heal_threads);
        self.net.charge_rounds(report.makespan);
        self.net.charge_messages(report.messages);
        self.fault_stats.merge(&report.stats);
        let delivered = results[0].status == OpStatus::Delivered;
        if !delivered {
            self.fault_stats.dht_abandoned += 1;
        }
        delivered
    }
}

/// Read-only replay of [`DexNetwork::walk_faulted`] for the wave
/// planner: identical op key, RNG streams, and engine schedule, run
/// against an [`msim::AdjView`] (the live graph, or a plan overlay
/// carrying pending in-batch edits) without charging the network. The
/// engine is thread-count invariant, so this single-threaded plan-time
/// run returns bit-for-bit the outcome and report the sequential heal
/// would observe; the caller records the charge in its plan and applies
/// it at commit. `traces` receives the walk's arrival slots — the
/// plan's read set.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_walk_faulted<V, A>(
    dex: &DexNetwork,
    view: &V,
    start: NodeId,
    exclude: Option<NodeId>,
    accept: A,
    purpose: Purpose,
    ctx: &[u64],
    traces: &mut Vec<Vec<u32>>,
) -> (FaultedWalk, msim::RunReport)
where
    V: msim::AdjView + ?Sized,
    A: Fn(NodeId) -> bool + Sync,
{
    let spec = dex.faults.expect("plan_walk_faulted without a fault spec");
    let walk_len = dex.cfg.walk_len(dex.cycle.p());
    let ops = [WalkOp {
        start,
        max_len: walk_len,
        exclude,
        op_key: op_key_for(spec.seed, RETRY_WORD, ctx),
    }];
    let seeds = &dex.seeds;
    let mk_rng = |_: usize, retry: u32| {
        if retry == 0 {
            seeds.stream(purpose, ctx)
        } else {
            let mut ext = Vec::with_capacity(ctx.len() + 1);
            ext.extend_from_slice(ctx);
            ext.push(RETRY_WORD | retry as u64);
            seeds.stream(purpose, &ext)
        }
    };
    let (results, report) = msim::run_walks_traced(
        dex.net.graph(),
        view,
        &spec,
        &ops,
        accept,
        mk_rng,
        1,
        Some(traces),
    );
    let r = &results[0];
    (
        FaultedWalk {
            hit: r.hit,
            lost: r.status == OpStatus::Lost,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{invariants, DexConfig};

    /// A spec whose burst window covers every round: every send is lost,
    /// so no flood generation can ever complete.
    fn all_loss() -> FaultSpec {
        FaultSpec::zero()
            .with_burst(1 << 20, 1000)
            .with_seed(0xdead)
    }

    /// Full observable state: (adjacency, Φ entries, p).
    type Snapshot = (
        Vec<(NodeId, Vec<NodeId>)>,
        Vec<(dex_graph::ids::VertexId, NodeId)>,
        u64,
    );

    fn snapshot(dex: &DexNetwork) -> Snapshot {
        let adj = dex
            .graph()
            .nodes()
            .map(|u| (u, dex.graph().neighbors(u).iter().collect()))
            .collect();
        (adj, dex.map.entries_sorted(), dex.cycle.p())
    }

    /// A type-2 attempt that cannot complete must stage nothing: graph,
    /// Φ and DHT byte-identical to the pre-op state.
    #[test]
    fn failed_type2_attempt_rolls_back_byte_identically() {
        let cfg = DexConfig::new(0x7e57_0001).simplified();
        let mut dex = DexNetwork::bootstrap(cfg, 48);
        let root = dex.node_ids()[0];
        dex.dht_insert(root, 7, 0x1234);
        dex.dht_insert(root, 9, 0x5678);
        dex.set_faults(Some(all_loss()));
        let before = snapshot(&dex);
        let dht_before = dex.dht_store().entries_sorted();
        dex.net.begin_step();
        let out = dex.type2_coordinate_attempt(root, 0);
        dex.net.end_step(StepKind::Insert, RecoveryKind::Type1);
        assert!(!out.complete, "all-loss spec completed a convergecast");
        assert_eq!(snapshot(&dex), before, "failed attempt mutated state");
        assert_eq!(
            dex.dht_store().entries_sorted(),
            dht_before,
            "failed attempt mutated the DHT"
        );
        assert!(dex.fault_stats.floods_partial > 0);
        invariants::assert_ok(&dex);
    }

    /// When every re-initiation times out, the coordinator must count
    /// one rollback per failed attempt, one re-initiation per retry, and
    /// still terminate by escalating to the reliable per-link path.
    #[test]
    fn exhausted_type2_escalates_after_counted_reinitiations() {
        let cfg = DexConfig::new(0x7e57_0002).simplified();
        let mut dex = DexNetwork::bootstrap(cfg, 48);
        let root = dex.node_ids()[0];
        let spec = all_loss();
        dex.set_faults(Some(spec));
        let before = snapshot(&dex);
        dex.net.begin_step();
        dex.type2_coordinate(root);
        let m = dex.net.end_step(StepKind::Insert, RecoveryKind::Type1);
        assert_eq!(
            dex.fault_stats.type2_rollbacks,
            spec.type2_retries as u64 + 1
        );
        assert_eq!(
            dex.fault_stats.type2_reinitiations,
            spec.type2_retries as u64
        );
        // The escalated announcement is reliable: it still reached every
        // node, and the coordination itself left the structure untouched.
        assert!(m.rounds > 0 && m.messages > 0);
        assert_eq!(snapshot(&dex), before);
        invariants::assert_ok(&dex);
    }
}
