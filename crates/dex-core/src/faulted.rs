//! Fault-injected execution: type-1 healing walks and DHT routing on
//! the message-level simulator ([`dex_sim::msim`]).
//!
//! With a [`FaultSpec`] installed ([`DexNetwork::set_faults`]), every
//! type-1 walk and every DHT route runs as actual scheduled messages —
//! subject to loss, latency skew and partitions — instead of the
//! centralized fast path. The adapter preserves the protocol shape of
//! each centralized heal loop exactly (flood-once vs flood-per-miss,
//! load-update batching, RNG stream keying), so a **zero** fault spec is
//! bit-identical to running with no spec at all: same end state, same
//! per-step rounds and messages (`tests/msim_diff.rs` enforces this at
//! several thread counts).
//!
//! Under real faults, three robustness layers engage:
//!
//! 1. **transport retries** — inside the simulator, a lost token fires
//!    its timeout and the operation relaunches with deterministic
//!    exponential backoff, up to the spec's retry budget (each
//!    re-initiation draws a fresh RNG stream keyed by the retry index);
//! 2. **heal fallback** — a heal step whose walks keep getting lost
//!    (more than `fallback_after` abandoned walks) stops walking and
//!    heals to the flood's witness node — the nearest member of the
//!    target set, discovered by the (reliable) flood primitive — so a
//!    heal step always terminates with the invariants intact;
//! 3. **graceful degradation** — DHT operations whose route is lost
//!    terminally are abandoned and counted ([`FaultStats`]'s
//!    `dht_abandoned`): a put is not applied, a get returns `None`.
//!
//! Floods (Algorithm 4.4's computeSpare/computeLow) are modelled as
//! reliable: they are the protocol's barrier/aggregation primitive, and
//! simulating their per-edge gossip under loss is out of scope here —
//! the honest reading is "loss applies to point-to-point token traffic".

use crate::config::RecoveryMode;
use crate::dex::DexNetwork;
use crate::dht::{hash_to_vertex, Key};
use dex_graph::ids::{NodeId, VertexId};
use dex_sim::flood::flood_count_with;
use dex_sim::msim::{self, FaultSpec, FaultStats, OpStatus, RouteOp, WalkOp};
use dex_sim::rng::{splitmix64, Purpose};
use dex_sim::{RecoveryKind, StepKind, StepMetrics};

/// Context word appended for transport-level re-initiations: each retry
/// generation draws a fresh, deterministic RNG stream (`"RETRY" | r`).
const RETRY_WORD: u64 = 0x5245_5452_5900;

/// What a faulted walk is searching for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WalkGoal {
    /// A node in Spare (insertion healing).
    Spare,
    /// A node in Low (deletion healing).
    Low,
}

/// Outcome of one faulted walk attempt.
pub(crate) struct FaultedWalk {
    /// Accepting node, if the walk hit.
    pub hit: Option<NodeId>,
    /// The walk was abandoned: every transport retry lost its token.
    /// (`false` + `hit: None` is a genuine protocol miss.)
    pub lost: bool,
}

impl DexNetwork {
    /// Install (or clear) the fault model. While set, type-1 walks and
    /// DHT routing run on the message-level simulator (see the module
    /// docs). Requires simplified mode with no staggered operation in
    /// progress (the staggered machinery assumes one event per step).
    pub fn set_faults(&mut self, spec: Option<FaultSpec>) {
        if spec.is_some() {
            assert_eq!(
                self.cfg.mode,
                RecoveryMode::Simplified,
                "fault injection requires simplified mode"
            );
            assert!(
                self.stag.is_none(),
                "cannot install faults mid staggered operation"
            );
        }
        self.faults = spec;
    }

    /// [`Self::set_faults`] recorded as its own (cost-free) step in the
    /// metric history, so replayed traces keep a contiguous step ledger.
    /// Does **not** advance the protocol's `step_no` — the RNG streams
    /// of subsequent heals must not depend on how often the fault model
    /// was reconfigured.
    pub fn set_faults_step(&mut self, spec: Option<FaultSpec>) -> StepMetrics {
        self.net.begin_step();
        self.set_faults(spec);
        self.net.end_step(StepKind::Config, RecoveryKind::Type1)
    }

    /// The installed fault model, if any.
    pub fn faults(&self) -> Option<FaultSpec> {
        self.faults
    }

    /// Fault-layer counters accumulated since bootstrap.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Run one healing walk on the message schedule. `ctx` is exactly
    /// the context the centralized path would key its stream with;
    /// generation 0 replays that stream, so at zero faults the outcome
    /// (hit, hops, charge) is bit-identical to
    /// [`dex_sim::tokens::random_walk_search`].
    fn walk_faulted(
        &mut self,
        start: NodeId,
        exclude: Option<NodeId>,
        goal: WalkGoal,
        purpose: Purpose,
        ctx: &[u64],
    ) -> FaultedWalk {
        let spec = self.faults.expect("walk_faulted without a fault spec");
        let walk_len = self.cfg.walk_len(self.cycle.p());
        let op_key = {
            let mut acc = splitmix64(spec.seed ^ RETRY_WORD);
            for &w in ctx {
                acc = splitmix64(acc ^ w);
            }
            acc
        };
        let ops = [WalkOp {
            start,
            max_len: walk_len,
            exclude,
            op_key,
        }];
        let (results, report) = {
            let g = self.net.graph();
            let map = &self.map;
            let seeds = &self.seeds;
            let accept = move |w: NodeId| match goal {
                WalkGoal::Spare => map.is_spare(w),
                WalkGoal::Low => map.is_low(w),
            };
            let mk_rng = |_: usize, retry: u32| {
                if retry == 0 {
                    seeds.stream(purpose, ctx)
                } else {
                    let mut ext = Vec::with_capacity(ctx.len() + 1);
                    ext.extend_from_slice(ctx);
                    ext.push(RETRY_WORD | retry as u64);
                    seeds.stream(purpose, &ext)
                }
            };
            msim::run_walks(g, &spec, &ops, accept, mk_rng, self.heal_threads)
        };
        self.net.charge_rounds(report.makespan);
        self.net.charge_messages(report.messages);
        self.fault_stats.merge(&report.stats);
        let r = &results[0];
        FaultedWalk {
            hit: r.hit,
            lost: r.status == OpStatus::Lost,
        }
    }

    // ------------------------------------------------------------------
    // Insertion healing (mirrors `insert_normal` / `heal_one_insert`)
    // ------------------------------------------------------------------

    /// Faulted single-insert recovery: same shape as `insert_normal`
    /// (flood at most once per step, then keep retrying walks), plus the
    /// lost-walk fallback.
    pub(crate) fn insert_normal_faulted(&mut self, u: NodeId, v: NodeId) -> RecoveryKind {
        let spec = self.faults.expect("faulted heal without a fault spec");
        let mut flooded = false;
        let mut lost = 0u32;
        for attempt in 0..self.cfg.max_walk_retries {
            self.walk_stats.attempts += 1;
            let out = self.walk_faulted(
                v,
                Some(u),
                WalkGoal::Spare,
                Purpose::InsertWalk,
                &[self.step_no, attempt],
            );
            if let Some(w) = out.hit {
                self.walk_stats.hits += 1;
                self.give_vertex_to_new_node(w, u, v);
                return RecoveryKind::Type1;
            }
            if out.lost {
                lost += 1;
                if lost > spec.fallback_after {
                    return match self.insert_fallback(u, v) {
                        true => RecoveryKind::Type1,
                        false => RecoveryKind::InflateSimple,
                    };
                }
                continue;
            }
            self.walk_stats.misses += 1;
            if flooded {
                continue;
            }
            flooded = true;
            let map = &self.map;
            let res = flood_count_with(
                &mut self.net,
                v,
                |w| map.is_spare(w),
                &mut self.flood_scratch,
            );
            let n_prev = res.n.saturating_sub(1);
            if !self.cfg.spare_sufficient(res.matching, n_prev) {
                self.walk_stats.type2 += 1;
                crate::type2_simple::inflate(self, Some((u, v)));
                return RecoveryKind::InflateSimple;
            }
        }
        panic!(
            "faulted insertion walk failed {} times (n={}, p={})",
            self.cfg.max_walk_retries,
            self.n(),
            self.cycle.p()
        );
    }

    /// Faulted batch-insert healing: same shape as `heal_one_insert`
    /// (flood on every miss). Returns whether type-2 was needed.
    pub(crate) fn heal_one_insert_faulted(&mut self, u: NodeId, v: NodeId) -> bool {
        let spec = self.faults.expect("faulted heal without a fault spec");
        let mut lost = 0u32;
        for attempt in 0..self.cfg.max_walk_retries {
            self.walk_stats.attempts += 1;
            let out = self.walk_faulted(
                v,
                Some(u),
                WalkGoal::Spare,
                Purpose::InsertWalk,
                &[self.step_no, u.0, attempt],
            );
            if let Some(w) = out.hit {
                self.walk_stats.hits += 1;
                self.give_vertex_to_new_node(w, u, v);
                return false;
            }
            if out.lost {
                lost += 1;
                if lost > spec.fallback_after {
                    return !self.insert_fallback(u, v);
                }
                continue;
            }
            self.walk_stats.misses += 1;
            let map = &self.map;
            let res = flood_count_with(
                &mut self.net,
                v,
                |w| map.is_spare(w),
                &mut self.flood_scratch,
            );
            if !self
                .cfg
                .spare_sufficient(res.matching, res.n.saturating_sub(1))
            {
                self.walk_stats.type2 += 1;
                crate::type2_simple::inflate(self, Some((u, v)));
                return true;
            }
        }
        panic!("faulted batch insertion starved (n={})", self.n());
    }

    /// Walk-free insert fallback after repeated walk loss: flood for the
    /// spare set, heal to its witness (or inflate if spares ran out).
    /// Returns `true` when type-1 healing sufficed.
    fn insert_fallback(&mut self, u: NodeId, v: NodeId) -> bool {
        let map = &self.map;
        let res = flood_count_with(
            &mut self.net,
            v,
            |w| map.is_spare(w),
            &mut self.flood_scratch,
        );
        let n_prev = res.n.saturating_sub(1);
        if !self.cfg.spare_sufficient(res.matching, n_prev) {
            self.walk_stats.type2 += 1;
            crate::type2_simple::inflate(self, Some((u, v)));
            return false;
        }
        let w = res.witness.expect("spare_sufficient implies a spare node");
        self.fault_stats.heal_fallbacks += 1;
        self.walk_stats.hits += 1;
        self.give_vertex_to_new_node(w, u, v);
        true
    }

    // ------------------------------------------------------------------
    // Deletion healing (mirrors `delete_normal_core` /
    // `heal_one_delete_core`)
    // ------------------------------------------------------------------

    /// Faulted single-delete recovery: same shape as
    /// `delete_normal_core` (re-flood after every miss; batched load
    /// updates at the end), plus the lost-walk fallback.
    pub(crate) fn delete_normal_core_faulted(
        &mut self,
        rescuer: NodeId,
        zs: &[VertexId],
        touched: &mut Vec<NodeId>,
    ) -> RecoveryKind {
        let spec = self.faults.expect("faulted heal without a fault spec");
        debug_assert!(!zs.is_empty(), "every node simulates >= 1 vertex");
        crate::fabric::adopt_vertices(
            &mut self.net,
            &mut self.map,
            &self.cycle,
            zs,
            rescuer,
            &mut self.heal.insts,
        );
        self.net.charge_messages(3 * zs.len() as u64);
        self.net.charge_rounds(1);
        touched.push(rescuer);
        for (i, &z) in zs.iter().enumerate() {
            let mut attempt = 0;
            let mut lost = 0u32;
            loop {
                self.walk_stats.attempts += 1;
                let out = self.walk_faulted(
                    rescuer,
                    None,
                    WalkGoal::Low,
                    Purpose::DeleteWalk,
                    &[self.step_no, i as u64, attempt],
                );
                if let Some(w) = out.hit {
                    self.walk_stats.hits += 1;
                    self.move_to_low(z, rescuer, w, Some(touched));
                    break;
                }
                if out.lost {
                    lost += 1;
                    if lost > spec.fallback_after {
                        match self.delete_fallback(z, rescuer, Some(touched)) {
                            true => break,
                            false => return RecoveryKind::DeflateSimple,
                        }
                    }
                } else {
                    self.walk_stats.misses += 1;
                    let map = &self.map;
                    let res = flood_count_with(
                        &mut self.net,
                        rescuer,
                        |w| map.is_low(w),
                        &mut self.flood_scratch,
                    );
                    if !self.cfg.low_sufficient(res.matching, res.n) {
                        self.walk_stats.type2 += 1;
                        crate::type2_simple::deflate(self, rescuer);
                        return RecoveryKind::DeflateSimple;
                    }
                }
                attempt += 1;
                assert!(
                    attempt < self.cfg.max_walk_retries,
                    "faulted deletion walk failed {} times",
                    self.cfg.max_walk_retries
                );
            }
        }
        touched.sort_unstable();
        touched.dedup();
        self.charge_load_updates(touched);
        RecoveryKind::Type1
    }

    /// Faulted batch-delete healing: same shape as
    /// `heal_one_delete_core` (no load-update batching; deflation
    /// rehomes the remaining vertices). Returns whether type-2 was
    /// needed.
    pub(crate) fn heal_one_delete_core_faulted(
        &mut self,
        victim: NodeId,
        rescuer: NodeId,
        zs: &[VertexId],
    ) -> bool {
        let spec = self.faults.expect("faulted heal without a fault spec");
        crate::fabric::adopt_vertices(
            &mut self.net,
            &mut self.map,
            &self.cycle,
            zs,
            rescuer,
            &mut self.heal.insts,
        );
        self.net.charge_messages(3 * zs.len() as u64);
        self.net.charge_rounds(1);
        let mut used_type2 = false;
        for (i, &z) in zs.iter().enumerate() {
            let mut attempt = 0u64;
            let mut lost = 0u32;
            loop {
                self.walk_stats.attempts += 1;
                let out = self.walk_faulted(
                    rescuer,
                    None,
                    WalkGoal::Low,
                    Purpose::DeleteWalk,
                    &[self.step_no, victim.0, i as u64, attempt],
                );
                if let Some(w) = out.hit {
                    self.walk_stats.hits += 1;
                    self.move_to_low(z, rescuer, w, None);
                    break;
                }
                if out.lost {
                    lost += 1;
                    if lost > spec.fallback_after {
                        match self.delete_fallback(z, rescuer, None) {
                            true => break,
                            false => {
                                used_type2 = true;
                                break;
                            }
                        }
                    }
                } else {
                    self.walk_stats.misses += 1;
                    let map = &self.map;
                    let res = flood_count_with(
                        &mut self.net,
                        rescuer,
                        |w| map.is_low(w),
                        &mut self.flood_scratch,
                    );
                    if !self.cfg.low_sufficient(res.matching, res.n) {
                        self.walk_stats.type2 += 1;
                        crate::type2_simple::deflate(self, rescuer);
                        used_type2 = true;
                        break;
                    }
                }
                attempt += 1;
                assert!(
                    attempt < self.cfg.max_walk_retries,
                    "faulted batch deletion starved"
                );
            }
            if used_type2 {
                break; // remaining vertices were redistributed by deflate
            }
        }
        used_type2
    }

    /// Move vertex `z` from `rescuer` to the Low node `w` (no-op when the
    /// rescuer itself was picked), recording `w` in `touched` when the
    /// caller batches load updates.
    fn move_to_low(
        &mut self,
        z: VertexId,
        rescuer: NodeId,
        w: NodeId,
        touched: Option<&mut Vec<NodeId>>,
    ) {
        if w != rescuer {
            crate::fabric::move_vertices(
                &mut self.net,
                &mut self.map,
                &self.cycle,
                &[z],
                w,
                &mut self.heal.insts,
            );
            self.net.charge_messages(4);
            self.net.charge_rounds(1);
            if let Some(t) = touched {
                t.push(w);
            }
        }
    }

    /// Walk-free delete fallback after repeated walk loss: flood for the
    /// low set, rehome `z` to its witness (or deflate if Low ran out).
    /// Returns `true` when type-1 healing sufficed.
    fn delete_fallback(
        &mut self,
        z: VertexId,
        rescuer: NodeId,
        touched: Option<&mut Vec<NodeId>>,
    ) -> bool {
        let map = &self.map;
        let res = flood_count_with(
            &mut self.net,
            rescuer,
            |w| map.is_low(w),
            &mut self.flood_scratch,
        );
        if !self.cfg.low_sufficient(res.matching, res.n) {
            self.walk_stats.type2 += 1;
            crate::type2_simple::deflate(self, rescuer);
            return false;
        }
        let w = res.witness.expect("low_sufficient implies a low node");
        self.fault_stats.heal_fallbacks += 1;
        self.walk_stats.hits += 1;
        self.move_to_low(z, rescuer, w, touched);
        true
    }

    // ------------------------------------------------------------------
    // DHT routing
    // ------------------------------------------------------------------

    /// Route a DHT message on the actual schedule: resolve the virtual
    /// shortest path exactly as the centralized `route_dht` does, then
    /// run the physical hop sequence as one [`RouteOp`] (round-trip for
    /// lookups). Charges the run's makespan and sends; returns `false`
    /// when the route was abandoned (counted in `dht_abandoned`).
    pub(crate) fn route_dht_faulted(&mut self, from: NodeId, key: Key, round_trip: bool) -> bool {
        let spec = self.faults.expect("faulted route without a fault spec");
        let target = hash_to_vertex(key, self.cycle.p());
        let start = *self
            .map
            .sim(from)
            .iter()
            .min()
            .expect("initiator simulates a vertex");
        let route = &mut self.heal.route;
        self.cycle
            .shortest_path_with(start, target, &mut route.bfs, &mut route.vpath);
        // Physical node path: the owner sequence of the virtual path with
        // consecutive duplicates collapsed (same-node virtual hops are
        // free local computation).
        let mut path: Vec<NodeId> = Vec::with_capacity(route.vpath.len());
        path.push(self.map.owner_of(route.vpath[0]));
        for &zv in &route.vpath[1..] {
            let cur = self.map.owner_of(zv);
            if cur != *path.last().expect("path starts non-empty") {
                debug_assert!(
                    self.net
                        .graph()
                        .contains_edge(*path.last().expect("non-empty"), cur),
                    "virtual path step not physical"
                );
                path.push(cur);
            }
        }
        let op_key = splitmix64(
            splitmix64(spec.seed ^ key) ^ (self.net.steps_completed().wrapping_mul(0x9e37)),
        );
        let ops = [RouteOp {
            path,
            round_trip,
            op_key,
        }];
        let (results, report) = msim::run_routes(self.net.graph(), &spec, &ops, self.heal_threads);
        self.net.charge_rounds(report.makespan);
        self.net.charge_messages(report.messages);
        self.fault_stats.merge(&report.stats);
        let delivered = results[0].status == OpStatus::Delivered;
        if !delivered {
            self.fault_stats.dht_abandoned += 1;
        }
        delivered
    }
}
