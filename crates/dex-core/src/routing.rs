//! Permutation routing on the virtual expander (paper, Corollary 3 /
//! Scheideler Cor. 7.7.3).
//!
//! Type-2 recovery installs the inverse-chord edges of the new p-cycle by
//! routing one request per vertex to the owner of its inverse — a
//! permutation-routing instance. Scheideler's bound says any permutation
//! on a bounded-degree expander routes in O(log n·(log log n)²/log log
//! log n) rounds; this module *executes* store-and-forward routing with a
//! per-edge-per-round capacity (the CONGEST constraint) along locally
//! computed shortest paths and measures the real makespan.
//!
//! Path computation memoizes one BFS tree per routing *target*. A full
//! permutation has p distinct targets (O(p²) simulator work), so the
//! one-shot type-2 procedures execute real routing up to
//! [`EXACT_ROUTING_MAX_P`] and fall back to the analytical charge above it
//! (DESIGN.md §5); the experiment harness validates the analytical model
//! against the executed one in the overlap region.

use crate::mapping::VirtualMapping;
use dex_graph::ids::{NodeId, VertexId};
use dex_graph::pcycle::{PCycle, PathOracle};
use dex_sim::tokens::route_batch_flat;
use dex_sim::Network;

/// Largest p for which one-shot type-2 executes real permutation routing.
pub const EXACT_ROUTING_MAX_P: u64 = 2500;

/// Per-chunk staging for the parallel permutation resolution: one worker
/// resolves one chunk of pairs into its own flat buffer, and the chunks
/// are spliced sequentially in chunk order — byte-identical to the
/// sequential resolution for any thread count.
#[derive(Default)]
struct ChunkPaths {
    flat: Vec<NodeId>,
    /// Chunk-local `(start, len)` ranges into `flat`.
    ranges: Vec<(usize, usize)>,
}

/// Reusable path-resolution buffers for [`route_pairs_with`] and the DHT
/// hop counter: all token paths live in one flat node buffer addressed by
/// `(start, len)` ranges, so resolving a permutation allocates nothing per
/// pair, and single-message routing (the DHT fast path) reuses the pooled
/// bidirectional-BFS scratch plus one vertex-path buffer.
#[derive(Default)]
pub struct RouteScratch {
    /// Flattened physical paths, one range per token.
    flat: Vec<NodeId>,
    /// `(start, len)` of each token's path within `flat`.
    ranges: Vec<(usize, usize)>,
    /// Per-chunk staging for the parallel resolution fan-out (capacities
    /// persist across type-2 events).
    chunks: Vec<ChunkPaths>,
    /// Bidirectional-BFS scratch for per-message virtual shortest paths.
    pub(crate) bfs: dex_graph::pcycle::PathScratch,
    /// Staging buffer for one virtual path (the DHT route).
    pub(crate) vpath: Vec<VertexId>,
}

impl RouteScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Pairs per resolution chunk in the parallel fan-out. A chunk is the
/// unit one worker's `PathOracle` (BFS-tree memo) amortizes over, and
/// chunk boundaries are fixed, so the spliced buffer is byte-identical
/// for any thread count.
const PAIR_CHUNK: usize = 32;

/// Route one token per `(source, target)` vertex pair along virtual
/// shortest paths mapped to physical node paths (Fact 1), with at most
/// `cap` tokens per directed physical edge per round. Returns the makespan
/// in rounds; messages and rounds are charged to `net`.
///
/// Convenience wrapper allocating a throwaway [`RouteScratch`]; repeated
/// callers (the type-2 procedures) hold one and use [`route_pairs_with`].
pub fn route_pairs(
    net: &mut Network,
    map: &VirtualMapping,
    cycle: &PCycle,
    pairs: &[(VertexId, VertexId)],
    cap: usize,
) -> u64 {
    route_pairs_with(net, map, cycle, pairs, cap, 1, &mut RouteScratch::new())
}

/// Append `src → dst`'s physical path (the owner of every virtual hop) to
/// `flat`, recording its `(start, len)` range. Pure per pair: the path is
/// a function of `(cycle, src, dst)` and the read-only Φ, so resolution
/// order — and which worker resolved it — never shows in the bytes.
fn resolve_pair(
    map: &VirtualMapping,
    oracle: &mut PathOracle,
    src: VertexId,
    dst: VertexId,
    flat: &mut Vec<NodeId>,
    ranges: &mut Vec<(usize, usize)>,
) {
    let start = flat.len();
    flat.push(map.owner_of(src));
    let mut cur = src;
    while let Some(next) = oracle.next_hop(cur, dst) {
        flat.push(map.owner_of(next));
        cur = next;
    }
    ranges.push((start, flat.len() - start));
}

/// [`route_pairs`] resolving owners into the caller-provided flat buffer:
/// each virtual path is walked hop by hop and its owners appended to one
/// shared `Vec<NodeId>` — no per-pair `Vec`.
///
/// The resolution pass (next-hop walks + owner lookups) is read-only bulk
/// work; with `threads > 1` it fans out over the persistent executor pool
/// in fixed [`PAIR_CHUNK`]-pair chunks, each worker memoizing BFS trees in
/// its own [`PathOracle`], and the per-chunk buffers are spliced in chunk
/// order — the flat buffer, the charged costs, and the makespan are
/// bit-identical to the sequential resolution for any thread count (this
/// is the type-2 rebuild's permutation-resolution fan-out).
pub fn route_pairs_with(
    net: &mut Network,
    map: &VirtualMapping,
    cycle: &PCycle,
    pairs: &[(VertexId, VertexId)],
    cap: usize,
    threads: usize,
    scratch: &mut RouteScratch,
) -> u64 {
    scratch.flat.clear();
    scratch.ranges.clear();
    if threads <= 1 || pairs.len() <= 2 * PAIR_CHUNK {
        let mut oracle = PathOracle::new(*cycle);
        for &(src, dst) in pairs {
            resolve_pair(
                map,
                &mut oracle,
                src,
                dst,
                &mut scratch.flat,
                &mut scratch.ranges,
            );
        }
    } else {
        let n_chunks = pairs.len().div_ceil(PAIR_CHUNK);
        if scratch.chunks.len() < n_chunks {
            scratch.chunks.resize_with(n_chunks, ChunkPaths::default);
        }
        let chunks = &mut scratch.chunks[..n_chunks];
        dex_exec::for_chunks_state_mut(
            chunks,
            threads,
            1,
            || PathOracle::new(*cycle),
            |ci, out, oracle| {
                let out = &mut out[0];
                out.flat.clear();
                out.ranges.clear();
                let lo = ci * PAIR_CHUNK;
                let hi = (lo + PAIR_CHUNK).min(pairs.len());
                for &(src, dst) in &pairs[lo..hi] {
                    resolve_pair(map, oracle, src, dst, &mut out.flat, &mut out.ranges);
                }
            },
        );
        for chunk in chunks.iter() {
            let base = scratch.flat.len();
            scratch.flat.extend_from_slice(&chunk.flat);
            scratch
                .ranges
                .extend(chunk.ranges.iter().map(|&(s, l)| (base + s, l)));
        }
    }
    route_batch_flat(net, &scratch.flat, &scratch.ranges, cap)
}

/// The inverse-chord permutation of `Z(p)`: vertex `x` routes to `x⁻¹`
/// (fixed points 0, 1, p−1 route to themselves and cost nothing).
/// Note that on `Z(p)` itself every such pair is adjacent (the chord *is*
/// an edge) — the non-trivial workload is [`inflation_inverse_pairs`],
/// which routes the *new* cycle's chords across the *old* cycle.
pub fn inverse_permutation(cycle: &PCycle) -> Vec<(VertexId, VertexId)> {
    (0..cycle.p())
        .map(|x| (VertexId(x), cycle.chord(VertexId(x))))
        .collect()
}

/// The routing workload of an inflation `Z(p_old) → Z(p_new)`: for every
/// new vertex `y < y⁻¹ (mod p_new)`, a request must travel between the
/// nodes that will simulate them — i.e. between the *old* vertices that
/// generate `y` and `y⁻¹` (Eq. 7's cloud sources). Endpoints are old-cycle
/// vertices, spread over the whole cycle, so paths have Θ(log p) hops.
pub fn inflation_inverse_pairs(p_old: u64, p_new: u64) -> Vec<(VertexId, VertexId)> {
    use dex_graph::pcycle::resize;
    let new_cycle = PCycle::new(p_new);
    let mut pairs = Vec::new();
    for y in 0..p_new {
        let inv = new_cycle.chord(VertexId(y)).0;
        if y >= inv {
            continue;
        }
        let src = resize::inflation_source(y, p_old, p_new);
        let dst = resize::inflation_source(inv, p_old, p_new);
        if src != dst {
            pairs.push((VertexId(src), VertexId(dst)));
        }
    }
    pairs
}

/// The deflation analogue: the surviving new vertex `y`'s request travels
/// between the dominating old sources of `y` and `y⁻¹` on the old cycle.
pub fn deflation_inverse_pairs(p_old: u64, p_new: u64) -> Vec<(VertexId, VertexId)> {
    use dex_graph::pcycle::resize;
    let new_cycle = PCycle::new(p_new);
    let mut pairs = Vec::new();
    for y in 0..p_new {
        let inv = new_cycle.chord(VertexId(y)).0;
        if y >= inv {
            continue;
        }
        let src = resize::deflation_cloud(y, p_old, p_new).start;
        let dst = resize::deflation_cloud(inv, p_old, p_new).start;
        if src != dst {
            pairs.push((VertexId(src), VertexId(dst)));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric;
    use dex_graph::primes;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    /// A DEX-shaped world: Z(p) dealt round-robin onto n nodes.
    fn world(p: u64, n: u64) -> (Network, VirtualMapping, PCycle) {
        let cycle = PCycle::new(p);
        let mut map = VirtualMapping::new(8);
        let mut net = Network::new();
        for i in 0..n {
            net.adversary_add_node(NodeId(i));
        }
        for x in 0..p {
            map.assign(VertexId(x), NodeId(x % n));
        }
        fabric::materialize_all(&mut net, &map, &cycle, false);
        (net, map, cycle)
    }

    fn log2(p: u64) -> u64 {
        (64 - p.leading_zeros() as u64).max(1)
    }

    #[test]
    fn inverse_permutation_is_an_involution() {
        let cycle = PCycle::new(101);
        let pairs = inverse_permutation(&cycle);
        assert_eq!(pairs.len(), 101);
        for &(x, y) in &pairs {
            assert_eq!(cycle.chord(y), x);
        }
        // It is a permutation: every vertex appears exactly once as target.
        let mut targets: Vec<u64> = pairs.iter().map(|&(_, y)| y.0).collect();
        targets.sort_unstable();
        assert_eq!(targets, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn routing_completes_and_charges() {
        let (mut net, map, cycle) = world(101, 25);
        net.begin_step();
        let pairs = inflation_inverse_pairs(101, primes::inflation_prime(101));
        let rounds = route_pairs(&mut net, &map, &cycle, &pairs, 1);
        let (r, m, _) = net.current_counters();
        assert_eq!(r, rounds);
        assert!(m > 0);
        net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
        assert!(rounds > 0);
    }

    #[test]
    fn inverse_permutation_pairs_are_adjacent() {
        // On Z(p) itself, x and x⁻¹ share the chord edge — routing them is
        // a single hop; the real type-2 workload is the cross-cycle one.
        let cycle = PCycle::new(101);
        for (a, b) in inverse_permutation(&cycle) {
            assert!(cycle.adjacent(a, b) || a == b);
        }
    }

    #[test]
    fn inflation_pairs_span_the_old_cycle() {
        let p_old = 499u64;
        let p_new = primes::inflation_prime(p_old);
        let pairs = inflation_inverse_pairs(p_old, p_new);
        assert!(
            pairs.len() as u64 > p_new / 3,
            "too few pairs: {}",
            pairs.len()
        );
        let cycle = PCycle::new(p_old);
        let far = pairs
            .iter()
            .filter(|&&(a, b)| cycle.distance(a, b) >= 3)
            .count();
        assert!(
            far * 2 > pairs.len(),
            "inflation routing workload is mostly trivial ({far}/{})",
            pairs.len()
        );
    }

    #[test]
    fn makespan_is_polylog_in_p() {
        // Corollary 3's shape on the *real* type-2 workload: rounds grow
        // ~log²p, nowhere near p.
        let mut results = Vec::new();
        for p in [101u64, 499, 2003] {
            let n = p / 4;
            let (mut net, map, cycle) = world(p, n);
            net.begin_step();
            let pairs = inflation_inverse_pairs(p, primes::inflation_prime(p));
            let rounds = route_pairs(&mut net, &map, &cycle, &pairs, 1);
            net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
            results.push((p, rounds));
        }
        for &(p, rounds) in &results {
            let bound = 10 * log2(p) * log2(p);
            assert!(
                rounds <= bound,
                "permutation on Z({p}) took {rounds} rounds > 10·log² = {bound}"
            );
            assert!((rounds as f64) < p as f64, "not sublinear at p={p}");
        }
        // Growth from p=101 to p=2003 (~20×) must stay well under 20×.
        let growth = results[2].1 as f64 / results[0].1.max(1) as f64;
        assert!(growth < 10.0, "superlogarithmic growth: {growth}");
    }

    #[test]
    fn random_permutation_also_routes_fast() {
        let (mut net, map, cycle) = world(499, 124);
        let mut rng = StdRng::seed_from_u64(9);
        let mut targets: Vec<u64> = (0..499).collect();
        targets.shuffle(&mut rng);
        let pairs: Vec<(VertexId, VertexId)> = targets
            .iter()
            .enumerate()
            .map(|(i, &t)| (VertexId(i as u64), VertexId(t)))
            .collect();
        net.begin_step();
        let rounds = route_pairs(&mut net, &map, &cycle, &pairs, 1);
        net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
        let bound = 4 * log2(499) * log2(499);
        assert!(
            rounds <= bound,
            "random permutation took {rounds} > {bound}"
        );
    }

    #[test]
    fn parallel_resolution_is_bit_identical_to_sequential() {
        // The type-2 permutation-resolution fan-out must charge the exact
        // same rounds/messages for any thread count (chunked per-worker
        // oracles + chunk-order splice).
        let p = 1009u64;
        let pairs = inflation_inverse_pairs(p, primes::inflation_prime(p));
        assert!(pairs.len() > 2 * 32, "workload must exercise the fan-out");
        let mut baseline = None;
        for threads in [1usize, 3, 8] {
            let (mut net, map, cycle) = world(p, p / 5);
            net.begin_step();
            let mut scratch = RouteScratch::new();
            let rounds = route_pairs_with(&mut net, &map, &cycle, &pairs, 1, threads, &mut scratch);
            let counters = net.current_counters();
            net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
            match baseline {
                None => baseline = Some((rounds, counters)),
                Some(b) => assert_eq!(b, (rounds, counters), "threads={threads}"),
            }
        }
    }

    #[test]
    fn higher_capacity_reduces_makespan() {
        let (mut net, map, cycle) = world(499, 124);
        let pairs = inflation_inverse_pairs(499, primes::inflation_prime(499));
        net.begin_step();
        let r1 = route_pairs(&mut net, &map, &cycle, &pairs, 1);
        net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
        let (mut net2, map2, cycle2) = world(499, 124);
        net2.begin_step();
        let r4 = route_pairs(&mut net2, &map2, &cycle2, &pairs, 4);
        net2.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
        assert!(r4 <= r1, "cap 4 ({r4}) should not exceed cap 1 ({r1})");
    }

    #[test]
    fn analytical_charge_upper_bounds_executed_routing() {
        // The fallback model (6·log p rounds) must dominate reality in the
        // regime where we can execute both.
        for p in [101u64, 499, 1009] {
            let n = p / 5;
            let (mut net, map, cycle) = world(p, n);
            net.begin_step();
            let pairs = inflation_inverse_pairs(p, primes::inflation_prime(p));
            let rounds = route_pairs(&mut net, &map, &cycle, &pairs, 1);
            net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
            let _analytic = 6 * log2(p);
            // Executed routing includes congestion; allow log-factor slack
            // but verify the same order of magnitude.
            assert!(
                rounds <= 6 * log2(p) * log2(p),
                "p={p}: executed {rounds} far above model"
            );
        }
        let _ = primes::is_prime(2); // keep primes linked for doc purposes
    }
}
