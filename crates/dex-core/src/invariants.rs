//! Run-time invariant checking.
//!
//! Theorem 1's deterministic guarantees, checked directly on the live
//! structure. Tests call [`check`] after *every* adversarial step; it is
//! O(n) and not part of the protocol cost.
//!
//! Checked invariants:
//! 1. internal consistency of the graph and the mapping;
//! 2. Φ is surjective (every node simulates ≥ 1 vertex — counting staged
//!    vertices while a staggered type-2 operation is mid-flight);
//! 3. load bounds: ≤ 4ζ steady state, ≤ 8ζ during a staggered operation
//!    (Lemma 3(a) / Lemma 9(a));
//! 4. the physical network is *exactly* the contraction of the virtual
//!    graph under Φ (multiset of edges, Definition 2);
//! 5. degree bound: deg(u) = Θ(load(u)) ≤ 3·load (plus staged/intermediate
//!    edges during staggering);
//! 6. the network is connected.

use crate::dex::DexNetwork;
use crate::fabric;
use dex_graph::connectivity::is_connected;

/// Check all structural invariants; `Err` describes the first violation.
pub fn check(dex: &DexNetwork) -> Result<(), String> {
    dex.net
        .graph()
        .validate()
        .map_err(|e| format!("graph: {e}"))?;
    dex.map.validate().map_err(|e| format!("mapping: {e}"))?;

    let staggering = dex.stag.is_some();
    let max_load = if staggering {
        dex.cfg.max_load_staggered()
    } else {
        dex.cfg.max_load()
    };

    // Surjectivity + load bounds + degree bounds.
    for u in dex.net.graph().nodes() {
        let old_load = dex.map.load(u);
        let staged = dex.stag.as_ref().map_or(0, |s| s.staged_load(u));
        let total = old_load + staged;
        if total == 0 {
            return Err(format!("node {u} simulates nothing (Φ not surjective)"));
        }
        if total > max_load {
            return Err(format!(
                "node {u} load {total} exceeds bound {max_load} (staggering={staggering})"
            ));
        }
        let deg = dex.net.graph().degree(u) as u64;
        // Each simulated vertex contributes ≤ 3 incident edge instances;
        // during staggering an old vertex can additionally attract up to
        // ζ + 2 intermediate edges (its cloud's boundary + chords).
        let deg_factor = if staggering { 3 + dex.cfg.zeta + 2 } else { 3 };
        if deg > deg_factor * total {
            return Err(format!(
                "node {u} degree {deg} exceeds {deg_factor}·load = {}",
                deg_factor * total
            ));
        }
    }

    // Mapping must not point at ghost nodes.
    for u in dex.map.nodes() {
        if !dex.net.graph().has_node(u) {
            return Err(format!("mapping owner {u} not in network"));
        }
    }

    // Exact contraction fabric.
    match &dex.stag {
        None => {
            let expected = fabric::expected_edge_multiset(&dex.map, &dex.cycle);
            fabric::verify_fabric(&dex.net, &expected)?;
        }
        Some(op) => {
            op.verify_fabric(dex)?;
        }
    }

    if !is_connected(dex.net.graph()) {
        return Err("network disconnected".into());
    }
    Ok(())
}

/// Convenience: panic with the violation message (for tests).
pub fn assert_ok(dex: &DexNetwork) {
    if let Err(e) = check(dex) {
        panic!(
            "invariant violated at step {}: {e}\n{dex:?}",
            dex.net.steps_completed()
        );
    }
}
