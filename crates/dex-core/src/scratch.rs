//! Pooled scratch buffers for the healing hot path.
//!
//! Type-1 recovery runs on every adversarial step; the paper charges it
//! O(log n) rounds and messages, and the implementation should cost the
//! simulator a comparable amount — not a handful of `Vec` allocations per
//! step. [`HealScratch`] is the protocol-side analogue of
//! [`dex_sim::flood::FloodScratch`]: one instance lives in
//! [`crate::DexNetwork`] and is threaded through `insert` / `delete` /
//! `insert_batch` / `delete_batch`, the fabric edge-instance enumeration,
//! and type-2 permutation routing. After warm-up every buffer has reached
//! its high-water capacity and steady-state healing performs **zero heap
//! allocation per operation** (`bench_heal` measures and asserts this via
//! a counting allocator).
//!
//! Buffers are `pub` fields rather than accessors: callers routinely need
//! two of them simultaneously (disjoint-field borrows), and several sites
//! `mem::take` a buffer to detach it from `self` across a `&mut self`
//! call, restoring it afterwards so the capacity is never lost.

use crate::routing::RouteScratch;
use dex_graph::fxhash::{FxHashMap, FxHashSet};
use dex_graph::ids::{NodeId, VertexId};

/// Reusable buffers for one healing driver. See module docs.
#[derive(Default)]
pub struct HealScratch {
    /// Vertex set being rehomed (a victim's `Sim` copy, a move set, …).
    pub zs: Vec<VertexId>,
    /// Neighbor collection (rescuer election, batch validation).
    pub nbrs: Vec<NodeId>,
    /// Nodes whose load changed this step (batched load-update charge).
    pub touched: Vec<NodeId>,
    /// Virtual-edge instance buffer for fabric moves
    /// ([`crate::fabric::incident_edges_into`]).
    pub insts: Vec<(VertexId, VertexId)>,
    /// Path-resolution buffers for type-2 permutation routing.
    pub route: RouteScratch,
    /// Staged `(start-or-vertex, len-or-keep, owner)` runs for the type-2
    /// rebuild's entry re-scan: the dense Φ scan is staged here, the cloud
    /// arithmetic fans out over the executor pool, and the runs are
    /// applied to the new Φ sequentially (see [`crate::type2_simple`]).
    pub cloud_runs: Vec<(u64, u64, NodeId)>,
    /// Batch-validation map: attach-point fan-in counts.
    pub fan_in: FxHashMap<NodeId, usize>,
    /// Batch-validation set: newcomer / victim uniqueness.
    pub seen: FxHashSet<NodeId>,
    /// Parallel batch-heal engine state (plans, conflict map, op staging)
    /// — see [`crate::parheal`].
    pub(crate) par: crate::parheal::ParScratch,
}

impl HealScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}
