//! Batch churn: multiple insertions or deletions per step
//! (paper, Sect. 5 and Corollary 2).
//!
//! The adversary may insert or delete up to εn nodes at once, subject to
//! the paper's conditions: each inserted node attaches to an existing
//! node with only O(1) newcomers per attach point; deletions leave the
//! remainder connected with at least one surviving neighbor per victim.
//! Recovery may lean on the simplified type-2 procedures every O(1) steps,
//! for O(n log² n) messages and O(log³ n) rounds per batch.
//!
//! Implementation: the batch shares one step scope. Batches of at least
//! [`crate::parheal::PAR_BATCH_MIN`] ops are applied by the deterministic
//! **parallel wave engine** ([`crate::parheal`]): ops are speculatively
//! planned, partitioned into conflict-free waves over their touch sets,
//! and committed in canonical order — bit-identical to sequential
//! application for any thread count. Smaller batches, and any op whose
//! heal leaves the type-1 fast path (walk miss, type-2 trigger), run
//! through the sequential per-op machinery below, which also survives as
//! [`DexNetwork::insert_batch_seq`] / [`DexNetwork::delete_batch_seq`] —
//! the differential oracle (`tests/batch_par.rs`) and the `bench_batch`
//! baseline.

use crate::config::RecoveryMode;
use crate::dex::DexNetwork;
use crate::parheal::{self, BatchOp, PAR_BATCH_MIN};
use dex_graph::ids::NodeId;
use dex_sim::{RecoveryKind, StepKind, StepMetrics};

/// Maximum newcomers per attach point in one batch (the paper's O(1)
/// anti-congestion bound, Sect. 5).
pub const MAX_ATTACH_FAN_IN: usize = 8;

impl DexNetwork {
    /// Insert a batch of `(new_node, attach_to)` pairs in one adversarial
    /// step, healed by the parallel wave engine (sequentially below
    /// [`PAR_BATCH_MIN`] ops). Requires simplified mode (the staggered
    /// machinery assumes one event per step, as in the paper).
    ///
    /// # Panics
    /// Panics on duplicate ids, missing attach points, or more than O(1)
    /// newcomers per attach point (the paper's congestion condition).
    pub fn insert_batch(&mut self, joins: &[(NodeId, NodeId)]) -> StepMetrics {
        self.validate_insert_batch(joins);
        self.step_no += 1;
        self.net.begin_step();
        // Under a fault spec the engine plans every walk on the message
        // schedule (read-only, bit-identical to the faulted sequential
        // path), so faulted batches keep their conflict-graph waves.
        let used_type2 = if joins.len() >= PAR_BATCH_MIN && !self.crossover_to_seq(joins.len()) {
            let mut ops = std::mem::take(&mut self.heal.par.ops);
            ops.clear();
            ops.extend(joins.iter().map(|&(u, v)| BatchOp::Insert { u, v }));
            self.heal.par.ops = ops;
            parheal::run_batch(self, self.heal_threads)
        } else {
            self.apply_insert_batch_seq(joins)
        };
        self.net.end_step(
            StepKind::BatchInsert(joins.len() as u32),
            if used_type2 {
                RecoveryKind::InflateSimple
            } else {
                RecoveryKind::Type1
            },
        )
    }

    /// [`DexNetwork::insert_batch`] through the sequential one-op-at-a-time
    /// path, regardless of batch size. Kept as the differential oracle for
    /// the wave engine: both paths must produce bit-identical network, Φ,
    /// and metric state.
    pub fn insert_batch_seq(&mut self, joins: &[(NodeId, NodeId)]) -> StepMetrics {
        self.validate_insert_batch(joins);
        self.step_no += 1;
        self.net.begin_step();
        let used_type2 = self.apply_insert_batch_seq(joins);
        self.net.end_step(
            StepKind::BatchInsert(joins.len() as u32),
            if used_type2 {
                RecoveryKind::InflateSimple
            } else {
                RecoveryKind::Type1
            },
        )
    }

    /// Consult the adaptive small-n crossover controller (when enabled)
    /// for a wave-eligible batch of `ops` ops: `true` routes the batch to
    /// the sequential path, recording the decision in the step's
    /// [`StepMetrics::crossover`] flag and the engine stats. The decision
    /// is a deterministic function of `(n, waved-batch history)` — never
    /// of the thread count — so either route stays bit-identical across
    /// threads (and both routes produce identical state by the engine's
    /// standing contract).
    fn crossover_to_seq(&mut self, ops: usize) -> bool {
        if !self.adaptive_crossover {
            return false;
        }
        let n = self.n();
        if self.heal.par.crossover_route_seq(n) {
            self.net.note_crossover();
            self.batch_stats.crossover_batches += 1;
            self.batch_stats.crossover_ops += ops as u64;
            true
        } else {
            false
        }
    }

    /// Validate the whole batch before touching any state: fan-in per
    /// attach point (the paper's O(1) anti-congestion requirement,
    /// counted in one pass), newcomer uniqueness, no collision with a
    /// live node, and attach-point existence — an attach point may be a
    /// live node or an *earlier newcomer of the same batch* (healing
    /// runs pair-by-pair, so chained joins are well-defined). A
    /// mid-batch panic after partial mutation would leave the fabric
    /// unhealable.
    fn validate_insert_batch(&mut self, joins: &[(NodeId, NodeId)]) {
        assert_eq!(
            self.cfg.mode,
            RecoveryMode::Simplified,
            "batch mode requires simplified type-2 (Sect. 5)"
        );
        assert!(!joins.is_empty());
        self.heal.fan_in.clear();
        self.heal.seen.clear();
        for &(u, v) in joins {
            let fan = self.heal.fan_in.entry(v).or_insert(0);
            *fan += 1;
            let fan = *fan;
            assert!(
                fan <= MAX_ATTACH_FAN_IN,
                "attach fan-in {fan} at {v} violates O(1) bound"
            );
            assert!(
                self.net.graph().has_node(v) || self.heal.seen.contains(&v),
                "attach point {v} missing"
            );
            assert!(self.heal.seen.insert(u), "duplicate newcomer {u} in batch");
            assert!(
                !self.net.graph().has_node(u),
                "newcomer {u} collides with an existing node"
            );
        }
    }

    /// Sequential application body shared by the oracle path and small
    /// batches.
    fn apply_insert_batch_seq(&mut self, joins: &[(NodeId, NodeId)]) -> bool {
        let mut used_type2 = false;
        for &(u, v) in joins {
            self.net.adversary_add_node(u);
            self.net.adversary_add_edge(u, v);
            used_type2 |= self.heal_one_insert(u, v);
        }
        used_type2
    }

    /// Delete a batch of victims in one adversarial step, healed by the
    /// parallel wave engine (sequentially below [`PAR_BATCH_MIN`] ops).
    /// The remainder graph must stay connected (checked after healing,
    /// which restores the contraction fabric and hence connectivity).
    pub fn delete_batch(&mut self, victims: &[NodeId]) -> StepMetrics {
        self.validate_delete_batch(victims);
        self.step_no += 1;
        self.net.begin_step();
        let used_type2 = if victims.len() >= PAR_BATCH_MIN && !self.crossover_to_seq(victims.len())
        {
            let mut ops = std::mem::take(&mut self.heal.par.ops);
            ops.clear();
            ops.extend(victims.iter().map(|&victim| BatchOp::Delete { victim }));
            self.heal.par.ops = ops;
            parheal::run_batch(self, self.heal_threads)
        } else {
            self.apply_delete_batch_seq(victims)
        };
        self.net.end_step(
            StepKind::BatchDelete(victims.len() as u32),
            if used_type2 {
                RecoveryKind::DeflateSimple
            } else {
                RecoveryKind::Type1
            },
        )
    }

    /// [`DexNetwork::delete_batch`] through the sequential path — the
    /// differential oracle (see [`DexNetwork::insert_batch_seq`]).
    pub fn delete_batch_seq(&mut self, victims: &[NodeId]) -> StepMetrics {
        self.validate_delete_batch(victims);
        self.step_no += 1;
        self.net.begin_step();
        let used_type2 = self.apply_delete_batch_seq(victims);
        self.net.end_step(
            StepKind::BatchDelete(victims.len() as u32),
            if used_type2 {
                RecoveryKind::DeflateSimple
            } else {
                RecoveryKind::Type1
            },
        )
    }

    /// Validate before mutating: victims must be live and distinct.
    fn validate_delete_batch(&mut self, victims: &[NodeId]) {
        assert_eq!(self.cfg.mode, RecoveryMode::Simplified);
        assert!(!victims.is_empty());
        assert!(
            victims.len() < self.n() - 1,
            "batch would empty the network"
        );
        self.heal.seen.clear();
        for &victim in victims {
            assert!(self.net.graph().has_node(victim), "victim {victim} missing");
            assert!(
                self.heal.seen.insert(victim),
                "duplicate victim {victim} in batch"
            );
        }
    }

    /// Sequential application body shared by the oracle path and small
    /// batches.
    fn apply_delete_batch_seq(&mut self, victims: &[NodeId]) -> bool {
        let mut used_type2 = false;
        for &victim in victims {
            // Every victim must keep one surviving neighbor (paper's
            // condition); because healing runs victim-by-victim, the
            // previous victims' vertices have already been rehomed.
            self.heal.nbrs.clear();
            let nbrs = &mut self.heal.nbrs;
            nbrs.extend(
                self.net
                    .graph()
                    .neighbors(victim)
                    .iter()
                    .filter(|&w| w != victim),
            );
            nbrs.sort_unstable();
            nbrs.dedup();
            assert!(!nbrs.is_empty(), "victim {victim} lost all neighbors");
            let rescuer = nbrs[0];
            self.net.adversary_remove_node(victim);
            used_type2 |= self.heal_one_delete(victim, rescuer);
        }
        used_type2
    }

    /// Type-1 insert healing inside an open step; returns whether type-2
    /// was needed.
    pub(crate) fn heal_one_insert(&mut self, u: NodeId, v: NodeId) -> bool {
        use dex_sim::rng::Purpose;
        use dex_sim::tokens::random_walk_search;
        if self.faults.is_some() {
            return self.heal_one_insert_faulted(u, v);
        }
        let walk_len = self.cfg.walk_len(self.cycle.p());
        for attempt in 0..self.cfg.max_walk_retries {
            self.walk_stats.attempts += 1;
            let map = &self.map;
            let mut rng = self
                .seeds
                .stream(Purpose::InsertWalk, &[self.step_no, u.0, attempt]);
            let out = random_walk_search(
                &mut self.net,
                v,
                walk_len,
                Some(u),
                |w| map.is_spare(w),
                &mut rng,
            );
            if let Some(w) = out.hit {
                self.walk_stats.hits += 1;
                self.give_vertex_to_new_node(w, u, v);
                return false;
            }
            self.walk_stats.misses += 1;
            let res = dex_sim::flood::flood_count_with(
                &mut self.net,
                v,
                |w| map.is_spare(w),
                &mut self.flood_scratch,
            );
            if !self
                .cfg
                .spare_sufficient(res.matching, res.n.saturating_sub(1))
            {
                self.walk_stats.type2 += 1;
                crate::type2_simple::inflate(self, Some((u, v)));
                return true;
            }
        }
        panic!("batch insertion starved (n={})", self.n());
    }

    /// Type-1 delete healing inside an open step; returns whether type-2
    /// was needed. Detaches the pooled vertex buffer from `self` for the
    /// duration (see [`crate::scratch::HealScratch`]).
    pub(crate) fn heal_one_delete(&mut self, victim: NodeId, rescuer: NodeId) -> bool {
        let mut zs = std::mem::take(&mut self.heal.zs);
        zs.clear();
        zs.extend_from_slice(self.map.sim(victim));
        let used_type2 = self.heal_one_delete_core(victim, rescuer, &zs);
        self.heal.zs = zs;
        used_type2
    }

    fn heal_one_delete_core(
        &mut self,
        victim: NodeId,
        rescuer: NodeId,
        zs: &[dex_graph::ids::VertexId],
    ) -> bool {
        use dex_sim::rng::Purpose;
        use dex_sim::tokens::random_walk_search;
        if self.faults.is_some() {
            return self.heal_one_delete_core_faulted(victim, rescuer, zs);
        }
        crate::fabric::adopt_vertices(
            &mut self.net,
            &mut self.map,
            &self.cycle,
            zs,
            rescuer,
            &mut self.heal.insts,
        );
        self.net.charge_messages(3 * zs.len() as u64);
        self.net.charge_rounds(1);
        let walk_len = self.cfg.walk_len(self.cycle.p());
        let mut used_type2 = false;
        for (i, &z) in zs.iter().enumerate() {
            let mut attempt = 0u64;
            loop {
                self.walk_stats.attempts += 1;
                let map = &self.map;
                let mut rng = self.seeds.stream(
                    Purpose::DeleteWalk,
                    &[self.step_no, victim.0, i as u64, attempt],
                );
                let out = random_walk_search(
                    &mut self.net,
                    rescuer,
                    walk_len,
                    None,
                    |w| map.is_low(w),
                    &mut rng,
                );
                if let Some(w) = out.hit {
                    self.walk_stats.hits += 1;
                    if w != rescuer {
                        crate::fabric::move_vertices(
                            &mut self.net,
                            &mut self.map,
                            &self.cycle,
                            &[z],
                            w,
                            &mut self.heal.insts,
                        );
                        self.net.charge_messages(4);
                        self.net.charge_rounds(1);
                    }
                    break;
                }
                self.walk_stats.misses += 1;
                let res = dex_sim::flood::flood_count_with(
                    &mut self.net,
                    rescuer,
                    |w| map.is_low(w),
                    &mut self.flood_scratch,
                );
                if !self.cfg.low_sufficient(res.matching, res.n) {
                    self.walk_stats.type2 += 1;
                    crate::type2_simple::deflate(self, rescuer);
                    used_type2 = true;
                    break; // this vertex was rehomed by the deflation
                }
                attempt += 1;
                assert!(
                    attempt < self.cfg.max_walk_retries,
                    "batch deletion starved"
                );
            }
            if used_type2 {
                break; // remaining vertices were redistributed by deflate
            }
        }
        used_type2
    }
}
