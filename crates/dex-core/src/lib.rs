//! `dex-core` — the DEX self-healing expander maintenance algorithm
//! (Pandurangan, Robinson, Trehan; IPDPS 2014 / Distrib. Comput. 2016).
//!
//! DEX keeps a dynamic network a **constant-degree expander with a
//! deterministically constant spectral gap** under an adaptive adversary
//! that inserts or deletes one node per step, healing each change with
//! O(log n) rounds and messages (w.h.p.) and O(1) topology changes
//! (Theorem 1).
//!
//! The construction simulates a virtual 3-regular *p-cycle* expander
//! `Z(p)` on the real nodes through a balanced surjective mapping Φ; the
//! real network is the contraction image of `Z(p)` and inherits its
//! spectral gap (Lemma 1). Healing rebalances Φ with random walks
//! (*type-1*, [`dex`]) and occasionally replaces the whole virtual graph
//! (*type-2*): one-shot ([`type2_simple`], amortized bounds) or staggered
//! over Θ(n) steps behind a coordinator ([`staggered`], worst-case
//! bounds). A DHT rides on top ([`dht`]) and a batch extension handles εn
//! simultaneous insertions/deletions ([`batch`]).
//!
//! # Quick start
//!
//! ```
//! use dex_core::{DexConfig, DexNetwork};
//!
//! let mut dex = DexNetwork::bootstrap(DexConfig::new(42), 16);
//! let u = dex.fresh_node_id();
//! let m = dex.insert(u, dex_graph::NodeId(0));
//! assert!(m.rounds > 0);
//! let m = dex.delete(u);
//! assert!(m.topology_changes > 0);
//! dex_core::invariants::assert_ok(&dex);
//! assert!(dex.spectral_gap() > 0.01);
//! ```

pub mod batch;
pub mod config;
pub mod dex;
pub mod dht;
pub mod fabric;
pub mod faulted;
pub mod invariants;
pub mod mapping;
pub mod parheal;
pub mod routing;
pub mod scratch;
pub mod staggered;
pub mod type2_simple;

pub use config::{DexConfig, RecoveryMode};
pub use dex::{DexNetwork, WalkStats};
pub use dex_sim::msim::{FaultSpec, FaultStats};
pub use mapping::VirtualMapping;
