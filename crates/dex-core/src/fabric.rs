//! Edge fabric: keeping the physical network equal to the contraction of
//! the virtual graph under Φ.
//!
//! Every virtual edge `(z₁, z₂) ∈ E(Z)` must be realized by a physical edge
//! `(Φ(z₁), Φ(z₂))` — with multiplicity, because the real network is the
//! *contraction image* of `Z` (Definition 2 + Lemma 1; parallel edges and
//! loops carry spectral weight). This module enumerates edge instances
//! canonically (each undirected virtual edge counted exactly once), applies
//! vertex moves with O(1) topology changes, and rebuilds the fabric by
//! multiset diff after a one-shot type-2 recovery.

use crate::mapping::VirtualMapping;
use dex_graph::ids::{NodeId, VertexId};
use dex_graph::pcycle::PCycle;
use dex_sim::Network;

/// The canonical virtual-edge instances "sourced" at vertex `z`:
/// * the successor cycle edge `(z, z+1)` — always sourced at `z`;
/// * the chord `(z, z⁻¹)` — sourced at `min(z, z⁻¹)`; self-inverse
///   vertices (0, 1, p−1) source their own loop.
///
/// Iterating this over all `z ∈ Z_p` yields each virtual edge exactly once.
pub fn canonical_edges_of(cycle: &PCycle, z: VertexId) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::with_capacity(2);
    out.push((z, cycle.succ(z)));
    let c = cycle.chord(z);
    if c == z || z < c {
        out.push((z, c));
    }
    out
}

/// All virtual-edge instances with at least one endpoint in `set`, each
/// exactly once, appended to the caller's buffer (`out` is cleared first).
/// `set` must be duplicate-free.
///
/// Dedup rules: the successor edge is sourced at `z`; the predecessor edge
/// is included only when `pred(z) ∉ set` (otherwise it is the predecessor's
/// successor edge); chords are included when the partner is outside `set`
/// or `z` is the canonical (smaller) endpoint; loops always.
///
/// The healing hot path calls this for every vertex move; threading the
/// buffer from [`crate::scratch::HealScratch`] keeps it allocation-free.
pub fn incident_edges_into(cycle: &PCycle, set: &[VertexId], out: &mut Vec<(VertexId, VertexId)>) {
    out.clear();
    let in_set = |v: VertexId| set.contains(&v);
    for &z in set {
        out.push((z, cycle.succ(z)));
        let p = cycle.pred(z);
        if !in_set(p) {
            out.push((p, z));
        }
        let c = cycle.chord(z);
        if c == z {
            out.push((z, z));
        } else if !in_set(c) || z < c {
            out.push((z, c));
        }
    }
}

/// Allocating convenience wrapper over [`incident_edges_into`].
pub fn incident_edges_of_set(cycle: &PCycle, set: &[VertexId]) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::with_capacity(set.len() * 3);
    incident_edges_into(cycle, set, &mut out);
    out
}

/// Materialize the entire contraction fabric from scratch. `charged`
/// selects whether edges count as algorithm topology changes (bootstrap
/// passes `false`).
pub fn materialize_all(net: &mut Network, map: &VirtualMapping, cycle: &PCycle, charged: bool) {
    for_each_canonical_edge(cycle, |a, b| {
        let (ua, ub) = (map.owner_of(a), map.owner_of(b));
        if charged {
            net.add_edge(ua, ub);
        } else {
            net.adversary_add_edge(ua, ub);
        }
    });
}

/// Visit every canonical virtual-edge instance of `cycle` exactly once,
/// without allocating (the fabric-wide analogue of [`canonical_edges_of`]).
pub fn for_each_canonical_edge(cycle: &PCycle, mut f: impl FnMut(VertexId, VertexId)) {
    for x in 0..cycle.p() {
        let z = VertexId(x);
        f(z, cycle.succ(z));
        let c = cycle.chord(z);
        if c == z || z < c {
            f(z, c);
        }
    }
}

/// The full expected physical edge multiset (normalized `(min, max)`
/// pairs, sorted) for the contraction of `cycle` under `map`. Used by the
/// invariant checker and by [`rewire_to_target`].
pub fn expected_edge_multiset(map: &VirtualMapping, cycle: &PCycle) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::with_capacity(cycle.p() as usize * 2);
    for_each_canonical_edge(cycle, |a, b| {
        let (ua, ub) = (map.owner_of(a), map.owner_of(b));
        out.push((ua.min(ub), ua.max(ub)));
    });
    out.sort_unstable();
    out
}

/// Move the vertex set `zs` (all owned by a live node) to node `to`:
/// removes every incident physical instance, retargets the mapping, and
/// re-adds the instances under the new owners. All edge churn is charged.
/// O(|zs|) topology changes. `insts` is a reusable instance buffer
/// (typically [`crate::scratch::HealScratch::insts`]); its prior contents
/// are discarded.
pub fn move_vertices(
    net: &mut Network,
    map: &mut VirtualMapping,
    cycle: &PCycle,
    zs: &[VertexId],
    to: NodeId,
    insts: &mut Vec<(VertexId, VertexId)>,
) {
    incident_edges_into(cycle, zs, insts);
    for &(a, b) in insts.iter() {
        let (ua, ub) = (map.owner_of(a), map.owner_of(b));
        assert!(
            net.remove_edge(ua, ub),
            "fabric desync: missing instance {a}->{b} at ({ua},{ub})"
        );
    }
    for &z in zs {
        map.transfer(z, to);
    }
    for &(a, b) in insts.iter() {
        net.add_edge(map.owner_of(a), map.owner_of(b));
    }
}

/// After the adversary deleted node `dead` (taking all its physical edges
/// with it), node `to` adopts the vertex set `zs` that `dead` simulated:
/// retarget the mapping and re-add the lost instances. Additions are
/// charged; nothing is removed (the attack already removed it). `insts`
/// is a reusable instance buffer; its prior contents are discarded.
pub fn adopt_vertices(
    net: &mut Network,
    map: &mut VirtualMapping,
    cycle: &PCycle,
    zs: &[VertexId],
    to: NodeId,
    insts: &mut Vec<(VertexId, VertexId)>,
) {
    for &z in zs {
        map.transfer(z, to);
    }
    incident_edges_into(cycle, zs, insts);
    for &(a, b) in insts.iter() {
        net.add_edge(map.owner_of(a), map.owner_of(b));
    }
}

/// Rewire the physical graph to exactly `target` (a normalized sorted edge
/// multiset): removes instances not in the target, adds missing ones.
/// Returns `(removed, added)`. Only the multiset difference is charged —
/// edges shared between the old and new fabric are untouched, which is
/// what keeps one-shot type-2 recovery at O(n) topology changes.
pub fn rewire_to_target(net: &mut Network, target: &[(NodeId, NodeId)]) -> (u64, u64) {
    let mut current: Vec<(NodeId, NodeId)> = net
        .graph()
        .edges()
        .into_iter()
        .map(|(a, b)| (a.min(b), a.max(b)))
        .collect();
    current.sort_unstable();
    // Multiset difference by merge.
    let mut to_remove = Vec::new();
    let mut to_add = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < current.len() || j < target.len() {
        match (current.get(i), target.get(j)) {
            (Some(&c), Some(&t)) => {
                if c == t {
                    i += 1;
                    j += 1;
                } else if c < t {
                    to_remove.push(c);
                    i += 1;
                } else {
                    to_add.push(t);
                    j += 1;
                }
            }
            (Some(&c), None) => {
                to_remove.push(c);
                i += 1;
            }
            (None, Some(&t)) => {
                to_add.push(t);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    for &(a, b) in &to_remove {
        assert!(net.remove_edge(a, b), "rewire: missing edge ({a},{b})");
    }
    for &(a, b) in &to_add {
        net.add_edge(a, b);
    }
    (to_remove.len() as u64, to_add.len() as u64)
}

/// Compare the physical graph against the expected contraction multiset.
pub fn verify_fabric(net: &Network, expected: &[(NodeId, NodeId)]) -> Result<(), String> {
    let mut current: Vec<(NodeId, NodeId)> = net
        .graph()
        .edges()
        .into_iter()
        .map(|(a, b)| (a.min(b), a.max(b)))
        .collect();
    current.sort_unstable();
    if current != expected {
        // Report the first few discrepancies for debugging.
        let mut msg = String::from("fabric mismatch:");
        let mut shown = 0;
        let (mut i, mut j) = (0usize, 0usize);
        while (i < current.len() || j < expected.len()) && shown < 6 {
            match (current.get(i), expected.get(j)) {
                (Some(&c), Some(&t)) if c == t => {
                    i += 1;
                    j += 1;
                }
                (Some(&c), Some(&t)) if c < t => {
                    msg.push_str(&format!(" extra({},{})", c.0, c.1));
                    i += 1;
                    shown += 1;
                }
                (Some(_), Some(&t)) => {
                    msg.push_str(&format!(" missing({},{})", t.0, t.1));
                    j += 1;
                    shown += 1;
                }
                (Some(&c), None) => {
                    msg.push_str(&format!(" extra({},{})", c.0, c.1));
                    i += 1;
                    shown += 1;
                }
                (None, Some(&t)) => {
                    msg.push_str(&format!(" missing({},{})", t.0, t.1));
                    j += 1;
                    shown += 1;
                }
                (None, None) => break,
            }
        }
        return Err(msg);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a tiny DEX-like world: Z(p) with vertices dealt round-robin to
    /// `n` nodes.
    fn world(p: u64, n: u64) -> (Network, VirtualMapping, PCycle) {
        let cycle = PCycle::new(p);
        let mut map = VirtualMapping::new(8);
        let mut net = Network::new();
        for i in 0..n {
            net.adversary_add_node(NodeId(i));
        }
        for x in 0..p {
            map.assign(VertexId(x), NodeId(x % n));
        }
        materialize_all(&mut net, &map, &cycle, false);
        (net, map, cycle)
    }

    #[test]
    fn materialized_fabric_matches_expected() {
        let (net, map, cycle) = world(23, 5);
        let expected = expected_edge_multiset(&map, &cycle);
        verify_fabric(&net, &expected).unwrap();
        // Total instances = p cycle edges + (p-3)/2 chords + 3 loops.
        assert_eq!(net.graph().num_edges(), 23 + 10 + 3);
        net.graph().validate().unwrap();
    }

    #[test]
    fn canonical_enumeration_counts_each_edge_once() {
        let cycle = PCycle::new(23);
        let mut count = 0;
        for x in 0..23 {
            count += canonical_edges_of(&cycle, VertexId(x)).len();
        }
        assert_eq!(count, 23 + 10 + 3);
    }

    #[test]
    fn incident_set_enumeration_matches_brute_force() {
        let cycle = PCycle::new(23);
        // Contiguous and scattered sets, including chord partners.
        for set in [
            vec![VertexId(0)],
            vec![VertexId(1)],
            vec![VertexId(3), VertexId(4), VertexId(5)],
            vec![VertexId(2), VertexId(12)], // chord pair (2·12 ≡ 1)
            vec![VertexId(0), VertexId(22), VertexId(1)],
        ] {
            let got = incident_edges_of_set(&cycle, &set);
            // Brute force: all undirected edges of Z(p) touching the set.
            let all = cycle.edges();
            let expect = all
                .iter()
                .filter(|(a, b)| set.contains(a) || set.contains(b))
                .count();
            assert_eq!(got.len(), expect, "set {set:?}");
        }
    }

    #[test]
    fn move_vertex_keeps_fabric_exact() {
        let (mut net, mut map, cycle) = world(23, 5);
        net.begin_step();
        move_vertices(
            &mut net,
            &mut map,
            &cycle,
            &[VertexId(7)],
            NodeId(0),
            &mut Vec::new(),
        );
        let m = net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
        assert!(
            m.topology_changes <= 6,
            "O(1) changes, got {}",
            m.topology_changes
        );
        let expected = expected_edge_multiset(&map, &cycle);
        verify_fabric(&net, &expected).unwrap();
        assert_eq!(map.owner_of(VertexId(7)), NodeId(0));
    }

    #[test]
    fn move_vertex_set_with_internal_edges() {
        let (mut net, mut map, cycle) = world(23, 5);
        net.begin_step();
        // 3,4,5 are consecutive: internal cycle edges must not double count.
        move_vertices(
            &mut net,
            &mut map,
            &cycle,
            &[VertexId(3), VertexId(4), VertexId(5)],
            NodeId(1),
            &mut Vec::new(),
        );
        net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
        let expected = expected_edge_multiset(&map, &cycle);
        verify_fabric(&net, &expected).unwrap();
    }

    #[test]
    fn adoption_restores_fabric_after_deletion() {
        let (mut net, mut map, cycle) = world(23, 5);
        // Node 2 simulates {2, 7, 12, 17, 22}.
        let zs: Vec<VertexId> = map.sim(NodeId(2)).to_vec();
        net.adversary_remove_node(NodeId(2));
        net.begin_step();
        adopt_vertices(&mut net, &mut map, &cycle, &zs, NodeId(3), &mut Vec::new());
        net.end_step(dex_sim::StepKind::Delete, dex_sim::RecoveryKind::Type1);
        let expected = expected_edge_multiset(&map, &cycle);
        verify_fabric(&net, &expected).unwrap();
    }

    #[test]
    fn rewire_diff_is_minimal() {
        let (mut net, mut map, cycle) = world(23, 5);
        // Target: same fabric but vertex 7 moved — diff must be ≤ 6+6.
        let mut target_map = map.clone();
        target_map.transfer(VertexId(7), NodeId(0));
        let target = expected_edge_multiset(&target_map, &cycle);
        net.begin_step();
        let (rm, add) = rewire_to_target(&mut net, &target);
        net.end_step(dex_sim::StepKind::Insert, dex_sim::RecoveryKind::Type1);
        assert!(rm <= 3 && add <= 3, "diff too large: -{rm} +{add}");
        verify_fabric(&net, &target).unwrap();
        map.transfer(VertexId(7), NodeId(0));
        verify_fabric(&net, &expected_edge_multiset(&map, &cycle)).unwrap();
    }

    #[test]
    fn verify_fabric_reports_mismatch() {
        let (mut net, map, cycle) = world(23, 5);
        net.adversary_add_edge(NodeId(0), NodeId(1));
        let expected = expected_edge_multiset(&map, &cycle);
        let err = verify_fabric(&net, &expected).unwrap_err();
        assert!(err.contains("extra"), "{err}");
    }
}
