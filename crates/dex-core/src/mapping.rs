//! The virtual mapping Φ (paper, Definition 2) with incremental
//! `Spare`/`Low` accounting.
//!
//! Ground truth for "which node simulates which vertex". The distributed
//! protocol only ever *reads* local projections of this structure (a node's
//! own `Sim` set, a hit node's load); global counts are consumed solely by
//! the coordinator logic, which maintains its own counters via charged
//! messages and is tested against these.

use dex_graph::fxhash::FxHashMap;
use dex_graph::ids::{NodeId, VertexId};

/// Surjective map `Φ : V(Z) → V(G)` with per-node `Sim` sets and
/// incremental `|Spare|` / `|Low|` counters.
#[derive(Clone)]
pub struct VirtualMapping {
    owner: FxHashMap<VertexId, NodeId>,
    sim: FxHashMap<NodeId, Vec<VertexId>>,
    /// Nodes with load ≥ 2 (Eq. 2).
    spare_count: usize,
    /// Nodes with 1 ≤ load ≤ 2ζ (Eq. 1; nodes absent from the map are not
    /// counted — in steady state the map is surjective so this matches the
    /// paper's `Low`).
    low_count: usize,
    zeta: u64,
}

impl VirtualMapping {
    /// Empty mapping with the given ζ (for the `Low` threshold 2ζ).
    pub fn new(zeta: u64) -> Self {
        VirtualMapping {
            owner: FxHashMap::default(),
            sim: FxHashMap::default(),
            spare_count: 0,
            low_count: 0,
            zeta,
        }
    }

    /// Number of vertices assigned.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// Number of nodes simulating at least one vertex.
    pub fn num_nodes(&self) -> usize {
        self.sim.len()
    }

    /// Owner of vertex `z`, if assigned.
    #[inline]
    pub fn owner(&self, z: VertexId) -> Option<NodeId> {
        self.owner.get(&z).copied()
    }

    /// Owner of vertex `z`; panics when unassigned (protocol invariant).
    #[inline]
    pub fn owner_of(&self, z: VertexId) -> NodeId {
        self.owner[&z]
    }

    /// The `Sim` set of node `u` (empty slice if `u` simulates nothing).
    pub fn sim(&self, u: NodeId) -> &[VertexId] {
        self.sim.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Load of `u` = `|Sim(u)|`.
    #[inline]
    pub fn load(&self, u: NodeId) -> u64 {
        self.sim.get(&u).map(|v| v.len() as u64).unwrap_or(0)
    }

    /// `|Spare|` (nodes with load ≥ 2).
    pub fn spare_count(&self) -> usize {
        self.spare_count
    }

    /// `|Low|` (nodes with 1 ≤ load ≤ 2ζ).
    pub fn low_count(&self) -> usize {
        self.low_count
    }

    /// Is `u ∈ Spare`?
    #[inline]
    pub fn is_spare(&self, u: NodeId) -> bool {
        self.load(u) >= 2
    }

    /// Is `u ∈ Low`? (requires u to simulate ≥ 1 vertex)
    #[inline]
    pub fn is_low(&self, u: NodeId) -> bool {
        let l = self.load(u);
        l >= 1 && l <= 2 * self.zeta
    }

    fn count_delta(&mut self, load_before: u64, load_after: u64) {
        let spare = |l: u64| l >= 2;
        let low = |l: u64| l >= 1 && l <= 2 * self.zeta;
        match (spare(load_before), spare(load_after)) {
            (false, true) => self.spare_count += 1,
            (true, false) => self.spare_count -= 1,
            _ => {}
        }
        match (low(load_before), low(load_after)) {
            (false, true) => self.low_count += 1,
            (true, false) => self.low_count -= 1,
            _ => {}
        }
    }

    /// Assign an unowned vertex `z` to `u`.
    ///
    /// # Panics
    /// Panics if `z` is already assigned.
    pub fn assign(&mut self, z: VertexId, u: NodeId) {
        let prev = self.owner.insert(z, u);
        assert!(prev.is_none(), "vertex {z} already owned by {:?}", prev);
        let list = self.sim.entry(u).or_default();
        list.push(z);
        let after = list.len() as u64;
        self.count_delta(after - 1, after);
    }

    /// Remove vertex `z` from the mapping; returns its former owner.
    ///
    /// # Panics
    /// Panics if `z` is unassigned.
    pub fn unassign(&mut self, z: VertexId) -> NodeId {
        let u = self
            .owner
            .remove(&z)
            .unwrap_or_else(|| panic!("vertex {z} not assigned"));
        let after = {
            let list = self.sim.get_mut(&u).expect("sim list missing");
            let pos = list
                .iter()
                .position(|&w| w == z)
                .expect("sim entry missing");
            list.swap_remove(pos);
            list.len() as u64
        };
        self.count_delta(after + 1, after);
        if after == 0 {
            self.sim.remove(&u);
        }
        u
    }

    /// Move vertex `z` to node `to`; returns the former owner.
    pub fn transfer(&mut self, z: VertexId, to: NodeId) -> NodeId {
        let from = self.unassign(z);
        self.assign(z, to);
        from
    }

    /// All `(vertex, owner)` pairs, sorted by vertex (canonical order).
    pub fn entries_sorted(&self) -> Vec<(VertexId, NodeId)> {
        let mut v: Vec<(VertexId, NodeId)> = self.owner.iter().map(|(&z, &u)| (z, u)).collect();
        v.sort_unstable();
        v
    }

    /// Nodes simulating at least one vertex (unsorted).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sim.keys().copied()
    }

    /// Maximum load over all mapped nodes.
    pub fn max_load(&self) -> u64 {
        self.sim.values().map(|v| v.len() as u64).max().unwrap_or(0)
    }

    /// Recount spare/low from scratch (test oracle for the incremental
    /// counters).
    pub fn recount(&self) -> (usize, usize) {
        let mut spare = 0;
        let mut low = 0;
        for list in self.sim.values() {
            let l = list.len() as u64;
            if l >= 2 {
                spare += 1;
            }
            if l >= 1 && l <= 2 * self.zeta {
                low += 1;
            }
        }
        (spare, low)
    }

    /// Internal consistency check.
    pub fn validate(&self) -> Result<(), String> {
        for (&z, &u) in &self.owner {
            let list = self
                .sim
                .get(&u)
                .ok_or_else(|| format!("owner {u} of {z} has no sim list"))?;
            if !list.contains(&z) {
                return Err(format!("sim({u}) missing {z}"));
            }
        }
        let total: usize = self.sim.values().map(Vec::len).sum();
        if total != self.owner.len() {
            return Err(format!(
                "sim total {total} != owner count {}",
                self.owner.len()
            ));
        }
        let (spare, low) = self.recount();
        if spare != self.spare_count || low != self.low_count {
            return Err(format!(
                "counter drift: spare {} (true {spare}), low {} (true {low})",
                self.spare_count, self.low_count
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for VirtualMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Φ(|V|={}, nodes={}, spare={}, low={}, maxload={})",
            self.num_vertices(),
            self.num_nodes(),
            self.spare_count,
            self.low_count,
            self.max_load()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(i: u64) -> VertexId {
        VertexId(i)
    }
    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn assign_transfer_unassign_roundtrip() {
        let mut m = VirtualMapping::new(8);
        m.assign(z(0), n(0));
        m.assign(z(1), n(0));
        m.assign(z(2), n(1));
        assert_eq!(m.load(n(0)), 2);
        assert_eq!(m.owner_of(z(1)), n(0));
        assert_eq!(m.transfer(z(1), n(1)), n(0));
        assert_eq!(m.load(n(1)), 2);
        assert_eq!(m.unassign(z(2)), n(1));
        m.validate().unwrap();
    }

    #[test]
    fn spare_low_counters_track() {
        let mut m = VirtualMapping::new(8);
        // One node with 1 vertex: low but not spare.
        m.assign(z(0), n(0));
        assert_eq!((m.spare_count(), m.low_count()), (0, 1));
        // Load 2: spare and low.
        m.assign(z(1), n(0));
        assert_eq!((m.spare_count(), m.low_count()), (1, 1));
        // Push to 2ζ + 1 = 17: leaves Low.
        for i in 2..17 {
            m.assign(z(i), n(0));
        }
        assert_eq!(m.load(n(0)), 17);
        assert_eq!((m.spare_count(), m.low_count()), (1, 0));
        // Back to 16: re-enters Low.
        m.unassign(z(16));
        assert_eq!((m.spare_count(), m.low_count()), (1, 1));
        m.validate().unwrap();
    }

    #[test]
    fn empty_nodes_are_pruned() {
        let mut m = VirtualMapping::new(8);
        m.assign(z(0), n(3));
        m.unassign(z(0));
        assert_eq!(m.num_nodes(), 0);
        assert_eq!(m.load(n(3)), 0);
        assert_eq!((m.spare_count(), m.low_count()), (0, 0));
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_assign_rejected() {
        let mut m = VirtualMapping::new(8);
        m.assign(z(0), n(0));
        m.assign(z(0), n(1));
    }

    #[test]
    fn recount_matches_incremental_under_churn() {
        let mut m = VirtualMapping::new(8);
        for i in 0..100u64 {
            m.assign(z(i), n(i % 7));
        }
        for i in (0..100u64).step_by(3) {
            m.transfer(z(i), n((i + 1) % 7));
        }
        for i in (0..100u64).step_by(5) {
            m.unassign(z(i));
        }
        m.validate().unwrap();
        let (s, l) = m.recount();
        assert_eq!(s, m.spare_count());
        assert_eq!(l, m.low_count());
    }
}
