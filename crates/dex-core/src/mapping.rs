//! The virtual mapping Φ (paper, Definition 2) with incremental
//! `Spare`/`Low` accounting, on flat slot-indexed storage.
//!
//! Ground truth for "which node simulates which vertex". The distributed
//! protocol only ever *reads* local projections of this structure (a node's
//! own `Sim` set, a hit node's load); global counts are consumed solely by
//! the coordinator logic, which maintains its own counters via charged
//! messages and is tested against these.
//!
//! # Storage model: dense vertex records + pooled Sim segments
//!
//! Every healing operation reads and writes Φ, so its layout *is* the hot
//! path. Mirroring the graph core's slot arena (`dex_graph::adjacency`):
//!
//! * **per-vertex state** is one dense `Vec` of 16-byte records keyed by
//!   the p-cycle vertex index (`z.0`): the owner's *node slot* (`NO_OWNER`
//!   when unassigned), the vertex's index inside its owner's `Sim`
//!   segment, and a mirror of the owner's `NodeId`. One cache line
//!   therefore serves `owner_of` — called ~12 times per fabric vertex
//!   move — the unassign half of a transfer, and the swap-remove pos
//!   fix-up, with no hashing and no indirection through the node arena.
//! * **per-node `Sim` sets** are contiguous segments carved from one
//!   pooled `Vec<VertexId>`. Segments come in power-of-two capacity
//!   classes (8, 16, 32, …). A node starts in the smallest ("inline")
//!   class — which covers the steady-state load bound 4ζ = 32 with ζ = 8
//!   in three classes — and *spills* to the next class only when its load
//!   outgrows the segment: a new segment is carved (reusing a same-class
//!   segment from the per-class free list when one exists), the entries
//!   are copied, and the old segment is pushed onto its class's free list.
//!   `sim(u)` is therefore always one contiguous `&[VertexId]` slice.
//! * **node slots** use a LIFO free list exactly like the graph arena; the
//!   `NodeId ↔ slot` translation is one `FxHashMap` lookup at the API
//!   edge, and per-slot loads live in a compact 4-byte-per-node `lens`
//!   array so walk predicates (`is_spare` / `is_low`, one read per hop)
//!   touch a near-cache-resident structure. A node occupies a slot iff it
//!   simulates ≥ 1 vertex (`Φ` prunes empty nodes, matching the paper's
//!   surjectivity).
//! * `|Spare|` / `|Low|` are maintained incrementally in place on every
//!   load transition (Eqs. 1–2), as before.
//!
//! Iterating `(vertex, owner)` pairs over the dense array yields canonical
//! (vertex-ascending) order *for free* — see [`VirtualMapping::entries`];
//! the old collect-and-sort path survives only as a test oracle. Type-2
//! inflation assigns whole clouds of consecutive vertices in one call via
//! [`VirtualMapping::assign_run`] (one slot resolution per cloud,
//! sequential dense writes).
//!
//! The previous `FxHashMap`-backed implementation lives on verbatim as
//! [`oracle::HashMapping`]: the differential proptests drive long random
//! op sequences through both and assert identical owner / `Sim` / counter
//! state after every operation.

use dex_graph::fxhash::FxHashMap;
use dex_graph::ids::{NodeId, VertexId};

/// Sentinel slot for unassigned vertices.
const NO_OWNER: u32 = u32::MAX;

/// Capacity of the smallest (inline) segment class.
const BASE_CAP: u32 = 8;

/// Number of segment capacity classes: class `c` holds `8 << c` entries,
/// so the largest class holds 8·2²³ ≈ 67M — far beyond any load DEX can
/// produce (≤ 8ζ) but enough for adversarial test mappings.
const NUM_CLASSES: usize = 24;

#[inline]
fn class_cap(class: u8) -> u32 {
    BASE_CAP << class
}

/// One node's record: identity plus its `Sim` segment descriptor. The
/// load lives in the separate compact [`VirtualMapping::lens`] array so
/// `load()` — the walk-predicate read, evaluated on scattered nodes every
/// hop — touches a structure small enough to stay cache-resident.
#[derive(Clone, Copy)]
struct NodeRec {
    id: NodeId,
    /// Segment start offset in the pool.
    start: u32,
    /// Capacity class of the segment.
    class: u8,
}

/// One vertex's dense record: everything a fabric resolution or a
/// transfer needs, in a single 16-byte entry (one cache line serves
/// `owner_of`, the unassign half of a transfer, and the pos fix-up).
#[derive(Clone, Copy)]
struct VertexRec {
    /// Owner slot ([`NO_OWNER`] = unassigned).
    slot: u32,
    /// Index within the owner's segment.
    pos: u32,
    /// Owner id, mirrored from the slot record.
    owner: NodeId,
}

const VERTEX_FREE: VertexRec = VertexRec {
    slot: NO_OWNER,
    pos: 0,
    owner: NodeId(u64::MAX),
};

/// Surjective map `Φ : V(Z) → V(G)` with per-node `Sim` sets and
/// incremental `|Spare|` / `|Low|` counters. See module docs for the
/// storage model.
#[derive(Clone)]
pub struct VirtualMapping {
    /// Dense vertex records keyed by the p-cycle vertex index.
    meta: Vec<VertexRec>,
    /// Assigned vertices.
    num_vertices: usize,
    /// Node slot arena.
    nodes: Vec<NodeRec>,
    /// Per-slot load (`|Sim|`); 0 ⇔ the slot is free. Kept apart from
    /// [`NodeRec`] so the array is 4 bytes per node and predicates read a
    /// near-resident structure.
    lens: Vec<u32>,
    /// NodeId → slot for live nodes.
    slot_of: FxHashMap<NodeId, u32>,
    /// LIFO free list of node slots.
    free_slots: Vec<u32>,
    /// Segment pool backing every `Sim` set.
    pool: Vec<VertexId>,
    /// Per-class free lists of segment start offsets.
    free_segs: Vec<Vec<u32>>,
    /// Nodes with load ≥ 2 (Eq. 2).
    spare_count: usize,
    /// Nodes with 1 ≤ load ≤ 2ζ (Eq. 1; nodes absent from the map are not
    /// counted — in steady state the map is surjective so this matches the
    /// paper's `Low`).
    low_count: usize,
    zeta: u64,
}

impl VirtualMapping {
    /// Empty mapping with the given ζ (for the `Low` threshold 2ζ).
    pub fn new(zeta: u64) -> Self {
        VirtualMapping {
            meta: Vec::new(),
            num_vertices: 0,
            nodes: Vec::new(),
            lens: Vec::new(),
            slot_of: FxHashMap::default(),
            free_slots: Vec::new(),
            pool: Vec::new(),
            free_segs: vec![Vec::new(); NUM_CLASSES],
            spare_count: 0,
            low_count: 0,
            zeta,
        }
    }

    /// Empty mapping pre-sized for vertices `0..p` (avoids dense-array
    /// regrowth during bootstrap / type-2 rebuilds).
    pub fn with_vertex_capacity(zeta: u64, p: u64) -> Self {
        let mut m = Self::new(zeta);
        m.meta = vec![VERTEX_FREE; p as usize];
        m
    }

    /// Number of vertices assigned.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of nodes simulating at least one vertex.
    pub fn num_nodes(&self) -> usize {
        self.slot_of.len()
    }

    /// Owner of vertex `z`, if assigned.
    #[inline]
    pub fn owner(&self, z: VertexId) -> Option<NodeId> {
        match self.meta.get(z.0 as usize) {
            Some(rec) if rec.slot != NO_OWNER => Some(rec.owner),
            _ => None,
        }
    }

    /// Owner of vertex `z`; panics when unassigned (protocol invariant).
    /// The check is kept in release builds: the owner mirror of an
    /// unassigned vertex is stale, and returning it silently would turn a
    /// protocol-invariant violation into fabric corruption. The branch
    /// tests a field on the cache line the read already loaded.
    #[inline]
    pub fn owner_of(&self, z: VertexId) -> NodeId {
        let rec = &self.meta[z.0 as usize];
        assert!(rec.slot != NO_OWNER, "vertex {z} not assigned");
        rec.owner
    }

    /// The `Sim` set of node `u` (empty slice if `u` simulates nothing).
    pub fn sim(&self, u: NodeId) -> &[VertexId] {
        match self.slot_of.get(&u) {
            Some(&s) => {
                let rec = &self.nodes[s as usize];
                let len = self.lens[s as usize];
                &self.pool[rec.start as usize..(rec.start + len) as usize]
            }
            None => &[],
        }
    }

    /// Load of `u` = `|Sim(u)|`.
    #[inline]
    pub fn load(&self, u: NodeId) -> u64 {
        match self.slot_of.get(&u) {
            Some(&s) => self.lens[s as usize] as u64,
            None => 0,
        }
    }

    /// `|Spare|` (nodes with load ≥ 2).
    pub fn spare_count(&self) -> usize {
        self.spare_count
    }

    /// `|Low|` (nodes with 1 ≤ load ≤ 2ζ).
    pub fn low_count(&self) -> usize {
        self.low_count
    }

    /// Is `u ∈ Spare`?
    #[inline]
    pub fn is_spare(&self, u: NodeId) -> bool {
        self.load(u) >= 2
    }

    /// Is `u ∈ Low`? (requires u to simulate ≥ 1 vertex)
    #[inline]
    pub fn is_low(&self, u: NodeId) -> bool {
        let l = self.load(u);
        l >= 1 && l <= 2 * self.zeta
    }

    fn count_delta(&mut self, load_before: u64, load_after: u64) {
        let spare = |l: u64| l >= 2;
        let low = |l: u64| l >= 1 && l <= 2 * self.zeta;
        match (spare(load_before), spare(load_after)) {
            (false, true) => self.spare_count += 1,
            (true, false) => self.spare_count -= 1,
            _ => {}
        }
        match (low(load_before), low(load_after)) {
            (false, true) => self.low_count += 1,
            (true, false) => self.low_count -= 1,
            _ => {}
        }
    }

    /// Carve a fresh segment of `class` from the pool (reusing a freed
    /// same-class segment when available).
    fn alloc_seg(&mut self, class: u8) -> u32 {
        if let Some(start) = self.free_segs[class as usize].pop() {
            return start;
        }
        let start = self.pool.len();
        let cap = class_cap(class) as usize;
        assert!(start + cap <= u32::MAX as usize, "segment pool overflow");
        self.pool
            .resize(start + cap, VertexId(u64::MAX) /* poison */);
        start as u32
    }

    /// Resolve or create the slot for `u`.
    fn slot_for(&mut self, u: NodeId) -> u32 {
        if let Some(&s) = self.slot_of.get(&u) {
            return s;
        }
        let slot = match self.free_slots.pop() {
            Some(s) => s,
            None => {
                assert!(self.nodes.len() < NO_OWNER as usize, "node arena overflow");
                self.nodes.push(NodeRec {
                    id: u,
                    start: 0,
                    class: 0,
                });
                self.lens.push(0);
                self.nodes.len() as u32 - 1
            }
        };
        let start = self.alloc_seg(0);
        self.nodes[slot as usize] = NodeRec {
            id: u,
            start,
            class: 0,
        };
        self.lens[slot as usize] = 0;
        self.slot_of.insert(u, slot);
        slot
    }

    /// Spill `slot`'s segment to the next capacity class.
    #[cold]
    fn grow_seg(&mut self, slot: u32) {
        let rec = self.nodes[slot as usize];
        let len = self.lens[slot as usize];
        let new_class = rec.class + 1;
        assert!((new_class as usize) < NUM_CLASSES, "Sim set too large");
        let new_start = self.alloc_seg(new_class);
        self.pool.copy_within(
            rec.start as usize..(rec.start + len) as usize,
            new_start as usize,
        );
        self.free_segs[rec.class as usize].push(rec.start);
        let rec = &mut self.nodes[slot as usize];
        rec.start = new_start;
        rec.class = new_class;
    }

    /// Assign an unowned vertex `z` to `u`.
    ///
    /// # Panics
    /// Panics if `z` is already assigned.
    pub fn assign(&mut self, z: VertexId, u: NodeId) {
        let idx = z.0 as usize;
        if idx >= self.meta.len() {
            self.meta.resize(idx + 1, VERTEX_FREE);
        }
        assert!(
            self.meta[idx].slot == NO_OWNER,
            "vertex {z} already owned by {:?}",
            self.owner(z)
        );
        let slot = self.slot_for(u);
        self.assign_to_slot(z, slot);
    }

    /// Assign body once the owner's slot is resolved and `z` is known
    /// vacant (dense record sized and free).
    fn assign_to_slot(&mut self, z: VertexId, slot: u32) {
        let len = self.lens[slot as usize];
        if len == class_cap(self.nodes[slot as usize].class) {
            self.grow_seg(slot);
        }
        let rec = &self.nodes[slot as usize];
        self.pool[(rec.start + len) as usize] = z;
        self.meta[z.0 as usize] = VertexRec {
            slot,
            pos: len,
            owner: rec.id,
        };
        self.lens[slot as usize] = len + 1;
        let after = (len + 1) as u64;
        self.num_vertices += 1;
        self.count_delta(after - 1, after);
    }

    /// Remove vertex `z` from the mapping; returns its former owner.
    ///
    /// # Panics
    /// Panics if `z` is unassigned.
    pub fn unassign(&mut self, z: VertexId) -> NodeId {
        let idx = z.0 as usize;
        let (slot, p) = match self.meta.get(idx) {
            Some(rec) if rec.slot != NO_OWNER => (rec.slot, rec.pos),
            _ => panic!("vertex {z} not assigned"),
        };
        let rec = self.nodes[slot as usize];
        let u = rec.id;
        // Swap-remove within the segment, fixing the moved vertex's pos.
        let len = self.lens[slot as usize] - 1;
        self.lens[slot as usize] = len;
        let last = self.pool[(rec.start + len) as usize];
        if last != z {
            self.pool[(rec.start + p) as usize] = last;
            self.meta[last.0 as usize].pos = p;
        }
        let after = len as u64;
        self.meta[idx].slot = NO_OWNER;
        self.num_vertices -= 1;
        self.count_delta(after + 1, after);
        if after == 0 {
            self.free_segs[rec.class as usize].push(rec.start);
            self.slot_of.remove(&u);
            self.free_slots.push(slot);
        }
        u
    }

    /// Move vertex `z` to node `to`; returns the former owner.
    pub fn transfer(&mut self, z: VertexId, to: NodeId) -> NodeId {
        let from = self.unassign(z);
        self.assign(z, to);
        from
    }

    /// Move every vertex of `zs` (in order) to `to`, resolving `to`'s slot
    /// **once** — the batch-commit fast path for adoption, where the
    /// per-vertex [`VirtualMapping::transfer`] would re-hash the same
    /// destination `|zs|` times. Φ state afterwards is identical to the
    /// per-vertex loop.
    ///
    /// `to` must already simulate at least one vertex (true for every
    /// adoption rescuer); otherwise this falls back to the per-vertex path
    /// so slot-allocation order stays exactly sequential.
    pub fn transfer_all(&mut self, zs: &[VertexId], to: NodeId) {
        let Some(&slot) = self.slot_of.get(&to) else {
            for &z in zs {
                self.transfer(z, to);
            }
            return;
        };
        for &z in zs {
            // `to`'s slot can never be freed mid-loop: its load only grows.
            self.unassign(z);
            self.assign_to_slot(z, slot);
        }
    }

    /// Prefetch the dense record of vertex `z` toward L1 (see
    /// [`dex_graph::par::prefetch_read`]); batch engines issue this for
    /// every vertex a heal op will resolve before starting the op's
    /// dependent-miss chain.
    #[inline(always)]
    pub fn prefetch_vertex(&self, z: VertexId) {
        if let Some(rec) = self.meta.get(z.0 as usize) {
            dex_graph::par::prefetch_read(rec as *const VertexRec);
        }
    }

    /// Prefetch node `u`'s `Sim` segment and load counter (paying the
    /// slot hash now, while the caller still has independent work to
    /// overlap the segment's DRAM fetch with).
    #[inline]
    pub fn prefetch_node(&self, u: NodeId) {
        if let Some(&s) = self.slot_of.get(&u) {
            let rec = &self.nodes[s as usize];
            dex_graph::par::prefetch_read(&self.lens[s as usize]);
            if let Some(first) = self.pool.get(rec.start as usize) {
                dex_graph::par::prefetch_read(first as *const VertexId);
            }
        }
    }

    /// Assign the run of `count` unowned consecutive vertices starting at
    /// `z_start` to `u` — the type-2 inflation shape, where every old
    /// vertex generates a *cloud* of α consecutive new vertices (Eq. 7).
    /// One slot resolution and one capacity check serve the whole run,
    /// and the dense vertex records are written sequentially.
    ///
    /// # Panics
    /// Panics if any vertex in the run is already assigned.
    pub fn assign_run(&mut self, z_start: VertexId, count: u64, u: NodeId) {
        if count == 0 {
            return;
        }
        let lo = z_start.0 as usize;
        let hi = lo + count as usize;
        if hi > self.meta.len() {
            self.meta.resize(hi, VERTEX_FREE);
        }
        let slot = self.slot_for(u);
        let mut len = self.lens[slot as usize];
        let before = len as u64;
        while (len + count as u32) > class_cap(self.nodes[slot as usize].class) {
            self.grow_seg(slot);
        }
        let rec = self.nodes[slot as usize];
        for idx in lo..hi {
            assert!(
                self.meta[idx].slot == NO_OWNER,
                "vertex z{idx} already owned by {:?}",
                self.meta[idx].owner
            );
            self.pool[(rec.start + len) as usize] = VertexId(idx as u64);
            self.meta[idx] = VertexRec {
                slot,
                pos: len,
                owner: rec.id,
            };
            len += 1;
        }
        self.lens[slot as usize] = len;
        self.num_vertices += count as usize;
        self.count_delta(before, len as u64);
    }

    /// All `(vertex, owner)` pairs in canonical (vertex-ascending) order —
    /// a plain scan of the dense owner array, no allocation, no sort.
    pub fn entries(&self) -> impl Iterator<Item = (VertexId, NodeId)> + '_ {
        self.meta
            .iter()
            .enumerate()
            .filter(|&(_, rec)| rec.slot != NO_OWNER)
            .map(|(z, rec)| (VertexId(z as u64), rec.owner))
    }

    /// All `(vertex, owner)` pairs, sorted by vertex (canonical order).
    ///
    /// Allocating convenience; hot paths iterate [`VirtualMapping::entries`]
    /// instead (the dense layout is already in canonical order).
    pub fn entries_sorted(&self) -> Vec<(VertexId, NodeId)> {
        self.entries().collect()
    }

    /// Nodes simulating at least one vertex, in slot order (deterministic
    /// for a given operation history; not sorted by id).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .zip(&self.lens)
            .filter(|&(_, &len)| len > 0)
            .map(|(rec, _)| rec.id)
    }

    /// Maximum load over all mapped nodes.
    pub fn max_load(&self) -> u64 {
        self.lens.iter().map(|&l| l as u64).max().unwrap_or(0)
    }

    /// Recount spare/low from scratch (test oracle for the incremental
    /// counters).
    pub fn recount(&self) -> (usize, usize) {
        let mut spare = 0;
        let mut low = 0;
        for &len in &self.lens {
            let l = len as u64;
            if l >= 2 {
                spare += 1;
            }
            if l >= 1 && l <= 2 * self.zeta {
                low += 1;
            }
        }
        (spare, low)
    }

    /// Internal consistency check (dense arrays, segments, counters).
    pub fn validate(&self) -> Result<(), String> {
        let mut total = 0usize;
        for (&u, &s) in &self.slot_of {
            let rec = self
                .nodes
                .get(s as usize)
                .ok_or_else(|| format!("slot {s} of {u} out of range"))?;
            let len = self.lens[s as usize];
            if rec.id != u {
                return Err(format!("slot {s} holds {:?}, expected {u}", rec.id));
            }
            if len == 0 {
                return Err(format!("live node {u} has empty Sim"));
            }
            if len > class_cap(rec.class) {
                return Err(format!("{u}: len {len} over class cap"));
            }
            if (rec.start + class_cap(rec.class)) as usize > self.pool.len() {
                return Err(format!("{u}: segment out of pool bounds"));
            }
            for i in 0..len {
                let z = self.pool[(rec.start + i) as usize];
                let idx = z.0 as usize;
                match self.meta.get(idx) {
                    Some(m) if m.slot == s => {
                        if m.owner != u {
                            return Err(format!("owner mirror of {z} is {} != {u}", m.owner));
                        }
                        if m.pos != i {
                            return Err(format!("pos[{z}] = {} != {i}", m.pos));
                        }
                    }
                    _ => return Err(format!("sim({u}) holds {z} but owner disagrees")),
                }
            }
            total += len as usize;
        }
        if total != self.num_vertices {
            return Err(format!(
                "sim total {total} != vertex count {}",
                self.num_vertices
            ));
        }
        let owned = self.meta.iter().filter(|rec| rec.slot != NO_OWNER).count();
        if owned != self.num_vertices {
            return Err(format!(
                "dense owner count {owned} != vertex count {}",
                self.num_vertices
            ));
        }
        let (spare, low) = self.recount();
        if spare != self.spare_count || low != self.low_count {
            return Err(format!(
                "counter drift: spare {} (true {spare}), low {} (true {low})",
                self.spare_count, self.low_count
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for VirtualMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Φ(|V|={}, nodes={}, spare={}, low={}, maxload={})",
            self.num_vertices(),
            self.num_nodes(),
            self.spare_count,
            self.low_count,
            self.max_load()
        )
    }
}

pub mod oracle {
    //! The previous `FxHashMap`-backed Φ, kept verbatim as the
    //! differential-test oracle (and the "before" side of `bench_heal`'s
    //! Φ-kernel comparison). Semantics are identical to
    //! [`VirtualMapping`](super::VirtualMapping), including `Sim` slice
    //! order (push + swap-remove).

    use dex_graph::fxhash::FxHashMap;
    use dex_graph::ids::{NodeId, VertexId};

    /// HashMap-backed Φ with the same API surface as the slot-arena
    /// implementation.
    #[derive(Clone)]
    pub struct HashMapping {
        owner: FxHashMap<VertexId, NodeId>,
        sim: FxHashMap<NodeId, Vec<VertexId>>,
        spare_count: usize,
        low_count: usize,
        zeta: u64,
    }

    impl HashMapping {
        /// Empty mapping with the given ζ.
        pub fn new(zeta: u64) -> Self {
            HashMapping {
                owner: FxHashMap::default(),
                sim: FxHashMap::default(),
                spare_count: 0,
                low_count: 0,
                zeta,
            }
        }

        /// Number of vertices assigned.
        pub fn num_vertices(&self) -> usize {
            self.owner.len()
        }

        /// Number of nodes simulating at least one vertex.
        pub fn num_nodes(&self) -> usize {
            self.sim.len()
        }

        /// Owner of vertex `z`, if assigned.
        #[inline]
        pub fn owner(&self, z: VertexId) -> Option<NodeId> {
            self.owner.get(&z).copied()
        }

        /// Owner of vertex `z`; panics when unassigned.
        #[inline]
        pub fn owner_of(&self, z: VertexId) -> NodeId {
            self.owner[&z]
        }

        /// The `Sim` set of node `u`.
        pub fn sim(&self, u: NodeId) -> &[VertexId] {
            self.sim.get(&u).map(Vec::as_slice).unwrap_or(&[])
        }

        /// Load of `u`.
        #[inline]
        pub fn load(&self, u: NodeId) -> u64 {
            self.sim.get(&u).map(|v| v.len() as u64).unwrap_or(0)
        }

        /// `|Spare|`.
        pub fn spare_count(&self) -> usize {
            self.spare_count
        }

        /// `|Low|`.
        pub fn low_count(&self) -> usize {
            self.low_count
        }

        fn count_delta(&mut self, load_before: u64, load_after: u64) {
            let spare = |l: u64| l >= 2;
            let low = |l: u64| l >= 1 && l <= 2 * self.zeta;
            match (spare(load_before), spare(load_after)) {
                (false, true) => self.spare_count += 1,
                (true, false) => self.spare_count -= 1,
                _ => {}
            }
            match (low(load_before), low(load_after)) {
                (false, true) => self.low_count += 1,
                (true, false) => self.low_count -= 1,
                _ => {}
            }
        }

        /// Assign an unowned vertex `z` to `u`.
        pub fn assign(&mut self, z: VertexId, u: NodeId) {
            let prev = self.owner.insert(z, u);
            assert!(prev.is_none(), "vertex {z} already owned by {:?}", prev);
            let list = self.sim.entry(u).or_default();
            list.push(z);
            let after = list.len() as u64;
            self.count_delta(after - 1, after);
        }

        /// Remove vertex `z`; returns its former owner.
        pub fn unassign(&mut self, z: VertexId) -> NodeId {
            let u = self
                .owner
                .remove(&z)
                .unwrap_or_else(|| panic!("vertex {z} not assigned"));
            let after = {
                let list = self.sim.get_mut(&u).expect("sim list missing");
                let pos = list
                    .iter()
                    .position(|&w| w == z)
                    .expect("sim entry missing");
                list.swap_remove(pos);
                list.len() as u64
            };
            self.count_delta(after + 1, after);
            if after == 0 {
                self.sim.remove(&u);
            }
            u
        }

        /// Move vertex `z` to node `to`; returns the former owner.
        pub fn transfer(&mut self, z: VertexId, to: NodeId) -> NodeId {
            let from = self.unassign(z);
            self.assign(z, to);
            from
        }

        /// All `(vertex, owner)` pairs, sorted by vertex — the original
        /// collect-and-sort path, kept as the canonical-order oracle.
        pub fn entries_sorted(&self) -> Vec<(VertexId, NodeId)> {
            let mut v: Vec<(VertexId, NodeId)> = self.owner.iter().map(|(&z, &u)| (z, u)).collect();
            v.sort_unstable();
            v
        }

        /// Nodes simulating at least one vertex (unsorted).
        pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
            self.sim.keys().copied()
        }

        /// Maximum load over all mapped nodes.
        pub fn max_load(&self) -> u64 {
            self.sim.values().map(|v| v.len() as u64).max().unwrap_or(0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn z(i: u64) -> VertexId {
        VertexId(i)
    }
    fn n(i: u64) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn assign_transfer_unassign_roundtrip() {
        let mut m = VirtualMapping::new(8);
        m.assign(z(0), n(0));
        m.assign(z(1), n(0));
        m.assign(z(2), n(1));
        assert_eq!(m.load(n(0)), 2);
        assert_eq!(m.owner_of(z(1)), n(0));
        assert_eq!(m.transfer(z(1), n(1)), n(0));
        assert_eq!(m.load(n(1)), 2);
        assert_eq!(m.unassign(z(2)), n(1));
        m.validate().unwrap();
    }

    #[test]
    fn spare_low_counters_track() {
        let mut m = VirtualMapping::new(8);
        // One node with 1 vertex: low but not spare.
        m.assign(z(0), n(0));
        assert_eq!((m.spare_count(), m.low_count()), (0, 1));
        // Load 2: spare and low.
        m.assign(z(1), n(0));
        assert_eq!((m.spare_count(), m.low_count()), (1, 1));
        // Push to 2ζ + 1 = 17: leaves Low.
        for i in 2..17 {
            m.assign(z(i), n(0));
        }
        assert_eq!(m.load(n(0)), 17);
        assert_eq!((m.spare_count(), m.low_count()), (1, 0));
        // Back to 16: re-enters Low.
        m.unassign(z(16));
        assert_eq!((m.spare_count(), m.low_count()), (1, 1));
        m.validate().unwrap();
    }

    #[test]
    fn empty_nodes_are_pruned() {
        let mut m = VirtualMapping::new(8);
        m.assign(z(0), n(3));
        m.unassign(z(0));
        assert_eq!(m.num_nodes(), 0);
        assert_eq!(m.load(n(3)), 0);
        assert_eq!((m.spare_count(), m.low_count()), (0, 0));
        assert_eq!(m.nodes().count(), 0);
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_assign_rejected() {
        let mut m = VirtualMapping::new(8);
        m.assign(z(0), n(0));
        m.assign(z(0), n(1));
    }

    #[test]
    fn recount_matches_incremental_under_churn() {
        let mut m = VirtualMapping::new(8);
        for i in 0..100u64 {
            m.assign(z(i), n(i % 7));
        }
        for i in (0..100u64).step_by(3) {
            m.transfer(z(i), n((i + 1) % 7));
        }
        for i in (0..100u64).step_by(5) {
            m.unassign(z(i));
        }
        m.validate().unwrap();
        let (s, l) = m.recount();
        assert_eq!(s, m.spare_count());
        assert_eq!(l, m.low_count());
    }

    #[test]
    fn segments_spill_and_reuse() {
        let mut m = VirtualMapping::new(8);
        // Push one node through several class spills.
        for i in 0..100u64 {
            m.assign(z(i), n(0));
        }
        assert_eq!(m.load(n(0)), 100);
        assert_eq!(m.sim(n(0)).len(), 100);
        m.validate().unwrap();
        // Drain it; its segments go back to the free lists and a new node
        // reuses them without growing the pool.
        for i in 0..100u64 {
            m.unassign(z(i));
        }
        let pool_high_water = m.pool.len();
        for i in 0..100u64 {
            m.assign(z(i), n(1));
        }
        assert_eq!(m.pool.len(), pool_high_water, "freed segments not reused");
        m.validate().unwrap();
    }

    #[test]
    fn assign_run_matches_per_vertex_assigns() {
        let mut a = VirtualMapping::new(8);
        let mut b = VirtualMapping::new(8);
        // Cloud-shaped runs across several nodes, with spills.
        for (start, count, u) in [
            (0u64, 4u64, 0u64),
            (4, 7, 1),
            (11, 4, 0),
            (15, 30, 2),
            (45, 4, 0),
        ] {
            a.assign_run(z(start), count, n(u));
            for i in 0..count {
                b.assign(z(start + i), n(u));
            }
        }
        a.validate().unwrap();
        b.validate().unwrap();
        for u in 0..3 {
            assert_eq!(a.sim(n(u)), b.sim(n(u)));
            assert_eq!(a.load(n(u)), b.load(n(u)));
        }
        assert_eq!(a.entries_sorted(), b.entries_sorted());
        assert_eq!(
            (a.spare_count(), a.low_count()),
            (b.spare_count(), b.low_count())
        );
        // Runs and singles compose: drain one run, reassign as a run.
        for i in 15..45 {
            a.unassign(z(i));
            b.unassign(z(i));
        }
        a.assign_run(z(20), 5, n(7));
        for i in 0..5 {
            b.assign(z(20 + i), n(7));
        }
        a.validate().unwrap();
        assert_eq!(a.sim(n(7)), b.sim(n(7)));
    }

    #[test]
    fn transfer_all_matches_per_vertex_transfers() {
        let mut a = VirtualMapping::new(8);
        let mut b = VirtualMapping::new(8);
        for m in [&mut a, &mut b] {
            for i in 0..20u64 {
                m.assign(z(i), n(i % 5));
            }
        }
        // Adoption shape: a victim's whole Sim set moves to a live rescuer.
        let zs: Vec<VertexId> = a.sim(n(2)).to_vec();
        a.transfer_all(&zs, n(0));
        for &v in &zs {
            b.transfer(v, n(0));
        }
        a.validate().unwrap();
        assert_eq!(a.sim(n(0)), b.sim(n(0)));
        assert_eq!(a.entries_sorted(), b.entries_sorted());
        assert_eq!(
            (a.spare_count(), a.low_count()),
            (b.spare_count(), b.low_count())
        );
        // Fresh destination (cold path) also matches, including slot reuse.
        let zs: Vec<VertexId> = a.sim(n(3)).to_vec();
        a.transfer_all(&zs, n(99));
        for &v in &zs {
            b.transfer(v, n(99));
        }
        a.validate().unwrap();
        assert_eq!(a.sim(n(99)), b.sim(n(99)));
        assert_eq!(a.entries_sorted(), b.entries_sorted());
    }

    #[test]
    fn entries_are_vertex_ordered() {
        let mut m = VirtualMapping::new(8);
        for i in [5u64, 2, 9, 0, 7] {
            m.assign(z(i), n(i % 3));
        }
        let got: Vec<u64> = m.entries().map(|(z, _)| z.0).collect();
        assert_eq!(got, vec![0, 2, 5, 7, 9]);
        assert_eq!(m.entries_sorted().len(), 5);
    }

    #[test]
    fn matches_hashmap_oracle_under_random_churn() {
        use oracle::HashMapping;
        let mut fast = VirtualMapping::new(8);
        let mut slow = HashMapping::new(8);
        let mut state = 0x5eedu64;
        let mut rnd = || {
            // splitmix64 step — self-contained deterministic stream.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let mut live: Vec<u64> = Vec::new();
        for step in 0..4000u64 {
            let r = rnd();
            if live.len() < 40 || r % 3 != 0 {
                // assign or transfer
                let v = r % 512;
                let u = n(rnd() % 37);
                if fast.owner(z(v)).is_some() {
                    assert_eq!(fast.transfer(z(v), u), slow.transfer(z(v), u));
                } else {
                    fast.assign(z(v), u);
                    slow.assign(z(v), u);
                    live.push(v);
                }
            } else if let Some(&v) = live.get((r / 7) as usize % live.len().max(1)) {
                if fast.owner(z(v)).is_some() {
                    assert_eq!(fast.unassign(z(v)), slow.unassign(z(v)));
                    live.retain(|&w| w != v);
                }
            }
            if step % 64 == 0 {
                fast.validate().unwrap();
            }
            assert_eq!(fast.num_vertices(), slow.num_vertices());
            assert_eq!(fast.num_nodes(), slow.num_nodes());
            assert_eq!(fast.spare_count(), slow.spare_count());
            assert_eq!(fast.low_count(), slow.low_count());
        }
        for u in 0..37u64 {
            assert_eq!(fast.sim(n(u)), slow.sim(n(u)), "sim({u}) diverged");
        }
        assert_eq!(fast.entries_sorted(), slow.entries_sorted());
    }
}
