//! Distributed hash table on top of DEX (paper, Sect. 4.4.4).
//!
//! Every node knows the current p-cycle size `s = p`, hence the same hash
//! function `h_s : keys → Z_p` (we use the SplitMix64 finalizer mod p). A
//! key–value pair lives with the node simulating vertex `h_s(k)`; insert
//! and lookup route along locally computed shortest paths in the virtual
//! graph, which map to physical paths (Fact 1) — O(log n) rounds and
//! messages each.
//!
//! When the virtual graph is replaced (type-2 recovery), responsibility
//! rehashes to the new cycle. The paper staggers the data handoff with the
//! staggered inflation at a constant-factor overhead; we apply the whole
//! migration at switchover and charge one message per stored item then
//! (the same total cost, lumped — see DESIGN.md).

use crate::dex::DexNetwork;
use dex_graph::fxhash::FxHashMap;
use dex_graph::ids::{NodeId, VertexId};
use dex_sim::rng::splitmix64;
use dex_sim::{RecoveryKind, StepKind, StepMetrics};

/// Key type.
pub type Key = u64;
/// Value type (O(log n) bits, as CONGEST requires).
pub type Value = u64;

/// DHT storage (simulator-global view; ownership is always derived from
/// the *current* virtual mapping, so vertex transfers implicitly move
/// responsibility exactly as the paper prescribes).
#[derive(Default)]
pub struct DhtStore {
    entries: FxHashMap<Key, Value>,
    /// p value the stored data is currently partitioned under; a change
    /// triggers the (charged) migration.
    hashed_under: Option<u64>,
}

impl DhtStore {
    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `p` the stored data is currently partitioned under (`None`
    /// until the first DHT operation observes a cycle).
    pub fn hashed_under(&self) -> Option<u64> {
        self.hashed_under
    }

    /// All stored pairs, sorted by key — a canonical representation for
    /// differential end-state comparison.
    pub fn entries_sorted(&self) -> Vec<(Key, Value)> {
        let mut v: Vec<(Key, Value)> = self.entries.iter().map(|(&k, &val)| (k, val)).collect();
        v.sort_unstable();
        v
    }
}

/// `h_s(k)`: hash a key to a vertex of the current cycle.
pub fn hash_to_vertex(key: Key, p: u64) -> VertexId {
    VertexId(splitmix64(key) % p)
}

impl DexNetwork {
    /// Node that is currently responsible for `key`.
    pub fn dht_owner(&self, key: Key) -> NodeId {
        let z = hash_to_vertex(key, self.cycle.p());
        self.map.owner_of(z)
    }

    /// Read-only view of the DHT storage state (entry count, current
    /// partitioning).
    pub fn dht_store(&self) -> &DhtStore {
        &self.dht
    }

    /// Store `(key, value)`, initiated by node `from`. Returns the metered
    /// cost (recorded in history as its own step).
    pub fn dht_insert(&mut self, from: NodeId, key: Key, value: Value) -> StepMetrics {
        self.net.begin_step();
        self.migrate_if_rehashed();
        let delivered = if self.faults.is_some() {
            // Message-level routing: an abandoned put is simply not
            // applied (graceful degradation, counted in `dht_abandoned`).
            self.route_dht_faulted(from, key, false)
        } else {
            self.route_dht(from, key);
            true
        };
        if delivered {
            self.dht.entries.insert(key, value);
        }
        self.net.end_step(StepKind::Insert, RecoveryKind::Type1)
    }

    /// Look up `key`, initiated by node `from`. The reply routes back along
    /// the same path, so the cost is twice the one-way routing cost (the
    /// path is resolved once and charged twice).
    pub fn dht_lookup(&mut self, from: NodeId, key: Key) -> (Option<Value>, StepMetrics) {
        self.net.begin_step();
        self.migrate_if_rehashed();
        let delivered = if self.faults.is_some() {
            // Request + reply as one round-trip route; an abandoned
            // lookup reports `None` (counted in `dht_abandoned`).
            self.route_dht_faulted(from, key, true)
        } else {
            let hops = self.route_dht(from, key);
            self.net.charge_rounds(hops); // reply path (same length)
            self.net.charge_messages(hops);
            true
        };
        let v = if delivered {
            self.dht.entries.get(&key).copied()
        } else {
            None
        };
        let m = self.net.end_step(StepKind::Insert, RecoveryKind::Type1);
        (v, m)
    }

    /// Route one message from `from` to the node owning `h(key)`: the
    /// initiator computes a shortest path in the virtual graph from one of
    /// its own vertices and forwards hop by hop; hops between vertices
    /// simulated by the same node are free local computation. Returns the
    /// physical hop count (also charged as rounds and messages).
    ///
    /// Hot path: the virtual path comes from the pooled bidirectional BFS
    /// ([`dex_graph::pcycle::PCycle::shortest_path_with`], O(√p) visited
    /// vertices instead of the old full-BFS O(p)), each path vertex
    /// resolves through the slot Φ's dense owner records
    /// ([`crate::VirtualMapping::owner_of`], one array load), and every
    /// buffer lives in the pooled [`crate::routing::RouteScratch`] — zero
    /// allocation per operation once warm.
    fn route_dht(&mut self, from: NodeId, key: Key) -> u64 {
        let target = hash_to_vertex(key, self.cycle.p());
        let start = *self
            .map
            .sim(from)
            .iter()
            .min()
            .expect("initiator simulates a vertex");
        let route = &mut self.heal.route;
        self.cycle
            .shortest_path_with(start, target, &mut route.bfs, &mut route.vpath);
        let mut hops = 0u64;
        let mut prev = self.map.owner_of(route.vpath[0]);
        for &z in &route.vpath[1..] {
            let cur = self.map.owner_of(z);
            if cur != prev {
                debug_assert!(
                    self.net.graph().contains_edge(prev, cur),
                    "virtual path step not physical: {prev} {cur}"
                );
                hops += 1;
            }
            prev = cur;
        }
        self.net.charge_rounds(hops);
        self.net.charge_messages(hops);
        hops
    }

    /// After a type-2 recovery the hash function changed: rehash all data,
    /// charging one message per item (lump-sum equivalent of the paper's
    /// staggered handoff).
    fn migrate_if_rehashed(&mut self) {
        let p = self.cycle.p();
        match self.dht.hashed_under {
            Some(q) if q == p => {}
            Some(_) => {
                self.net.charge_messages(self.dht.entries.len() as u64);
                self.net.charge_rounds(1);
                self.dht.hashed_under = Some(p);
            }
            None => self.dht.hashed_under = Some(p),
        }
    }
}
