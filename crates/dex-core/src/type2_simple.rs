//! Simplified (one-shot) type-2 recovery: Procedures `simplifiedInfl`
//! (Algorithm 4.5) and `simplifiedDefl` (Algorithm 4.6).
//!
//! The whole virtual graph is replaced in a single step: O(n) topology
//! changes and O(n log² n) messages, amortized over the Ω(n) type-1 steps
//! that separate consecutive type-2 events (Lemma 8 ⇒ Corollary 1).
//!
//! Cost accounting:
//! * the rebuild request flood and the Phase-2 balls-into-bins walks are
//!   simulated hop-by-hop with real congestion (CONGEST: per-edge
//!   serialization);
//! * the permutation-routing step that installs inverse-chord edges is
//!   *executed* token-by-token on the old virtual graph with per-edge
//!   congestion up to `p ≤` [`crate::routing::EXACT_ROUTING_MAX_P`]; above
//!   that it is charged at the analytical cost (`O(p·log p)` messages,
//!   `O(log p)` rounds) — see DESIGN.md §5;
//! * edge churn is the exact multiset difference between the old and new
//!   contraction fabrics.

use crate::dex::DexNetwork;
use crate::fabric;
use crate::mapping::VirtualMapping;
use dex_graph::fxhash::{FxHashMap, FxHashSet};
use dex_graph::ids::{NodeId, VertexId};
use dex_graph::pcycle::{resize, PCycle};
use dex_graph::primes;
use dex_sim::flood::flood_count;
use dex_sim::rng::Purpose;
use dex_sim::tokens::random_walk_search;
use rand::Rng;

/// Charge the analytical cost of one permutation-routing pass on a
/// bounded-degree expander of `p` vertices (Scheideler, Cor. 7.7.3): we
/// bill `6·⌈log₂ p⌉` rounds and `p·⌈log₂ p⌉` messages per pass. Used only
/// above [`crate::routing::EXACT_ROUTING_MAX_P`]; below it the inverse
/// permutation is actually routed token-by-token (tests in
/// [`crate::routing`] check the model dominates reality).
fn charge_permutation_routing(dex: &mut DexNetwork, p: u64) {
    let logp = (64 - p.max(2).leading_zeros() as u64).max(1);
    dex.net.charge_rounds(6 * logp);
    dex.net.charge_messages(p * logp);
}

/// Install the inverse-chord edges of the new cycle: route the inverse
/// permutation for real when feasible, else charge the analytical model.
/// Requests travel between the old-cycle *source* vertices of `y` and
/// `y⁻¹` along the old virtual graph, which is still fully materialized
/// (the paper solves permutation routing on `Z_{t-1}(p_i)`).
fn inverse_edge_routing(dex: &mut DexNetwork, inflating: bool, new_cycle: &PCycle) {
    let p_new = new_cycle.p();
    if p_new > crate::routing::EXACT_ROUTING_MAX_P {
        charge_permutation_routing(dex, p_new);
        return;
    }
    let p_old = dex.cycle.p();
    let pairs = if inflating {
        crate::routing::inflation_inverse_pairs(p_old, p_new)
    } else {
        crate::routing::deflation_inverse_pairs(p_old, p_new)
    };
    // Pairs whose sources live on the same node are local and free.
    let mut pairs = pairs;
    pairs.retain(|&(a, b)| dex.map.owner_of(a) != dex.map.owner_of(b));
    // The permutation resolution fans out over the executor pool (the
    // bulk of the rebuild's simulator work); charges are bit-identical
    // for any thread count.
    crate::routing::route_pairs_with(
        &mut dex.net,
        &dex.map,
        &dex.cycle,
        &pairs,
        1,
        dex.heal_threads,
        &mut dex.heal.route,
    );
}

/// Smallest prime we are willing to deflate to (`PCycle` needs p ≥ 5;
/// below this the network is a constant-size object anyway).
pub const MIN_PRIME: u64 = 5;

/// Procedure `simplifiedInfl`. `pending` carries the freshly inserted node
/// and its attach point when the inflation was triggered by an insertion.
pub fn inflate(dex: &mut DexNetwork, pending: Option<(NodeId, NodeId)>) {
    let p_old = dex.cycle.p();
    let p_new = primes::inflation_prime(p_old);
    let new_cycle = PCycle::new(p_new);

    // Flood the rebuild request so every node switches to the same Z(p').
    let root = pending
        .map(|(_, v)| v)
        .unwrap_or_else(|| dex.net.graph().nodes_sorted()[0]);
    // Under a fault spec the announcement flood plus its convergecast
    // (reservations + commit acks) run on the message schedule and may
    // roll back and re-initiate; nothing below executes until a
    // coordination round completes. Fault-free runs keep the exact
    // centralized flood charge.
    if dex.faults.is_some() {
        dex.type2_coordinate(root);
    } else {
        flood_count(&mut dex.net, root, |_| false);
    }

    // Phase 1: every node locally replaces each owned vertex x by its
    // cloud (Eq. 6–8). Local computation is free in the model; the
    // simulator stages the dense Φ entry re-scan and fans the per-entry
    // cloud arithmetic over the executor pool, then applies the runs to
    // the new Φ sequentially in canonical (vertex-ascending) order —
    // bit-identical to the inline scan for any thread count. Clouds are
    // contiguous (Eq. 7): one run assignment per old vertex — a single
    // owner-slot resolution and sequential dense writes instead of α
    // separate assigns.
    let mut runs = std::mem::take(&mut dex.heal.cloud_runs);
    runs.clear();
    runs.extend(dex.map.entries().map(|(z, owner)| (z.0, 0u64, owner)));
    dex_exec::for_chunks_mut(&mut runs, dex.heal_threads, |_, chunk| {
        for r in chunk {
            let (start, len) = resize::inflation_cloud_range(r.0, p_old, p_new);
            (r.0, r.1) = (start, len);
        }
    });
    let mut new_map = VirtualMapping::with_vertex_capacity(dex.cfg.zeta, p_new);
    for &(start, len, owner) in &runs {
        new_map.assign_run(VertexId(start), len, owner);
    }
    dex.heal.cloud_runs = runs;
    // Cycle edges come from the old cycle's edges: O(1) rounds, one
    // message per old cycle edge per direction.
    dex.net.charge_rounds(2);
    dex.net.charge_messages(2 * p_old);
    // Inverse-chord edges by permutation routing on the old virtual graph.
    inverse_edge_routing(dex, true, &new_cycle);

    // The freshly inserted node receives one newly generated vertex from
    // its attach point (Algorithm 4.5, line 6).
    if let Some((u, v)) = pending {
        debug_assert!(new_map.load(v) >= 4, "cloud sizes are >= 4 (α > 4)");
        let z = *new_map.sim(v).iter().max().expect("nonempty");
        new_map.transfer(z, u);
        dex.net.charge_messages(4);
        dex.net.charge_rounds(1);
    }

    // Install the new fabric (exact multiset diff — shared edges are
    // untouched). The adversarial attach edge disappears here unless the
    // new virtual graph requires a (u, v) edge.
    let target = fabric::expected_edge_multiset(&new_map, &new_cycle);
    fabric::rewire_to_target(&mut dex.net, &target);
    dex.map = new_map;
    dex.cycle = new_cycle;

    // Every node announces its new load to its neighbors once.
    let total_deg = dex.net.graph().degree_sum() as u64;
    dex.net.charge_messages(total_deg);
    dex.net.charge_rounds(1);

    // Phase 2: spread overload (> 4ζ) via random walks on the new virtual
    // graph until the mapping is 4ζ-balanced again.
    rebalance_overload(dex);
}

/// Procedure `simplifiedDefl`. `root` is the node that detected the
/// failure (the deletion rescuer).
pub fn deflate(dex: &mut DexNetwork, root: NodeId) {
    let p_old = dex.cycle.p();
    let p_new = primes::deflation_prime(p_old)
        .filter(|&q| q >= MIN_PRIME)
        .unwrap_or_else(|| panic!("cannot deflate below p = {p_old}: network too small for Z(p)"));
    let new_cycle = PCycle::new(p_new);

    // Same coordination contract as `inflate`: commit only after a
    // complete announcement/reservation/ack round.
    if dex.faults.is_some() {
        dex.type2_coordinate(root);
    } else {
        flood_count(&mut dex.net, root, |_| false);
    }

    // Phase 1: dominating vertices survive (y = ⌊x/α⌋, smallest preimage
    // keeps it); everything else is contracted away. As in `inflate`, the
    // entry re-scan is staged and the dominating-image arithmetic fans
    // out over the executor pool; survivors are assigned sequentially in
    // canonical order (bit-identical for any thread count).
    let mut runs = std::mem::take(&mut dex.heal.cloud_runs);
    runs.clear();
    runs.extend(dex.map.entries().map(|(z, owner)| (z.0, 0u64, owner)));
    dex_exec::for_chunks_mut(&mut runs, dex.heal_threads, |_, chunk| {
        for r in chunk {
            if resize::is_dominating(r.0, p_old, p_new) {
                (r.0, r.1) = (resize::deflation_image(r.0, p_old, p_new), 1);
            }
        }
    });
    let mut new_map = VirtualMapping::with_vertex_capacity(dex.cfg.zeta, p_new);
    for &(image, keep, owner) in &runs {
        if keep == 1 {
            new_map.assign(VertexId(image), owner);
        }
    }
    dex.heal.cloud_runs = runs;
    dex.net.charge_rounds(2);
    dex.net.charge_messages(2 * p_old);
    inverse_edge_routing(dex, false, &new_cycle);

    // Every node that got at least one new vertex reserves one by marking
    // it `taken` (Algorithm 4.6, line 9).
    let mut taken: FxHashSet<VertexId> = FxHashSet::default();
    let mut owners: Vec<NodeId> = new_map.nodes().collect();
    owners.sort_unstable();
    for u in owners {
        let reserve = *new_map.sim(u).iter().min().expect("nonempty");
        taken.insert(reserve);
    }

    // Phase 2 — run *before* discarding the old fabric so contending nodes
    // can still communicate. A node with no new vertex walks (on the
    // actual network) until it finds a node holding a non-taken vertex.
    let mut contending: Vec<NodeId> = dex
        .net
        .graph()
        .nodes_sorted()
        .into_iter()
        .filter(|&u| new_map.load(u) == 0)
        .collect();
    let walk_len = dex.cfg.walk_len(p_old);
    let step_no = dex.step_no;
    for (ci, c) in contending.drain(..).enumerate() {
        let mut attempt = 0u64;
        loop {
            let nm = &new_map;
            let mut rng = dex
                .seeds
                .stream(Purpose::RebalanceWalk, &[step_no, ci as u64, attempt]);
            // Non-taken vertex exists iff new load ≥ 2 (one is reserved).
            let out = random_walk_search(
                &mut dex.net,
                c,
                walk_len,
                None,
                |w| nm.load(w) >= 2,
                &mut rng,
            );
            if let Some(w) = out.hit {
                let z = *new_map
                    .sim(w)
                    .iter()
                    .filter(|z| !taken.contains(z))
                    .max()
                    .expect("load >= 2 implies a non-taken vertex");
                new_map.transfer(z, c);
                taken.insert(z);
                dex.net.charge_messages(4);
                dex.net.charge_rounds(1);
                break;
            }
            attempt += 1;
            assert!(
                attempt < dex.cfg.max_walk_retries,
                "deflation phase-2 walk starved (p {p_old} -> {p_new})"
            );
        }
    }

    // Install the new fabric and switch over.
    let target = fabric::expected_edge_multiset(&new_map, &new_cycle);
    fabric::rewire_to_target(&mut dex.net, &target);
    dex.map = new_map;
    dex.cycle = new_cycle;

    let total_deg = dex.net.graph().degree_sum() as u64;
    dex.net.charge_messages(total_deg);
    dex.net.charge_rounds(1);

    // Defensive: adversarial vertex placement can leave a node above 4ζ
    // even after contraction (the paper's Claim bounds the typical case);
    // reuse the inflation rebalancer.
    rebalance_overload(dex);
}

/// Phase 2 of `simplifiedInfl`: nodes with load > 4ζ spread their surplus
/// via Θ(log n)-length random walks on the (new) virtual graph, simulated
/// on the real network with per-edge congestion. Tokens that land alone on
/// a vertex of a non-full node win; full = load > 2ζ.
fn rebalance_overload(dex: &mut DexNetwork) {
    let four_zeta = dex.cfg.max_load();
    let two_zeta = 2 * dex.cfg.zeta;

    let mut full: FxHashSet<NodeId> = dex
        .map
        .nodes()
        .filter(|&u| dex.map.load(u) > two_zeta)
        .collect();

    // Surplus vertices, deterministically the largest ids beyond 4ζ.
    let mut surplus: Vec<VertexId> = Vec::new();
    let mut nodes: Vec<NodeId> = dex.map.nodes().collect();
    nodes.sort_unstable();
    for u in nodes {
        let load = dex.map.load(u);
        if load > four_zeta {
            let mut sim: Vec<VertexId> = dex.map.sim(u).to_vec();
            sim.sort_unstable();
            surplus.extend_from_slice(&sim[four_zeta as usize..]);
        }
    }

    let p = dex.cycle.p();
    let walk_len = dex.cfg.walk_len(p);
    let step_no = dex.step_no;
    let mut epoch = 0u64;
    while !surplus.is_empty() {
        assert!(
            epoch < 400,
            "rebalance did not converge ({} left)",
            surplus.len()
        );
        // Tokens walk the virtual graph in lockstep; CONGEST serializes
        // tokens sharing a directed physical edge within a round.
        let mut cur: Vec<VertexId> = surplus.clone();
        let mut rngs: Vec<_> = (0..cur.len())
            .map(|i| {
                dex.seeds
                    .stream(Purpose::RebalanceWalk, &[step_no, epoch, i as u64])
            })
            .collect();
        let mut rounds = 0u64;
        let mut messages = 0u64;
        let mut edge_load: FxHashMap<(NodeId, NodeId), u64> = FxHashMap::default();
        for _ in 0..walk_len {
            edge_load.clear();
            for (c, rng) in cur.iter_mut().zip(rngs.iter_mut()) {
                let nbrs = dex.cycle.neighbors(*c);
                let next = nbrs[rng.random_range(0..3usize)];
                let (a, b) = (dex.map.owner_of(*c), dex.map.owner_of(next));
                if a != b {
                    *edge_load.entry((a, b)).or_insert(0) += 1;
                    messages += 1;
                }
                *c = next;
            }
            rounds += edge_load.values().copied().max().unwrap_or(0);
        }
        dex.net.charge_rounds(rounds);
        dex.net.charge_messages(messages);

        // Landing resolution: a token wins iff it is alone on its final
        // vertex and the host is not full (and not its own origin).
        let mut landing_count: FxHashMap<VertexId, u32> = FxHashMap::default();
        for &c in &cur {
            *landing_count.entry(c).or_insert(0) += 1;
        }
        let mut next_surplus = Vec::new();
        for (i, &z) in surplus.iter().enumerate() {
            let land = cur[i];
            let host = dex.map.owner_of(land);
            let origin = dex.map.owner_of(z);
            if landing_count[&land] == 1 && !full.contains(&host) && host != origin {
                fabric::move_vertices(
                    &mut dex.net,
                    &mut dex.map,
                    &dex.cycle,
                    &[z],
                    host,
                    &mut dex.heal.insts,
                );
                dex.net.charge_messages(4);
                dex.net.charge_rounds(1);
                if dex.map.load(host) > two_zeta {
                    full.insert(host);
                }
            } else {
                next_surplus.push(z);
            }
        }
        surplus = next_surplus;
        epoch += 1;
    }
}
