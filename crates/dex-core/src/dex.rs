//! The top-level DEX network: adversarial steps and type-1 recovery
//! (Algorithms 4.2 and 4.3), dispatching to type-2 recovery when spare
//! capacity runs out.

use crate::config::{DexConfig, RecoveryMode};
use crate::fabric;
use crate::mapping::VirtualMapping;
use crate::scratch::HealScratch;
use crate::staggered::StaggeredOp;
use dex_graph::ids::{NodeId, VertexId};
use dex_graph::pcycle::PCycle;
use dex_graph::primes;
use dex_sim::flood::{flood_count_with, FloodScratch};
use dex_sim::rng::{Purpose, SeedSpace};
use dex_sim::tokens::random_walk_search;
use dex_sim::{Network, RecoveryKind, StepKind, StepMetrics};

/// Counters for walk behaviour (experiment E7).
#[derive(Debug, Default, Clone, Copy)]
pub struct WalkStats {
    /// Individual walk attempts.
    pub attempts: u64,
    /// Walks that found an accepting node.
    pub hits: u64,
    /// Walks that missed and forced a flood count.
    pub misses: u64,
    /// Type-2 recoveries triggered.
    pub type2: u64,
}

/// A DEX-maintained self-healing expander network.
///
/// Drive it with [`DexNetwork::insert`] / [`DexNetwork::delete`] (one
/// adversarial event per step, exactly the paper's model); each call runs
/// the full distributed recovery and returns the step's metered cost.
pub struct DexNetwork {
    /// Algorithm parameters.
    pub cfg: DexConfig,
    /// The metered physical network.
    pub net: Network,
    /// Current virtual graph `Z(p)` — global knowledge (every node knows p).
    pub cycle: PCycle,
    /// The virtual mapping Φ.
    pub map: VirtualMapping,
    /// In-progress staggered type-2 operation (worst-case mode only).
    pub(crate) stag: Option<StaggeredOp>,
    /// RNG stream derivation.
    pub(crate) seeds: SeedSpace,
    /// Walk success statistics.
    pub walk_stats: WalkStats,
    /// DHT storage (keys live with the vertex they hash to).
    pub(crate) dht: crate::dht::DhtStore,
    pub(crate) step_no: u64,
    /// Reusable BFS scratch for the type-2 decision floods (one flood per
    /// type-2 step; reusing the buffers keeps the hot path allocation-free).
    pub(crate) flood_scratch: FloodScratch,
    /// Pooled healing buffers (vertex sets, neighbor lists, fabric
    /// instances, routing paths) — with these, steady-state type-1
    /// recovery allocates nothing per operation.
    pub(crate) heal: HealScratch,
    /// Worker threads for the parallel batch-heal planner (1 = plan
    /// inline). Results are bit-identical for every value — see
    /// [`crate::parheal`].
    pub(crate) heal_threads: usize,
    /// Adaptive small-n crossover: when enabled, wave-eligible batches may
    /// be routed to the sequential heal path by a deterministic controller
    /// keyed on n and the observed replan rate (see [`crate::parheal`]).
    /// Off by default so differential tests always exercise the engine.
    pub(crate) adaptive_crossover: bool,
    /// Waved batch-heal statistics (waves, serial fallbacks, wave-size
    /// histogram), accumulated across batch steps.
    pub batch_stats: crate::parheal::BatchHealStats,
    /// When set, type-1 walks and DHT routing run on the message-level
    /// simulator ([`dex_sim::msim`]) under this fault model instead of
    /// the centralized fast path (see [`crate::faulted`]). `None` (the
    /// default) keeps the centralized execution.
    pub(crate) faults: Option<dex_sim::msim::FaultSpec>,
    /// Fault-layer counters accumulated while `faults` is set.
    pub(crate) fault_stats: dex_sim::msim::FaultStats,
}

impl DexNetwork {
    /// Bootstrap an initial network of `n0` nodes with ids `0..n0`.
    ///
    /// The paper starts from a constant-size `G₀` whose nodes compute
    /// `Z₀(p₀)`, `p₀` the smallest prime in `(4n₀, 8n₀)`, by local
    /// broadcast. We allow any `n0` and construct the same object directly
    /// (centralized bootstrap is explicitly permitted, Sect. 4).
    pub fn bootstrap(cfg: DexConfig, n0: u64) -> Self {
        assert!(n0 >= 2, "need at least 2 initial nodes");
        let p0 = primes::initial_prime(n0);
        let cycle = PCycle::new(p0);
        let mut map = VirtualMapping::with_vertex_capacity(cfg.zeta, p0);
        let mut net = Network::new();
        for i in 0..n0 {
            net.adversary_add_node(NodeId(i));
        }
        // Deal vertices round-robin: every load is ⌈p₀/n₀⌉ or ⌊p₀/n₀⌋,
        // i.e. within [4, 8] — comfortably 4ζ-balanced and all in Spare/Low.
        for x in 0..p0 {
            map.assign(VertexId(x), NodeId(x % n0));
        }
        fabric::materialize_all(&mut net, &map, &cycle, false);
        DexNetwork {
            cfg,
            net,
            cycle,
            map,
            stag: None,
            seeds: SeedSpace::new(cfg.seed),
            walk_stats: WalkStats::default(),
            dht: crate::dht::DhtStore::default(),
            step_no: 0,
            flood_scratch: FloodScratch::new(),
            heal: HealScratch::new(),
            heal_threads: 1,
            adaptive_crossover: false,
            batch_stats: crate::parheal::BatchHealStats::default(),
            faults: None,
            fault_stats: dex_sim::msim::FaultStats::default(),
        }
    }

    /// Set the worker-thread count for the parallel batch-heal planner.
    /// Purely a throughput knob: batch results are bit-identical for any
    /// value (the determinism contract `tests/batch_par.rs` and the
    /// `bench_batch --smoke` CI job enforce).
    pub fn set_heal_threads(&mut self, threads: usize) {
        self.heal_threads = threads.max(1);
    }

    /// Current batch-heal planner thread count.
    pub fn heal_threads(&self) -> usize {
        self.heal_threads
    }

    /// Enable/disable the adaptive small-n crossover: a deterministic
    /// per-network controller (keyed on n and the observed replan-rate
    /// EMA, with a fixed probe schedule) that routes small/cache-resident
    /// batches to the sequential heal path where waved planning is pure
    /// overhead. The decision is recorded in [`dex_sim::StepMetrics`]'s
    /// `crossover` flag; either route yields bit-identical state for any
    /// thread count. Off by default.
    pub fn set_adaptive_crossover(&mut self, enabled: bool) {
        self.adaptive_crossover = enabled;
    }

    /// Is the adaptive small-n crossover enabled?
    pub fn adaptive_crossover(&self) -> bool {
        self.adaptive_crossover
    }

    /// Current network size.
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// The physical graph.
    pub fn graph(&self) -> &dex_graph::MultiGraph {
        self.net.graph()
    }

    /// Spectral gap `1 − λ₂` of the current physical network.
    pub fn spectral_gap(&self) -> f64 {
        dex_graph::spectral::spectral_gap(self.net.graph())
    }

    /// Maximum load (vertices simulated) over all nodes, counting staged
    /// vertices of an in-progress type-2 operation.
    pub fn max_total_load(&self) -> u64 {
        let extra = self.stag.as_ref();
        self.net
            .graph()
            .nodes()
            .map(|u| self.map.load(u) + extra.map_or(0, |s| s.staged_load(u)))
            .max()
            .unwrap_or(0)
    }

    /// Maximum physical degree.
    pub fn max_degree(&self) -> usize {
        self.net.graph().max_degree()
    }

    /// Is a staggered type-2 operation in progress?
    pub fn type2_in_progress(&self) -> bool {
        self.stag.is_some()
    }

    /// Staged (next-cycle) load of `u` during an in-progress staggered
    /// operation; 0 otherwise.
    pub fn staged_load(&self, u: NodeId) -> u64 {
        self.stag.as_ref().map_or(0, |s| s.staged_load(u))
    }

    /// Node ids currently in the network, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.net.graph().nodes_sorted()
    }

    // ------------------------------------------------------------------
    // Insertion (Algorithm 4.2)
    // ------------------------------------------------------------------

    /// Adversary inserts node `u` attached to existing node `v`; the
    /// algorithm heals and the step's cost is returned.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> StepMetrics {
        assert!(!self.net.graph().has_node(u), "insert: {u} already present");
        assert!(
            self.net.graph().has_node(v),
            "insert: attach point {v} missing"
        );
        self.step_no += 1;
        self.net.begin_step();
        self.net.adversary_add_node(u);
        self.net.adversary_add_edge(u, v);

        let recovery = if self.stag.is_some() {
            crate::staggered::insert_during_staggered(self, u, v);
            RecoveryKind::Type1Staggered
        } else {
            self.insert_normal(u, v)
        };
        // Worst-case mode: coordinator bookkeeping + window advance.
        if self.cfg.mode == RecoveryMode::Staggered {
            crate::staggered::after_step(self);
        }
        let recovery = self.final_recovery_kind(recovery);
        self.net.end_step(StepKind::Insert, recovery)
    }

    /// Normal-mode insertion recovery. Returns the recovery kind used.
    fn insert_normal(&mut self, u: NodeId, v: NodeId) -> RecoveryKind {
        if self.faults.is_some() {
            return self.insert_normal_faulted(u, v);
        }
        let walk_len = self.cfg.walk_len(self.cycle.p());
        let mut flooded = false;
        for attempt in 0..self.cfg.max_walk_retries {
            self.walk_stats.attempts += 1;
            let map = &self.map;
            let mut rng = self
                .seeds
                .stream(Purpose::InsertWalk, &[self.step_no, attempt]);
            let out = random_walk_search(
                &mut self.net,
                v,
                walk_len,
                Some(u),
                |w| map.is_spare(w),
                &mut rng,
            );
            if let Some(w) = out.hit {
                self.walk_stats.hits += 1;
                self.give_vertex_to_new_node(w, u, v);
                return RecoveryKind::Type1;
            }
            self.walk_stats.misses += 1;
            // Deterministic count (Algorithm 4.4) before deciding; the
            // paper floods once, then retries walks (Alg. 4.2 line 9
            // repeats from line 1 — loads cannot change mid-step).
            if flooded {
                continue;
            }
            flooded = true;
            let res = flood_count_with(
                &mut self.net,
                v,
                |w| map.is_spare(w),
                &mut self.flood_scratch,
            );
            // The flood reaches the fresh node u too; the paper counts
            // |Spare| against |G_{t-1}|.
            let n_prev = res.n.saturating_sub(1);
            if !self.cfg.spare_sufficient(res.matching, n_prev) {
                self.walk_stats.type2 += 1;
                match self.cfg.mode {
                    RecoveryMode::Simplified => {
                        crate::type2_simple::inflate(self, Some((u, v)));
                        return RecoveryKind::InflateSimple;
                    }
                    RecoveryMode::Staggered => {
                        // The coordinator should have fired at 3θn; reaching
                        // the hard wall means it must start now, and the new
                        // node is served from the first staged window.
                        crate::staggered::begin_inflation(self);
                        crate::staggered::insert_during_staggered(self, u, v);
                        return RecoveryKind::InflateStaggered;
                    }
                }
            }
            // Enough spares exist; the walk was simply unlucky — retry.
        }
        panic!(
            "insertion walk failed {} times with |Spare| ≥ θn — bug or \
             pathological parameters (n={}, p={})",
            self.cfg.max_walk_retries,
            self.n(),
            self.cycle.p()
        );
    }

    /// Transfer one vertex from spare node `w` to the fresh node `u`, then
    /// drop the adversarial attach edge (the fabric edge set re-creates a
    /// `(u, v)` edge if and only if the virtual graph requires one).
    pub(crate) fn give_vertex_to_new_node(&mut self, w: NodeId, u: NodeId, v: NodeId) {
        debug_assert!(self.map.load(w) >= 2);
        // Deterministic pick: the largest vertex id at w.
        let z = *self
            .map
            .sim(w)
            .iter()
            .max()
            .expect("spare node must simulate a vertex");
        fabric::move_vertices(
            &mut self.net,
            &mut self.map,
            &self.cycle,
            &[z],
            u,
            &mut self.heal.insts,
        );
        // O(1) handoff messages: vertex id + its 3 neighbor node ids.
        self.net.charge_messages(4);
        self.net.charge_rounds(1);
        self.charge_load_updates(&[w, u]);
        // Remove the adversary's temporary attach edge (one extra instance
        // beyond the fabric).
        self.net.remove_edge(u, v);
    }

    // ------------------------------------------------------------------
    // Deletion (Algorithm 4.3)
    // ------------------------------------------------------------------

    /// Adversary deletes `victim`; the algorithm heals and the step cost is
    /// returned.
    pub fn delete(&mut self, victim: NodeId) -> StepMetrics {
        assert!(
            self.net.graph().has_node(victim),
            "delete: {victim} missing"
        );
        assert!(self.n() > 2, "refusing to delete below 2 nodes");
        self.step_no += 1;

        // Former neighbors learn of the attack in the same time step.
        self.heal.nbrs.clear();
        let nbrs = &mut self.heal.nbrs;
        nbrs.extend(
            self.net
                .graph()
                .neighbors(victim)
                .iter()
                .filter(|&w| w != victim),
        );
        nbrs.sort_unstable();
        nbrs.dedup();
        assert!(
            !nbrs.is_empty(),
            "deleted node had no neighbors — network was disconnected"
        );
        let rescuer = nbrs[0];

        self.net.begin_step();
        self.net.adversary_remove_node(victim);

        let recovery = if self.stag.is_some() {
            crate::staggered::delete_during_staggered(self, victim, rescuer);
            RecoveryKind::Type1Staggered
        } else {
            self.delete_normal(victim, rescuer)
        };
        if self.cfg.mode == RecoveryMode::Staggered {
            crate::staggered::after_step(self);
        }
        let recovery = self.final_recovery_kind(recovery);
        self.net.end_step(StepKind::Delete, recovery)
    }

    /// Normal-mode deletion recovery. Detaches the pooled vertex/touched
    /// buffers from `self`, runs the core, and reattaches them so their
    /// capacity survives across steps (including the early type-2 return).
    fn delete_normal(&mut self, victim: NodeId, rescuer: NodeId) -> RecoveryKind {
        let mut zs = std::mem::take(&mut self.heal.zs);
        let mut touched = std::mem::take(&mut self.heal.touched);
        zs.clear();
        zs.extend_from_slice(self.map.sim(victim));
        touched.clear();
        let kind = self.delete_normal_core(rescuer, &zs, &mut touched);
        self.heal.zs = zs;
        self.heal.touched = touched;
        kind
    }

    fn delete_normal_core(
        &mut self,
        rescuer: NodeId,
        zs: &[VertexId],
        touched: &mut Vec<NodeId>,
    ) -> RecoveryKind {
        if self.faults.is_some() {
            return self.delete_normal_core_faulted(rescuer, zs, touched);
        }
        // Rescuer adopts the victim's vertices and restores their edges.
        debug_assert!(!zs.is_empty(), "every node simulates >= 1 vertex");
        fabric::adopt_vertices(
            &mut self.net,
            &mut self.map,
            &self.cycle,
            zs,
            rescuer,
            &mut self.heal.insts,
        );
        self.net.charge_messages(3 * zs.len() as u64);
        self.net.charge_rounds(1);

        // Redistribute each adopted vertex to a node in Low. The count is
        // re-run after every failed walk (Alg. 4.3 lines 6–11): our own
        // transfers within the step can shrink Low, so the threshold must
        // be re-checked before deciding between retry and deflation.
        // Load updates to neighbors are batched: each touched node informs
        // its neighbors once at the end of the recovery.
        let walk_len = self.cfg.walk_len(self.cycle.p());
        touched.push(rescuer);
        for (i, &z) in zs.iter().enumerate() {
            let mut attempt = 0;
            loop {
                self.walk_stats.attempts += 1;
                let map = &self.map;
                let mut rng = self
                    .seeds
                    .stream(Purpose::DeleteWalk, &[self.step_no, i as u64, attempt]);
                let out = random_walk_search(
                    &mut self.net,
                    rescuer,
                    walk_len,
                    None,
                    |w| map.is_low(w),
                    &mut rng,
                );
                if let Some(w) = out.hit {
                    self.walk_stats.hits += 1;
                    if w != rescuer {
                        fabric::move_vertices(
                            &mut self.net,
                            &mut self.map,
                            &self.cycle,
                            &[z],
                            w,
                            &mut self.heal.insts,
                        );
                        self.net.charge_messages(4);
                        self.net.charge_rounds(1);
                        touched.push(w);
                    }
                    break;
                }
                self.walk_stats.misses += 1;
                let res = flood_count_with(
                    &mut self.net,
                    rescuer,
                    |w| map.is_low(w),
                    &mut self.flood_scratch,
                );
                if !self.cfg.low_sufficient(res.matching, res.n) {
                    self.walk_stats.type2 += 1;
                    match self.cfg.mode {
                        RecoveryMode::Simplified => {
                            crate::type2_simple::deflate(self, rescuer);
                            return RecoveryKind::DeflateSimple;
                        }
                        RecoveryMode::Staggered => {
                            crate::staggered::begin_deflation(self);
                            return RecoveryKind::DeflateStaggered;
                        }
                    }
                }
                attempt += 1;
                assert!(
                    attempt < self.cfg.max_walk_retries,
                    "deletion walk failed {} times with |Low| ≥ θn",
                    self.cfg.max_walk_retries
                );
            }
        }
        touched.sort_unstable();
        touched.dedup();
        self.charge_load_updates(touched);
        RecoveryKind::Type1
    }

    // ------------------------------------------------------------------
    // Shared helpers
    // ------------------------------------------------------------------

    /// Nodes advertise load changes to their neighbors (constant overhead,
    /// Sect. 4.1); charged as one message per incident edge.
    pub(crate) fn charge_load_updates(&mut self, nodes: &[NodeId]) {
        let mut msgs = 0u64;
        for &u in nodes {
            if self.net.graph().has_node(u) {
                msgs += self.net.graph().degree(u) as u64;
            }
        }
        self.net.charge_messages(msgs);
    }

    /// Refine the step's recovery label with staggered-operation state.
    fn final_recovery_kind(&self, base: RecoveryKind) -> RecoveryKind {
        match (&self.stag, base) {
            (Some(op), RecoveryKind::Type1 | RecoveryKind::Type1Staggered) => {
                if op.is_inflation() {
                    RecoveryKind::InflateStaggered
                } else {
                    RecoveryKind::DeflateStaggered
                }
            }
            _ => base,
        }
    }

    /// Fresh unused node id (convenience for workloads; the adversary may
    /// also pick its own ids).
    pub fn fresh_node_id(&self) -> NodeId {
        NodeId(
            self.net
                .graph()
                .nodes()
                .map(|u| u.0)
                .max()
                .map(|m| m + 1)
                .unwrap_or(0),
        )
    }
}

impl std::fmt::Debug for DexNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DexNetwork(n={}, p={}, {:?}, stag={})",
            self.n(),
            self.cycle.p(),
            self.map,
            self.stag.is_some()
        )
    }
}
