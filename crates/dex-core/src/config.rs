//! Algorithm parameters.
//!
//! The paper fixes ζ = 8 (max cloud size of the p-cycle construction) and
//! requires θ ≤ 1/(68ζ + 1) = 1/545 for the proofs (Eq. 3). The θ constant
//! is wildly pessimistic (it feeds Gillman's Chernoff bound with worst-case
//! constants); experiments default to θ = 1/64, which preserves every
//! qualitative claim while letting type-2 recovery actually fire at
//! laptop-scale n. Every harness prints the θ it used; use
//! [`DexConfig::paper_strict`] for the literal constants.

/// Which type-2 implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Algorithms 4.5/4.6: one-shot inflation/deflation. Amortized
    /// O(log n) rounds / O(log² n) messages (Corollary 1).
    Simplified,
    /// Algorithms 4.7–4.9: coordinator + staggered inflation/deflation.
    /// Worst-case O(log n) rounds and messages per step (Theorem 1).
    Staggered,
}

/// DEX parameters. See module docs for the θ discussion.
#[derive(Debug, Clone, Copy)]
pub struct DexConfig {
    /// Max cloud size ζ of the p-cycle construction (paper: ζ = 8).
    pub zeta: u64,
    /// Inverse of the rebuilding parameter θ (Eq. 3): θ = 1/theta_inv.
    pub theta_inv: u64,
    /// Walk length factor ℓ: type-1 walks run for ℓ·⌈log₂ p⌉ hops
    /// (`p` is the current virtual-graph size — a locally known Θ(n)).
    pub walk_len_factor: u64,
    /// Safety cap on type-1 retry cycles; the paper retries until success
    /// (succeeds w.h.p.); exceeding the cap indicates a bug and panics.
    pub max_walk_retries: u64,
    /// Type-2 implementation.
    pub mode: RecoveryMode,
    /// Master seed for all algorithm randomness.
    pub seed: u64,
}

impl DexConfig {
    /// Experiment defaults: ζ = 8, θ = 1/64, ℓ = 6, staggered type-2.
    pub fn new(seed: u64) -> Self {
        DexConfig {
            zeta: 8,
            theta_inv: 64,
            walk_len_factor: 6,
            max_walk_retries: 256,
            mode: RecoveryMode::Staggered,
            seed,
        }
    }

    /// The paper's literal constants: θ = 1/(68ζ + 1) = 1/545.
    pub fn paper_strict(seed: u64) -> Self {
        DexConfig {
            theta_inv: 545,
            ..Self::new(seed)
        }
    }

    /// Use the simplified (amortized) type-2 procedures.
    pub fn simplified(mut self) -> Self {
        self.mode = RecoveryMode::Simplified;
        self
    }

    /// Use the staggered (worst-case) type-2 procedures.
    pub fn staggered(mut self) -> Self {
        self.mode = RecoveryMode::Staggered;
        self
    }

    /// Override θ as 1/`theta_inv`.
    pub fn with_theta_inv(mut self, theta_inv: u64) -> Self {
        assert!(theta_inv >= 2);
        self.theta_inv = theta_inv;
        self
    }

    /// Override the walk-length factor ℓ.
    pub fn with_walk_len_factor(mut self, f: u64) -> Self {
        assert!(f >= 1);
        self.walk_len_factor = f;
        self
    }

    /// `Spare` membership: load ≥ 2 (Eq. 2).
    #[inline]
    pub fn is_spare_load(&self, load: u64) -> bool {
        load >= 2
    }

    /// `Low` membership: load ≤ 2ζ (Eq. 1).
    #[inline]
    pub fn is_low_load(&self, load: u64) -> bool {
        load <= 2 * self.zeta
    }

    /// Steady-state balance bound: 4ζ (Definition 3 with C = 4ζ).
    #[inline]
    pub fn max_load(&self) -> u64 {
        4 * self.zeta
    }

    /// Transient bound during staggered type-2: 8ζ (Lemma 9(a)).
    #[inline]
    pub fn max_load_staggered(&self) -> u64 {
        8 * self.zeta
    }

    /// Type-1 walk length for current virtual-graph size `p`.
    #[inline]
    pub fn walk_len(&self, p: u64) -> u64 {
        self.walk_len_factor * (64 - p.max(2).leading_zeros() as u64)
    }

    /// Is `|Spare| ≥ θn`? (type-1 insertion precondition)
    #[inline]
    pub fn spare_sufficient(&self, spare: usize, n: usize) -> bool {
        spare as u64 * self.theta_inv >= n as u64
    }

    /// Is `|Low| ≥ θn`? (type-1 deletion precondition)
    #[inline]
    pub fn low_sufficient(&self, low: usize, n: usize) -> bool {
        low as u64 * self.theta_inv >= n as u64
    }

    /// Coordinator trigger for staggered type-2: counter < 3θn.
    #[inline]
    pub fn staggered_trigger(&self, counter: usize, n: usize) -> bool {
        (counter as u64) * self.theta_inv < 3 * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers_structure() {
        let c = DexConfig::new(0);
        assert_eq!(c.zeta, 8);
        assert_eq!(c.max_load(), 32);
        assert_eq!(c.max_load_staggered(), 64);
        assert!(c.is_low_load(16));
        assert!(!c.is_low_load(17));
        assert!(c.is_spare_load(2));
        assert!(!c.is_spare_load(1));
    }

    #[test]
    fn paper_strict_theta() {
        let c = DexConfig::paper_strict(0);
        assert_eq!(c.theta_inv, 545); // 68ζ + 1 with ζ = 8
    }

    #[test]
    fn walk_len_is_log() {
        let c = DexConfig::new(0).with_walk_len_factor(6);
        assert_eq!(c.walk_len(1024), 6 * 11); // ⌈log₂ 1024⌉ = 11? (1024 = 2^10; 64-53=11 bits)
        assert_eq!(c.walk_len(1023), 6 * 10);
        assert!(c.walk_len(2) >= 6);
    }

    #[test]
    fn threshold_arithmetic_small_n() {
        let c = DexConfig::new(0); // θ = 1/64
                                   // n=10: θn < 1, any nonempty Spare suffices.
        assert!(c.spare_sufficient(1, 10));
        assert!(!c.spare_sufficient(0, 10));
        // n=640: need ≥ 10.
        assert!(c.spare_sufficient(10, 640));
        assert!(!c.spare_sufficient(9, 640));
        // staggered trigger: counter < 3n/64
        assert!(c.staggered_trigger(29, 640));
        assert!(!c.staggered_trigger(30, 640));
    }
}
