//! Violation records and the aggregate report.

use std::fmt;

/// One rule violation (or waiver-syntax error), anchored to a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (one of [`crate::rules::RULE_IDS`] or a `waiver-*` meta
    /// rule).
    pub rule: &'static str,
    /// What was found.
    pub msg: String,
    /// How to fix it (or how to waive it with a reason).
    pub hint: &'static str,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    hint: {}",
            self.file, self.line, self.rule, self.msg, self.hint
        )
    }
}

/// The result of linting a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Un-waived violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Files scanned.
    pub files: usize,
    /// Waivers that matched a violation (suppressed findings).
    pub waived: usize,
}

impl Report {
    /// True when the file set is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical ordering for stable output.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        write!(
            f,
            "dex-lint: {} file(s), {} violation(s), {} waived",
            self.files,
            self.violations.len(),
            self.waived
        )
    }
}
