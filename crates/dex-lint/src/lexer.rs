//! A lightweight Rust lexer: just enough to separate **code** from
//! **comments** and to blank out **string/char literal contents**, so the
//! rule matchers never fire on text that the compiler would never
//! execute (doc prose, fixture strings, test data).
//!
//! The output is line-oriented: for every source line the lexer produces
//! a *code view* (comments removed, literal contents replaced by spaces,
//! delimiters kept) and a *comment view* (comment text only). Rules
//! match tokens against the code view; the `SAFETY:` and waiver scanners
//! read the comment view. Handled syntax:
//!
//! * line comments `//…` (including doc `///` / `//!`),
//! * block comments `/* … */` with nesting, spanning lines,
//! * string literals with escapes (`"…\"…"`), byte strings `b"…"`,
//! * raw strings `r"…"`, `r#"…"#`, … with any hash count, `br#"…"#`,
//! * char and byte-char literals (`'x'`, `'\n'`, `b'\''`) vs lifetimes
//!   (`'a`, `'_`, `'static`).
//!
//! This is not a full lexer (no float-vs-field disambiguation, no
//! macro-aware parsing) — it does not need to be: the rules only need
//! token-level matching with correct comment/string suppression.

/// One file, split into per-line code and comment views. Both vectors
/// have one entry per source line (`code.len() == comments.len()`).
#[derive(Debug)]
pub struct Lexed {
    /// Per-line code text: comments stripped, literal contents blanked.
    pub code: Vec<String>,
    /// Per-line comment text: everything else stripped.
    pub comments: Vec<String>,
}

impl Lexed {
    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.code.len()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth ≥ 1.
    BlockComment(u32),
    /// `None` = normal (escaped) string, `Some(n)` = raw with `n` hashes.
    Str(Option<u32>),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into per-line code/comment views.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut com_line = String::new();
    let mut state = State::Code;
    let mut i = 0usize;

    macro_rules! newline {
        () => {{
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut com_line));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            newline!();
            if state == State::LineComment {
                state = State::Code;
            }
            // A char literal never spans lines; recover rather than eat
            // the rest of the file on malformed input.
            if state == State::CharLit {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    code_line.push('"');
                    state = State::Str(None);
                    i += 1;
                }
                'r' | 'b' if !prev_is_ident(&chars, i) => {
                    // Possible literal prefix: r"…", r#"…"#, b"…", br#"…"#,
                    // b'…'. Anything else is an ordinary identifier char.
                    if let Some((consumed, st)) = literal_prefix(&chars, i) {
                        for &p in &chars[i..i + consumed] {
                            code_line.push(p);
                        }
                        state = st;
                        i += consumed;
                    } else {
                        code_line.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Char literal vs lifetime.
                    let nn = chars.get(i + 2).copied();
                    if next == Some('\\') || (next.is_some() && nn == Some('\'')) {
                        code_line.push('\'');
                        state = State::CharLit;
                    } else {
                        // Lifetime (or malformed): keep as code.
                        code_line.push('\'');
                    }
                    i += 1;
                }
                _ => {
                    code_line.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                com_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    com_line.push(c);
                    i += 1;
                }
            }
            State::Str(None) => match c {
                '\\' => {
                    // Consume the escaped char too — unless it is a
                    // line-continuation newline, which the top-of-loop
                    // newline handling must still see.
                    code_line.push(' ');
                    if next == Some('\n') || next.is_none() {
                        i += 1;
                    } else {
                        code_line.push(' ');
                        i += 2;
                    }
                }
                '"' => {
                    code_line.push('"');
                    state = State::Code;
                    i += 1;
                }
                _ => {
                    code_line.push(' ');
                    i += 1;
                }
            },
            State::Str(Some(hashes)) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    code_line.push('"');
                    for _ in 0..hashes {
                        code_line.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::CharLit => match c {
                '\\' => {
                    code_line.push(' ');
                    if next == Some('\n') || next.is_none() {
                        i += 1;
                    } else {
                        code_line.push(' ');
                        i += 2;
                    }
                }
                '\'' => {
                    code_line.push('\'');
                    state = State::Code;
                    i += 1;
                }
                _ => {
                    code_line.push(' ');
                    i += 1;
                }
            },
        }
    }
    newline!();
    Lexed { code, comments }
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident(chars[i - 1])
}

/// Does the text at `i` start a string/char literal prefix (`r`, `b`,
/// `br` forms)? Returns `(chars consumed through the opening delimiter,
/// resulting state)`.
fn literal_prefix(chars: &[char], i: usize) -> Option<(usize, State)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') => return Some((j - i + 1, State::CharLit)),
            Some('"') => return Some((j - i + 1, State::Str(None))),
            Some('r') => j += 1,
            _ => return None,
        }
    } else if chars[j] == 'r' {
        j += 1;
    } else {
        return None;
    }
    // At this point we have consumed `r` (or `br`); expect `#*"`.
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i + 1, State::Str(Some(hashes))))
    } else {
        None
    }
}

/// Is the `"` at `i` followed by `hashes` `#` chars (closing a raw
/// string)?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        lex(src).code
    }

    #[test]
    fn line_comments_move_to_comment_view() {
        let l = lex("let x = 1; // thread::spawn here\n// SAFETY: nope\nlet y = 2;");
        assert!(!l.code[0].contains("thread::spawn"));
        assert!(l.comments[0].contains("thread::spawn"));
        assert!(l.comments[1].contains("SAFETY:"));
        assert!(l.code[2].contains("let y"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* x /* unsafe */ still comment */ b");
        assert_eq!(l.code[0].replace(' ', ""), "ab");
        assert!(l.comments[0].contains("unsafe"));
    }

    #[test]
    fn string_contents_are_blanked_but_delimiters_kept() {
        let c = code_of(r#"let s = "thread::spawn // not a comment";"#);
        assert!(!c[0].contains("thread::spawn"));
        assert!(!c[0].contains("//"));
        assert!(c[0].contains('"'));
        assert!(c[0].ends_with(';'));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let c = code_of(r#"let s = "a\"unsafe\"b"; let t = unsafe_marker;"#);
        assert!(!c[0].contains("\"unsafe\""));
        assert!(c[0].contains("unsafe_marker"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"env::var(\"X\") unsafe\"#; call();";
        let c = code_of(src);
        assert!(!c[0].contains("env::var"));
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("call()"));
        // Raw string whose contents contain `"#`-lookalikes.
        let src2 = "let s = r##\"quote \"# inner\"##; tail();";
        let c2 = code_of(src2);
        assert!(c2[0].contains("tail()"));
        assert!(!c2[0].contains("inner"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let c = code_of(r##"let b = b"unsafe"; let rb = br#"thread::scope"#; end();"##);
        assert!(!c[0].contains("unsafe"));
        assert!(!c[0].contains("thread::scope"));
        assert!(c[0].contains("end()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; g(x); }");
        // The double-quote char literal must not open a string state.
        assert!(c[0].contains("g(x)"));
        assert!(c[0].contains("<'a>"));
        let c2 = code_of("let underscore_char = '_'; let lt: &'_ str = s; h();");
        assert!(c2[0].contains("h();"));
    }

    #[test]
    fn identifier_ending_in_r_before_string() {
        // `var r` then a separate string: the r must not be taken as a
        // raw-string prefix when glued to an identifier.
        let c = code_of(r#"let chr = "unsafe"; keep(chr);"#);
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("keep(chr)"));
    }

    #[test]
    fn multiline_strings_and_comments_track_lines() {
        let src = "let s = \"line1\nline2 unsafe\nline3\";\n/* c1\nc2 */ code4();";
        let l = lex(src);
        assert_eq!(l.lines(), 5);
        assert!(!l.code[1].contains("unsafe"));
        assert!(l.code[4].contains("code4()"));
        assert!(l.comments[3].contains("c1"));
    }
}
