//! Per-crate rule scoping: which crates each rule applies to and the
//! designated exception files, with the *reason* for every exception
//! written down next to it.
//!
//! The scoping tables are the policy half of the linter; `rules.rs` is
//! the mechanism. Changing policy (say, promoting a crate into the
//! deterministic set) is an edit here, reviewed like any other code.

/// Logical crate key of a workspace-relative path: the directory name
/// under `crates/` (`"dex-core"`, `"bench"`, …), `"shims/<name>"` for the
/// vendored shims, and `"root"` for the repo-root package (`src/`,
/// `tests/`, `examples/`).
pub fn crate_key(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("root").to_string(),
        Some("shims") => format!("shims/{}", parts.next().unwrap_or("?")),
        _ => "root".to_string(),
    }
}

/// The only crate allowed to create or scope threads: the persistent
/// deterministic executor. Everything else must fan out through it so
/// the zero-spawn / chunk-determinism contracts hold workspace-wide.
pub const EXEC_CRATE: &str = "dex-exec";

/// Crates whose computed results are covered by the bit-identity
/// contract (differential proptests, CI byte-diffs). RandomState
/// `HashMap`/`HashSet` — whose iteration order varies per process — are
/// forbidden here; use `dex_graph::fxhash::{FxHashMap, FxHashSet}` or
/// `BTreeMap`/`BTreeSet`.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "dex-graph",
    "dex-core",
    "dex-sim",
    "dex-workload",
    // Adversary decisions and baseline overlays feed replayable traces
    // and comparison tables — same contract.
    "dex-adversary",
    "dex-baselines",
];

/// The one file that may name std's `HashMap`/`HashSet` inside a
/// deterministic crate: the definition site of the deterministic
/// `FxHashMap`/`FxHashSet` aliases themselves.
pub const HASHER_DEF_FILES: &[&str] = &["crates/dex-graph/src/fxhash.rs"];

/// The workspace's single environment-read location
/// (`dex_exec::knobs`): every `DEX_*` knob is declared and read there,
/// so the full runtime-knob surface is one auditable registry.
pub const KNOB_MODULE: &str = "crates/dex-exec/src/knobs.rs";

/// Crates that may read wall-clock time: measurement is their purpose,
/// and nothing they emit feeds back into protocol results.
pub const WALLCLOCK_CRATES: &[&str] = &[
    "bench",
    // The vendored criterion shim is a timing harness.
    "shims/criterion",
];

/// Metrics-timing allowlist: files outside the bench crates that may
/// call `Instant::now`, each with the reason it is sound. Wall-times
/// here feed *observability* fields (per-section `StepMetrics` timings)
/// that are excluded from every digest and byte-diff — never results.
pub const WALLCLOCK_FILES: &[(&str, &str)] = &[(
    "crates/dex-core/src/parheal.rs",
    "per-section engine timings feed BatchHealStats/StepMetrics observability; \
     digests and CI byte-diffs never include them",
)];

/// Directories (workspace-relative prefixes) never walked.
pub const SKIP_DIRS: &[&str] = &["target", ".git"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_keys() {
        assert_eq!(crate_key("crates/dex-core/src/lib.rs"), "dex-core");
        assert_eq!(crate_key("crates/bench/src/bin/exp_batch.rs"), "bench");
        assert_eq!(crate_key("shims/rand/src/lib.rs"), "shims/rand");
        assert_eq!(crate_key("src/lib.rs"), "root");
        assert_eq!(crate_key("tests/determinism.rs"), "root");
        assert_eq!(crate_key("examples/quickstart.rs"), "root");
    }

    #[test]
    fn exec_crate_is_not_deterministic_scoped() {
        // dex-exec owns threads; the no-random-state rule lists results
        // crates. The two sets are disjoint by construction.
        assert!(!DETERMINISTIC_CRATES.contains(&EXEC_CRATE));
    }
}
