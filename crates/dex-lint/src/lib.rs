//! `dex-lint` — the workspace determinism & hygiene analyzer.
//!
//! Every PR since the parallel batch-heal engine rests on one promise:
//! **bit-identical results at any thread count**. The differential
//! proptests and CI byte-diffs enforce that promise *dynamically* — they
//! sample executions. This crate enforces the *architectural* invariants
//! that make the promise provable, statically, over every `.rs` file in
//! the workspace:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-raw-threads` | all parallelism flows through the proven `dex-exec` pool |
//! | `no-random-state` | results-bearing crates never iterate RandomState maps |
//! | `knob-discipline` | the environment is read only in the `dex_exec::knobs` registry |
//! | `unsafe-hygiene` | every `unsafe` carries a `// SAFETY:` argument |
//! | `no-wallclock-in-results` | wall-clock stays in bench/metrics allowlists |
//! | `rng-keying` | RNG streams are keyed by op identity, never arrival order |
//!
//! Violations can be waived inline — `// dex-lint: allow(<rule>) --
//! <reason>` — and the waivers are themselves linted (known rule,
//! non-empty reason, must actually suppress something). Enforcement is
//! two-fold: the `dex-lint` binary (`cargo run -p dex-lint`, CI step)
//! and a `#[test]` in each deterministic crate, so plain `cargo test`
//! fails on any un-waived violation.
//!
//! The crate is dependency-free and owns a minimal Rust lexer
//! ([`lexer`]) so rule tokens inside comments, strings, and raw strings
//! never fire.

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod waivers;
pub mod walker;

use std::io;
use std::path::Path;

pub use report::{Report, Violation};
pub use walker::workspace_root_from;

/// Lint one source text as if it lived at `rel_path` in the workspace.
/// Returns the post-waiver violations (including waiver-syntax and
/// unused-waiver findings). The unit used by both [`lint_workspace`] and
/// the fixture tests.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Violation> {
    let lexed = lexer::lex(src);
    let crate_key = config::crate_key(rel_path);
    let raw = rules::check_all(&rules::FileCtx {
        rel_path,
        crate_key: &crate_key,
        lexed: &lexed,
    });
    let mut wset = waivers::parse(rel_path, &lexed);
    let mut out: Vec<Violation> = raw
        .into_iter()
        .filter(|v| !wset.suppress(v.rule, v.line))
        .collect();
    out.extend(wset.errors.iter().cloned());
    out.extend(wset.unused(rel_path));
    out
}

/// Number of waivers in `src` that would suppress a violation (used for
/// report accounting).
fn count_waived(rel_path: &str, src: &str) -> usize {
    let lexed = lexer::lex(src);
    let crate_key = config::crate_key(rel_path);
    let raw = rules::check_all(&rules::FileCtx {
        rel_path,
        crate_key: &crate_key,
        lexed: &lexed,
    });
    let mut wset = waivers::parse(rel_path, &lexed);
    raw.iter().filter(|v| wset.suppress(v.rule, v.line)).count()
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in walker::workspace_files(root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = std::fs::read_to_string(root.join(&rel))?;
        report.files += 1;
        report.waived += count_waived(&rel_str, &src);
        report.violations.extend(lint_source(&rel_str, &src));
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_violation_is_suppressed_and_counted() {
        let src = "\
// dex-lint: allow(no-raw-threads) -- measuring raw spawn cost on purpose
std::thread::scope(|s| {});
";
        let v = lint_source("crates/bench/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(count_waived("crates/bench/src/x.rs", src), 1);
    }

    #[test]
    fn waiver_for_the_wrong_rule_does_not_suppress() {
        let src = "\
// dex-lint: allow(rng-keying) -- wrong rule
std::thread::scope(|s| {});
";
        let v = lint_source("crates/bench/src/x.rs", src);
        // The violation survives AND the waiver is reported unused.
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"no-raw-threads"), "{rules:?}");
        assert!(rules.contains(&"waiver-unused"), "{rules:?}");
    }

    #[test]
    fn this_workspace_is_lint_clean() {
        let root =
            workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let report = lint_workspace(&root).expect("lint run");
        assert!(report.is_clean(), "\n{report}");
        assert!(report.files > 50, "walk found only {} files", report.files);
    }
}
