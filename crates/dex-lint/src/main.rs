//! `dex-lint` binary: lint the workspace, print violations, exit
//! non-zero on any finding.
//!
//! ```sh
//! cargo run -p dex-lint              # lint the enclosing workspace
//! cargo run -p dex-lint -- --root X  # lint the workspace at X
//! cargo run -p dex-lint -- --rules   # list rules and waiver syntax
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--rules" => {
                println!("rules:");
                for r in dex_lint::rules::RULE_IDS {
                    println!("  {r}");
                }
                println!("\nwaiver syntax:  // dex-lint: allow(<rule>) -- <reason>");
                println!("(same line as the violation, or the comment line(s) directly above)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dex-lint: unknown argument `{other}` (try --rules)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| dex_lint::workspace_root_from(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("dex-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    match dex_lint::lint_workspace(&root) {
        Ok(report) => {
            println!("{report}");
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dex-lint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}
