//! The six determinism & hygiene rules.
//!
//! Each rule is a token-level matcher over the lexer's code view (so
//! comments and string contents never fire) with per-crate scoping from
//! `config.rs`. Matching is deliberately repo-specific: these rules
//! encode *this* workspace's architecture (everything parallel goes
//! through `dex-exec`, every RNG stream is keyed by op identity, every
//! knob lives in one registry) — they are not general Rust lints.

use crate::config;
use crate::lexer::Lexed;
use crate::report::Violation;

/// All rule ids, in reporting order. Waivers may name any of these.
pub const RULE_IDS: &[&str] = &[
    "no-raw-threads",
    "no-random-state",
    "knob-discipline",
    "unsafe-hygiene",
    "no-wallclock-in-results",
    "rng-keying",
];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may
/// sit (same line also counts). Consecutive unsafe lines under one
/// comment stay covered within this window.
const SAFETY_WINDOW: usize = 5;

/// Identifiers that read as loop/chunk indices when used alone as an RNG
/// seed — the classic way to accidentally key randomness to *arrival
/// order* instead of *op identity*.
const INDEX_IDENTS: &[&str] = &[
    "i",
    "j",
    "k",
    "w",
    "c",
    "t",
    "idx",
    "index",
    "chunk",
    "chunk_idx",
    "chunk_index",
    "worker",
    "worker_idx",
    "lane",
    "lane_idx",
    "slot",
    "pos",
];

/// Everything the linter knows about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative `/`-separated path.
    pub rel_path: &'a str,
    /// Logical crate key ([`config::crate_key`]).
    pub crate_key: &'a str,
    /// Lexed code/comment views.
    pub lexed: &'a Lexed,
}

/// Run every rule on `ctx`, returning raw (pre-waiver) violations.
pub fn check_all(ctx: &FileCtx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    no_raw_threads(ctx, &mut out);
    no_random_state(ctx, &mut out);
    knob_discipline(ctx, &mut out);
    unsafe_hygiene(ctx, &mut out);
    no_wallclock_in_results(ctx, &mut out);
    rng_keying(ctx, &mut out);
    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Does `line` contain `pat` as a whole token sequence (no identifier
/// character glued to either end)?
fn has_token(line: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(off) = line[from..].find(pat) {
        let start = from + off;
        let end = start + pat.len();
        let pre = line[..start].chars().next_back();
        let post = line[end..].chars().next();
        let pre_ok = pre.is_none_or(|c| !is_ident(c));
        let post_ok = post.is_none_or(|c| !is_ident(c));
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn push(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Violation>,
    line: usize,
    rule: &'static str,
    msg: String,
    hint: &'static str,
) {
    out.push(Violation {
        file: ctx.rel_path.to_string(),
        line,
        rule,
        msg,
        hint,
    });
}

/// Rule 1 — `no-raw-threads`: thread creation (`thread::spawn`,
/// `thread::scope`, `thread::Builder`) and third-party runtimes
/// (`rayon`) are forbidden outside `dex-exec`. The executor is the one
/// place the bit-identity contract is proven; a raw thread anywhere else
/// is unproven parallelism.
fn no_raw_threads(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if ctx.crate_key == config::EXEC_CRATE {
        return;
    }
    for (idx, line) in ctx.lexed.code.iter().enumerate() {
        for pat in ["thread::spawn", "thread::scope", "thread::Builder", "rayon"] {
            if has_token(line, pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    "no-raw-threads",
                    format!("`{pat}` bypasses the deterministic executor"),
                    "fan out through dex_exec (run_workers / for_chunks_* / par_map); \
                     only dex-exec may create threads",
                );
            }
        }
    }
}

/// Rule 2 — `no-random-state`: std `HashMap`/`HashSet` (RandomState:
/// per-process iteration order) are forbidden in crates under the
/// bit-identity contract. `FxHashMap`/`FxHashSet`/`BTreeMap` tokens do
/// not match; the Fx alias definition site is exempted in config.
fn no_random_state(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !config::DETERMINISTIC_CRATES.contains(&ctx.crate_key)
        || config::HASHER_DEF_FILES.contains(&ctx.rel_path)
    {
        return;
    }
    for (idx, line) in ctx.lexed.code.iter().enumerate() {
        for pat in ["HashMap", "HashSet"] {
            if has_token(line, pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    "no-random-state",
                    format!("std `{pat}` has nondeterministic iteration order (RandomState)"),
                    "use dex_graph::fxhash::{FxHashMap, FxHashSet} or BTreeMap/BTreeSet; \
                     waive only if iteration order is provably never observed",
                );
            }
        }
    }
}

/// Rule 3 — `knob-discipline`: the process environment is read in
/// exactly one place, `dex_exec::knobs` — the complete, documented
/// registry of runtime knobs. A stray `env::var` is an undocumented
/// knob.
fn knob_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if ctx.rel_path == config::KNOB_MODULE {
        return;
    }
    for (idx, line) in ctx.lexed.code.iter().enumerate() {
        for pat in ["env::var", "env::var_os", "env::vars", "env::vars_os"] {
            if has_token(line, pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    "knob-discipline",
                    format!("`{pat}` outside the knob registry"),
                    "declare the knob in dex_exec::knobs (name, default, doc) and read it there",
                );
                break; // one finding per line even if several pats overlap
            }
        }
    }
}

/// Rule 4 — `unsafe-hygiene`: every line with an `unsafe` token needs a
/// `// SAFETY:` comment on the same line or within the 5 lines above.
fn unsafe_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for (idx, line) in ctx.lexed.code.iter().enumerate() {
        if !has_token(line, "unsafe") {
            continue;
        }
        let lo = idx.saturating_sub(SAFETY_WINDOW);
        let covered = ctx.lexed.comments[lo..=idx]
            .iter()
            .any(|c| c.contains("SAFETY:"));
        if !covered {
            push(
                ctx,
                out,
                idx + 1,
                "unsafe-hygiene",
                "`unsafe` without a `// SAFETY:` comment".to_string(),
                "state the invariant that makes this sound in a // SAFETY: comment \
                 directly above (within 5 lines)",
            );
        }
    }
}

/// Rule 5 — `no-wallclock-in-results`: `Instant::now`/`SystemTime` are
/// measurement, and measurement belongs to the bench crates (or the
/// audited metrics-timing allowlist). Wall-clock anywhere else can leak
/// scheduling noise into results.
fn no_wallclock_in_results(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if config::WALLCLOCK_CRATES.contains(&ctx.crate_key)
        || config::WALLCLOCK_FILES
            .iter()
            .any(|(f, _)| *f == ctx.rel_path)
    {
        return;
    }
    for (idx, line) in ctx.lexed.code.iter().enumerate() {
        for pat in ["Instant::now", "SystemTime"] {
            if has_token(line, pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    "no-wallclock-in-results",
                    format!("`{pat}` outside bench/metrics-timing allowlists"),
                    "keep timing in crates/bench, or add the file to \
                     config::WALLCLOCK_FILES with a written reason",
                );
            }
        }
    }
}

/// Rule 6 — `rng-keying`: `thread_rng` is banned outright (ambient,
/// unseeded), and seeding an RNG from a *bare loop/chunk index* keys the
/// stream to arrival order instead of op identity — the exact bug class
/// the per-op keyed streams (SeedSpace, splitmix-derived seeds) exist to
/// prevent.
fn rng_keying(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for (idx, line) in ctx.lexed.code.iter().enumerate() {
        for pat in ["thread_rng", "ThreadRng"] {
            if has_token(line, pat) {
                push(
                    ctx,
                    out,
                    idx + 1,
                    "rng-keying",
                    format!("`{pat}` is ambient randomness — unseeded and unreplayable"),
                    "derive every stream from a seed keyed by op identity \
                     (dex_sim::rng::SeedSpace or a splitmix of the op key)",
                );
            }
        }
        for call in ["seed_from_u64(", "from_seed("] {
            let mut from = 0;
            while let Some(off) = line[from..].find(call) {
                let start = from + off;
                let arg_start = start + call.len();
                if let Some(close) = line[arg_start..].find(')') {
                    let arg = line[arg_start..arg_start + close].trim();
                    let bare = arg.strip_suffix("as u64").map(str::trim).unwrap_or(arg);
                    if INDEX_IDENTS.contains(&bare) {
                        push(
                            ctx,
                            out,
                            idx + 1,
                            "rng-keying",
                            format!("RNG seeded from bare index `{arg}` — keyed to arrival order, not op identity"),
                            "mix the index with an op key (splitmix64(key ^ SALT)) or derive \
                             via SeedSpace::stream(purpose, &[op key, …])",
                        );
                    }
                    from = arg_start + close;
                } else {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn lint_src(rel_path: &str, src: &str) -> Vec<Violation> {
        let lexed = lexer::lex(src);
        let key = config::crate_key(rel_path);
        check_all(&FileCtx {
            rel_path,
            crate_key: &key,
            lexed: &lexed,
        })
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    // ---- no-raw-threads -------------------------------------------------

    #[test]
    fn raw_threads_flagged_outside_exec() {
        let v = lint_src(
            "crates/dex-core/src/x.rs",
            "fn f() { std::thread::spawn(|| {}); }",
        );
        assert_eq!(rules_of(&v), ["no-raw-threads"]);
        let v = lint_src("crates/bench/src/x.rs", "thread::scope(|s| {});");
        assert_eq!(rules_of(&v), ["no-raw-threads"]);
        let v = lint_src("crates/dex-sim/src/x.rs", "use rayon::prelude::*;");
        assert_eq!(rules_of(&v), ["no-raw-threads"]);
    }

    #[test]
    fn raw_threads_allowed_in_exec_and_nonspawning_apis_pass() {
        assert!(lint_src(
            "crates/dex-exec/src/lib.rs",
            "std::thread::Builder::new().spawn(f); thread::scope(|s| {});",
        )
        .is_empty());
        // Non-creating thread APIs are fine anywhere.
        assert!(lint_src(
            "crates/dex-core/src/x.rs",
            "let n = std::thread::available_parallelism(); std::thread::park(); \
             let me = std::thread::current();",
        )
        .is_empty());
    }

    // ---- no-random-state ------------------------------------------------

    #[test]
    fn random_state_flagged_in_deterministic_crates_only() {
        let src = "let m = std::collections::HashMap::new(); let s: HashSet<u32> = HashSet::new();";
        assert_eq!(
            rules_of(&lint_src("crates/dex-core/src/x.rs", src)),
            ["no-random-state", "no-random-state"]
        );
        // bench is not results-bearing: no finding.
        assert!(lint_src("crates/bench/src/x.rs", src).is_empty());
        // Fx aliases and lookalike identifiers never match.
        assert!(lint_src(
            "crates/dex-core/src/x.rs",
            "let m: FxHashMap<u32, u32> = FxHashMap::default(); struct HashMapping;",
        )
        .is_empty());
        // The alias definition site is exempt.
        assert!(lint_src(
            "crates/dex-graph/src/fxhash.rs",
            "use std::collections::{HashMap, HashSet};",
        )
        .is_empty());
    }

    // ---- knob-discipline ------------------------------------------------

    #[test]
    fn env_reads_only_in_the_registry() {
        let v = lint_src(
            "crates/dex-graph/src/par.rs",
            r#"let x = std::env::var("DEX_WALK_K");"#,
        );
        assert_eq!(rules_of(&v), ["knob-discipline"]);
        assert!(lint_src(
            "crates/dex-exec/src/knobs.rs",
            r#"let x = std::env::var("DEX_WALK_K");"#,
        )
        .is_empty());
        // CLI args are not knobs.
        assert!(lint_src(
            "crates/bench/src/bin/b.rs",
            "let args: Vec<String> = std::env::args().collect();",
        )
        .is_empty());
    }

    // ---- unsafe-hygiene -------------------------------------------------

    #[test]
    fn unsafe_needs_safety_comment() {
        let v = lint_src("crates/dex-graph/src/x.rs", "let p = unsafe { *q };");
        assert_eq!(rules_of(&v), ["unsafe-hygiene"]);
        assert!(lint_src(
            "crates/dex-graph/src/x.rs",
            "// SAFETY: q is valid for reads, checked above.\nlet p = unsafe { *q };",
        )
        .is_empty());
        // One comment covers a short run of consecutive unsafe lines.
        assert!(lint_src(
            "crates/dex-exec/src/lib.rs",
            "// SAFETY: both pointees outlive the job (latch).\nlet f = unsafe { &*a };\nlet l = unsafe { &*b };",
        )
        .is_empty());
        // …but not past the window.
        let far = format!(
            "// SAFETY: too far away.\n{}\nunsafe {{ f() }};",
            "x();\n".repeat(6)
        );
        assert_eq!(
            rules_of(&lint_src("crates/dex-graph/src/x.rs", &far)),
            ["unsafe-hygiene"]
        );
    }

    #[test]
    fn unsafe_in_comments_and_strings_does_not_fire() {
        assert!(lint_src(
            "crates/dex-graph/src/x.rs",
            "// interior mutability, no unsafe — so callers can hold both halves\n\
             let s = \"unsafe text\"; /* unsafe in block comment */ let r = r#\"unsafe\"#;",
        )
        .is_empty());
    }

    // ---- no-wallclock-in-results ----------------------------------------

    #[test]
    fn wallclock_flagged_outside_allowlists() {
        let src = "let t = std::time::Instant::now(); let s = std::time::SystemTime::now();";
        assert_eq!(
            rules_of(&lint_src("crates/dex-sim/src/x.rs", src)),
            ["no-wallclock-in-results", "no-wallclock-in-results"]
        );
        assert!(lint_src("crates/bench/src/x.rs", src).is_empty());
        assert!(lint_src("crates/dex-core/src/parheal.rs", src).is_empty());
        assert!(lint_src("shims/criterion/src/lib.rs", src).is_empty());
        // `Instant` as a stored type (no clock read) is fine.
        assert!(lint_src(
            "crates/dex-sim/src/x.rs",
            "fn f(t0: Instant) -> Duration { t0.elapsed() }"
        )
        .is_empty());
    }

    // ---- rng-keying -----------------------------------------------------

    #[test]
    fn thread_rng_banned_everywhere() {
        let v = lint_src("crates/bench/src/x.rs", "let mut r = rand::thread_rng();");
        assert_eq!(rules_of(&v), ["rng-keying"]);
        let v = lint_src("tests/t.rs", "let r: ThreadRng = x;");
        assert_eq!(rules_of(&v), ["rng-keying"]);
    }

    #[test]
    fn bare_index_seeds_flagged_keyed_seeds_pass() {
        let v = lint_src(
            "crates/dex-core/src/x.rs",
            "let r = StdRng::seed_from_u64(i);",
        );
        assert_eq!(rules_of(&v), ["rng-keying"]);
        let v = lint_src(
            "crates/dex-core/src/x.rs",
            "let r = StdRng::seed_from_u64(chunk_idx as u64);",
        );
        assert_eq!(rules_of(&v), ["rng-keying"]);
        // Keyed / derived / constant seeds are the sanctioned patterns.
        assert!(lint_src(
            "crates/dex-core/src/x.rs",
            "let a = StdRng::seed_from_u64(seed); \
             let b = StdRng::seed_from_u64(job.seed); \
             let c = StdRng::seed_from_u64(0xbeef ^ i); \
             let d = StdRng::seed_from_u64(splitmix64(key)); \
             let e = StdRng::seed_from_u64(42);",
        )
        .is_empty());
    }

    // ---- multiple rules at once ----------------------------------------

    #[test]
    fn deliberately_broken_fixture_trips_all_six_rules() {
        let src = r#"
use std::collections::HashMap;
fn f(i: u64) {
    std::thread::spawn(|| {});
    let m: HashMap<u32, u32> = HashMap::new();
    let knob = std::env::var("DEX_SECRET");
    let p = unsafe { danger() };
    let t0 = std::time::Instant::now();
    let r1 = rand::thread_rng();
    let r2 = StdRng::seed_from_u64(i);
}
"#;
        let v = lint_src("crates/dex-workload/src/x.rs", src);
        let got = rules_of(&v);
        for rule in RULE_IDS {
            assert!(got.contains(rule), "rule {rule} did not fire: {got:?}");
        }
    }
}
